// Example: NN-driven load balancing with LiteFlow (the paper's §5.3
// scenario, condensed).
//
// 8 hosts on a 2x2 spine-leaf; a background hotspot congests one spine and
// hops to the other every 300 ms.  The LB MLP reads per-path {ECN fraction,
// smoothed RTT, utilization} and picks the uplink per flow(let); ECMP
// hashes blindly into the hotspot half the time.
//
// Build & run:  ./build/examples/load_balancing
#include <cstdio>
#include <iostream>

#include "apps/lb/lb_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;

  std::cout << "load balancing on a 2x2 spine-leaf (8 hosts) with a moving\n"
               "7 Gbps hotspot, 500 web-search flows:\n\n";
  std::printf("%-14s %14s %14s %14s %10s\n", "deployment", "short mean(us)",
              "mid mean(us)", "long mean(us)", "selects");
  for (const auto d :
       {lb_deployment::liteflow, lb_deployment::ecmp, lb_deployment::chardev}) {
    lb_experiment_config cfg;
    cfg.deployment = d;
    cfg.hosts_per_leaf = 4;
    cfg.arrival_rate = 1500.0;
    cfg.total_flows = 500;
    cfg.pretrain_samples = 1500;
    cfg.pretrain_epochs = 200;
    const auto r = run_lb_experiment(cfg);
    std::printf("%-14s %14.0f %14.0f %14.0f %10llu\n",
                std::string{to_string(d)}.c_str(),
                r.short_flows.mean_seconds * 1e6,
                r.mid_flows.mean_seconds * 1e6,
                r.long_flows.mean_seconds * 1e6,
                static_cast<unsigned long long>(r.selector_calls));
  }
  std::cout << "\nThe learned selector dodges the hotspot; ECMP cannot, and\n"
               "the char-device deployment pays a cross-space round trip per\n"
               "selection on top.\n";
  return 0;
}
