// Example: LiteFlow-deployed Aurora congestion control on the dumbbell
// testbed (the paper's §5.1 scenario, condensed).
//
// A single LF-Aurora flow drives a 1 Gbps bottleneck with background UDP;
// mid-run the path turns lossy and the slow path adapts: watch the batch
// deliveries, snapshot updates, and the goodput recovering.
//
// Build & run:  ./build/examples/congestion_control
#include <cstdio>
#include <iostream>

#include "apps/cc/cc_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;

  cc_single_flow_config cfg;
  cfg.scheme = cc_scheme::lf_aurora;
  cfg.duration = 24.0;
  cfg.warmup = 2.0;
  cfg.pretrain_iterations = 600;
  cfg.net.bottleneck_bps = 1e9;
  cfg.net.rtt = 10e-3;
  cfg.net.buffer_bytes = 150 * 1000;
  cfg.bg_bps = 0.1e9;
  cfg.bg_schedule = {{12.0, 0.1e9, 0.08}};  // the path turns lossy at t=12s

  std::cout << "running LF-Aurora on a 1 Gbps dumbbell (10 ms RTT); the\n"
               "path turns 8% lossy at t=12s — the slow path must adapt...\n\n";
  const auto r = run_cc_single_flow(cfg);

  std::cout << "goodput (Mbps, 1s buckets):\n";
  for (const auto& [t, v] : r.goodput.resample(0, cfg.duration, 1.0)) {
    std::printf("  t=%5.1fs  %7.1f  %s\n", t, v / 1e6,
                t > 12.0 ? "(lossy)" : "");
  }
  std::cout << "\nmean goodput " << r.mean_goodput / 1e6 << " Mbps, "
            << r.snapshot_updates << " snapshot updates, softirq share "
            << r.softirq_share * 100 << "%\n";
  std::cout << "\nCompare: re-run with cfg.scheme = cc_scheme::lf_aurora_noa\n"
               "to see the frozen snapshot stay collapsed after t=12s.\n";
  return 0;
}
