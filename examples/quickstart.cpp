// Quickstart: the LiteFlow snapshot pipeline end to end.
//
// 1. Train a small model in "userspace" (here: supervised, for brevity).
// 2. Freeze it and run §3.1's pipeline: high-precision integer quantization
//    + layer-wise code translation to kernel C.
// 3. Install it into a (simulated) kernel: register with the core module,
//    stage as standby, pointer-flip to active.
// 4. Serve inferences through lf_query_model and check fidelity (§3.3).
// 5. Bonus: compile the generated C with the real GCC and verify it matches
//    the in-kernel interpreter bit for bit.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "codegen/compiled_snapshot.hpp"
#include "codegen/snapshot.hpp"
#include "core/liteflow_core.hpp"
#include "nn/trainer.hpp"
#include "quant/fidelity.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lf;

  // --- 1. a userspace model -------------------------------------------
  rng gen{42};
  auto model = nn::make_ffnn_flow_size_net(gen);
  nn::supervised_trainer trainer{model, nn::loss_kind::mse,
                                 std::make_unique<nn::adam>(3e-3)};
  std::vector<nn::training_sample> data;
  for (int i = 0; i < 256; ++i) {
    std::vector<double> x(8);
    for (auto& v : x) v = gen.uniform(0.0, 1.0);
    data.push_back({x, {0.5 * (x[0] + x[1])}});
  }
  for (int epoch = 0; epoch < 300; ++epoch) trainer.train_batch(data);
  std::cout << "trained model: " << model.describe()
            << ", loss " << trainer.evaluate(data) << "\n";

  // --- 2. freeze + quantize + translate (§3.1) -------------------------
  const auto snap = codegen::generate_snapshot(model, "quickstart", 1);
  std::cout << "snapshot: " << snap.program.mac_count() << " MACs, "
            << snap.program.parameter_bytes() << " parameter bytes, "
            << snap.c_source.size() << " bytes of generated C\n";

  // --- 3. install into the simulated kernel (§3.4) ---------------------
  sim::simulation simu;
  kernelsim::cost_model costs;
  kernelsim::cpu_model cpu{simu};
  core::liteflow_core core{simu, cpu, costs};
  core.register_io({"quickstart-io", 8, 1});  // lf_register_io shape check
  const auto id = core.register_model(snap);  // lf_register_model
  core.router().install_standby(id);          // no lock
  core.router().switch_active();              // pointer flip (~ns)

  // --- 4. fast-path inference (lf_query_model) -------------------------
  std::vector<double> x(8, 0.4);
  std::vector<fp::s64> xq(8);
  for (std::size_t i = 0; i < 8; ++i) {
    xq[i] = static_cast<fp::s64>(x[i] * static_cast<double>(core.active_io_scale()));
  }
  const auto yq = core.query_model_sync(/*flow=*/1, xq);
  simu.run();
  const double y_kernel = static_cast<double>(yq.at(0)) /
                          static_cast<double>(core.active_io_scale());
  const double y_user = model.forward(x)[0];
  std::cout << "inference: userspace " << y_user << " vs kernel snapshot "
            << y_kernel << "\n";

  const std::vector<std::vector<double>> batch{x};
  const auto fidelity = quant::evaluate_fidelity(model, snap.program, batch);
  std::cout << "fidelity loss (|f'(x)-f(x)|): " << fidelity.max_loss
            << "  -> update necessary? "
            << (quant::update_necessary(fidelity, 0.05, 0.0, 1.0) ? "yes"
                                                                  : "no")
            << "\n";

  // --- 5. compile the generated C with real GCC ------------------------
  if (codegen::compiler_available()) {
    const auto compiled = codegen::compiled_snapshot::compile(snap.c_source);
    const auto y_compiled = compiled.infer(xq, 1);
    std::cout << "gcc-compiled snapshot output: " << y_compiled.at(0)
              << (y_compiled.at(0) == yq.at(0) ? "  (bit-identical)" : "  (MISMATCH!)")
              << "\n";
  } else {
    std::cout << "gcc not available; skipping compiled verification\n";
  }
  return 0;
}
