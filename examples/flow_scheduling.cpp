// Example: flow scheduling with LiteFlow-deployed flow-size prediction
// (the paper's §5.2 scenario, condensed).
//
// A small spine-leaf fabric runs DCTCP flows whose sizes correlate per host
// pair; the FFNN predicts each new flow's size and predicted-short flows
// ride high strict-priority bands.  Compares LF-FFNN against running the
// same model in userspace behind a netlink socket and against no
// scheduling at all.
//
// Build & run:  ./build/examples/flow_scheduling
#include <cstdio>
#include <iostream>

#include "apps/sched/sched_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;

  std::cout << "flow scheduling on a 2x2 spine-leaf (8 hosts), 600 flows:\n\n";
  std::printf("%-16s %14s %14s %14s %12s\n", "deployment", "short mean(us)",
              "mid mean(us)", "long mean(us)", "pred lat(us)");
  for (const auto d : {sched_deployment::liteflow, sched_deployment::netlink_dev,
                       sched_deployment::no_prediction}) {
    sched_experiment_config cfg;
    cfg.deployment = d;
    cfg.hosts_per_leaf = 4;
    cfg.arrival_rate = 2000.0;
    cfg.total_flows = 600;
    cfg.pretrain_flows = 1200;
    cfg.pretrain_epochs = 120;
    const auto r = run_sched_experiment(cfg);
    std::printf("%-16s %14.0f %14.0f %14.0f %12.2f\n",
                std::string{to_string(d)}.c_str(),
                r.short_flows.mean_seconds * 1e6,
                r.mid_flows.mean_seconds * 1e6,
                r.long_flows.mean_seconds * 1e6,
                r.mean_prediction_latency * 1e6);
  }
  std::cout << "\nLF-FFNN predicts in-kernel (microseconds, no cross-space "
               "round trip)\nand keeps adapting from batched labels.\n";
  return 0;
}
