#include "core/batch_collector.hpp"

#include <stdexcept>

namespace lf::core {

batch_collector::batch_collector(sim::simulation& sim,
                                 kernelsim::crossspace_channel& netlink,
                                 batch_collector_config config)
    : sim_{sim}, netlink_{netlink}, config_{config} {
  // !(x > 0) instead of (x <= 0): also rejects NaN, which would otherwise
  // slip through and schedule deliveries at a NaN interval forever.
  if (!(config_.interval > 0.0)) {
    throw std::invalid_argument{
        "batch_collector: interval T must be a positive number of seconds"};
  }
}

void batch_collector::collect(train_sample sample) {
  if (buffer_.size() >= config_.max_samples) {
    // Kernel buffer full: drop the oldest (ring semantics).
    buffer_.erase(buffer_.begin());
    dropped_.inc();
  }
  sample.collected_at = sim_.now();
  buffer_.push_back(std::move(sample));
}

void batch_collector::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  sim_.schedule(config_.interval, [this, e = epoch_]() {
    if (running_ && e == epoch_) deliver();
  });
}

void batch_collector::set_interval(double interval) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument{
        "batch_collector: interval T must be a positive number of seconds"};
  }
  config_.interval = interval;
}

void batch_collector::deliver() {
  if (!buffer_.empty()) {
    auto batch = std::move(buffer_);
    buffer_.clear();
    const std::size_t bytes = batch.size() * config_.bytes_per_sample;
    batches_.inc();
    samples_.inc(batch.size());
    bytes_.inc(bytes);
    trace_.emit(sim_.now(), trace::event_type::batch_flush, batch.size(),
                bytes);
    netlink_.send_to_user(
        bytes, [this, batch = std::move(batch)]() mutable {
          if (consumer_) consumer_(std::move(batch));
        });
  }
  sim_.schedule(config_.interval, [this, e = epoch_]() {
    if (running_ && e == epoch_) deliver();
  });
}

void batch_collector::register_metrics(metrics::registry& reg,
                                       const std::string& prefix) {
  reg.register_counter(prefix + ".batches", batches_);
  reg.register_counter(prefix + ".samples", samples_);
  reg.register_counter(prefix + ".bytes", bytes_);
  reg.register_counter(prefix + ".dropped", dropped_);
}

void batch_collector::register_trace(trace::collector& col,
                                     const std::string& prefix) {
  col.attach(trace_, prefix);
}

}  // namespace lf::core
