#include "core/userspace_service.hpp"

namespace lf::core {

userspace_service::userspace_service(
    sim::simulation& sim, kernelsim::cpu_model& cpu,
    const kernelsim::cost_model& costs, kernelsim::crossspace_channel& netlink,
    liteflow_core& core, batch_collector& collector, adaptation_interface& user,
    service_config config)
    : sim_{sim}, cpu_{cpu}, costs_{costs}, netlink_{netlink}, core_{core},
      collector_{collector}, user_{user}, config_{std::move(config)},
      evaluator_{config_.sync} {}

void userspace_service::start() {
  // Initial deployment: freeze the (pre-trained) model and install v1.
  const auto frozen = user_.freeze_model();
  const auto model = nn::load_mlp_from_string(frozen);
  install_snapshot(codegen::generate_snapshot(model, config_.quantizer,
                                              config_.model_name, ++version_));
  collector_.set_consumer(
      [this](std::vector<train_sample> batch) { on_batch(std::move(batch)); });
  collector_.start();
}

double userspace_service::training_cost(std::size_t samples) const noexcept {
  return costs_.user_train_fixed_cost +
         static_cast<double>(samples) *
             static_cast<double>(user_.parameter_count()) *
             costs_.user_train_cost_per_sample_param;
}

void userspace_service::on_batch(std::vector<train_sample> batch) {
  batches_.inc();
  if (monitor_) {
    monitor_->on_batch(sim_.now(), core_.router().cache_size(),
                       core_.router().cache_capacity());
  }
  if (!config_.adaptation_enabled || batch.empty()) return;
  // Admission point: when the shared CPU is saturated, the mux lets only
  // the highest-priority services spend user_train cycles.  Deferring a
  // batch drops it — the next kernel batch carries fresher samples.
  if (admission_ && !admission_()) {
    deferred_.inc();
    return;
  }
  // Slow-path tuning competes for the shared CPU as user_train work; the
  // actual model math runs when the simulated work completes.
  cpu_.submit(kernelsim::task_category::user_train,
              training_cost(batch.size()),
              [this, batch = std::move(batch)]() {
                user_.adapt(batch);
                evaluator_.record_stability(user_.stability_value());
                maybe_update(batch);
              });
}

void userspace_service::maybe_update(std::span<const train_sample> batch) {
  checks_.inc();
  const auto active = core_.router().active(config_.model);
  const auto* installed = active ? core_.manager().get(*active) : nullptr;
  if (!installed) return;

  const auto frozen = user_.freeze_model();
  const auto tuned = nn::load_mlp_from_string(frozen);

  // Fidelity inputs: a prefix of the batch's feature vectors (§3.3 computes
  // L(x) over every x in the delivered batch; we cap for cost).
  std::vector<std::vector<double>> inputs;
  for (const auto& sample : batch) {
    if (inputs.size() >= config_.fidelity_samples) break;
    if (sample.features.size() == tuned.input_size()) {
      inputs.push_back(sample.features);
    }
  }
  if (inputs.empty()) return;

  // Computing fidelity needs the *kernel* snapshot's outputs: one netlink
  // round trip ships the inputs down and the outputs back (§4.2).
  const std::size_t bytes = inputs.size() * tuned.input_size() * 8;
  netlink_.round_trip(
      bytes, bytes, 0.0, kernelsim::task_category::user_nn,
      [this, tuned, inputs = std::move(inputs)](double) {
        const auto active_now = core_.router().active(config_.model);
        const auto* snap =
            active_now ? core_.manager().get(*active_now) : nullptr;
        if (!snap) return;
        last_decision_ = evaluator_.evaluate(tuned, snap->program, inputs);
        trace_.emit(
            sim_.now(), trace::event_type::sync_decision,
            (last_decision_.converged ? 1u : 0u) |
                (last_decision_.necessary ? 2u : 0u),
            static_cast<std::uint64_t>(last_decision_.fidelity.min_loss * 1e9));
        fid_min_.set(last_decision_.fidelity.min_loss);
        fid_mean_.set(last_decision_.fidelity.mean_loss);
        fid_max_.set(last_decision_.fidelity.max_loss);
        if (monitor_) {
          check_observation obs;
          obs.decision = last_decision_;
          obs.threshold = config_.sync.alpha *
                          (config_.sync.output_max - config_.sync.output_min);
          obs.stability_spread = evaluator_.stability_spread();
          obs.stability_samples = evaluator_.stability_samples();
          obs.stability_window = config_.sync.stability_window;
          obs.cache_size = core_.router().cache_size();
          obs.cache_capacity = core_.router().cache_capacity();
          obs.version = version_;
          monitor_->on_sync_check(sim_.now(), obs);
        }
        if (!last_decision_.converged) {
          skip_conv_.inc();
          return;
        }
        if (!last_decision_.necessary) {
          skip_nec_.inc();
          return;
        }
        // Full §3.1 pipeline on the tuned model.
        install_snapshot(codegen::generate_snapshot(
            tuned, config_.quantizer, config_.model_name, ++version_));
      });
}

void userspace_service::register_metrics(metrics::registry& reg,
                                         const std::string& prefix) {
  reg.register_counter(prefix + ".service.batches", batches_);
  reg.register_counter(prefix + ".service.snapshot_updates", updates_);
  reg.register_counter(prefix + ".service.sync_checks", checks_);
  reg.register_counter(prefix + ".service.skipped_not_converged", skip_conv_);
  reg.register_counter(prefix + ".service.skipped_not_necessary", skip_nec_);
  reg.register_gauge(prefix + ".service.fidelity.min", fid_min_);
  reg.register_gauge(prefix + ".service.fidelity.mean", fid_mean_);
  reg.register_gauge(prefix + ".service.fidelity.max", fid_max_);
}

void userspace_service::register_monitor(adaptation_monitor& monitor) {
  if (monitor.enabled()) monitor_ = &monitor;
}

void userspace_service::register_trace(trace::collector& col,
                                       const std::string& prefix) {
  col.attach(trace_, prefix + ".service");
}

void userspace_service::install_snapshot(codegen::snapshot snap) {
  const std::size_t param_bytes = snap.program.parameter_bytes();
  const bool is_initial = snap.version <= 1;
  const auto prev_active = core_.router().active(config_.model);
  // Ship parameters into the kernel, pay the install cost, then register
  // the module and stage it as standby (no lock), then flip the pointer.
  netlink_.send_to_kernel(param_bytes, [this, snap = std::move(snap),
                                        param_bytes, prev_active,
                                        is_initial]() mutable {
    const double install_seconds =
        static_cast<double>(param_bytes) * costs_.snapshot_install_per_byte;
    cpu_.submit(
        kernelsim::task_category::other, install_seconds,
        [this, snap = std::move(snap), prev_active, is_initial,
         install_seconds]() mutable {
          const std::uint64_t version = snap.version;
          const auto id = core_.register_model(std::move(snap));
          trace_.emit(sim_.now(), trace::event_type::snapshot_install, id,
                      version);
          core_.install_standby(config_.model, id);
          // The demoted snapshot's pinned-flow count must be read before the
          // flip retires it (refs only drain afterwards).
          const std::uint64_t prev_pinned =
              prev_active ? core_.manager().refcount(*prev_active) : 0;
          // Shadow-gated flip: with shadowing configured and an incumbent
          // active, the divergence evidence decides.  A block leaves the
          // candidate as standby — it keeps accumulating shadow samples and
          // the next install (after more retraining) gets a fresh trial.
          last_gate_ = core_.switch_active(config_.model);
          if (last_gate_.gate_blocked) {
            gate_blocked_.inc();
            return;
          }
          const double switch_wait = last_gate_.switch_wait;
          // The initial deployment is not a "snapshot update" (§3.3 counts
          // only conservative re-syncs).
          if (!is_initial) updates_.inc();
          if (monitor_) {
            const double params =
                static_cast<double>(user_.parameter_count());
            install_observation obs;
            obs.version = version;
            obs.model = id;
            obs.logical_model = config_.model;
            obs.initial = is_initial;
            obs.freeze_seconds = params * costs_.pipeline_freeze_per_param;
            obs.quantize_seconds = params * costs_.pipeline_quantize_per_param;
            obs.translate_seconds =
                params * costs_.pipeline_translate_per_param;
            obs.compile_seconds = costs_.pipeline_compile_fixed +
                                  params * costs_.pipeline_compile_per_param;
            obs.install_seconds = install_seconds;
            obs.switch_wait_seconds = switch_wait;
            // v1 ships before any sync check; its verdict fields stay zero.
            if (!is_initial) obs.fidelity = last_decision_.fidelity;
            obs.prev_model = prev_active.value_or(0);
            obs.prev_pinned = prev_pinned;
            monitor_->on_snapshot_install(sim_.now(), obs);
          }
          // The demoted snapshot is removed once its flow-cache refs drain;
          // opportunistically try now.  Under probation the module is
          // retained instead — it is the rollback target — and removal
          // becomes the close-out of the *previous* hold, which this newer
          // switch supersedes.
          if (config_.probation) {
            if (probation_prev_) core_.manager().try_remove(*probation_prev_);
            probation_prev_ = prev_active;
            const auto* prev_snap =
                prev_active ? core_.manager().get(*prev_active) : nullptr;
            probation_prev_version_ =
                prev_snap != nullptr ? prev_snap->version : 0;
          } else if (prev_active) {
            core_.manager().try_remove(*prev_active);
          }
        });
  });
}

bool userspace_service::rollback_last() {
  if (!config_.probation || !probation_prev_) return false;
  const model_id prev = *probation_prev_;
  const std::uint64_t prev_version = probation_prev_version_;
  probation_prev_.reset();
  probation_prev_version_ = 0;
  const auto regressed = core_.router().active(config_.model);
  const auto* regressed_snap =
      regressed ? core_.manager().get(*regressed) : nullptr;
  const std::uint64_t regressed_version =
      regressed_snap != nullptr ? regressed_snap->version : 0;
  const gate_result r = core_.rollback(config_.model, prev);
  if (!r.admitted) return false;  // the target unloaded out from under us
  rollbacks_.inc();
  trace_.emit(sim_.now(), trace::event_type::snapshot_rollback,
              (static_cast<std::uint64_t>(config_.model) << 32) |
                  (prev_version & 0xffffffffULL),
              regressed_version);
  // The regressed module unloads once its pinned flows drain.
  if (regressed && *regressed != prev) core_.manager().try_remove(*regressed);
  return true;
}

}  // namespace lf::core
