// NN synchronization evaluation (§3.3): decide whether to push the tuned
// userspace model into the kernel.
//
// Correctness: the snapshot must come from a *converged* model — LiteFlow
// watches a user-defined stability metric (training loss / mean reward) and
// declares convergence when its recent relative spread is small.  Updating
// from a mid-exploration model would install garbage (Fig. 8).
//
// Necessity: updates interfere with the datapath (locks, §3.4), so sync
// only when the models have drifted apart: the *minimum* fidelity loss
// L(x) = |f'(x) - f(x)| over the batch must exceed alpha * (Omax - Omin)
// (the paper sets alpha to 5%).
#pragma once

#include <deque>

#include "quant/fidelity.hpp"

namespace lf::core {

struct sync_config {
  double alpha = 0.05;               ///< necessity threshold factor
  double output_min = -1.0;          ///< Omin of the NN
  double output_max = 1.0;           ///< Omax of the NN
  double stability_threshold = 0.25; ///< relative spread for convergence
  std::size_t stability_window = 10; ///< metric samples considered
};

struct sync_decision {
  bool converged = false;
  bool necessary = false;
  quant::fidelity_report fidelity{};
  bool should_update() const noexcept { return converged && necessary; }
};

class sync_evaluator {
 public:
  explicit sync_evaluator(sync_config config);

  /// Feed the user metric (NN Evaluation Interface, stability value).
  void record_stability(double value);

  /// Correctness check only.
  bool converged() const;

  /// Relative spread (max - min) / max(|max|, |min|, eps) of the recorded
  /// stability samples; 0 with fewer than two samples.  converged() is
  /// "window full && spread below the stability threshold".  Normalizing by
  /// the extreme magnitude (not |mean|) keeps convergence declarable when
  /// the metric oscillates tightly around zero.
  double stability_spread() const;

  /// Stability samples currently held (<= config().stability_window).
  std::size_t stability_samples() const noexcept { return history_.size(); }

  /// Full decision for a candidate update.
  sync_decision evaluate(const nn::mlp& tuned,
                         const quant::quantized_mlp& installed,
                         std::span<const std::vector<double>> batch_inputs) const;

  /// Clear stability history (e.g. after an environment change restarts
  /// exploration).
  void reset_stability();

  const sync_config& config() const noexcept { return config_; }

 private:
  sync_config config_;
  std::deque<double> history_;
};

}  // namespace lf::core
