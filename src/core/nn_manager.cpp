#include "core/nn_manager.hpp"

#include <stdexcept>

namespace lf::core {

model_id nn_manager::register_model(codegen::snapshot snap) {
  for (const auto& [id, e] : models_) {
    if (e.snap.name == snap.name && e.snap.version == snap.version) {
      throw std::invalid_argument{"nn_manager: duplicate model " + snap.name +
                                  " v" + std::to_string(snap.version)};
    }
  }
  const model_id id = next_id_++;
  models_.emplace(id, entry{std::move(snap), 0});
  return id;
}

bool nn_manager::try_remove(model_id id) {
  const auto it = models_.find(id);
  if (it == models_.end()) return false;
  if (it->second.refcount != 0) {
    it->second.pending_removal = true;  // unload when the last ref drops
    return false;
  }
  models_.erase(it);
  if (on_remove_) on_remove_(id);
  return true;
}

const codegen::snapshot* nn_manager::get(model_id id) const {
  const auto it = models_.find(id);
  return it == models_.end() ? nullptr : &it->second.snap;
}

void nn_manager::add_ref(model_id id) {
  const auto it = models_.find(id);
  if (it == models_.end()) {
    refcount_errors_.inc();
    return;
  }
  ++it->second.refcount;
}

void nn_manager::release(model_id id) {
  const auto it = models_.find(id);
  if (it == models_.end()) {
    // A release can legitimately arrive after a deferred unload erased the
    // module (the flow cache drains asynchronously), but the caller still
    // held a ref when that happened only if release itself erased it — an
    // id we have never seen or have fully unloaded means the pairing is
    // broken somewhere.  Count it; don't crash the "kernel".
    refcount_errors_.inc();
    return;
  }
  if (it->second.refcount == 0) {
    refcount_errors_.inc();  // would-be wraparound, refcount left at 0
    return;
  }
  --it->second.refcount;
  if (it->second.refcount == 0 && it->second.pending_removal) {
    models_.erase(it);
    if (on_remove_) on_remove_(id);
  }
}

void nn_manager::register_metrics(metrics::registry& reg,
                                  const std::string& prefix) {
  reg.register_counter(prefix + ".refcount_errors", refcount_errors_);
}

std::uint64_t nn_manager::refcount(model_id id) const {
  const auto it = models_.find(id);
  return it == models_.end() ? 0 : it->second.refcount;
}

std::optional<model_id> nn_manager::find(std::string_view name,
                                         std::uint64_t version) const {
  for (const auto& [id, e] : models_) {
    if (e.snap.name == name && e.snap.version == version) return id;
  }
  return std::nullopt;
}

std::optional<model_id> nn_manager::find_latest(std::string_view name) const {
  std::optional<model_id> best;
  std::uint64_t best_version = 0;
  for (const auto& [id, e] : models_) {
    if (e.snap.name == name &&
        (!best || e.snap.version >= best_version)) {
      best = id;
      best_version = e.snap.version;
    }
  }
  return best;
}

}  // namespace lf::core
