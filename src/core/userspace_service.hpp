// LiteFlow userspace service (§4.1).
//
// Accepts a user object implementing the three paper interfaces —
//   * NN Freezing Interface      -> freeze_model()
//   * NN Evaluation Interface    -> stability_value() / evaluate()
//   * NN Online Adaptation Intf. -> adapt()
// — and drives the slow path: consume each kernel batch, run online
// adaptation (paying userspace CPU on the shared core), check the sync
// evaluator, and when an update is both correct and necessary, run the
// full snapshot pipeline (freeze -> quantize -> translate -> compile) and
// install it through the standby slot + pointer switch (§3.4).
#pragma once

#include <memory>
#include <string>

#include "core/adaptation_monitor.hpp"
#include "core/batch_collector.hpp"
#include "core/liteflow_core.hpp"
#include "core/sync_evaluator.hpp"
#include "nn/serialize.hpp"
#include "quant/quantizer.hpp"

namespace lf::core {

/// The user-implemented side of LiteFlow (a Python class in the paper).
class adaptation_interface {
 public:
  virtual ~adaptation_interface() = default;

  /// NN Freezing Interface: persist the current model; returns the
  /// serialized form (the paper returns a file path; we return content).
  virtual std::string freeze_model() = 0;

  /// NN Evaluation Interface, part 1: a stability metric LiteFlow watches
  /// for convergence (training loss, mean episode reward, ...).
  virtual double stability_value() const = 0;

  /// NN Evaluation Interface, part 2: userspace model output for a given
  /// input (fidelity-loss computation).
  virtual std::vector<double> evaluate(std::span<const double> input) const = 0;

  /// NN Online Adaptation Interface: tune the model with one batch.
  virtual void adapt(std::span<const train_sample> batch) = 0;

  /// Parameter count (for training-cost accounting).
  virtual std::size_t parameter_count() const = 0;
};

struct service_config {
  std::string model_name = "model";
  quant::quantizer_config quantizer{};
  sync_config sync{};
  /// Evaluate fidelity on at most this many batch samples.
  std::size_t fidelity_samples = 32;
  /// Allow disabling adaptation entirely (the paper's N-O-A ablations).
  bool adaptation_enabled = true;
  /// Logical model this service adapts (one service per model; N services
  /// share one liteflow_core).  Default keeps single-model wiring intact.
  model_key model = k_default_model;
  /// Scheduling weight when a service_mux arbitrates CPU-saturated training
  /// across services (higher wins; ties admit everyone).
  int priority = 0;
  /// Probation hold (gate-aware rollback): retain the demoted module after
  /// each admitted switch instead of removing it immediately, so
  /// rollback_last() can re-promote it if live evidence condemns the new
  /// active.  The hold closes — and the retained module unloads — when the
  /// *next* install supersedes it.  Off preserves the historical
  /// remove-on-switch behavior bit for bit.
  bool probation = false;
};

class userspace_service {
 public:
  userspace_service(sim::simulation& sim, kernelsim::cpu_model& cpu,
                    const kernelsim::cost_model& costs,
                    kernelsim::crossspace_channel& netlink,
                    liteflow_core& core, batch_collector& collector,
                    adaptation_interface& user, service_config config);

  /// Generate and install the initial snapshot (v1) and hook the collector.
  void start();

  /// Statistics.
  std::uint64_t batches_processed() const noexcept { return batches_.value(); }
  std::uint64_t snapshot_updates() const noexcept { return updates_.value(); }
  std::uint64_t update_checks() const noexcept { return checks_.value(); }
  std::uint64_t skipped_not_converged() const noexcept {
    return skip_conv_.value();
  }
  std::uint64_t skipped_not_necessary() const noexcept {
    return skip_nec_.value();
  }
  /// Batches whose training was refused by the admission hook (CPU
  /// saturation arbitration; see set_admission).
  std::uint64_t deferred_batches() const noexcept { return deferred_.value(); }
  /// Snapshot installs whose switch the shadow-divergence gate refused; the
  /// candidate stays standby and keeps accumulating evidence.
  std::uint64_t gate_blocked_switches() const noexcept {
    return gate_blocked_.value();
  }
  /// Switches undone by rollback_last().
  std::uint64_t rollbacks() const noexcept { return rollbacks_.value(); }
  /// The probation hold's rollback target, nullopt when no hold is open
  /// (probation off, no admitted switch yet, or already rolled back).
  std::optional<model_id> probation_prev() const noexcept {
    return probation_prev_;
  }
  std::uint64_t current_version() const noexcept { return version_; }
  const sync_decision& last_decision() const noexcept { return last_decision_; }
  const gate_result& last_gate() const noexcept { return last_gate_; }
  sync_evaluator& evaluator() noexcept { return evaluator_; }
  const service_config& config() const noexcept { return config_; }

  /// Admission hook consulted before each batch's training is submitted to
  /// the shared CPU.  Returning false defers that batch (counted, dropped —
  /// the kernel will deliver fresher samples anyway).  Installed by
  /// service_mux; empty (the default) admits everything.
  void set_admission(std::function<bool()> admit) {
    admission_ = std::move(admit);
  }

  /// Undo the last admitted switch: re-promote the probation hold's retained
  /// module through liteflow_core::rollback and unload the regressed one.
  /// Returns false (a counted no-op at the core layer is not reached) when
  /// probation is off or no hold is open.  The version counter stays
  /// monotonic — the next install ships a fresh version, never reuses the
  /// regressed one.
  bool rollback_last();

  /// Publish slow-path accounting (batches, snapshot updates, sync-evaluator
  /// accept/reject split) plus the last verdict's fidelity gauges
  /// "<prefix>.service.fidelity.{min,mean,max}" under "<prefix>.service.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the adaptation health monitor.  Stores the pointer only when the
  /// monitor is enabled, so a disabled monitor costs one null check per hook
  /// site and a fixed-seed run is bit-for-bit unaffected (the monitor is
  /// strictly read-only).
  void register_monitor(adaptation_monitor& monitor);

  /// Attach the slow-path ring to a trace collector under
  /// "<prefix>.service".  Emits one sync_decision per evaluator verdict
  /// (a: bit0 converged, bit1 necessary; b: min fidelity loss in 1e-9
  /// units) and snapshot_install when a new version ships to the kernel.
  /// The sync_evaluator itself stays clock-free — this service is the
  /// clock-bearing caller that stamps its verdicts, mirroring how
  /// nn_manager's installs are stamped by the router.
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  void on_batch(std::vector<train_sample> batch);
  void maybe_update(std::span<const train_sample> batch);
  void install_snapshot(codegen::snapshot snap);
  double training_cost(std::size_t samples) const noexcept;

  sim::simulation& sim_;
  kernelsim::cpu_model& cpu_;
  const kernelsim::cost_model& costs_;
  kernelsim::crossspace_channel& netlink_;
  liteflow_core& core_;
  batch_collector& collector_;
  adaptation_interface& user_;
  service_config config_;
  sync_evaluator evaluator_;
  std::uint64_t version_ = 0;
  adaptation_monitor* monitor_ = nullptr;  ///< non-null only when enabled
  std::function<bool()> admission_;        ///< empty = always admit
  metrics::counter batches_;
  metrics::counter updates_;
  metrics::counter checks_;
  metrics::counter skip_conv_;
  metrics::counter skip_nec_;
  metrics::counter deferred_;
  metrics::counter gate_blocked_;
  metrics::counter rollbacks_;
  /// Open probation hold: the module demoted by the last admitted switch,
  /// retained as the rollback target until the next install closes it out.
  std::optional<model_id> probation_prev_;
  std::uint64_t probation_prev_version_ = 0;
  gate_result last_gate_{};
  metrics::gauge fid_min_;
  metrics::gauge fid_mean_;
  metrics::gauge fid_max_;
  trace::ring trace_{"service"};
  sync_decision last_decision_{};
};

}  // namespace lf::core
