// NN manager (§4.2, "LiteFlow Core Module").
//
// Kernel-side registry of installed snapshot modules.  Mirrors the paper's
// semantics: snapshots are installed via lf_register_model (insmod of a
// generated .ko), each carries a reference count that the flow cache
// increments while flows are pinned to it, and a module may only be removed
// once its reference count drops to zero.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "codegen/snapshot.hpp"
#include "util/metrics.hpp"

namespace lf::core {

using model_id = std::uint64_t;

class nn_manager {
 public:
  /// lf_register_model: install a generated snapshot.  Returns its id.
  /// Throws if a model with the same name+version is already installed.
  model_id register_model(codegen::snapshot snap);

  /// Remove a module.  Fails (returns false) while the reference count is
  /// nonzero or the id is unknown — the kernel may not unload a module that
  /// flows still use.  A failed removal marks the module for deferred
  /// unload: it is erased automatically once its last reference drops.
  bool try_remove(model_id id);

  /// Executable program lookup; nullptr if not installed.
  const codegen::snapshot* get(model_id id) const;

  /// Refcount a module.  An unknown id on add_ref, or a release against an
  /// unknown or already-zero id, is a *counted* diagnostic, never a throw or
  /// a wraparound: the kernel analogue (module_put on a stale handle) must
  /// not panic the box, but it must not pass silently either — the count is
  /// the bug report.  The refcount itself is left untouched on error.
  void add_ref(model_id id);
  void release(model_id id);
  std::uint64_t refcount(model_id id) const;

  /// Total mis-paired refcount operations observed (see add_ref/release).
  std::uint64_t refcount_errors() const noexcept {
    return refcount_errors_.value();
  }

  /// Opt-in registration of "nn.refcount_errors" (and nothing else).  Kept
  /// separate from the router/service register_metrics paths so existing
  /// fast-seed telemetry snapshots stay byte-identical.
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  std::size_t installed_count() const noexcept { return models_.size(); }

  /// Find by name (latest version); nullopt if absent.
  std::optional<model_id> find_latest(std::string_view name) const;

  /// Find an exact name + version; nullopt if absent.
  std::optional<model_id> find(std::string_view name,
                               std::uint64_t version) const;

  /// Observer invoked after a module actually unloads (immediate try_remove
  /// or the deferred last-reference drop).  One hook; empty clears it.
  void set_removal_hook(std::function<void(model_id)> hook) {
    on_remove_ = std::move(hook);
  }

 private:
  struct entry {
    codegen::snapshot snap;
    std::uint64_t refcount = 0;
    bool pending_removal = false;
  };
  std::map<model_id, entry> models_;
  model_id next_id_ = 1;
  std::function<void(model_id)> on_remove_;
  metrics::counter refcount_errors_;
};

}  // namespace lf::core
