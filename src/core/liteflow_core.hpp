// LiteFlow core module facade (§4.2, Table 1).
//
// Bundles the NN manager, the inference router and the collector/enforcer
// registry, and exposes the four paper APIs:
//   lf_register_model  -> register_model()
//   lf_register_io     -> register_io()   (validates NN shape compatibility)
//   lf_unregister_io   -> unregister_io()
//   lf_query_model     -> query_model()   (unified inference interface)
// query_model runs on the simulated kernel CPU: the caller's callback fires
// after the snapshot's MAC count worth of integer work has been serviced,
// so inference contends with packet processing exactly as in a real kernel.
#pragma once

#include <functional>
#include <string>

#include "core/adaptation_monitor.hpp"
#include "core/inference_router.hpp"
#include "core/nn_manager.hpp"
#include "kernelsim/cost_model.hpp"
#include "kernelsim/cpu.hpp"

namespace lf::core {

using io_handle = std::uint64_t;

struct io_module_spec {
  std::string name;
  std::size_t input_size = 0;
  std::size_t output_size = 0;
};

class liteflow_core {
 public:
  liteflow_core(sim::simulation& sim, kernelsim::cpu_model& cpu,
                const kernelsim::cost_model& costs, router_config rconfig = {});

  nn_manager& manager() noexcept { return manager_; }
  inference_router& router() noexcept { return router_; }

  /// lf_register_model.
  model_id register_model(codegen::snapshot snap);

  /// lf_unregister_model: the generated module's exit handler calls this on
  /// rmmod.  Returns false if the model is unknown or still referenced (it
  /// is then unloaded automatically once its last reference drops).
  bool unregister_model(std::string_view name, std::uint64_t version);

  /// lf_register_io: attach an input-collector/output-enforcer module.
  /// Throws std::invalid_argument if an installed active NN disagrees with
  /// the declared input/output sizes (the API's compatibility check).
  io_handle register_io(io_module_spec spec);

  /// lf_unregister_io.
  bool unregister_io(io_handle handle);

  /// lf_query_model (asynchronous): integer-domain inference through the
  /// active snapshot for `flow`, honoring the flow cache.  `done` receives
  /// the output vector; it fires with an empty vector if no model is active
  /// or the input size mismatches.
  void query_model(netsim::flow_id_t flow, std::vector<fp::s64> input,
                   std::function<void(std::vector<fp::s64>)> done);

  /// Synchronous variant: performs the same routing and accounting but
  /// returns immediately (used by modules that already run in CPU-gated
  /// context and by tests).  CPU cost is still charged (fire-and-forget).
  std::vector<fp::s64> query_model_sync(netsim::flow_id_t flow,
                                        std::span<const fp::s64> input);

  /// io_scale (the quantizer's C) of the active snapshot, 0 if none.
  fp::s64 active_io_scale() const;

  std::uint64_t queries() const noexcept { return queries_.value(); }
  std::size_t io_module_count() const noexcept { return io_modules_.size(); }

  /// Publish query count plus the router/cache/lock telemetry under
  /// "<prefix>.core.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the core rings to a trace collector: inference_begin/end spans
  /// under "<prefix>.core" (begin at query submission, end when the CPU
  /// services the inference — the gap is queueing + MAC service time) plus
  /// the router's snapshot/cache/lock rings.
  void register_trace(trace::collector& col, const std::string& prefix);

  /// Attach the adaptation health monitor: wires the nn_manager removal
  /// hook so the monitor's lifecycle ledger sees module unloads (deferred
  /// last-reference drops included).  No-op for a disabled monitor.
  void register_monitor(adaptation_monitor& monitor);

 private:
  double query_cost(const codegen::snapshot& snap) const noexcept;

  sim::simulation& sim_;
  kernelsim::cpu_model& cpu_;
  const kernelsim::cost_model& costs_;
  nn_manager manager_;
  inference_router router_;
  std::map<io_handle, io_module_spec> io_modules_;
  io_handle next_io_ = 1;
  metrics::counter queries_;
  trace::ring trace_{"core"};
  /// Reused across queries so the datapath inference allocates nothing
  /// beyond the caller-visible output vector (sim is single-threaded).
  mutable quant::inference_scratch scratch_;
};

}  // namespace lf::core
