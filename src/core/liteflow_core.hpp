// LiteFlow core module facade (§4.2, Table 1).
//
// Bundles the NN manager, the inference router and the collector/enforcer
// registry, and exposes the four paper APIs:
//   lf_register_model  -> register_model()
//   lf_register_io     -> register_io()   (validates NN shape compatibility)
//   lf_unregister_io   -> unregister_io()
//   lf_query_model     -> query_model()   (unified inference interface)
// query_model runs on the simulated kernel CPU: the caller's callback fires
// after the snapshot's MAC count worth of integer work has been serviced,
// so inference contends with packet processing exactly as in a real kernel.
//
// Multi-model: every query/install/switch API takes an optional leading
// `model_key`; the keyless forms serve model 0, so single-model harnesses
// are source- and behavior-identical.  All models share one nn_manager, one
// router (one flow cache, one switch lock) and one kernel CPU.
//
// Shadow scoring: with a nonzero `shadow_config.sample_rate`, queries on a
// deterministic sampled slice of flows also run the model's *standby*
// snapshot, charge its CPU cost (shadowing is not free — that is the
// point), and accumulate the output divergence vs the active.  switch_active
// consults that evidence: a standby whose divergence exceeds the threshold
// (or that has not been measured enough) is refused, and the refusal is
// reported to the adaptation monitor's gate ledger.  A model with no active
// yet always admits — there is nothing to diverge from.
#pragma once

#include <functional>
#include <string>

#include "core/adaptation_monitor.hpp"
#include "core/inference_router.hpp"
#include "core/model_domain.hpp"
#include "core/nn_manager.hpp"
#include "kernelsim/cost_model.hpp"
#include "kernelsim/cpu.hpp"

namespace lf::core {

using io_handle = std::uint64_t;

struct io_module_spec {
  std::string name;
  std::size_t input_size = 0;
  std::size_t output_size = 0;
};

/// Outcome of one (possibly gated) switch request.
struct gate_result {
  bool admitted = false;      ///< the active/standby flip actually happened
  bool had_standby = false;   ///< false: the request was a counted no-op
  bool gate_blocked = false;  ///< standby present but shadow gate refused
  double switch_wait = 0.0;   ///< lock wait of the flip (0 when not flipped)
  shadow_verdict verdict;     ///< the evidence the gate ruled on
};

class liteflow_core {
 public:
  liteflow_core(sim::simulation& sim, kernelsim::cpu_model& cpu,
                const kernelsim::cost_model& costs, router_config rconfig = {});

  nn_manager& manager() noexcept { return manager_; }
  inference_router& router() noexcept { return router_; }

  /// lf_register_model.
  model_id register_model(codegen::snapshot snap);

  /// lf_unregister_model: the generated module's exit handler calls this on
  /// rmmod.  Returns false if the model is unknown or still referenced (it
  /// is then unloaded automatically once its last reference drops).
  bool unregister_model(std::string_view name, std::uint64_t version);

  /// lf_register_io: attach an input-collector/output-enforcer module.
  /// Throws std::invalid_argument if an installed active NN disagrees with
  /// the declared input/output sizes (the API's compatibility check).
  io_handle register_io(io_module_spec spec);

  /// lf_unregister_io.
  bool unregister_io(io_handle handle);

  /// Install a snapshot as one logical model's standby.  Resets that
  /// model's shadow evidence: a new candidate starts unproven.
  void install_standby(model_id id) { install_standby(k_default_model, id); }
  void install_standby(model_key model, model_id id);

  /// Shadow-gated switch (see file header for the protocol).  The gate only
  /// engages when shadowing is configured AND the model already has an
  /// active snapshot; otherwise this is the router's plain flip.
  gate_result switch_active() { return switch_active(k_default_model); }
  gate_result switch_active(model_key model);

  /// Gate-aware rollback: re-promote `prev` (the module that was active
  /// before the last switch and that the caller kept registered through its
  /// probation window).  Installs `prev` as standby and flips it active
  /// through the router's ordinary one-pointer exchange — never consulting
  /// the shadow gate, because live evidence already condemned the incumbent.
  /// The demoted (regressed) module stays registered; removing it is the
  /// caller's close-out, exactly like an admitted switch.  Recorded in the
  /// monitor's gate ledger with gate_record::rollback set.  Returns an
  /// unadmitted no-op result when `prev` is no longer registered.
  gate_result rollback(model_id prev) {
    return rollback(k_default_model, prev);
  }
  gate_result rollback(model_key model, model_id prev);

  /// lf_query_model (asynchronous): integer-domain inference through the
  /// active snapshot for `flow`, honoring the flow cache.  `done` receives
  /// the output vector; it fires with an empty vector if no model is active
  /// or the input size mismatches.
  void query_model(netsim::flow_id_t flow, std::vector<fp::s64> input,
                   std::function<void(std::vector<fp::s64>)> done) {
    query_model(k_default_model, flow, std::move(input), std::move(done));
  }
  void query_model(model_key model, netsim::flow_id_t flow,
                   std::vector<fp::s64> input,
                   std::function<void(std::vector<fp::s64>)> done);

  /// Synchronous variant: performs the same routing and accounting but
  /// returns immediately (used by modules that already run in CPU-gated
  /// context and by tests).  CPU cost is still charged (fire-and-forget).
  std::vector<fp::s64> query_model_sync(netsim::flow_id_t flow,
                                        std::span<const fp::s64> input) {
    return query_model_sync(k_default_model, flow, input);
  }
  std::vector<fp::s64> query_model_sync(model_key model,
                                        netsim::flow_id_t flow,
                                        std::span<const fp::s64> input);

  /// io_scale (the quantizer's C) of a model's active snapshot, 0 if none.
  fp::s64 active_io_scale() const { return active_io_scale(k_default_model); }
  fp::s64 active_io_scale(model_key model) const;

  /// Shadow scoring configuration (applies to every model; per-model state
  /// is the scorer, not the knobs).  Takes effect for subsequent queries.
  void set_shadow_config(const shadow_config& cfg) { shadow_ = cfg; }
  const shadow_config& shadow() const noexcept { return shadow_; }

  /// Current shadow evidence for one model (zero-valued if never sampled).
  shadow_verdict shadow_evidence(model_key model) const;

  std::uint64_t queries() const noexcept { return queries_.value(); }
  /// Standby inferences executed on the shadow slice (0 when rate is 0).
  std::uint64_t shadow_inferences() const noexcept {
    return shadow_inferences_.value();
  }
  /// Switch requests refused by the divergence gate.
  std::uint64_t gate_blocks() const noexcept { return gate_blocks_.value(); }
  std::size_t io_module_count() const noexcept { return io_modules_.size(); }

  /// Publish query count plus the router/cache/lock telemetry under
  /// "<prefix>.core.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Opt-in shadow counters ("<prefix>.core.shadow.{inferences,gate_blocks}"
  /// + "<prefix>.nn.refcount_errors").  Separate from register_metrics so
  /// single-model fast-seed telemetry stays byte-identical.
  void register_shadow_metrics(metrics::registry& reg,
                               const std::string& prefix);

  /// Attach the core rings to a trace collector: inference_begin/end spans
  /// under "<prefix>.core" (begin at query submission, end when the CPU
  /// services the inference — the gap is queueing + MAC service time) plus
  /// the router's snapshot/cache/lock rings.
  void register_trace(trace::collector& col, const std::string& prefix);

  /// Attach the adaptation health monitor: wires the nn_manager removal
  /// hook so the monitor's lifecycle ledger sees module unloads (deferred
  /// last-reference drops included), and routes shadow-gate outcomes into
  /// its gate ledger.  No-op for a disabled monitor.
  void register_monitor(adaptation_monitor& monitor);

 private:
  double query_cost(const codegen::snapshot& snap) const noexcept;
  /// The standby snapshot to shadow `(model, flow)` with, or nullptr when
  /// shadowing is off, the flow is outside the sample, or no standby exists.
  const codegen::snapshot* shadow_target(model_key model,
                                         netsim::flow_id_t flow,
                                         model_id& out_id) const;
  void record_shadow(model_key model, const codegen::snapshot& active_snap,
                     std::span<const fp::s64> active_out,
                     const codegen::snapshot& shadow_snap,
                     std::span<const fp::s64> input);

  sim::simulation& sim_;
  kernelsim::cpu_model& cpu_;
  const kernelsim::cost_model& costs_;
  nn_manager manager_;
  inference_router router_;
  std::map<io_handle, io_module_spec> io_modules_;
  io_handle next_io_ = 1;
  shadow_config shadow_;
  std::map<model_key, shadow_scorer> scorers_;
  adaptation_monitor* monitor_ = nullptr;
  metrics::counter queries_;
  metrics::counter shadow_inferences_;
  metrics::counter gate_blocks_;
  trace::ring trace_{"core"};
  /// Reused across queries so the datapath inference allocates nothing
  /// beyond the caller-visible output vector (sim is single-threaded).
  mutable quant::inference_scratch scratch_;
  /// Shadow output staging (same zero-allocation discipline).
  std::vector<fp::s64> shadow_out_;
};

}  // namespace lf::core
