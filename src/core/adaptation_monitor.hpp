// Adaptation health monitor (observability over §3.3/§3.4).
//
// The sync evaluator decides *whether* to push a snapshot; this component
// records *why* — per-check fidelity drift, stability-metric spread,
// snapshot staleness and flow-cache pressure — and evaluates a small set of
// declarative watchdog rules against that state:
//
//   adaptation_stuck    drift above the necessity threshold while the
//                       stability metric refuses to converge, for N
//                       consecutive sync checks.  The classic "stuck
//                       mid-exploration" failure of adaptation loops: the
//                       kernel keeps serving a model the slow path already
//                       knows is wrong.
//   flow_cache_pressure flow-cache occupancy at or above a high-watermark
//                       fraction of capacity (evictions about to churn).
//   stale_snapshot      the installed snapshot is older than a configured
//                       bound while the last verdict still said an update
//                       is necessary — the datapath is running stale code.
//
// Alerts are edge-triggered: a rule fires once when its condition becomes
// true and re-arms only after the condition clears, so alert counts stay
// proportional to distinct incidents, not to check frequency.
//
// The monitor also keeps the snapshot lifecycle ledger: one record per
// installed version (install time, estimated pipeline stage costs, switch
// lock wait, fidelity at install, flows pinned on the retiring snapshot and
// its drain time).  The ledger is what the per-run HTML flight report
// (util/run_report.hpp) renders as a table.
//
// Contract: the monitor is strictly read-only and attach-at-wiring, exactly
// like metrics::registry and trace::collector.  Components hold a pointer
// that stays null unless an *enabled* monitor is registered, so a disabled
// monitor costs one branch per hook site and a fixed-seed run produces
// bit-for-bit identical results with or without it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync_evaluator.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"
#include "util/trace.hpp"

namespace lf::core {

struct monitor_config {
  bool enabled = false;
  /// Consecutive sync checks with (necessary && !converged) before the
  /// adaptation_stuck alert fires.
  std::size_t stuck_checks = 5;
  /// Flow-cache occupancy fraction (size / capacity) that raises
  /// flow_cache_pressure.
  double cache_high_watermark = 0.85;
  /// Snapshot age (seconds since install) that, combined with a drifting
  /// last verdict, raises stale_snapshot.
  double stale_snapshot_age = 5.0;

  /// Environment default: LF_MONITOR (nonzero enables).
  static monitor_config from_env();
};

enum class alert_kind : std::uint8_t {
  adaptation_stuck = 0,
  flow_cache_pressure,
  stale_snapshot,
};

inline constexpr std::size_t alert_kind_count = 3;

std::string_view to_string(alert_kind k) noexcept;

/// One fired watchdog alert.
struct alert_record {
  double t = 0.0;
  alert_kind kind{};
  /// Rule-specific magnitude: consecutive stuck checks, occupancy fraction,
  /// or snapshot age in seconds.
  double value = 0.0;
  /// Installed snapshot version when the alert fired.
  std::uint64_t version = 0;
};

/// One row of the snapshot lifecycle ledger.  Stage costs are *accounting
/// estimates* derived from the cost model and the model's parameter count —
/// they are never charged to the simulated CPU (the §3.1 pipeline runs out
/// of band in the paper too), so attaching the monitor cannot perturb a run.
struct snapshot_record {
  std::uint64_t version = 0;
  std::uint64_t model = 0;  ///< nn_manager model id
  /// Logical model (core::model_key) this snapshot serves; 0 for every
  /// single-model deployment.
  std::uint32_t logical_model = 0;
  bool initial = false;     ///< v1 bootstrap deployment (not a §3.3 re-sync)
  double install_time = 0.0;

  // Estimated §3.1 pipeline stage costs, seconds.
  double freeze_seconds = 0.0;
  double quantize_seconds = 0.0;
  double translate_seconds = 0.0;
  double compile_seconds = 0.0;
  /// Actual simulated standby-install cost (parameter copy into the kernel).
  double install_seconds = 0.0;
  /// Lock wait of the active/standby pointer flip, seconds.
  double switch_wait_seconds = 0.0;

  /// Fidelity verdict that triggered this install (zeros for the initial
  /// deployment, which ships before any sync check).
  double fidelity_min = 0.0;
  double fidelity_mean = 0.0;
  double fidelity_max = 0.0;

  /// Set when the *next* version demotes this one.
  double retire_time = -1.0;            ///< < 0 while still active
  std::uint64_t pinned_at_retire = 0;   ///< flow-cache refs at demotion
  double removed_time = -1.0;           ///< < 0 until the module unloads

  /// Retirement-to-unload drain, or a negative value while still draining
  /// (or still active).
  double drain_seconds() const noexcept {
    return (retire_time >= 0.0 && removed_time >= 0.0)
               ? removed_time - retire_time
               : -1.0;
  }
};

/// One shadow-gate consultation: a switch request ruled on by live
/// divergence evidence (the run-time complement of the §3.3 offline
/// fidelity check).  Both verdicts are ledgered — a blocked switch is as
/// interesting as an admitted one.
struct gate_record {
  double t = 0.0;
  std::uint32_t logical_model = 0;  ///< core::model_key ruled on
  std::uint64_t candidate = 0;      ///< nn_manager id of the standby
  std::uint64_t version = 0;        ///< snapshot version of the candidate
  bool admitted = false;
  std::uint64_t samples = 0;
  double mean_divergence = 0.0;
  double max_divergence = 0.0;
  /// True for a gate-aware rollback: `candidate` is the *re-promoted*
  /// previous active, not a fresh standby, and `admitted` is always true
  /// (a rollback never consults the shadow gate — it undoes a switch the
  /// gate already admitted and live evidence then condemned).
  bool rollback = false;
};

/// What the userspace service observed at one sync check.
struct check_observation {
  sync_decision decision{};
  double threshold = 0.0;  ///< alpha * (Omax - Omin) at this check
  double stability_spread = 0.0;
  std::size_t stability_samples = 0;
  std::size_t stability_window = 0;
  std::size_t cache_size = 0;
  std::size_t cache_capacity = 0;
  std::uint64_t version = 0;  ///< installed snapshot version checked against
};

/// What the install path observed when a new version shipped.
struct install_observation {
  std::uint64_t version = 0;
  std::uint64_t model = 0;
  std::uint32_t logical_model = 0;
  bool initial = false;
  double freeze_seconds = 0.0;
  double quantize_seconds = 0.0;
  double translate_seconds = 0.0;
  double compile_seconds = 0.0;
  double install_seconds = 0.0;
  double switch_wait_seconds = 0.0;
  quant::fidelity_report fidelity{};
  std::uint64_t prev_model = 0;       ///< 0 when there was no active model
  std::uint64_t prev_pinned = 0;      ///< refcount on the demoted snapshot
};

class adaptation_monitor {
 public:
  explicit adaptation_monitor(monitor_config config = {});

  adaptation_monitor(const adaptation_monitor&) = delete;
  adaptation_monitor& operator=(const adaptation_monitor&) = delete;

  bool enabled() const noexcept { return config_.enabled; }
  const monitor_config& config() const noexcept { return config_; }

  // ---- hooks (called by instrumented components; all read-only) ----

  /// One §3.3 sync verdict: records the fidelity/spread/staleness/occupancy
  /// time series and evaluates every watchdog rule.
  void on_sync_check(double now, const check_observation& obs);

  /// One slow-path batch delivery.  Cheap time-based rule pass so staleness
  /// and cache pressure are still watched when sync checks are rare or the
  /// adaptation loop is disabled outright.
  void on_batch(double now, std::size_t cache_size, std::size_t cache_capacity);

  /// A new snapshot version switched active: opens its ledger record and
  /// closes the demoted predecessor's (retire time + pinned flows).
  void on_snapshot_install(double now, const install_observation& obs);

  /// A snapshot module unloaded (its last flow-cache reference drained).
  void on_snapshot_removed(double now, std::uint64_t model);

  /// A shadow gate ruled on a switch request (admitted or blocked).
  void on_shadow_gate(const gate_record& g);

  /// Sink for control-plane lifecycle stages (train/freeze/quantize/…).
  /// core cannot depend on rt, so mirroring slow-path activity into the rt
  /// flight recorder's control ring is a callback the deployment wires
  /// (typically to datapath_engine::record_lifecycle).  Stage costs are
  /// nanoseconds.  Null (the default) disables mirroring.
  using lifecycle_mirror =
      std::function<void(trace::lifecycle_phase phase, std::uint32_t model,
                         std::uint64_t version, std::uint64_t cost_ns)>;
  void set_lifecycle_mirror(lifecycle_mirror fn) {
    mirror_ = std::move(fn);
  }

  // ---- reporting ----

  const std::vector<snapshot_record>& ledger() const noexcept {
    return ledger_;
  }
  const std::vector<alert_record>& alerts() const noexcept { return alerts_; }
  /// Shadow-gate ledger, in consultation order (empty unless a gated
  /// deployment reported through on_shadow_gate).
  const std::vector<gate_record>& gates() const noexcept { return gates_; }
  std::uint64_t alert_count(alert_kind k) const noexcept;
  std::uint64_t total_alerts() const noexcept;
  std::uint64_t checks() const noexcept { return checks_.value(); }

  /// Necessity threshold seen at the most recent check (0 before any).
  double last_threshold() const noexcept { return last_threshold_; }

  const time_series& fidelity_min() const noexcept { return fid_min_; }
  const time_series& fidelity_mean() const noexcept { return fid_mean_; }
  const time_series& fidelity_max() const noexcept { return fid_max_; }
  const time_series& stability_spread() const noexcept { return spread_; }
  const time_series& snapshot_age() const noexcept { return staleness_; }
  const time_series& cache_occupancy() const noexcept { return occupancy_; }

  /// Publish "<prefix>.alerts.<kind>" counters plus "<prefix>.checks" and
  /// the recorded series under "<prefix>.fidelity.*" etc.
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the alert ring under "<prefix>" (typed `alert` instants:
  /// a = alert_kind, b = value in 1e-9 units).
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  void raise(double now, alert_kind kind, double value);
  void check_time_rules(double now, std::size_t cache_size,
                        std::size_t cache_capacity);

  monitor_config config_;

  // Rule state.
  std::size_t consecutive_stuck_ = 0;
  bool stuck_active_ = false;
  bool pressure_active_ = false;
  bool stale_active_ = false;
  bool last_drifting_ = false;  ///< last verdict said "update necessary"
  double last_install_time_ = -1.0;
  std::uint64_t current_version_ = 0;

  std::vector<snapshot_record> ledger_;
  std::vector<alert_record> alerts_;
  std::vector<gate_record> gates_;

  lifecycle_mirror mirror_;

  metrics::counter checks_;
  metrics::counter alert_counters_[alert_kind_count];
  double last_threshold_ = 0.0;

  time_series fid_min_{"fidelity_min_loss"};
  time_series fid_mean_{"fidelity_mean_loss"};
  time_series fid_max_{"fidelity_max_loss"};
  time_series spread_{"stability_spread"};
  time_series staleness_{"snapshot_age"};
  time_series occupancy_{"cache_occupancy"};

  trace::ring trace_{"health"};
};

}  // namespace lf::core
