#include "core/flow_cache.hpp"

namespace lf::core {
namespace {

constexpr std::size_t k_min_capacity = 16;

/// Max live load factor before doubling (70%), and max live+tombstone fill
/// before an in-place rehash reclaims tombstones (85%).
constexpr std::size_t grow_threshold(std::size_t cap) noexcept {
  return cap - cap / 4 - cap / 16;  // ~0.69 * cap, integer-only
}
constexpr std::size_t scrub_threshold(std::size_t cap) noexcept {
  return cap - cap / 8;  // ~0.875 * cap
}

constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = k_min_capacity;
  while (p < v) p <<= 1;
  return p;
}

/// splitmix64 finalizer: flow ids are often small sequential integers, so a
/// strong mix is what keeps linear probe chains short.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

flow_cache::flow_cache(std::size_t initial_capacity)
    : slots_(round_up_pow2(initial_capacity)) {}

std::size_t flow_cache::bucket_of(netsim::flow_id_t flow) const noexcept {
  return static_cast<std::size_t>(mix(flow)) & (slots_.size() - 1);
}

flow_cache::entry* flow_cache::find(netsim::flow_id_t flow) noexcept {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = bucket_of(flow);; i = (i + 1) & mask) {
    slot& s = slots_[i];
    if (s.state == slot_state::empty) return nullptr;
    if (s.state == slot_state::occupied && s.e.flow == flow) return &s.e;
  }
}

void flow_cache::insert(netsim::flow_id_t flow, model_id model, double now) {
  clock_ = now;
  if (occupied_ + 1 > grow_threshold(slots_.size())) {
    rehash(slots_.size() * 2);
  } else if (occupied_ + tombstones_ + 1 > scrub_threshold(slots_.size())) {
    scrubs_.inc();
    rehash(slots_.size());  // reclaim tombstones, keep capacity
  }
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = bucket_of(flow);; i = (i + 1) & mask) {
    slot& s = slots_[i];
    if (s.state == slot_state::occupied) continue;
    if (s.state == slot_state::tombstone) --tombstones_;
    s.state = slot_state::occupied;
    s.e = entry{flow, model, now};
    ++occupied_;
    note_occupancy();
    return;
  }
}

void flow_cache::note_occupancy() noexcept {
  if (occupied_ > high_watermark_) {
    high_watermark_ = occupied_;
    hwm_gauge_.set(static_cast<double>(high_watermark_));
  }
  occupancy_gauge_.set(static_cast<double>(occupied_));
}

void flow_cache::evict_slot(slot& s, const evict_fn& on_evict) {
  s.state = slot_state::tombstone;
  --occupied_;
  note_occupancy();
  ++tombstones_;
  evictions_.inc();
  trace_.emit(clock_, trace::event_type::flow_cache_evict, s.e.flow,
              s.e.model);
  if (on_evict) on_evict(s.e.model);
}

bool flow_cache::erase(netsim::flow_id_t flow, const evict_fn& on_evict) {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = bucket_of(flow);; i = (i + 1) & mask) {
    slot& s = slots_[i];
    if (s.state == slot_state::empty) return false;
    if (s.state == slot_state::occupied && s.e.flow == flow) {
      evict_slot(s, on_evict);
      return true;
    }
  }
}

std::size_t flow_cache::step_evict(double now, double timeout,
                                   std::size_t slots, const evict_fn& on_evict) {
  clock_ = now;
  std::size_t evicted = 0;
  const std::size_t n = slots_.size();
  for (std::size_t k = 0; k < slots && k < n; ++k) {
    slot& s = slots_[sweep_cursor_];
    sweep_cursor_ = (sweep_cursor_ + 1) & (n - 1);
    if (s.state == slot_state::occupied && now - s.e.last_used > timeout) {
      evict_slot(s, on_evict);
      ++evicted;
    }
  }
  return evicted;
}

std::size_t flow_cache::expire_idle(double now, double timeout,
                                    const evict_fn& on_evict) {
  clock_ = now;
  std::size_t evicted = 0;
  for (slot& s : slots_) {
    if (s.state == slot_state::occupied && now - s.e.last_used > timeout) {
      evict_slot(s, on_evict);
      ++evicted;
    }
  }
  return evicted;
}

void flow_cache::clear(const evict_fn& on_evict) {
  for (slot& s : slots_) {
    if (s.state == slot_state::occupied) {
      evictions_.inc();
      if (on_evict) on_evict(s.e.model);
    }
    s.state = slot_state::empty;
  }
  occupied_ = 0;
  tombstones_ = 0;
  sweep_cursor_ = 0;
  note_occupancy();
}

void flow_cache::register_metrics(metrics::registry& reg,
                                  const std::string& prefix) {
  reg.register_counter(prefix + ".evictions", evictions_);
  reg.register_counter(prefix + ".rehashes", rehashes_);
  reg.register_counter(prefix + ".tombstone_scrubs", scrubs_);
  reg.register_gauge(prefix + ".occupancy", occupancy_gauge_);
  reg.register_gauge(prefix + ".occupancy_hwm", hwm_gauge_);
}

void flow_cache::register_trace(trace::collector& col,
                                const std::string& prefix) {
  col.attach(trace_, prefix);
}

void flow_cache::rehash(std::size_t new_capacity) {
  std::vector<slot> old = std::move(slots_);
  slots_.assign(new_capacity, slot{});
  occupied_ = 0;
  tombstones_ = 0;
  // The rehash permutes slots, so the sweep cursor's old index is
  // meaningless in the new layout — but restarting it at 0 is worse than
  // meaningless: a scrub landing mid-sweep would send step_evict back to
  // the head of the table every time, double-visiting the early slots and
  // starving the tail of idle eviction whenever scrubs recur faster than
  // one full sweep cycle.  Scale the cursor to the new capacity instead
  // (exact for the power-of-two growth, identity for same-size scrubs):
  // progress through the cycle is preserved and every slot is still
  // visited within one table-length of sweep work.  The mask clamps the
  // result into the new slot range.
  sweep_cursor_ = old.empty()
                      ? 0
                      : (sweep_cursor_ * new_capacity / old.size()) &
                            (new_capacity - 1);
  rehashes_.inc();
  // Re-insertion goes through insert(), which stamps clock_ with each
  // entry's historical last_used; restore the real clock afterwards so
  // trace events and subsequent sweeps don't observe time running
  // backwards.
  const double saved_clock = clock_;
  for (const slot& s : old) {
    if (s.state == slot_state::occupied) {
      insert(s.e.flow, s.e.model, s.e.last_used);
    }
  }
  clock_ = saved_clock;
}

}  // namespace lf::core
