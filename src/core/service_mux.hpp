// Userspace service multiplexer: N adaptation services, one CPU budget.
//
// The paper runs one userspace service per datapath function on a shared
// box; when several of them retrain at once the user_train queue on the
// simulated kernel CPU backs up and every service's sync loop slows down
// together.  The mux is the simple arbitration layer the tentpole issue
// asks for: it watches the shared cpu_model's backlog and, once the backlog
// exceeds a threshold, admits training batches only from the
// highest-priority registered services.  Everything else is deferred
// (counted per service by userspace_service::deferred_batches and in
// aggregate here).
//
// Deliberately minimal: no queueing of deferred work (the kernel keeps
// producing batches — dropping stale ones is the correct load-shedding),
// no fairness carousel, just a saturation check + priority floor.  The
// check runs at admission time on the sim thread, so it costs one
// backlog_clear_time() read per batch.
#pragma once

#include <string>
#include <vector>

#include "core/userspace_service.hpp"
#include "kernelsim/cpu.hpp"

namespace lf::core {

struct mux_config {
  /// user_train backlog (seconds of queued work on the shared CPU) above
  /// which admission tightens to the highest-priority services only.
  double saturation_backlog = 0.05;
};

class service_mux {
 public:
  service_mux(sim::simulation& sim, kernelsim::cpu_model& cpu,
              mux_config config = {});

  /// Wire one service into the mux: installs the admission hook (replacing
  /// any previous one) and remembers the service's configured priority.
  void attach(userspace_service& svc);

  std::size_t service_count() const noexcept { return services_.size(); }

  /// True when the shared CPU's queued work exceeds the saturation backlog.
  bool saturated() const;

  std::uint64_t admitted() const noexcept { return admitted_.value(); }
  std::uint64_t deferred() const noexcept { return deferred_.value(); }

  /// Publish "<prefix>.mux.{admitted,deferred}" + a saturation gauge.
  /// Opt-in (the mux is new wiring; single-model telemetry is untouched).
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  bool admit(int priority);

  sim::simulation& sim_;
  kernelsim::cpu_model& cpu_;
  mux_config config_;
  struct entry {
    userspace_service* svc = nullptr;
    int priority = 0;
  };
  std::vector<entry> services_;
  int max_priority_ = 0;
  metrics::counter admitted_;
  metrics::counter deferred_;
  metrics::gauge saturation_;
};

}  // namespace lf::core
