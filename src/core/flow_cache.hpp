// Open-addressing flow cache for the inference router (§3.4).
//
// The kernel's flow table must absorb one lookup per datapath event for
// millions of concurrent flows, so the chaining std::unordered_map (one node
// allocation per flow, pointer chase per lookup) is replaced by a
// linear-probe open-addressing table: one flat slot array, a fibonacci-mixed
// hash, and no allocation on insert (the array only reallocates on the
// amortized power-of-two growth).  Erase leaves a tombstone; tombstones are
// reclaimed by inserts that land on them and by the periodic rehash when
// they accumulate.
//
// Idle eviction is incremental: step_evict() sweeps a handful of slots per
// call (the router invokes it on every route()), so stale flows drain with
// O(1) work per packet instead of a stop-the-world full scan.  The full-scan
// expire_idle() remains for explicit maintenance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/nn_manager.hpp"
#include "netsim/packet.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lf::core {

class flow_cache {
 public:
  struct entry {
    netsim::flow_id_t flow = 0;
    model_id model = 0;
    double last_used = 0.0;
  };

  /// Called with the model of every evicted/erased entry so the owner can
  /// release the module reference the entry held.
  using evict_fn = std::function<void(model_id)>;

  explicit flow_cache(std::size_t initial_capacity = 1024);

  /// Lookup; nullptr if absent.  The pointer is valid until the next
  /// insert/erase/evict on this cache.
  entry* find(netsim::flow_id_t flow) noexcept;

  /// Insert a flow that must not already be present.  Allocation-free except
  /// for the amortized growth rehash.
  void insert(netsim::flow_id_t flow, model_id model, double now);

  /// Remove one flow (e.g. TCP FIN).  Returns true if it was present; the
  /// callback fires with the entry's model.
  bool erase(netsim::flow_id_t flow, const evict_fn& on_evict);

  /// Incremental idle eviction: examine up to `slots` buckets starting at
  /// the sweep cursor, evicting entries idle longer than `timeout`.
  /// Returns the number evicted.  O(slots), independent of table size.
  std::size_t step_evict(double now, double timeout, std::size_t slots,
                         const evict_fn& on_evict);

  /// Full sweep of every bucket (explicit maintenance path).
  std::size_t expire_idle(double now, double timeout, const evict_fn& on_evict);

  /// Drop everything, firing the callback per live entry.
  void clear(const evict_fn& on_evict);

  std::size_t size() const noexcept { return occupied_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t rehashes() const noexcept { return rehashes_.value(); }
  /// Same-capacity rehashes that only reclaimed tombstones.
  std::uint64_t tombstone_scrubs() const noexcept { return scrubs_.value(); }
  /// Entries dropped by erase/step_evict/expire_idle/clear.
  std::uint64_t evictions() const noexcept { return evictions_.value(); }
  /// Lifetime maximum of size() (never reset by clear()).
  std::size_t occupancy_high_watermark() const noexcept {
    return high_watermark_;
  }

  /// Publish eviction/rehash counters under "<prefix>.evictions", ... plus
  /// the live-entry gauge "<prefix>.occupancy" and its lifetime maximum
  /// "<prefix>.occupancy_hwm".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the eviction-event ring to a trace collector under "<prefix>".
  /// Events are stamped with the cache's last-seen clock (updated by
  /// insert/step_evict/expire_idle), which may trail the simulation by one
  /// datapath event on the clock-free erase() path — close enough for
  /// eviction attribution, and it keeps `now` out of the erase signature.
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  enum class slot_state : std::uint8_t { empty, occupied, tombstone };

  struct slot {
    entry e;
    slot_state state = slot_state::empty;
  };

  std::size_t bucket_of(netsim::flow_id_t flow) const noexcept;
  void rehash(std::size_t new_capacity);
  void evict_slot(slot& s, const evict_fn& on_evict);
  void note_occupancy() noexcept;

  std::vector<slot> slots_;
  std::size_t occupied_ = 0;
  std::size_t high_watermark_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t sweep_cursor_ = 0;
  double clock_ = 0.0;  ///< last `now` seen by a clock-bearing operation
  metrics::counter rehashes_;
  metrics::counter scrubs_;
  metrics::counter evictions_;
  metrics::gauge occupancy_gauge_;
  metrics::gauge hwm_gauge_;
  trace::ring trace_{"flow_cache"};
};

}  // namespace lf::core
