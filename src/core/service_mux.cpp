#include "core/service_mux.hpp"

#include <algorithm>

namespace lf::core {

service_mux::service_mux(sim::simulation& sim, kernelsim::cpu_model& cpu,
                         mux_config config)
    : sim_{sim}, cpu_{cpu}, config_{config} {}

void service_mux::attach(userspace_service& svc) {
  const int prio = svc.config().priority;
  services_.push_back({&svc, prio});
  max_priority_ = std::max(max_priority_, prio);
  svc.set_admission([this, prio] { return admit(prio); });
}

bool service_mux::saturated() const {
  return cpu_.backlog_clear_time() - sim_.now() > config_.saturation_backlog;
}

bool service_mux::admit(int priority) {
  const double backlog = cpu_.backlog_clear_time() - sim_.now();
  saturation_.set(backlog);
  // Unsaturated: everyone trains.  Saturated: only the top priority class
  // keeps its training budget — lower classes shed their (stale) batches.
  if (backlog <= config_.saturation_backlog || priority >= max_priority_) {
    admitted_.inc();
    return true;
  }
  deferred_.inc();
  return false;
}

void service_mux::register_metrics(metrics::registry& reg,
                                   const std::string& prefix) {
  reg.register_counter(prefix + ".mux.admitted", admitted_);
  reg.register_counter(prefix + ".mux.deferred", deferred_);
  reg.register_gauge(prefix + ".mux.backlog_seconds", saturation_);
}

}  // namespace lf::core
