// Kernel-side training-data accumulation with batched netlink delivery
// (§3.2, §4.2 "LiteFlow Netlink Server Module").
//
// Input collectors append samples cheaply in kernel space; every T seconds
// the accumulated batch ships to userspace over the netlink channel in one
// message, so the cross-space cost is paid once per interval instead of
// once per packet.  The paper's micro-benchmark (Fig. 14) recommends
// T in [100ms, 1000ms]; 100ms is the default.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernelsim/channel.hpp"
#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lf::core {

/// One slow-path training sample: the feature vector the snapshot saw plus
/// any auxiliary measurements the tuner needs (observed rates, labels, ...).
struct train_sample {
  std::vector<double> features;
  std::vector<double> aux;
  double collected_at = 0.0;
};

struct batch_collector_config {
  double interval = 0.100;        ///< T, the batch data delivery interval
  std::size_t max_samples = 4096; ///< kernel buffer cap (drop-oldest beyond)
  std::size_t bytes_per_sample = 64;  ///< serialized size estimate
};

class batch_collector {
 public:
  batch_collector(sim::simulation& sim, kernelsim::crossspace_channel& netlink,
                  batch_collector_config config);

  /// Kernel side: append a sample (cheap; no cross-space work).
  void collect(train_sample sample);

  /// Userspace side: consumer invoked when a batch lands in userspace.
  using consumer = std::function<void(std::vector<train_sample>)>;
  void set_consumer(consumer fn) { consumer_ = std::move(fn); }

  /// Begin periodic delivery.
  void start();
  void stop() noexcept { running_ = false; }

  void set_interval(double interval);
  double interval() const noexcept { return config_.interval; }

  std::uint64_t batches_delivered() const noexcept { return batches_.value(); }
  std::uint64_t samples_delivered() const noexcept { return samples_.value(); }
  std::uint64_t samples_dropped() const noexcept { return dropped_.value(); }
  std::uint64_t bytes_delivered() const noexcept { return bytes_.value(); }
  std::size_t pending() const noexcept { return buffer_.size(); }

  /// Publish delivery counters under "<prefix>.batches", "<prefix>.samples",
  /// "<prefix>.bytes", "<prefix>.dropped".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the batch-event ring to a trace collector under "<prefix>".
  /// One batch_flush (samples, bytes) per non-empty delivery, so retained
  /// event counts match the batches counter while the ring is large enough.
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  void deliver();

  sim::simulation& sim_;
  kernelsim::crossspace_channel& netlink_;
  batch_collector_config config_;
  std::vector<train_sample> buffer_;
  consumer consumer_;
  bool running_ = false;
  metrics::counter batches_;
  metrics::counter samples_;
  metrics::counter dropped_;
  metrics::counter bytes_;
  trace::ring trace_{"collector"};
  std::uint64_t epoch_ = 0;
};

}  // namespace lf::core
