#include "core/model_domain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lf::core {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

model_key model_domain::add(std::string name) {
  if (!default_named_) {
    default_named_ = true;
    slots_[0].name = std::move(name);
    return 0;
  }
  const auto key = static_cast<model_key>(slots_.size());
  slots_.push_back({key, std::move(name)});
  return key;
}

std::string model_domain::name_of(model_key key) const {
  if (key < slots_.size()) return slots_[key].name;
  return "model" + std::to_string(key);
}

std::optional<model_key> model_domain::find(std::string_view name) const noexcept {
  for (const auto& s : slots_) {
    if (s.name == name) return s.key;
  }
  return std::nullopt;
}

std::string model_domain::prefix_of(const std::string& base, model_key key) const {
  if (key == k_default_model) return base;
  return base + ".m" + std::to_string(key) + "-" + name_of(key);
}

bool shadow_scorer::sampled(const shadow_config& cfg, model_key m,
                            netsim::flow_id_t flow) noexcept {
  if (cfg.sample_rate <= 0.0) return false;
  if (cfg.sample_rate >= 1.0) return true;
  const std::uint64_t h = splitmix64(cfg.seed ^ composite_flow_key(m, flow));
  // Top 53 bits → uniform double in [0, 1); strict < keeps rate exact at
  // the boundary values tested above.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return u < cfg.sample_rate;
}

void shadow_scorer::record(double divergence) noexcept {
  ++samples_;
  sum_ += divergence;
  max_ = std::max(max_, divergence);
}

void shadow_scorer::record(double divergence,
                           std::uint64_t candidate_gen) noexcept {
  if (candidate_gen == 0 || candidate_gen != bound_gen_) {
    ++gen_drops_;
    return;
  }
  record(divergence);
}

shadow_verdict shadow_scorer::check(const shadow_config& cfg) const noexcept {
  shadow_verdict v;
  v.samples = samples_;
  v.mean_divergence = mean_divergence();
  v.max_divergence = max_;
  if (!cfg.gate_enabled || !cfg.active()) return v;  // admit by default
  v.admit = samples_ >= cfg.min_samples &&
            v.mean_divergence <= cfg.divergence_threshold;
  return v;
}

void shadow_scorer::reset() noexcept {
  samples_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
  bound_gen_ = 0;
}

double shadow_divergence(std::span<const std::int64_t> active_out,
                         std::int64_t active_scale,
                         std::span<const std::int64_t> shadow_out,
                         std::int64_t shadow_scale) noexcept {
  if (active_out.size() != shadow_out.size() || active_out.empty() ||
      active_scale == 0 || shadow_scale == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double inv_a = 1.0 / static_cast<double>(active_scale);
  const double inv_s = 1.0 / static_cast<double>(shadow_scale);
  double sum = 0.0;
  for (std::size_t i = 0; i < active_out.size(); ++i) {
    sum += std::abs(static_cast<double>(active_out[i]) * inv_a -
                    static_cast<double>(shadow_out[i]) * inv_s);
  }
  return sum / static_cast<double>(active_out.size());
}

}  // namespace lf::core
