#include "core/inference_router.hpp"

#include <stdexcept>

namespace lf::core {

inference_router::inference_router(sim::simulation& sim, nn_manager& manager,
                                   router_config config)
    : sim_{sim},
      manager_{manager},
      config_{config},
      lock_{sim},
      cache_{config.cache_initial_capacity},
      release_{[this](model_id m) { manager_.release(m); }} {}

void inference_router::install_standby(model_key model, model_id id) {
  if (!manager_.get(id)) {
    throw std::invalid_argument{"install_standby: model not registered"};
  }
  auto& s = slot_of(model);
  // The standby slot itself keeps a reference so the module cannot be
  // unloaded between install and switch.
  if (s.standby) manager_.release(*s.standby);
  s.standby = id;
  manager_.add_ref(id);
  trace_.emit(sim_.now(), trace::event_type::snapshot_install, id);
}

double inference_router::switch_active(model_key model) {
  auto& s = slot_of(model);
  if (!s.standby) {
    // Explicit no-standby guard: flipping an empty optional into the active
    // slot would silently deactivate the datapath (every route() falling
    // back to nullopt).  A spurious switch request is an orchestration bug,
    // not a datapath error — count it and leave the active snapshot alone.
    noop_switches_.inc();
    return 0.0;
  }
  // One spinlock serializes switches across every logical model: the paper's
  // flip is "3 lines of code" under one kernel lock, and sharing it is what
  // makes the per-switch wait accounting comparable between deployments.
  const double waited = lock_.acquire(config_.switch_lock_hold);
  std::swap(s.active, s.standby);
  switches_.inc();
  trace_.emit(sim_.now(), trace::event_type::snapshot_switch, *s.active,
              static_cast<std::uint64_t>(waited * 1e9));
  // Drop the standby slot's reference on the demoted model; if nothing else
  // references it the caller can remove it.
  if (s.standby) {
    manager_.release(*s.standby);
    s.standby.reset();
  }
  return waited;
}

std::optional<model_id> inference_router::route(model_key model,
                                               netsim::flow_id_t flow) {
  auto& s = slot_of(model);
  if (!config_.flow_cache_enabled) {
    return s.active;
  }
  const double now = sim_.now();
  const auto key = composite_flow_key(model, flow);
  // Amortized idle eviction: constant work per packet keeps the table free
  // of dead flows without a stop-the-world scan.  The sweep crosses model
  // boundaries by construction — the cache is shared.
  if (config_.cache_evict_slots_per_route > 0) {
    cache_.step_evict(now, config_.cache_idle_timeout,
                      config_.cache_evict_slots_per_route, release_);
  }
  if (auto* e = cache_.find(key)) {
    // Hit — but the pinned model may have been force-removed; fall back.
    if (manager_.get(e->model)) {
      hits_.inc();
      e->last_used = now;
      return e->model;
    }
    // Model already gone from the manager: drop the stale entry without a
    // release (the ref died with the force-removal).
    cache_.erase(key, {});
  }
  misses_.inc();
  if (!s.active) return std::nullopt;
  manager_.add_ref(*s.active);
  cache_.insert(key, *s.active, now);
  return s.active;
}

void inference_router::flow_finished(model_key model, netsim::flow_id_t flow) {
  cache_.erase(composite_flow_key(model, flow), release_);
}

std::size_t inference_router::expire_idle() {
  return cache_.expire_idle(sim_.now(), config_.cache_idle_timeout, release_);
}

std::optional<model_id> inference_router::active(
    model_key model) const noexcept {
  const auto it = slots_.find(model);
  return it == slots_.end() ? std::nullopt : it->second.active;
}

std::optional<model_id> inference_router::standby(
    model_key model) const noexcept {
  const auto it = slots_.find(model);
  return it == slots_.end() ? std::nullopt : it->second.standby;
}

void inference_router::register_metrics(metrics::registry& reg,
                                        const std::string& prefix) {
  reg.register_counter(prefix + ".router.cache_hits", hits_);
  reg.register_counter(prefix + ".router.cache_misses", misses_);
  reg.register_counter(prefix + ".router.switches", switches_);
  reg.register_counter(prefix + ".router.switch_noops", noop_switches_);
  cache_.register_metrics(reg, prefix + ".router.cache");
  lock_.register_metrics(reg, prefix + ".router.lock");
}

void inference_router::register_trace(trace::collector& col,
                                      const std::string& prefix) {
  col.attach(trace_, prefix + ".router");
  cache_.register_trace(col, prefix + ".router.cache");
  lock_.register_trace(col, prefix + ".router.lock");
}

}  // namespace lf::core
