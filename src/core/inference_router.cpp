#include "core/inference_router.hpp"

#include <stdexcept>

namespace lf::core {

inference_router::inference_router(sim::simulation& sim, nn_manager& manager,
                                   router_config config)
    : sim_{sim},
      manager_{manager},
      config_{config},
      lock_{sim},
      cache_{config.cache_initial_capacity},
      release_{[this](model_id m) { manager_.release(m); }} {}

void inference_router::install_standby(model_id id) {
  if (!manager_.get(id)) {
    throw std::invalid_argument{"install_standby: model not registered"};
  }
  // The standby slot itself keeps a reference so the module cannot be
  // unloaded between install and switch.
  if (standby_) manager_.release(*standby_);
  standby_ = id;
  manager_.add_ref(id);
  trace_.emit(sim_.now(), trace::event_type::snapshot_install, id);
}

double inference_router::switch_active() {
  if (!standby_) {
    // Explicit no-standby guard: flipping an empty optional into the active
    // slot would silently deactivate the datapath (every route() falling
    // back to nullopt).  A spurious switch request is an orchestration bug,
    // not a datapath error — count it and leave the active snapshot alone.
    noop_switches_.inc();
    return 0.0;
  }
  const double waited = lock_.acquire(config_.switch_lock_hold);
  std::swap(active_, standby_);
  switches_.inc();
  trace_.emit(sim_.now(), trace::event_type::snapshot_switch, *active_,
              static_cast<std::uint64_t>(waited * 1e9));
  // Drop the standby slot's reference on the demoted model; if nothing else
  // references it the caller can remove it.
  if (standby_) {
    manager_.release(*standby_);
    standby_.reset();
  }
  return waited;
}

std::optional<model_id> inference_router::route(netsim::flow_id_t flow) {
  if (!config_.flow_cache_enabled) {
    return active_;
  }
  const double now = sim_.now();
  // Amortized idle eviction: constant work per packet keeps the table free
  // of dead flows without a stop-the-world scan.
  if (config_.cache_evict_slots_per_route > 0) {
    cache_.step_evict(now, config_.cache_idle_timeout,
                      config_.cache_evict_slots_per_route, release_);
  }
  if (auto* e = cache_.find(flow)) {
    // Hit — but the pinned model may have been force-removed; fall back.
    if (manager_.get(e->model)) {
      hits_.inc();
      e->last_used = now;
      return e->model;
    }
    // Model already gone from the manager: drop the stale entry without a
    // release (the ref died with the force-removal).
    cache_.erase(flow, {});
  }
  misses_.inc();
  if (!active_) return std::nullopt;
  manager_.add_ref(*active_);
  cache_.insert(flow, *active_, now);
  return active_;
}

void inference_router::flow_finished(netsim::flow_id_t flow) {
  cache_.erase(flow, release_);
}

std::size_t inference_router::expire_idle() {
  return cache_.expire_idle(sim_.now(), config_.cache_idle_timeout, release_);
}

void inference_router::register_metrics(metrics::registry& reg,
                                        const std::string& prefix) {
  reg.register_counter(prefix + ".router.cache_hits", hits_);
  reg.register_counter(prefix + ".router.cache_misses", misses_);
  reg.register_counter(prefix + ".router.switches", switches_);
  reg.register_counter(prefix + ".router.switch_noops", noop_switches_);
  cache_.register_metrics(reg, prefix + ".router.cache");
  lock_.register_metrics(reg, prefix + ".router.lock");
}

void inference_router::register_trace(trace::collector& col,
                                      const std::string& prefix) {
  col.attach(trace_, prefix + ".router");
  cache_.register_trace(col, prefix + ".router.cache");
  lock_.register_trace(col, prefix + ".router.lock");
}

}  // namespace lf::core
