#include "core/inference_router.hpp"

#include <stdexcept>

namespace lf::core {

inference_router::inference_router(sim::simulation& sim, nn_manager& manager,
                                   router_config config)
    : sim_{sim}, manager_{manager}, config_{config}, lock_{sim} {}

void inference_router::install_standby(model_id id) {
  if (!manager_.get(id)) {
    throw std::invalid_argument{"install_standby: model not registered"};
  }
  // The standby slot itself keeps a reference so the module cannot be
  // unloaded between install and switch.
  if (standby_) manager_.release(*standby_);
  standby_ = id;
  manager_.add_ref(id);
}

double inference_router::switch_active() {
  if (!standby_) {
    throw std::logic_error{"switch_active: no standby snapshot installed"};
  }
  const double waited = lock_.acquire(config_.switch_lock_hold);
  std::swap(active_, standby_);
  ++switches_;
  // Drop the standby slot's reference on the demoted model; if nothing else
  // references it the caller can remove it.
  if (standby_) {
    manager_.release(*standby_);
    standby_.reset();
  }
  return waited;
}

std::optional<model_id> inference_router::route(netsim::flow_id_t flow) {
  if (!config_.flow_cache_enabled) {
    return active_;
  }
  const auto it = cache_.find(flow);
  if (it != cache_.end()) {
    // Hit — but the pinned model may have been force-removed; fall back.
    if (manager_.get(it->second.model)) {
      ++hits_;
      it->second.last_used = sim_.now();
      return it->second.model;
    }
    cache_.erase(it);
  }
  ++misses_;
  if (!active_) return std::nullopt;
  manager_.add_ref(*active_);
  cache_[flow] = cache_entry{*active_, sim_.now()};
  return active_;
}

void inference_router::flow_finished(netsim::flow_id_t flow) {
  const auto it = cache_.find(flow);
  if (it == cache_.end()) return;
  manager_.release(it->second.model);
  cache_.erase(it);
}

std::size_t inference_router::expire_idle() {
  const double now = sim_.now();
  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (now - it->second.last_used > config_.cache_idle_timeout) {
      manager_.release(it->second.model);
      it = cache_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace lf::core
