// Inference router with active/standby snapshots and a flow cache (§3.4).
//
// The router forwards inference requests to the *active* snapshot.  A new
// snapshot installs as *standby* — a potentially long operation that takes
// no lock because the datapath never touches the standby copy.  Switching
// roles flips one pointer under a spinlock held for nanoseconds.
//
// Multi-model serving: one router now carries N independent active/standby
// slots, one per logical `model_key`, behind ONE flow cache, ONE switch
// spinlock and one set of counters — the shape the paper deploys (three
// datapath functions, four NNs, one box).  Cache entries are keyed by
// `composite_flow_key(model, flow)`, so the open-addressing table itself is
// untouched and model 0 (the implicit single-model key every existing call
// site uses) hashes exactly as before.
//
// Flow consistency: the flow cache (an open-addressing kernel hash table:
// composite key -> model, see core/flow_cache.hpp) pins every (model, flow)
// pair to the snapshot that served its first packet, so one flow never mixes
// decisions from two model generations (which would, e.g., make a CC flow's
// rate jump mid-connection).  Cached entries hold a reference on their
// model; FIN or idle-timeout eviction releases it, and a module becomes
// removable only at refcount zero.  Idle eviction is amortized into
// route(): every lookup also sweeps a couple of table slots, so stale flows
// drain without a periodic full scan.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/flow_cache.hpp"
#include "core/model_domain.hpp"
#include "core/nn_manager.hpp"
#include "kernelsim/spinlock.hpp"
#include "netsim/packet.hpp"
#include "sim/sim.hpp"

namespace lf::core {

struct router_config {
  bool flow_cache_enabled = true;  ///< users may disable per function (§3.4)
  double cache_idle_timeout = 30.0;  ///< seconds; inactive entries evicted
  /// Spinlock hold time of the pointer flip ("3 lines of code").
  double switch_lock_hold = 20e-9;
  /// Table slots swept for idle entries on each route() call (0 disables
  /// the incremental sweep; expire_idle() then does all eviction).
  std::size_t cache_evict_slots_per_route = 2;
  /// Initial flow-cache capacity (rounded up to a power of two).
  std::size_t cache_initial_capacity = 1024;
};

class inference_router {
 public:
  inference_router(sim::simulation& sim, nn_manager& manager,
                   router_config config);

  /// Install a registered model as the standby snapshot of one logical
  /// model (no lock taken).  The single-argument form serves model 0.
  void install_standby(model_id id) { install_standby(k_default_model, id); }
  void install_standby(model_key model, model_id id);

  /// Flip active/standby under the spinlock.  Returns the time the flip
  /// waited on the lock.  The old active becomes standby (and is typically
  /// removed by the caller once its refcount drains).  With no standby
  /// installed the switch is an explicit no-op: the active snapshot stays
  /// in place, no lock is taken, switch_noops() increments, and 0 is
  /// returned.
  double switch_active() { return switch_active(k_default_model); }
  double switch_active(model_key model);

  /// Route one inference request for one logical model: returns the
  /// snapshot that must serve this flow (honoring the flow cache), or
  /// nullopt if nothing is active for that model.
  std::optional<model_id> route(netsim::flow_id_t flow) {
    return route(k_default_model, flow);
  }
  std::optional<model_id> route(model_key model, netsim::flow_id_t flow);

  /// Flow terminated (TCP FIN): drop its cache entry, release the ref.
  void flow_finished(netsim::flow_id_t flow) {
    flow_finished(k_default_model, flow);
  }
  void flow_finished(model_key model, netsim::flow_id_t flow);

  /// Evict cache entries idle longer than the configured timeout.
  std::size_t expire_idle();

  std::optional<model_id> active() const noexcept {
    return active(k_default_model);
  }
  std::optional<model_id> standby() const noexcept {
    return standby(k_default_model);
  }
  std::optional<model_id> active(model_key model) const noexcept;
  std::optional<model_id> standby(model_key model) const noexcept;

  /// Logical models this router has touched (installed to or routed for);
  /// a fresh router reports 0 — even the default model's slot is lazy.
  std::size_t model_count() const noexcept { return slots_.size(); }

  std::uint64_t cache_hits() const noexcept { return hits_.value(); }
  std::uint64_t cache_misses() const noexcept { return misses_.value(); }
  std::uint64_t switches() const noexcept { return switches_.value(); }
  /// Switch requests that found no standby installed (no-ops).
  std::uint64_t switch_noops() const noexcept { return noop_switches_.value(); }
  std::size_t cache_size() const noexcept { return cache_.size(); }
  std::size_t cache_capacity() const noexcept { return cache_.capacity(); }
  const kernelsim::spinlock& lock() const noexcept { return lock_; }

  /// Publish router switch count + lock hold/wait accounting and the flow
  /// cache's hit/miss/eviction/scrub counters under "<prefix>.router.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the router's rings to a trace collector: snapshot
  /// install/switch events under "<prefix>.router", cache evictions under
  /// "<prefix>.router.cache", lock events under "<prefix>.router.lock".
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  struct slot {
    std::optional<model_id> active;
    std::optional<model_id> standby;
  };
  slot& slot_of(model_key model) { return slots_[model]; }

  sim::simulation& sim_;
  nn_manager& manager_;
  router_config config_;
  kernelsim::spinlock lock_;
  /// Per-logical-model snapshot pair; created lazily on first install so a
  /// single-model router carries exactly one slot.
  std::map<model_key, slot> slots_;
  flow_cache cache_;
  flow_cache::evict_fn release_;  ///< built once; evictions drop model refs
  metrics::counter hits_;
  metrics::counter misses_;
  metrics::counter switches_;
  metrics::counter noop_switches_;
  trace::ring trace_{"router"};
};

}  // namespace lf::core
