#include "core/adaptation_monitor.hpp"

#include <algorithm>
#include <cstdlib>

namespace lf::core {

monitor_config monitor_config::from_env() {
  monitor_config cfg;
  if (const char* v = std::getenv("LF_MONITOR")) {
    cfg.enabled = std::atoi(v) != 0;
  }
  return cfg;
}

std::string_view to_string(alert_kind k) noexcept {
  switch (k) {
    case alert_kind::adaptation_stuck: return "adaptation_stuck";
    case alert_kind::flow_cache_pressure: return "flow_cache_pressure";
    case alert_kind::stale_snapshot: return "stale_snapshot";
  }
  return "unknown";
}

adaptation_monitor::adaptation_monitor(monitor_config config)
    : config_{config} {}

void adaptation_monitor::raise(double now, alert_kind kind, double value) {
  alert_counters_[static_cast<std::size_t>(kind)].inc();
  alerts_.push_back(alert_record{now, kind, value, current_version_});
  trace_.emit(now, trace::event_type::alert,
              static_cast<std::uint64_t>(kind),
              static_cast<std::uint64_t>(std::max(0.0, value) * 1e9));
}

void adaptation_monitor::check_time_rules(double now, std::size_t cache_size,
                                          std::size_t cache_capacity) {
  // flow_cache_pressure: occupancy at/above the high-watermark fraction.
  if (cache_capacity > 0) {
    const double occupancy = static_cast<double>(cache_size) /
                             static_cast<double>(cache_capacity);
    if (occupancy >= config_.cache_high_watermark) {
      if (!pressure_active_) {
        pressure_active_ = true;
        raise(now, alert_kind::flow_cache_pressure, occupancy);
      }
    } else {
      pressure_active_ = false;
    }
  }

  // stale_snapshot: the installed version is old *and* the last verdict
  // still wanted an update (drift persists while nothing ships).
  if (last_install_time_ >= 0.0) {
    const double age = now - last_install_time_;
    if (age > config_.stale_snapshot_age && last_drifting_) {
      if (!stale_active_) {
        stale_active_ = true;
        raise(now, alert_kind::stale_snapshot, age);
      }
    } else if (age <= config_.stale_snapshot_age || !last_drifting_) {
      stale_active_ = false;
    }
  }
}

void adaptation_monitor::on_sync_check(double now,
                                       const check_observation& obs) {
  if (!config_.enabled) return;
  checks_.inc();
  current_version_ = obs.version;
  last_threshold_ = obs.threshold;
  last_drifting_ = obs.decision.necessary;

  fid_min_.record(now, obs.decision.fidelity.min_loss);
  fid_mean_.record(now, obs.decision.fidelity.mean_loss);
  fid_max_.record(now, obs.decision.fidelity.max_loss);
  spread_.record(now, obs.stability_spread);
  if (last_install_time_ >= 0.0) {
    staleness_.record(now, now - last_install_time_);
  }
  if (obs.cache_capacity > 0) {
    occupancy_.record(now, static_cast<double>(obs.cache_size) /
                               static_cast<double>(obs.cache_capacity));
  }

  // adaptation_stuck: the model has drifted past the necessity threshold
  // but the stability metric will not converge — N consecutive checks of
  // "necessary && !converged" means the loop is stuck mid-exploration and
  // the kernel keeps serving a snapshot the slow path knows is wrong.
  if (obs.decision.necessary && !obs.decision.converged) {
    ++consecutive_stuck_;
    if (consecutive_stuck_ >= config_.stuck_checks && !stuck_active_) {
      stuck_active_ = true;
      raise(now, alert_kind::adaptation_stuck,
            static_cast<double>(consecutive_stuck_));
    }
  } else {
    consecutive_stuck_ = 0;
    stuck_active_ = false;
  }

  check_time_rules(now, obs.cache_size, obs.cache_capacity);
}

void adaptation_monitor::on_batch(double now, std::size_t cache_size,
                                  std::size_t cache_capacity) {
  if (!config_.enabled) return;
  check_time_rules(now, cache_size, cache_capacity);
}

void adaptation_monitor::on_snapshot_install(double now,
                                             const install_observation& obs) {
  if (!config_.enabled) return;
  // Close out the demoted predecessor.
  if (obs.prev_model != 0) {
    for (auto it = ledger_.rbegin(); it != ledger_.rend(); ++it) {
      if (it->model == obs.prev_model && it->retire_time < 0.0) {
        it->retire_time = now;
        it->pinned_at_retire = obs.prev_pinned;
        break;
      }
    }
  }

  snapshot_record rec;
  rec.version = obs.version;
  rec.model = obs.model;
  rec.logical_model = obs.logical_model;
  rec.initial = obs.initial;
  rec.install_time = now;
  rec.freeze_seconds = obs.freeze_seconds;
  rec.quantize_seconds = obs.quantize_seconds;
  rec.translate_seconds = obs.translate_seconds;
  rec.compile_seconds = obs.compile_seconds;
  rec.install_seconds = obs.install_seconds;
  rec.switch_wait_seconds = obs.switch_wait_seconds;
  rec.fidelity_min = obs.fidelity.min_loss;
  rec.fidelity_mean = obs.fidelity.mean_loss;
  rec.fidelity_max = obs.fidelity.max_loss;
  ledger_.push_back(rec);

  // Mirror the §3.1 pipeline stages into the attached control ring (if any)
  // so a black-box dump correlates datapath anomalies with the slow-path
  // work that preceded them.  Zero-cost stages are skipped — the ring is
  // small and an empty stage carries no signal.
  if (mirror_) {
    const auto ns = [](double s) {
      return static_cast<std::uint64_t>(std::max(0.0, s) * 1e9);
    };
    struct stage { trace::lifecycle_phase phase; double seconds; };
    const stage stages[] = {
        {trace::lifecycle_phase::freeze, obs.freeze_seconds},
        {trace::lifecycle_phase::quantize, obs.quantize_seconds},
        {trace::lifecycle_phase::translate, obs.translate_seconds},
        {trace::lifecycle_phase::compile, obs.compile_seconds},
        {trace::lifecycle_phase::install, obs.install_seconds},
    };
    for (const auto& st : stages) {
      if (st.seconds <= 0.0 && st.phase != trace::lifecycle_phase::install) {
        continue;
      }
      mirror_(st.phase, obs.logical_model, obs.version, ns(st.seconds));
    }
  }

  last_install_time_ = now;
  current_version_ = obs.version;
  // A fresh snapshot resets the drift view until the next verdict.
  last_drifting_ = false;
  stale_active_ = false;
}

void adaptation_monitor::on_snapshot_removed(double now, std::uint64_t model) {
  if (!config_.enabled) return;
  for (auto it = ledger_.rbegin(); it != ledger_.rend(); ++it) {
    if (it->model == model && it->removed_time < 0.0) {
      it->removed_time = now;
      // A module unloaded without an explicit demotion (e.g. force-removed)
      // still gets a retirement stamp so drain_seconds() is well defined.
      if (it->retire_time < 0.0) it->retire_time = now;
      if (mirror_) {
        const double drain = it->drain_seconds();
        mirror_(trace::lifecycle_phase::remove, it->logical_model, it->version,
                static_cast<std::uint64_t>(std::max(0.0, drain) * 1e9));
      }
      return;
    }
  }
}

void adaptation_monitor::on_shadow_gate(const gate_record& g) {
  if (!config_.enabled) return;
  gates_.push_back(g);
  // Reuse the alert instant shape: a = admitted flag, b = divergence in
  // 1e-9 units — enough to see blocked switches on the trace timeline.
  trace_.emit(g.t, trace::event_type::alert,
              static_cast<std::uint64_t>(g.admitted ? 1 : 0),
              static_cast<std::uint64_t>(
                  std::max(0.0, g.mean_divergence) * 1e9));
}

std::uint64_t adaptation_monitor::alert_count(alert_kind k) const noexcept {
  return alert_counters_[static_cast<std::size_t>(k)].value();
}

std::uint64_t adaptation_monitor::total_alerts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : alert_counters_) total += c.value();
  return total;
}

void adaptation_monitor::register_metrics(metrics::registry& reg,
                                          const std::string& prefix) {
  reg.register_counter(prefix + ".checks", checks_);
  for (std::size_t k = 0; k < alert_kind_count; ++k) {
    reg.register_counter(
        prefix + ".alerts." +
            std::string{to_string(static_cast<alert_kind>(k))},
        alert_counters_[k]);
  }
  reg.register_series(prefix + ".fidelity.min_loss", fid_min_);
  reg.register_series(prefix + ".fidelity.mean_loss", fid_mean_);
  reg.register_series(prefix + ".fidelity.max_loss", fid_max_);
  reg.register_series(prefix + ".stability_spread", spread_);
  reg.register_series(prefix + ".snapshot_age", staleness_);
  reg.register_series(prefix + ".cache_occupancy", occupancy_);
}

void adaptation_monitor::register_trace(trace::collector& col,
                                        const std::string& prefix) {
  col.attach(trace_, prefix);
}

}  // namespace lf::core
