#include "core/sync_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lf::core {

sync_evaluator::sync_evaluator(sync_config config) : config_{config} {
  if (config_.stability_window < 2) {
    throw std::invalid_argument{"sync_evaluator: window must be >= 2"};
  }
  if (config_.output_max <= config_.output_min) {
    throw std::invalid_argument{"sync_evaluator: Omax must exceed Omin"};
  }
}

void sync_evaluator::record_stability(double value) {
  history_.push_back(value);
  while (history_.size() > config_.stability_window) history_.pop_front();
}

double sync_evaluator::stability_spread() const {
  if (history_.size() < 2) return 0.0;
  const auto [lo, hi] = std::minmax_element(history_.begin(), history_.end());
  // Normalize by the window's magnitude, not its mean: a stability metric
  // oscillating around zero (e.g. mean reward of ±0.01) has a near-zero
  // mean, and (max-min)/|mean| blows up — convergence would be
  // undeclarable no matter how tight the oscillation.  The extreme
  // magnitude max(|max|, |min|) is spread-stable at every operating point.
  const double denom = std::max({std::abs(*hi), std::abs(*lo), 1e-9});
  return (*hi - *lo) / denom;
}

bool sync_evaluator::converged() const {
  if (history_.size() < config_.stability_window) return false;
  return stability_spread() < config_.stability_threshold;
}

sync_decision sync_evaluator::evaluate(
    const nn::mlp& tuned, const quant::quantized_mlp& installed,
    std::span<const std::vector<double>> batch_inputs) const {
  sync_decision decision;
  decision.converged = converged();
  decision.fidelity = quant::evaluate_fidelity(tuned, installed, batch_inputs);
  decision.necessary =
      quant::update_necessary(decision.fidelity, config_.alpha,
                              config_.output_min, config_.output_max);
  return decision;
}

void sync_evaluator::reset_stability() { history_.clear(); }

}  // namespace lf::core
