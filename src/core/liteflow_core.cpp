#include "core/liteflow_core.hpp"

#include <stdexcept>

namespace lf::core {

liteflow_core::liteflow_core(sim::simulation& sim, kernelsim::cpu_model& cpu,
                             const kernelsim::cost_model& costs,
                             router_config rconfig)
    : sim_{sim}, cpu_{cpu}, costs_{costs}, router_{sim, manager_, rconfig} {}

model_id liteflow_core::register_model(codegen::snapshot snap) {
  // Shape compatibility against every attached IO module (the paper's
  // lf_register_io check runs both ways).
  for (const auto& [h, spec] : io_modules_) {
    if (spec.input_size != snap.input_size() ||
        spec.output_size != snap.output_size()) {
      throw std::invalid_argument{
          "register_model: shape incompatible with io module '" + spec.name +
          "'"};
    }
  }
  return manager_.register_model(std::move(snap));
}

bool liteflow_core::unregister_model(std::string_view name,
                                     std::uint64_t version) {
  const auto id = manager_.find(name, version);
  return id ? manager_.try_remove(*id) : false;
}

io_handle liteflow_core::register_io(io_module_spec spec) {
  if (spec.input_size == 0 || spec.output_size == 0) {
    throw std::invalid_argument{"register_io: zero-sized interface"};
  }
  if (const auto active = router_.active()) {
    const auto* snap = manager_.get(*active);
    if (snap && (snap->input_size() != spec.input_size ||
                 snap->output_size() != spec.output_size)) {
      throw std::invalid_argument{
          "register_io: installed NN shape mismatch for '" + spec.name + "'"};
    }
  }
  const io_handle handle = next_io_++;
  io_modules_.emplace(handle, std::move(spec));
  return handle;
}

bool liteflow_core::unregister_io(io_handle handle) {
  return io_modules_.erase(handle) > 0;
}

void liteflow_core::install_standby(model_key model, model_id id) {
  const auto replaced = router_.standby(model);
  router_.install_standby(model, id);
  // A displaced candidate (e.g. one the gate kept blocking) has lost its
  // slot ref; unload it so rejected snapshots don't pile up in the manager.
  if (replaced && *replaced != id) manager_.try_remove(*replaced);
  // New candidate, new trial: any divergence measured against the previous
  // standby says nothing about this one.
  scorers_[model].reset();
}

gate_result liteflow_core::switch_active(model_key model) {
  gate_result r;
  const auto standby = router_.standby(model);
  if (!standby) {
    // Delegate so the router's no-op accounting stays authoritative.
    router_.switch_active(model);
    return r;
  }
  r.had_standby = true;
  auto& scorer = scorers_[model];
  r.verdict = scorer.check(shadow_);
  // The gate only has jurisdiction when there is an incumbent to diverge
  // from: an initial deployment ships unconditionally.
  const bool gated = shadow_.active() && shadow_.gate_enabled &&
                     router_.active(model).has_value();
  if (gated && !r.verdict.admit) {
    r.gate_blocked = true;
    gate_blocks_.inc();
  } else {
    r.admitted = true;
    r.switch_wait = router_.switch_active(model);
    scorer.reset();  // evidence consumed by the flip
  }
  if (monitor_ && gated) {
    gate_record g;
    g.t = sim_.now();
    g.logical_model = model;
    g.candidate = *standby;
    if (const auto* snap = manager_.get(*standby)) g.version = snap->version;
    g.admitted = r.admitted;
    g.samples = r.verdict.samples;
    g.mean_divergence = r.verdict.mean_divergence;
    g.max_divergence = r.verdict.max_divergence;
    monitor_->on_shadow_gate(g);
  }
  return r;
}

gate_result liteflow_core::rollback(model_key model, model_id prev) {
  gate_result r;
  const auto* prev_snap = manager_.get(prev);
  if (prev_snap == nullptr) return r;  // rollback target already unloaded
  const std::uint64_t prev_version = prev_snap->version;
  r.had_standby = true;
  // Evidence snapshot before the flip consumes it: the ledger should show
  // what the scorer knew about the *regressed* incumbent at rollback time.
  auto& scorer = scorers_[model];
  r.verdict = scorer.check(shadow_);
  // Stage the previous active through the standby slot so the re-promotion
  // is the same one-pointer exchange as a forward switch (same lock, same
  // trace events, same flow-cache pinning semantics).  A fresh candidate
  // sitting in the slot is displaced and unloaded like any replaced standby.
  const auto displaced = router_.standby(model);
  router_.install_standby(model, prev);
  if (displaced && *displaced != prev) manager_.try_remove(*displaced);
  r.admitted = true;
  r.switch_wait = router_.switch_active(model);
  scorer.reset();  // divergence vs the regressed model is now meaningless
  if (monitor_ != nullptr) {
    gate_record g;
    g.t = sim_.now();
    g.logical_model = model;
    g.candidate = prev;
    g.version = prev_version;
    g.admitted = true;
    g.samples = r.verdict.samples;
    g.mean_divergence = r.verdict.mean_divergence;
    g.max_divergence = r.verdict.max_divergence;
    g.rollback = true;
    monitor_->on_shadow_gate(g);
  }
  return r;
}

double liteflow_core::query_cost(const codegen::snapshot& snap) const noexcept {
  return costs_.snapshot_query_overhead +
         static_cast<double>(snap.program.mac_count()) *
             costs_.snapshot_mac_cost;
}

const codegen::snapshot* liteflow_core::shadow_target(model_key model,
                                                      netsim::flow_id_t flow,
                                                      model_id& out_id) const {
  if (!shadow_.active()) return nullptr;  // rate 0: not even a hash
  if (!shadow_scorer::sampled(shadow_, model, flow)) return nullptr;
  const auto standby = router_.standby(model);
  if (!standby) return nullptr;
  out_id = *standby;
  return manager_.get(*standby);
}

void liteflow_core::record_shadow(model_key model,
                                  const codegen::snapshot& active_snap,
                                  std::span<const fp::s64> active_out,
                                  const codegen::snapshot& shadow_snap,
                                  std::span<const fp::s64> input) {
  if (input.size() != shadow_snap.input_size()) return;  // shape drifted
  shadow_out_.resize(shadow_snap.output_size());
  shadow_snap.program.infer_into(input, shadow_out_, scratch_);
  shadow_inferences_.inc();
  scorers_[model].record(shadow_divergence(active_out,
                                           active_snap.program.io_scale(),
                                           shadow_out_,
                                           shadow_snap.program.io_scale()));
}

void liteflow_core::query_model(model_key model, netsim::flow_id_t flow,
                                std::vector<fp::s64> input,
                                std::function<void(std::vector<fp::s64>)> done) {
  queries_.inc();
  const auto id = router_.route(model, flow);
  const auto* snap = id ? manager_.get(*id) : nullptr;
  if (!snap || input.size() != snap->input_size()) {
    if (done) done({});
    return;
  }
  // Shadow decision is taken at submit time (the standby may be switched or
  // replaced while the query sits in the CPU queue — the comparison must be
  // against the snapshot that was the candidate when the packet arrived).
  model_id shadow_id = 0;
  const auto* shadow_snap = shadow_target(model, flow, shadow_id);
  double cost = query_cost(*snap);
  if (shadow_snap) cost += query_cost(*shadow_snap);  // shadowing is charged
  // Pin the module(s) while the inference is queued on the CPU — a snapshot
  // update may otherwise unload it before the work item runs.
  manager_.add_ref(*id);
  if (shadow_snap) manager_.add_ref(shadow_id);
  trace_.emit(sim_.now(), trace::event_type::inference_begin, flow, *id);
  cpu_.submit(kernelsim::task_category::datapath, cost,
              [this, model, flow, id = *id, snap, shadow_snap, shadow_id,
               input = std::move(input), done = std::move(done)]() {
                std::vector<fp::s64> out(snap->output_size());
                snap->program.infer_into(input, out, scratch_);
                if (shadow_snap) {
                  record_shadow(model, *snap, out, *shadow_snap, input);
                  manager_.release(shadow_id);
                }
                trace_.emit(sim_.now(), trace::event_type::inference_end,
                            flow, id);
                manager_.release(id);
                if (done) done(std::move(out));
              });
}

std::vector<fp::s64> liteflow_core::query_model_sync(
    model_key model, netsim::flow_id_t flow, std::span<const fp::s64> input) {
  queries_.inc();
  const auto id = router_.route(model, flow);
  const auto* snap = id ? manager_.get(*id) : nullptr;
  if (!snap || input.size() != snap->input_size()) return {};
  model_id shadow_id = 0;
  const auto* shadow_snap = shadow_target(model, flow, shadow_id);
  double cost = query_cost(*snap);
  if (shadow_snap) cost += query_cost(*shadow_snap);
  cpu_.submit(kernelsim::task_category::datapath, cost);
  // Synchronous path: begin/end collapse to a zero-duration span (the CPU
  // charge above is fire-and-forget).
  trace_.emit(sim_.now(), trace::event_type::inference_begin, flow, *id);
  std::vector<fp::s64> out(snap->output_size());
  snap->program.infer_into(input, out, scratch_);
  if (shadow_snap) record_shadow(model, *snap, out, *shadow_snap, input);
  trace_.emit(sim_.now(), trace::event_type::inference_end, flow, *id);
  return out;
}

fp::s64 liteflow_core::active_io_scale(model_key model) const {
  const auto id = router_.active(model);
  if (!id) return 0;
  const auto* snap = manager_.get(*id);
  return snap ? snap->program.io_scale() : 0;
}

shadow_verdict liteflow_core::shadow_evidence(model_key model) const {
  const auto it = scorers_.find(model);
  if (it == scorers_.end()) return {};
  return it->second.check(shadow_);
}

void liteflow_core::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  const std::string base = prefix + ".core";
  reg.register_counter(base + ".queries", queries_);
  router_.register_metrics(reg, base);
}

void liteflow_core::register_shadow_metrics(metrics::registry& reg,
                                            const std::string& prefix) {
  reg.register_counter(prefix + ".core.shadow.inferences", shadow_inferences_);
  reg.register_counter(prefix + ".core.shadow.gate_blocks", gate_blocks_);
  manager_.register_metrics(reg, prefix + ".nn");
}

void liteflow_core::register_trace(trace::collector& col,
                                   const std::string& prefix) {
  const std::string base = prefix + ".core";
  col.attach(trace_, base);
  router_.register_trace(col, base);
}

void liteflow_core::register_monitor(adaptation_monitor& monitor) {
  if (!monitor.enabled()) return;
  monitor_ = &monitor;
  manager_.set_removal_hook([this, &monitor](model_id id) {
    monitor.on_snapshot_removed(sim_.now(), id);
  });
}

}  // namespace lf::core
