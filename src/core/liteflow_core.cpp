#include "core/liteflow_core.hpp"

#include <stdexcept>

namespace lf::core {

liteflow_core::liteflow_core(sim::simulation& sim, kernelsim::cpu_model& cpu,
                             const kernelsim::cost_model& costs,
                             router_config rconfig)
    : sim_{sim}, cpu_{cpu}, costs_{costs}, router_{sim, manager_, rconfig} {}

model_id liteflow_core::register_model(codegen::snapshot snap) {
  // Shape compatibility against every attached IO module (the paper's
  // lf_register_io check runs both ways).
  for (const auto& [h, spec] : io_modules_) {
    if (spec.input_size != snap.input_size() ||
        spec.output_size != snap.output_size()) {
      throw std::invalid_argument{
          "register_model: shape incompatible with io module '" + spec.name +
          "'"};
    }
  }
  return manager_.register_model(std::move(snap));
}

bool liteflow_core::unregister_model(std::string_view name,
                                     std::uint64_t version) {
  const auto id = manager_.find(name, version);
  return id ? manager_.try_remove(*id) : false;
}

io_handle liteflow_core::register_io(io_module_spec spec) {
  if (spec.input_size == 0 || spec.output_size == 0) {
    throw std::invalid_argument{"register_io: zero-sized interface"};
  }
  if (const auto active = router_.active()) {
    const auto* snap = manager_.get(*active);
    if (snap && (snap->input_size() != spec.input_size ||
                 snap->output_size() != spec.output_size)) {
      throw std::invalid_argument{
          "register_io: installed NN shape mismatch for '" + spec.name + "'"};
    }
  }
  const io_handle handle = next_io_++;
  io_modules_.emplace(handle, std::move(spec));
  return handle;
}

bool liteflow_core::unregister_io(io_handle handle) {
  return io_modules_.erase(handle) > 0;
}

double liteflow_core::query_cost(const codegen::snapshot& snap) const noexcept {
  return costs_.snapshot_query_overhead +
         static_cast<double>(snap.program.mac_count()) *
             costs_.snapshot_mac_cost;
}

void liteflow_core::query_model(netsim::flow_id_t flow,
                                std::vector<fp::s64> input,
                                std::function<void(std::vector<fp::s64>)> done) {
  queries_.inc();
  const auto id = router_.route(flow);
  const auto* snap = id ? manager_.get(*id) : nullptr;
  if (!snap || input.size() != snap->input_size()) {
    if (done) done({});
    return;
  }
  // Pin the module while the inference is queued on the CPU — a snapshot
  // update may otherwise unload it before the work item runs.
  manager_.add_ref(*id);
  trace_.emit(sim_.now(), trace::event_type::inference_begin, flow, *id);
  cpu_.submit(kernelsim::task_category::datapath, query_cost(*snap),
              [this, flow, id = *id, snap, input = std::move(input),
               done = std::move(done)]() {
                std::vector<fp::s64> out(snap->output_size());
                snap->program.infer_into(input, out, scratch_);
                trace_.emit(sim_.now(), trace::event_type::inference_end,
                            flow, id);
                manager_.release(id);
                if (done) done(std::move(out));
              });
}

std::vector<fp::s64> liteflow_core::query_model_sync(
    netsim::flow_id_t flow, std::span<const fp::s64> input) {
  queries_.inc();
  const auto id = router_.route(flow);
  const auto* snap = id ? manager_.get(*id) : nullptr;
  if (!snap || input.size() != snap->input_size()) return {};
  cpu_.submit(kernelsim::task_category::datapath, query_cost(*snap));
  // Synchronous path: begin/end collapse to a zero-duration span (the CPU
  // charge above is fire-and-forget).
  trace_.emit(sim_.now(), trace::event_type::inference_begin, flow, *id);
  std::vector<fp::s64> out(snap->output_size());
  snap->program.infer_into(input, out, scratch_);
  trace_.emit(sim_.now(), trace::event_type::inference_end, flow, *id);
  return out;
}

fp::s64 liteflow_core::active_io_scale() const {
  const auto id = router_.active();
  if (!id) return 0;
  const auto* snap = manager_.get(*id);
  return snap ? snap->program.io_scale() : 0;
}

void liteflow_core::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  const std::string base = prefix + ".core";
  reg.register_counter(base + ".queries", queries_);
  router_.register_metrics(reg, base);
}

void liteflow_core::register_trace(trace::collector& col,
                                   const std::string& prefix) {
  const std::string base = prefix + ".core";
  col.attach(trace_, base);
  router_.register_trace(col, base);
}

void liteflow_core::register_monitor(adaptation_monitor& monitor) {
  if (!monitor.enabled()) return;
  manager_.set_removal_hook([this, &monitor](model_id id) {
    monitor.on_snapshot_removed(sim_.now(), id);
  });
}

}  // namespace lf::core
