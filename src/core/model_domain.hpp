// Model domain: N logical models sharing one datapath engine.
//
// The paper deploys three datapath functions backed by four NNs on one box
// (§5), but the original harnesses in this repository served exactly one
// model per engine — `inference_router`, `liteflow_core` and
// `rt::datapath_engine` all baked in a single active/standby snapshot pair.
// This header is the shared vocabulary that removes that assumption:
//
//   model_key        stable identifier of one *logical* model ("cc-aurora",
//                    "sched-ffnn", ...).  Distinct from core::model_id,
//                    which names one *installed snapshot* inside nn_manager;
//                    a logical model's lifecycle is a sequence of snapshot
//                    installs behind one stable key.
//   composite key    the flow caches stay keyed by a single 64-bit value so
//                    their probe loops are untouched; multi-model routing
//                    folds the model key into the top bits of the flow id.
//                    Key 0 maps a flow onto itself, so every single-model
//                    code path (and its fixed-seed output) is bit-for-bit
//                    unchanged.
//   model_domain     the per-engine registry of logical models: stable keys,
//                    display names and metrics prefixes.
//
// The header also carries the **shadow scoring** primitives (the live
// complement to §3.3's offline fidelity check): a seeded, deterministic
// flow sampler plus a divergence accumulator.  The standby snapshot runs on
// the sampled slice of live routes, its outputs are compared against the
// active's, and the accumulated divergence statistic gates switch_active —
// measure before you commit.  The scorer itself is plain (single-writer);
// the rt engine wraps it in a per-model spinlock, the simulated core uses
// it bare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/packet.hpp"

namespace lf::core {

/// Stable identifier of one logical model served by an engine.
using model_key = std::uint32_t;

/// The implicit model of every single-model harness.
inline constexpr model_key k_default_model = 0;

/// Bits of the composite key reserved for the flow id.  Flows must fit in
/// 48 bits and model keys in 16 — comfortably true for every harness (flow
/// ids are dense small integers; an engine serves a handful of models).
inline constexpr unsigned k_flow_key_bits = 48;
inline constexpr netsim::flow_id_t k_flow_key_mask =
    (netsim::flow_id_t{1} << k_flow_key_bits) - 1;

/// Fold (model, flow) into the single 64-bit key the flow caches probe on.
/// Exact (collision-free) under the bit-budget above, and the identity for
/// model 0 — which is what keeps single-model hashing, shard selection and
/// therefore fixed-seed outputs unchanged.
constexpr netsim::flow_id_t composite_flow_key(model_key m,
                                               netsim::flow_id_t flow) noexcept {
  return (flow & k_flow_key_mask) |
         (static_cast<netsim::flow_id_t>(m) << k_flow_key_bits);
}

/// Registry of the logical models one engine serves.  Key 0 is reserved for
/// the default model so single-model call sites need no registration at all.
class model_domain {
 public:
  struct slot {
    model_key key = 0;
    std::string name;
  };

  /// Register a logical model; returns its stable key.  Key 0 ("default")
  /// always exists; the first add() names it, later adds mint fresh keys.
  model_key add(std::string name);

  std::size_t count() const noexcept { return slots_.size(); }
  /// Display name; "model<k>" if the key was never named.
  std::string name_of(model_key key) const;
  std::optional<model_key> find(std::string_view name) const noexcept;

  /// Metrics/trace prefix for one model: "<base>" for the default model
  /// (single-model telemetry keys stay byte-identical), else
  /// "<base>.m<key>-<name>".
  std::string prefix_of(const std::string& base, model_key key) const;

  const std::vector<slot>& slots() const noexcept { return slots_; }

 private:
  std::vector<slot> slots_{{0, "default"}};
  bool default_named_ = false;
};

/// Shadow scoring knobs.  Rate 0 (the default) disables shadowing entirely:
/// no sampling hash, no standby inference, no gate — the zero-overhead
/// contract the regression tests pin down.
struct shadow_config {
  /// Fraction of *flows* (not packets) shadow-scored, deterministically
  /// selected by hashing (seed, model, flow).  Sampling whole flows keeps
  /// the sampled route set identical across runs with the same flow plan.
  double sample_rate = 0.0;
  std::uint64_t seed = 0x5eedc0de5eedc0deULL;
  /// Mean per-route output divergence (io_scale-normalized) above which the
  /// standby is considered unfaithful and the switch is blocked.
  double divergence_threshold = 0.05;
  /// Shadow samples required before a gated switch may be admitted — an
  /// unmeasured standby is treated as unproven, not as clean.
  std::size_t min_samples = 32;
  /// When false the scorer still accumulates (observability) but
  /// switch_active is never blocked.
  bool gate_enabled = true;

  bool active() const noexcept { return sample_rate > 0.0; }
};

/// Verdict of one gate consultation.
struct shadow_verdict {
  bool admit = true;
  std::size_t samples = 0;
  double mean_divergence = 0.0;
  double max_divergence = 0.0;
};

/// Divergence accumulator for one model's standby snapshot.  Plain data:
/// callers that share it across threads must wrap it in their own lock (the
/// rt engine uses a per-model spinlock; the simulated core is
/// single-threaded).
class shadow_scorer {
 public:
  /// Deterministic flow sampler: a pure splitmix64 hash of
  /// (seed, composite key) against the rate.  No state, no clock — the same
  /// (seed, model, flow) always lands on the same side, which is what makes
  /// the sampled route set reproducible run-over-run.
  static bool sampled(const shadow_config& cfg, model_key m,
                      netsim::flow_id_t flow) noexcept;

  /// Record one shadow comparison (mean |active - standby| over the output
  /// vector, in io_scale-normalized units).
  void record(double divergence) noexcept;

  /// Gen-tagged record: drops (and counts) the sample unless `candidate_gen`
  /// matches the bound generation.  This closes a misattribution race in
  /// concurrent callers: a worker that peeked candidate A inside its epoch
  /// guard can reach the scorer after the writer replaced A with B and
  /// reset/re-bound the evidence — A's divergence must not gate B.  The
  /// single-threaded sim path keeps using the untagged record().
  void record(double divergence, std::uint64_t candidate_gen) noexcept;

  /// Bind the evidence to one candidate generation (0 = unbound: every
  /// tagged record drops).  reset() unbinds.
  void bind(std::uint64_t candidate_gen) noexcept { bound_gen_ = candidate_gen; }
  std::uint64_t bound_gen() const noexcept { return bound_gen_; }
  /// Tagged records dropped for naming a generation other than the bound
  /// one (cumulative; survives reset()).
  std::uint64_t gen_mismatch_drops() const noexcept { return gen_drops_; }

  std::size_t samples() const noexcept { return samples_; }
  double mean_divergence() const noexcept {
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
  }
  double max_divergence() const noexcept { return max_; }

  /// Gate decision for the current evidence (pure; does not reset).
  shadow_verdict check(const shadow_config& cfg) const noexcept;

  /// Forget the evidence (a new standby invalidates the old one's score)
  /// and unbind the generation, so in-flight tagged records for the old
  /// candidate drop instead of polluting the fresh accumulator.
  void reset() noexcept;

 private:
  std::size_t samples_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t bound_gen_ = 0;
  std::uint64_t gen_drops_ = 0;
};

/// Mean absolute elementwise difference between two quantized output
/// vectors, each normalized by its own io_scale (generations may quantize
/// with different scales).  Sizes must match; returns +inf on mismatch so a
/// shape-incompatible standby can never pass the gate.
double shadow_divergence(std::span<const std::int64_t> active_out,
                         std::int64_t active_scale,
                         std::span<const std::int64_t> shadow_out,
                         std::int64_t shadow_scale) noexcept;

}  // namespace lf::core
