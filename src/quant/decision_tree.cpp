#include "quant/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lf::quant {
namespace {

struct sample_set {
  // Column-major inputs: inputs[f][i] is feature f of sample i.
  std::vector<std::vector<double>> inputs;
  // outputs[o][i].
  std::vector<std::vector<double>> outputs;
  std::size_t count = 0;
};

/// Sum of squared errors of `indices` around their per-output means.
double subset_sse(const sample_set& data, std::span<const std::size_t> indices) {
  double sse = 0.0;
  for (const auto& out : data.outputs) {
    double mean = 0.0;
    for (const auto i : indices) mean += out[i];
    mean /= static_cast<double>(indices.size());
    for (const auto i : indices) {
      const double d = out[i] - mean;
      sse += d * d;
    }
  }
  return sse;
}

}  // namespace

decision_tree_snapshot decision_tree_snapshot::distill(
    const nn::mlp& teacher, const dt_config& config) {
  if (config.max_depth == 0 || config.training_samples < 4 ||
      config.io_scale <= 0) {
    throw std::invalid_argument{"decision_tree: bad config"};
  }
  decision_tree_snapshot tree;
  tree.input_size_ = teacher.input_size();
  tree.output_size_ = teacher.output_size();
  tree.io_scale_ = config.io_scale;

  // Sample the teacher over the input box.
  rng gen{config.seed};
  sample_set data;
  data.count = config.training_samples;
  data.inputs.assign(tree.input_size_, std::vector<double>(data.count));
  data.outputs.assign(tree.output_size_, std::vector<double>(data.count));
  std::vector<double> x(tree.input_size_);
  for (std::size_t i = 0; i < data.count; ++i) {
    for (std::size_t f = 0; f < tree.input_size_; ++f) {
      x[f] = gen.uniform(config.input_low, config.input_high);
      data.inputs[f][i] = x[f];
    }
    const auto y = teacher.forward(x);
    for (std::size_t o = 0; o < tree.output_size_; ++o) {
      data.outputs[o][i] = y[o];
    }
  }

  const auto scale = static_cast<double>(config.io_scale);

  // Recursive CART construction (explicit stack of work items).
  struct work_item {
    std::vector<std::size_t> indices;
    std::size_t depth;
    int node_index;
  };
  std::vector<work_item> stack;
  std::vector<std::size_t> all(data.count);
  std::iota(all.begin(), all.end(), 0);
  tree.nodes_.emplace_back();
  stack.push_back({std::move(all), 0, 0});

  auto make_leaf = [&](const work_item& item) {
    auto& n = tree.nodes_[static_cast<std::size_t>(item.node_index)];
    n.feature = -1;
    n.leaf_value_q.resize(tree.output_size_);
    for (std::size_t o = 0; o < tree.output_size_; ++o) {
      double mean = 0.0;
      for (const auto i : item.indices) mean += data.outputs[o][i];
      mean /= static_cast<double>(item.indices.size());
      n.leaf_value_q[o] = static_cast<s64>(std::llround(mean * scale));
    }
  };

  while (!stack.empty()) {
    work_item item = std::move(stack.back());
    stack.pop_back();

    if (item.depth >= config.max_depth ||
        item.indices.size() < 2 * config.min_samples_leaf) {
      make_leaf(item);
      continue;
    }
    const double parent_sse = subset_sse(data, item.indices);
    if (parent_sse < 1e-12) {
      make_leaf(item);
      continue;
    }

    // Best (feature, threshold) over a quantile grid of candidates.
    double best_gain = 0.0;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;
    std::vector<std::size_t> best_left, best_right;
    std::vector<double> values(item.indices.size());
    for (std::size_t f = 0; f < tree.input_size_; ++f) {
      for (std::size_t k = 0; k < item.indices.size(); ++k) {
        values[k] = data.inputs[f][item.indices[k]];
      }
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t c = 1; c <= config.candidate_thresholds; ++c) {
        const double q = static_cast<double>(c) /
                         static_cast<double>(config.candidate_thresholds + 1);
        const double threshold =
            sorted[static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1))];
        std::vector<std::size_t> left, right;
        for (std::size_t k = 0; k < item.indices.size(); ++k) {
          (values[k] <= threshold ? left : right).push_back(item.indices[k]);
        }
        if (left.size() < config.min_samples_leaf ||
            right.size() < config.min_samples_leaf) {
          continue;
        }
        const double gain =
            parent_sse - subset_sse(data, left) - subset_sse(data, right);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = threshold;
          best_left = std::move(left);
          best_right = std::move(right);
        }
      }
    }
    if (best_gain <= 1e-12) {
      make_leaf(item);
      continue;
    }
    const int left_index = static_cast<int>(tree.nodes_.size());
    tree.nodes_.emplace_back();
    const int right_index = static_cast<int>(tree.nodes_.size());
    tree.nodes_.emplace_back();
    auto& n = tree.nodes_[static_cast<std::size_t>(item.node_index)];
    n.feature = static_cast<int>(best_feature);
    n.threshold_q = static_cast<s64>(std::llround(best_threshold * scale));
    n.left = left_index;
    n.right = right_index;
    stack.push_back({std::move(best_left), item.depth + 1, left_index});
    stack.push_back({std::move(best_right), item.depth + 1, right_index});
  }
  return tree;
}

std::vector<s64> decision_tree_snapshot::infer(
    std::span<const s64> input_q) const {
  if (input_q.size() != input_size_) {
    throw std::invalid_argument{"decision_tree::infer input size mismatch"};
  }
  const node* n = &nodes_[0];
  while (n->feature >= 0) {
    n = input_q[static_cast<std::size_t>(n->feature)] <= n->threshold_q
            ? &nodes_[static_cast<std::size_t>(n->left)]
            : &nodes_[static_cast<std::size_t>(n->right)];
  }
  return n->leaf_value_q;
}

std::vector<double> decision_tree_snapshot::infer_float(
    std::span<const double> input) const {
  std::vector<s64> q(input.size());
  const auto scale = static_cast<double>(io_scale_);
  for (std::size_t i = 0; i < input.size(); ++i) {
    q[i] = static_cast<s64>(std::llround(input[i] * scale));
  }
  const auto out_q = infer(q);
  std::vector<double> out(out_q.size());
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    out[i] = static_cast<double>(out_q[i]) / scale;
  }
  return out;
}

std::size_t decision_tree_snapshot::leaf_count() const noexcept {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += (node.feature < 0);
  return n;
}

std::size_t decision_tree_snapshot::depth() const noexcept {
  // Breadth-first walk computing depth.
  std::vector<std::pair<int, std::size_t>> queue{{0, 0}};
  std::size_t max_depth = 0;
  while (!queue.empty()) {
    const auto [idx, d] = queue.back();
    queue.pop_back();
    max_depth = std::max(max_depth, d);
    const auto& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.feature >= 0) {
      queue.push_back({n.left, d + 1});
      queue.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

double decision_tree_snapshot::mean_abs_error(const nn::mlp& teacher,
                                              std::size_t probes,
                                              std::uint64_t seed) const {
  rng gen{seed};
  double total = 0.0;
  std::size_t n = 0;
  std::vector<double> x(input_size_);
  for (std::size_t i = 0; i < probes; ++i) {
    for (auto& v : x) v = gen.uniform(-1.0, 1.0);
    const auto y = teacher.forward(x);
    const auto yt = infer_float(x);
    for (std::size_t o = 0; o < output_size_; ++o) {
      total += std::abs(y[o] - yt[o]);
      ++n;
    }
  }
  return total / static_cast<double>(n);
}

}  // namespace lf::quant
