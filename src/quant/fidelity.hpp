// Fidelity loss (§3.3, Eq. 1): L(x) = |f'(x) - f(x)| between the userspace
// model f and the kernel snapshot f'.  LiteFlow updates the snapshot only
// when min over the batch of L(x) exceeds alpha * (Omax - Omin) — the most
// conservative choice, minimizing snapshot-update interference.
#pragma once

#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "quant/quantized_mlp.hpp"

namespace lf::quant {

struct fidelity_report {
  double min_loss = 0.0;
  double max_loss = 0.0;
  double mean_loss = 0.0;
  std::size_t samples = 0;
};

/// Evaluate |f'(x) - f(x)| over a batch of inputs.  Multi-output models use
/// the max over output dimensions per sample.
fidelity_report evaluate_fidelity(const nn::mlp& f, const quantized_mlp& f_prime,
                                  std::span<const std::vector<double>> batch);

/// The paper's necessity test: update only if the *minimum* fidelity loss
/// exceeds alpha * (o_max - o_min).
bool update_necessary(const fidelity_report& report, double alpha,
                      double o_min, double o_max);

}  // namespace lf::quant
