#include "quant/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lf::quant {

fidelity_report evaluate_fidelity(const nn::mlp& f,
                                  const quantized_mlp& f_prime,
                                  std::span<const std::vector<double>> batch) {
  fidelity_report report;
  if (batch.empty()) return report;
  if (f.input_size() != f_prime.input_size() ||
      f.output_size() != f_prime.output_size()) {
    throw std::invalid_argument{"evaluate_fidelity: model shape mismatch"};
  }
  report.min_loss = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const auto& x : batch) {
    const auto y = f.forward(x);
    const auto y_prime = f_prime.infer_float(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      loss = std::max(loss, std::abs(y_prime[i] - y[i]));
    }
    report.min_loss = std::min(report.min_loss, loss);
    report.max_loss = std::max(report.max_loss, loss);
    total += loss;
  }
  report.samples = batch.size();
  report.mean_loss = total / static_cast<double>(batch.size());
  return report;
}

bool update_necessary(const fidelity_report& report, double alpha,
                      double o_min, double o_max) {
  if (report.samples == 0) return false;
  return report.min_loss > alpha * (o_max - o_min);
}

}  // namespace lf::quant
