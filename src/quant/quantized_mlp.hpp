// The integer-only snapshot program (§3.1).
//
// A quantized_mlp is what the paper installs into the kernel as a generated
// module: weights, biases and activation lookup tables baked into integer
// arrays, evaluated with 64-bit integer arithmetic only.  src/codegen emits
// this same program as C source text; this class is the executable form the
// simulated kernel runs (and the oracle the generated code is golden-tested
// against).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "nn/activation.hpp"
#include "quant/lut.hpp"
#include "util/fixed_point.hpp"

namespace lf::quant {

using fp::s64;

class quantized_mlp;

/// Caller-owned scratch for the zero-allocation fast path.  Holds the two
/// ping-pong activation buffers `infer_into` works in; reusing one scratch
/// across calls makes inference allocation-free after the first use.
class inference_scratch {
 public:
  inference_scratch() = default;

  /// Pre-size for a program (optional; infer_into grows it on demand).
  void reserve(const quantized_mlp& program);

 private:
  friend class quantized_mlp;
  std::vector<s64> buf_;
};

/// One quantized fully-connected layer followed by its activation.
struct qdense_layer {
  std::size_t input_size = 0;
  std::size_t output_size = 0;
  std::vector<s64> weights;  ///< output-major, scale = weight_scale
  std::vector<s64> biases;   ///< scale = weight_scale * io_scale
  s64 weight_scale = 1;      ///< divisor applied after the MAC to requantize
  nn::activation act = nn::activation::linear;
  std::optional<lookup_table> lut;  ///< present iff act is tanh/sigmoid
};

class quantized_mlp {
 public:
  quantized_mlp(std::size_t input_size, s64 io_scale,
                std::vector<qdense_layer> layers);

  std::size_t input_size() const noexcept { return input_size_; }
  std::size_t output_size() const noexcept;
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const qdense_layer& layer(std::size_t i) const { return layers_.at(i); }

  /// Fixed-point scale of inputs and outputs: q ~= value * io_scale.
  /// This is the paper's scaling factor C ("1000x scaling").
  s64 io_scale() const noexcept { return io_scale_; }

  /// Integer reference inference (this is the exact arithmetic the kernel
  /// snapshot performs; no floating point anywhere on this path).  Kept as
  /// the allocating legacy path: it walks the per-layer vectors with fully
  /// saturating arithmetic and is the oracle `infer_into` is property-tested
  /// against bit-for-bit.
  std::vector<s64> infer(std::span<const s64> input_q) const;

  /// Zero-allocation fast path: same outputs as infer(), bit-for-bit, but
  /// reads parameters from one contiguous arena, reuses caller-owned scratch
  /// (no heap traffic once warm), and — for layers whose precomputed
  /// accumulator bound proves saturation can never trigger — runs a plain
  /// +/* MAC loop with the activation dispatch hoisted out of the loop.
  /// `out.size()` must equal output_size().
  void infer_into(std::span<const s64> input_q, std::span<s64> out,
                  inference_scratch& scratch) const;

  /// Batched fast path: run `k` independent inferences in one call,
  /// bit-for-bit identical to k scalar infer_into() calls.  `inputs` is
  /// row-major k x input_size(), `outs` row-major k x output_size().  The
  /// loop nest is layer-outer / sample-inner, so each layer's weight rows
  /// stream from cache once per *batch* instead of once per sample — this
  /// is the "one weight pass over K flows" the rt engine's route_batch
  /// feeds (same-generation packet runs), and the shape the future SIMD/JIT
  /// backend will specialize.  Zero-allocation once `scratch` is warm
  /// (internally chunked, so scratch stays bounded for any k).
  void infer_batch_into(std::span<const s64> inputs, std::size_t k,
                        std::span<s64> outs, inference_scratch& scratch) const;

  /// Largest |input| (in io_scale units) for which the per-layer
  /// no-saturation proof holds; inputs beyond it take the saturating path.
  s64 fastpath_input_bound() const noexcept { return fastpath_input_bound_; }

  /// True if layer i's MAC provably cannot saturate for inputs within
  /// fastpath_input_bound() (drives both infer_into and the C emitter).
  bool layer_saturation_free(std::size_t i) const {
    return descs_.at(i).saturation_free;
  }

  /// Float convenience wrapper: quantize inputs, run the integer program,
  /// dequantize outputs.  Used for fidelity evaluation against the FP model.
  std::vector<double> infer_float(std::span<const double> input) const;

  /// Integer multiply-accumulate count of one inference (cost model input).
  std::size_t mac_count() const noexcept;

  /// Total bytes of baked parameters (weights + biases + LUTs).
  std::size_t parameter_bytes() const noexcept;

 private:
  friend class inference_scratch;

  /// Flat per-layer view into the parameter arena plus everything the inner
  /// loops need, so the hot path never chases the qdense_layer vectors.
  struct layer_desc {
    std::size_t input_size = 0;
    std::size_t output_size = 0;
    std::size_t weights_off = 0;  ///< arena offset, output-major rows
    std::size_t biases_off = 0;   ///< arena offset
    s64 weight_scale = 1;
    int shift = -1;   ///< log2(weight_scale) if it is a power of two, else -1
    s64 half = 0;     ///< weight_scale / 2, the round-to-nearest bias
    nn::activation act = nn::activation::linear;
    // LUT parameters (valid iff act is tanh/sigmoid):
    std::size_t lut_off = 0;
    s64 lut_entries = 0;
    s64 lut_lo_q = 0;
    s64 lut_step_num = 0;
    bool lut_small = false;  ///< interpolation fits 64-bit arithmetic
    bool saturation_free = false;
  };

  void build_arena();

  template <bool Saturating, nn::activation Act>
  void run_layer(const layer_desc& d, const s64* in, s64* out) const;

  std::size_t input_size_;
  s64 io_scale_;
  std::vector<qdense_layer> layers_;
  // Fast-path state, derived from layers_ at construction:
  std::vector<s64> arena_;          ///< weights | biases | lut, per layer
  std::vector<layer_desc> descs_;
  s64 fastpath_input_bound_ = 0;
  std::size_t max_width_ = 0;       ///< widest activation vector
};

}  // namespace lf::quant
