// The integer-only snapshot program (§3.1).
//
// A quantized_mlp is what the paper installs into the kernel as a generated
// module: weights, biases and activation lookup tables baked into integer
// arrays, evaluated with 64-bit integer arithmetic only.  src/codegen emits
// this same program as C source text; this class is the executable form the
// simulated kernel runs (and the oracle the generated code is golden-tested
// against).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "nn/activation.hpp"
#include "quant/lut.hpp"
#include "util/fixed_point.hpp"

namespace lf::quant {

using fp::s64;

/// One quantized fully-connected layer followed by its activation.
struct qdense_layer {
  std::size_t input_size = 0;
  std::size_t output_size = 0;
  std::vector<s64> weights;  ///< output-major, scale = weight_scale
  std::vector<s64> biases;   ///< scale = weight_scale * io_scale
  s64 weight_scale = 1;      ///< divisor applied after the MAC to requantize
  nn::activation act = nn::activation::linear;
  std::optional<lookup_table> lut;  ///< present iff act is tanh/sigmoid
};

class quantized_mlp {
 public:
  quantized_mlp(std::size_t input_size, s64 io_scale,
                std::vector<qdense_layer> layers);

  std::size_t input_size() const noexcept { return input_size_; }
  std::size_t output_size() const noexcept;
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const qdense_layer& layer(std::size_t i) const { return layers_.at(i); }

  /// Fixed-point scale of inputs and outputs: q ~= value * io_scale.
  /// This is the paper's scaling factor C ("1000x scaling").
  s64 io_scale() const noexcept { return io_scale_; }

  /// Integer fast-path inference (this is the exact arithmetic the kernel
  /// snapshot performs; no floating point anywhere on this path).
  std::vector<s64> infer(std::span<const s64> input_q) const;

  /// Float convenience wrapper: quantize inputs, run the integer program,
  /// dequantize outputs.  Used for fidelity evaluation against the FP model.
  std::vector<double> infer_float(std::span<const double> input) const;

  /// Integer multiply-accumulate count of one inference (cost model input).
  std::size_t mac_count() const noexcept;

  /// Total bytes of baked parameters (weights + biases + LUTs).
  std::size_t parameter_bytes() const noexcept;

 private:
  std::size_t input_size_;
  s64 io_scale_;
  std::vector<qdense_layer> layers_;
};

}  // namespace lf::quant
