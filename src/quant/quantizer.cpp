#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lf::quant {
namespace {

/// Largest power-of-two scale S such that |w_max| * S still leaves ample
/// headroom in the 64-bit MAC, capped by max_scale.  Larger S = finer weight
/// resolution.
s64 choose_weight_scale(std::span<const double> weights, s64 max_scale) {
  double w_max = 0.0;
  for (const double w : weights) w_max = std::max(w_max, std::abs(w));
  if (w_max == 0.0) return max_scale;
  // Keep |w_q| below 2^31 so that (w_q * x_q) stays far from s64 overflow
  // even after summing thousands of terms.
  s64 scale = 1;
  while (scale < max_scale &&
         w_max * static_cast<double>(scale * 2) < 2147483647.0) {
    scale *= 2;
  }
  return scale;
}

}  // namespace

quantized_mlp quantize(const nn::mlp& model, const quantizer_config& config) {
  if (config.io_scale <= 0) {
    throw std::invalid_argument{"quantizer: io_scale must be positive"};
  }
  std::vector<qdense_layer> layers;
  layers.reserve(model.layer_count());
  const auto io_scale = static_cast<double>(config.io_scale);
  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    const auto& fl = model.layer(li);
    qdense_layer ql;
    ql.input_size = fl.input_size();
    ql.output_size = fl.output_size();
    ql.act = fl.act();
    ql.weight_scale =
        choose_weight_scale(fl.weights(), config.max_weight_scale);
    const auto w_scale = static_cast<double>(ql.weight_scale);
    ql.weights.reserve(fl.weights().size());
    for (const double w : fl.weights()) {
      ql.weights.push_back(static_cast<s64>(std::llround(w * w_scale)));
    }
    ql.biases.reserve(fl.biases().size());
    for (const double b : fl.biases()) {
      // Bias participates in the MAC whose scale is weight_scale * io_scale.
      ql.biases.push_back(
          static_cast<s64>(std::llround(b * w_scale * io_scale)));
    }
    if (ql.act == nn::activation::tanh_act ||
        ql.act == nn::activation::sigmoid) {
      ql.lut = lookup_table::for_activation(ql.act, config.lut_entries,
                                            config.io_scale);
    }
    layers.push_back(std::move(ql));
  }
  return quantized_mlp{model.input_size(), config.io_scale, std::move(layers)};
}

quantized_mlp quantize(const nn::mlp& model) {
  return quantize(model, quantizer_config{});
}

}  // namespace lf::quant
