#include "quant/quantized_mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace lf::quant {

quantized_mlp::quantized_mlp(std::size_t input_size, s64 io_scale,
                             std::vector<qdense_layer> layers)
    : input_size_{input_size}, io_scale_{io_scale}, layers_{std::move(layers)} {
  if (layers_.empty()) throw std::invalid_argument{"quantized_mlp: no layers"};
  if (io_scale <= 0) throw std::invalid_argument{"quantized_mlp: bad scale"};
  std::size_t in = input_size_;
  for (const auto& layer : layers_) {
    if (layer.input_size != in) {
      throw std::invalid_argument{"quantized_mlp: layer size chain broken"};
    }
    if (layer.weights.size() != layer.input_size * layer.output_size ||
        layer.biases.size() != layer.output_size) {
      throw std::invalid_argument{"quantized_mlp: parameter shape mismatch"};
    }
    if (layer.weight_scale <= 0) {
      throw std::invalid_argument{"quantized_mlp: bad weight scale"};
    }
    const bool needs_lut = layer.act == nn::activation::tanh_act ||
                           layer.act == nn::activation::sigmoid;
    if (needs_lut != layer.lut.has_value()) {
      throw std::invalid_argument{
          "quantized_mlp: lut presence inconsistent with activation"};
    }
    in = layer.output_size;
  }
}

std::size_t quantized_mlp::output_size() const noexcept {
  return layers_.back().output_size;
}

std::vector<s64> quantized_mlp::infer(std::span<const s64> input_q) const {
  if (input_q.size() != input_size_) {
    throw std::invalid_argument{"quantized_mlp::infer input size mismatch"};
  }
  std::vector<s64> cur(input_q.begin(), input_q.end());
  std::vector<s64> next;
  for (const auto& layer : layers_) {
    next.assign(layer.output_size, 0);
    for (std::size_t i = 0; i < layer.output_size; ++i) {
      // MAC at scale weight_scale * io_scale; biases are pre-scaled to match.
      s64 acc = layer.biases[i];
      const s64* row = &layer.weights[i * layer.input_size];
      for (std::size_t j = 0; j < layer.input_size; ++j) {
        acc = fp::sat_add(acc, fp::sat_mul(row[j], cur[j]));
      }
      // Requantize back to io_scale before the activation.
      const s64 pre = fp::div_round(acc, layer.weight_scale);
      switch (layer.act) {
        case nn::activation::linear:
          next[i] = pre;
          break;
        case nn::activation::relu:
          next[i] = pre > 0 ? pre : 0;
          break;
        case nn::activation::tanh_act:
        case nn::activation::sigmoid:
          next[i] = layer.lut->eval(pre);
          break;
      }
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<double> quantized_mlp::infer_float(
    std::span<const double> input) const {
  if (input.size() != input_size_) {
    throw std::invalid_argument{"quantized_mlp::infer_float size mismatch"};
  }
  std::vector<s64> q(input.size());
  const auto scale = static_cast<double>(io_scale_);
  for (std::size_t i = 0; i < input.size(); ++i) {
    q[i] = static_cast<s64>(std::llround(input[i] * scale));
  }
  const auto out_q = infer(q);
  std::vector<double> out(out_q.size());
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    out[i] = static_cast<double>(out_q[i]) / scale;
  }
  return out;
}

std::size_t quantized_mlp::mac_count() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.input_size * layer.output_size;
  return n;
}

std::size_t quantized_mlp::parameter_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += (layer.weights.size() + layer.biases.size()) * sizeof(s64);
    if (layer.lut) n += layer.lut->values().size() * sizeof(s64);
  }
  return n;
}

}  // namespace lf::quant
