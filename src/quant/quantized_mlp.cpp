#include "quant/quantized_mlp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace lf::quant {
namespace {

/// Arena-based LUT evaluation.  Must match lookup_table::eval bit-for-bit —
/// infer_into routes through this so the hot path touches only the arena.
inline s64 lut_eval_arena(const s64* values, s64 n, s64 lo_q, s64 step_num,
                          s64 x) noexcept {
  if (x <= lo_q) return values[0];
  if (x >= lo_q + step_num) return values[n - 1];
  const __int128 scaled = static_cast<__int128>(x - lo_q) * (n - 1);
  const auto idx = static_cast<s64>(scaled / step_num);
  if (idx >= n - 1) return values[n - 1];
  const auto rem = static_cast<s64>(scaled % step_num);
  const s64 y0 = values[idx];
  const s64 y1 = values[idx + 1];
  return y0 + fp::mul_div(y1 - y0, rem, step_num);
}

/// 64-bit-only LUT evaluation, valid when build_arena proved both
/// (n-1)*step_num and max|y1-y0|*(step_num-1) fit in s64: then every
/// intermediate equals the 128-bit version's exactly (div_round and mul_div
/// share the round-to-nearest-ties-away rule), just without the __int128
/// division — which is a libgcc call on x86-64 and dominates tanh layers.
inline s64 lut_eval_small(const s64* values, s64 n, s64 lo_q, s64 step_num,
                          s64 x) noexcept {
  if (x <= lo_q) return values[0];
  if (x >= lo_q + step_num) return values[n - 1];
  const s64 scaled = (x - lo_q) * (n - 1);
  const s64 idx = scaled / step_num;
  if (idx >= n - 1) return values[n - 1];
  const s64 rem = scaled % step_num;
  const s64 y0 = values[idx];
  const s64 y1 = values[idx + 1];
  return y0 + fp::div_round((y1 - y0) * rem, step_num);
}

inline __int128 abs128(s64 v) noexcept {
  return v < 0 ? -static_cast<__int128>(v) : static_cast<__int128>(v);
}

/// True when lut_eval_small's intermediates provably fit in s64 for any
/// input, i.e. (n-1)*step_num and max adjacent delta * (step_num-1) do.
bool lut_fits_64bit(const std::vector<s64>& values, s64 step_num) {
  constexpr __int128 lim = fp::s64_max;
  const auto n = static_cast<s64>(values.size());
  if (static_cast<__int128>(n - 1) * step_num > lim) return false;
  __int128 max_dy = 0;
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    max_dy = std::max(max_dy, abs128(values[i + 1]) + abs128(values[i]));
  }
  return max_dy * (step_num - 1) <= lim;
}

}  // namespace

void inference_scratch::reserve(const quantized_mlp& program) {
  buf_.resize(2 * program.max_width_);
}

quantized_mlp::quantized_mlp(std::size_t input_size, s64 io_scale,
                             std::vector<qdense_layer> layers)
    : input_size_{input_size}, io_scale_{io_scale}, layers_{std::move(layers)} {
  if (layers_.empty()) throw std::invalid_argument{"quantized_mlp: no layers"};
  if (io_scale <= 0) throw std::invalid_argument{"quantized_mlp: bad scale"};
  std::size_t in = input_size_;
  for (const auto& layer : layers_) {
    if (layer.input_size != in) {
      throw std::invalid_argument{"quantized_mlp: layer size chain broken"};
    }
    if (layer.weights.size() != layer.input_size * layer.output_size ||
        layer.biases.size() != layer.output_size) {
      throw std::invalid_argument{"quantized_mlp: parameter shape mismatch"};
    }
    if (layer.weight_scale <= 0) {
      throw std::invalid_argument{"quantized_mlp: bad weight scale"};
    }
    const bool needs_lut = layer.act == nn::activation::tanh_act ||
                           layer.act == nn::activation::sigmoid;
    if (needs_lut != layer.lut.has_value()) {
      throw std::invalid_argument{
          "quantized_mlp: lut presence inconsistent with activation"};
    }
    in = layer.output_size;
  }
  build_arena();
}

void quantized_mlp::build_arena() {
  std::size_t total = 0;
  for (const auto& l : layers_) {
    total += l.weights.size() + l.biases.size();
    if (l.lut) total += l.lut->values().size();
  }
  arena_.reserve(total);
  descs_.reserve(layers_.size());
  max_width_ = input_size_;

  // Fast-path contract: the no-saturation proof assumes |input| <= bound.
  // io_scale * 2^20 covers physical values up to ~a million in io units —
  // far beyond anything the datapath feeds — while leaving the bound small
  // enough that realistic layers prove saturation-free.
  fastpath_input_bound_ = fp::sat_mul(io_scale_, s64{1} << 20);

  constexpr __int128 lim = fp::s64_max;
  __int128 in_bound = fastpath_input_bound_;
  for (const auto& l : layers_) {
    layer_desc d;
    d.input_size = l.input_size;
    d.output_size = l.output_size;
    d.weight_scale = l.weight_scale;
    d.act = l.act;
    // The quantizer always picks power-of-two weight scales; requantization
    // then reduces to a shift with a rounding bias (equal to div_round for
    // every in-bound accumulator — the +half headroom is checked below).
    if ((l.weight_scale & (l.weight_scale - 1)) == 0) {
      d.shift =
          std::countr_zero(static_cast<std::uint64_t>(l.weight_scale));
      d.half = l.weight_scale >> 1;
    }
    d.weights_off = arena_.size();
    arena_.insert(arena_.end(), l.weights.begin(), l.weights.end());
    d.biases_off = arena_.size();
    arena_.insert(arena_.end(), l.biases.begin(), l.biases.end());
    if (l.lut) {
      const auto& vals = l.lut->values();
      d.lut_off = arena_.size();
      arena_.insert(arena_.end(), vals.begin(), vals.end());
      d.lut_entries = static_cast<s64>(vals.size());
      d.lut_lo_q = l.lut->domain_low_q();
      d.lut_step_num = l.lut->domain_span_q();
      d.lut_small = lut_fits_64bit(vals, d.lut_step_num);
    }

    // Worst-case accumulator: |bias_i| + sum_j |w_ij| * in_bound.  If the
    // worst neuron stays within s64, no partial sum of the MAC can overflow
    // in any summation order, so plain wrapping-free arithmetic is exact.
    bool sat_free = true;
    __int128 layer_acc_max = 0;
    for (std::size_t i = 0; i < l.output_size && sat_free; ++i) {
      __int128 a = abs128(l.biases[i]);
      const s64* row = &l.weights[i * l.input_size];
      for (std::size_t j = 0; j < l.input_size; ++j) {
        a += abs128(row[j]) * in_bound;
        if (a > lim) {
          sat_free = false;
          break;
        }
      }
      layer_acc_max = std::max(layer_acc_max, a);
    }
    // Shift-based rounding adds `half` to |acc| before the shift; fold that
    // headroom into the proof so the fast path stays exact.
    if (sat_free && d.shift >= 0 && layer_acc_max + d.half > lim) {
      sat_free = false;
    }
    d.saturation_free = sat_free;

    // Propagate this layer's output bound as the next layer's input bound.
    if (l.lut) {
      // LUT outputs clamp to the table's value range no matter the input.
      __int128 lut_max = 0;
      for (const s64 v : l.lut->values()) {
        lut_max = std::max(lut_max, abs128(v));
      }
      in_bound = lut_max;
    } else {
      // linear/relu: |out| <= |div_round(acc, ws)| <= acc_bound/ws + 1, and
      // the saturating fallback clamps to s64 either way.
      __int128 pre = sat_free ? layer_acc_max / l.weight_scale + 1 : lim;
      in_bound = std::min(pre, lim);
    }

    max_width_ = std::max(max_width_, l.output_size);
    descs_.push_back(d);
  }
}

std::size_t quantized_mlp::output_size() const noexcept {
  return layers_.back().output_size;
}

std::vector<s64> quantized_mlp::infer(std::span<const s64> input_q) const {
  if (input_q.size() != input_size_) {
    throw std::invalid_argument{"quantized_mlp::infer input size mismatch"};
  }
  std::vector<s64> cur(input_q.begin(), input_q.end());
  std::vector<s64> next;
  for (const auto& layer : layers_) {
    next.assign(layer.output_size, 0);
    for (std::size_t i = 0; i < layer.output_size; ++i) {
      // MAC at scale weight_scale * io_scale; biases are pre-scaled to match.
      s64 acc = layer.biases[i];
      const s64* row = &layer.weights[i * layer.input_size];
      for (std::size_t j = 0; j < layer.input_size; ++j) {
        acc = fp::sat_add(acc, fp::sat_mul(row[j], cur[j]));
      }
      // Requantize back to io_scale before the activation.
      const s64 pre = fp::div_round(acc, layer.weight_scale);
      switch (layer.act) {
        case nn::activation::linear:
          next[i] = pre;
          break;
        case nn::activation::relu:
          next[i] = pre > 0 ? pre : 0;
          break;
        case nn::activation::tanh_act:
        case nn::activation::sigmoid:
          next[i] = layer.lut->eval(pre);
          break;
      }
    }
    cur.swap(next);
  }
  return cur;
}

template <bool Saturating, nn::activation Act>
void quantized_mlp::run_layer(const layer_desc& d, const s64* in,
                              s64* out) const {
  const s64* __restrict w = arena_.data() + d.weights_off;
  const s64* __restrict b = arena_.data() + d.biases_off;
  const s64* lut = d.lut_entries != 0 ? arena_.data() + d.lut_off : nullptr;
  const std::size_t n = d.input_size;
  for (std::size_t i = 0; i < d.output_size; ++i) {
    const s64* __restrict row = w + i * n;
    s64 acc;
    if constexpr (Saturating) {
      acc = b[i];
      for (std::size_t j = 0; j < n; ++j) {
        acc = fp::sat_add(acc, fp::sat_mul(row[j], in[j]));
      }
    } else {
      // The bound proof guarantees every partial sum is in range, so the
      // four accumulators (breaking the add dependency chain) reassociate
      // without changing the result — and without signed-overflow UB.
      s64 a0 = 0, a1 = 0, a2 = 0, a3 = 0;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        a0 += row[j] * in[j];
        a1 += row[j + 1] * in[j + 1];
        a2 += row[j + 2] * in[j + 2];
        a3 += row[j + 3] * in[j + 3];
      }
      acc = b[i] + ((a0 + a1) + (a2 + a3));
      for (; j < n; ++j) acc += row[j] * in[j];
    }
    s64 pre;
    if constexpr (!Saturating) {
      // Power-of-two requantization without the hardware divide: round to
      // nearest, ties away from zero, on the magnitude.  Exact vs div_round
      // for all in-bound accumulators (the +half headroom is proven).
      if (d.shift >= 0) {
        pre = acc >= 0 ? (acc + d.half) >> d.shift
                       : -((-acc + d.half) >> d.shift);
      } else {
        pre = fp::div_round(acc, d.weight_scale);
      }
    } else {
      pre = fp::div_round(acc, d.weight_scale);
    }
    if constexpr (Act == nn::activation::linear) {
      out[i] = pre;
    } else if constexpr (Act == nn::activation::relu) {
      out[i] = pre > 0 ? pre : 0;
    } else {
      out[i] = d.lut_small ? lut_eval_small(lut, d.lut_entries, d.lut_lo_q,
                                            d.lut_step_num, pre)
                           : lut_eval_arena(lut, d.lut_entries, d.lut_lo_q,
                                            d.lut_step_num, pre);
    }
  }
}

void quantized_mlp::infer_into(std::span<const s64> input_q, std::span<s64> out,
                               inference_scratch& scratch) const {
  if (input_q.size() != input_size_) {
    throw std::invalid_argument{"quantized_mlp::infer_into input size mismatch"};
  }
  if (out.size() != output_size()) {
    throw std::invalid_argument{
        "quantized_mlp::infer_into output size mismatch"};
  }
  if (scratch.buf_.size() < 2 * max_width_) scratch.buf_.resize(2 * max_width_);

  // One pass over the inputs picks the mode for the whole call: within the
  // precomputed bound the per-layer proofs apply; beyond it everything runs
  // saturating (bit-identical to infer() either way).
  bool in_bounds = true;
  for (const s64 x : input_q) {
    if (x > fastpath_input_bound_ || x < -fastpath_input_bound_) {
      in_bounds = false;
      break;
    }
  }

  s64* const half_a = scratch.buf_.data();
  s64* const half_b = scratch.buf_.data() + max_width_;
  const s64* cur = input_q.data();
  for (std::size_t li = 0; li < descs_.size(); ++li) {
    const auto& d = descs_[li];
    s64* const dst = (li + 1 == descs_.size())
                         ? out.data()
                         : (li % 2 == 0 ? half_a : half_b);
    // Activation dispatch hoisted out of the neuron loop: one switch per
    // layer selects a fully specialized inner loop.
    const bool fast = in_bounds && d.saturation_free;
    switch (d.act) {
      case nn::activation::linear:
        fast ? run_layer<false, nn::activation::linear>(d, cur, dst)
             : run_layer<true, nn::activation::linear>(d, cur, dst);
        break;
      case nn::activation::relu:
        fast ? run_layer<false, nn::activation::relu>(d, cur, dst)
             : run_layer<true, nn::activation::relu>(d, cur, dst);
        break;
      case nn::activation::tanh_act:
      case nn::activation::sigmoid:
        fast ? run_layer<false, nn::activation::tanh_act>(d, cur, dst)
             : run_layer<true, nn::activation::tanh_act>(d, cur, dst);
        break;
    }
    cur = dst;
  }
}

void quantized_mlp::infer_batch_into(std::span<const s64> inputs,
                                     std::size_t k, std::span<s64> outs,
                                     inference_scratch& scratch) const {
  if (inputs.size() != k * input_size_) {
    throw std::invalid_argument{
        "quantized_mlp::infer_batch_into input size mismatch"};
  }
  if (outs.size() != k * output_size()) {
    throw std::invalid_argument{
        "quantized_mlp::infer_batch_into output size mismatch"};
  }
  // Bound the scratch footprint for arbitrarily large batches: the weight
  // pass is amortized within each chunk, and 32 samples already amortize
  // the per-layer dispatch and weight streaming almost completely.
  constexpr std::size_t k_chunk = 32;
  const std::size_t chunk = k < k_chunk ? k : k_chunk;
  if (scratch.buf_.size() < 2 * max_width_ * chunk) {
    scratch.buf_.resize(2 * max_width_ * chunk);
  }
  const std::size_t out_sz = output_size();

  for (std::size_t base = 0; base < k; base += k_chunk) {
    const std::size_t c = std::min(k_chunk, k - base);
    // Per-sample mode so each sample's result matches its scalar
    // infer_into() exactly: within the bound the no-saturation proofs
    // apply, beyond it that sample runs fully saturating.
    bool fast_mode[k_chunk];
    for (std::size_t s = 0; s < c; ++s) {
      const s64* in = inputs.data() + (base + s) * input_size_;
      bool in_bounds = true;
      for (std::size_t j = 0; j < input_size_; ++j) {
        if (in[j] > fastpath_input_bound_ || in[j] < -fastpath_input_bound_) {
          in_bounds = false;
          break;
        }
      }
      fast_mode[s] = in_bounds;
    }

    s64* const half_a = scratch.buf_.data();
    s64* const half_b = scratch.buf_.data() + max_width_ * chunk;
    for (std::size_t li = 0; li < descs_.size(); ++li) {
      const auto& d = descs_[li];
      const bool last = li + 1 == descs_.size();
      s64* const dst_base = last ? nullptr : (li % 2 == 0 ? half_a : half_b);
      // Layer-outer / sample-inner: d's weight rows are read c times while
      // hot instead of being evicted between samples by the other layers.
      for (std::size_t s = 0; s < c; ++s) {
        const s64* in = li == 0 ? inputs.data() + (base + s) * input_size_
                                : (li % 2 == 0 ? half_b : half_a) +
                                      s * max_width_;
        s64* const dst = last ? outs.data() + (base + s) * out_sz
                              : dst_base + s * max_width_;
        const bool fast = fast_mode[s] && d.saturation_free;
        switch (d.act) {
          case nn::activation::linear:
            fast ? run_layer<false, nn::activation::linear>(d, in, dst)
                 : run_layer<true, nn::activation::linear>(d, in, dst);
            break;
          case nn::activation::relu:
            fast ? run_layer<false, nn::activation::relu>(d, in, dst)
                 : run_layer<true, nn::activation::relu>(d, in, dst);
            break;
          case nn::activation::tanh_act:
          case nn::activation::sigmoid:
            fast ? run_layer<false, nn::activation::tanh_act>(d, in, dst)
                 : run_layer<true, nn::activation::tanh_act>(d, in, dst);
            break;
        }
      }
    }
  }
}

std::vector<double> quantized_mlp::infer_float(
    std::span<const double> input) const {
  if (input.size() != input_size_) {
    throw std::invalid_argument{"quantized_mlp::infer_float size mismatch"};
  }
  std::vector<s64> q(input.size());
  const auto scale = static_cast<double>(io_scale_);
  for (std::size_t i = 0; i < input.size(); ++i) {
    // Saturate instead of llround's UB when the scaled value leaves s64.
    q[i] = fp::sat_quantize(input[i] * scale);
  }
  const auto out_q = infer(q);
  std::vector<double> out(out_q.size());
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    out[i] = static_cast<double>(out_q[i]) / scale;
  }
  return out;
}

std::size_t quantized_mlp::mac_count() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.input_size * layer.output_size;
  return n;
}

std::size_t quantized_mlp::parameter_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += (layer.weights.size() + layer.biases.size()) * sizeof(s64);
    if (layer.lut) n += layer.lut->values().size() * sizeof(s64);
  }
  return n;
}

}  // namespace lf::quant
