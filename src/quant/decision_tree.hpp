// Decision-tree snapshot: the paper's other "lightweight NN" option.
//
// §2.3 discusses converting a NN into a C/C++-compatible decision tree
// (NuevoMatch-style) as an alternative kernel-deployable inference artifact.
// This implements that comparator: a CART regression tree *distilled* from
// a trained MLP by sampling its input domain.  The tree is integer-only
// (quantized thresholds and leaf values) and evaluates in O(depth) with no
// multiplications at all — cheaper than the quantized MLP — but it is a
// static approximation: it cannot be tuned online, which is precisely the
// property LiteFlow's slow path restores.
#pragma once

#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace lf::quant {

using fp::s64;

struct dt_config {
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 16;
  std::size_t training_samples = 4096;
  /// Input-domain box the teacher model is sampled over.
  double input_low = -1.0;
  double input_high = 1.0;
  /// Candidate split thresholds probed per feature (quantile grid).
  std::size_t candidate_thresholds = 8;
  s64 io_scale = 1000;
  std::uint64_t seed = 1;
};

class decision_tree_snapshot {
 public:
  /// Distill a tree from the teacher model.
  static decision_tree_snapshot distill(const nn::mlp& teacher,
                                        const dt_config& config);

  /// Integer-only inference: inputs/outputs at io_scale fixed point.
  std::vector<s64> infer(std::span<const s64> input_q) const;

  /// Float convenience wrapper (quantize, walk, dequantize).
  std::vector<double> infer_float(std::span<const double> input) const;

  std::size_t input_size() const noexcept { return input_size_; }
  std::size_t output_size() const noexcept { return output_size_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  std::size_t depth() const noexcept;
  s64 io_scale() const noexcept { return io_scale_; }

  /// Mean absolute error vs the teacher over fresh random inputs.
  double mean_abs_error(const nn::mlp& teacher, std::size_t probes,
                        std::uint64_t seed) const;

 private:
  struct node {
    int feature = -1;      ///< -1 marks a leaf
    s64 threshold_q = 0;   ///< go left if input[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<s64> leaf_value_q;  ///< outputs, io_scale fixed point
  };

  decision_tree_snapshot() = default;

  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  s64 io_scale_ = 1;
  std::vector<node> nodes_;  ///< nodes_[0] is the root
};

}  // namespace lf::quant
