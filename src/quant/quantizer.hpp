// High-precision integer quantization (§3.1).
//
// Vanilla integer quantization of a CC network whose output is a fraction
// alpha in [0,1] would collapse the output to {0, 1}.  LiteFlow instead adds
// input/output scaling: every activation (including the model's inputs and
// outputs) is represented at scale C ("scaling factor", default 1000), so
// the snapshot outputs alpha' in {0..C} and the datapath computes
// floor(alpha' * line_rate / C).  Weights get an independent power-of-two
// scale chosen from their actual dynamic range.
#pragma once

#include "nn/mlp.hpp"
#include "quant/quantized_mlp.hpp"

namespace lf::quant {

struct quantizer_config {
  /// The paper's scaling factor C applied to inputs, activations, outputs.
  s64 io_scale = 1000;
  /// Number of entries per activation lookup table.
  std::size_t lut_entries = 1024;
  /// Upper bound for the per-layer weight scale (power of two).
  s64 max_weight_scale = s64{1} << 20;
};

/// Quantize a trained float model into an integer snapshot program.
quantized_mlp quantize(const nn::mlp& model, const quantizer_config& config);

/// Quantize with the default config.
quantized_mlp quantize(const nn::mlp& model);

}  // namespace lf::quant
