#include "quant/lut.hpp"

#include <cmath>
#include <stdexcept>

namespace lf::quant {

lookup_table::lookup_table(const std::function<double(double)>& f, double lo,
                           double hi, std::size_t entries, s64 scale)
    : lo_{lo}, hi_{hi}, scale_{scale} {
  if (entries < 2) throw std::invalid_argument{"lut needs >= 2 entries"};
  if (hi <= lo) throw std::invalid_argument{"lut needs hi > lo"};
  if (scale <= 0) throw std::invalid_argument{"lut scale must be positive"};
  lo_q_ = static_cast<s64>(std::llround(lo * static_cast<double>(scale)));
  const s64 hi_q = static_cast<s64>(std::llround(hi * static_cast<double>(scale)));
  step_num_ = hi_q - lo_q_;
  values_.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(entries - 1);
    values_.push_back(
        static_cast<s64>(std::llround(f(x) * static_cast<double>(scale))));
  }
}

lookup_table lookup_table::for_activation(nn::activation act,
                                          std::size_t entries, s64 scale) {
  switch (act) {
    case nn::activation::tanh_act:
      // tanh saturates to +-1 outside ~[-8, 8] well below the table's own
      // resolution, so clamping at the boundary entries is exact there.
      return lookup_table{[](double x) { return std::tanh(x); }, -8.0, 8.0,
                          entries, scale};
    case nn::activation::sigmoid:
      return lookup_table{[](double x) { return 1.0 / (1.0 + std::exp(-x)); },
                          -12.0, 12.0, entries, scale};
    default:
      throw std::invalid_argument{
          "lookup_table only approximates tanh/sigmoid"};
  }
}

s64 lookup_table::eval(s64 x_q) const noexcept {
  const auto n = static_cast<s64>(values_.size());
  if (x_q <= lo_q_) return values_.front();
  if (x_q >= lo_q_ + step_num_) return values_.back();
  // Position within the table in units of 1/(n-1) of the domain:
  // pos = (x_q - lo_q) * (n-1) / step_num, with remainder for interpolation.
  const s64 off = x_q - lo_q_;
  const __int128 scaled = static_cast<__int128>(off) * (n - 1);
  auto idx = static_cast<s64>(scaled / step_num_);
  if (idx >= n - 1) return values_.back();
  const auto rem = static_cast<s64>(scaled % step_num_);  // in [0, step_num)
  const s64 y0 = values_[static_cast<std::size_t>(idx)];
  const s64 y1 = values_[static_cast<std::size_t>(idx) + 1];
  return y0 + fp::mul_div(y1 - y0, rem, step_num_);
}

double lookup_table::eval_float(double x) const noexcept {
  const auto x_q =
      static_cast<s64>(std::llround(x * static_cast<double>(scale_)));
  return static_cast<double>(eval(x_q)) / static_cast<double>(scale_);
}

double lookup_table::max_abs_error(const std::function<double(double)>& f,
                                   std::size_t probes) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < probes; ++i) {
    const double x = lo_ + (hi_ - lo_) * static_cast<double>(i) /
                              static_cast<double>(probes - 1);
    worst = std::max(worst, std::abs(eval_float(x) - f(x)));
  }
  return worst;
}

}  // namespace lf::quant
