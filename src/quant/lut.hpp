// Integer lookup-table approximation of nonlinear activations (§3.1).
//
// The kernel cannot call tanh(); the paper's snapshot generator replaces such
// layers with a lookup table because (unlike a Taylor expansion) the table
// keeps a uniform precision over its whole domain and evaluates in constant
// time.  We store pre-scaled integer outputs and interpolate linearly between
// entries using only 64-bit integer arithmetic, so the generated C code and
// this in-memory engine agree exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/activation.hpp"
#include "util/fixed_point.hpp"

namespace lf::quant {

using fp::s64;

class lookup_table {
 public:
  /// Build a table of `entries` samples of `f` over [lo, hi].  Inputs and
  /// outputs are fixed-point integers with scale `scale` (value ~= q/scale).
  /// Inputs outside the domain clamp to the boundary entries, which is the
  /// right behaviour for saturating activations (tanh, sigmoid).
  lookup_table(const std::function<double(double)>& f, double lo, double hi,
               std::size_t entries, s64 scale);

  /// Convenience for the supported activations.
  static lookup_table for_activation(nn::activation act, std::size_t entries,
                                     s64 scale);

  /// Integer-only evaluation with linear interpolation between entries.
  s64 eval(s64 x_q) const noexcept;

  /// Evaluate through the table in the float domain (quantize, eval,
  /// dequantize).  Used by precision tests.
  double eval_float(double x) const noexcept;

  /// Maximum absolute error vs. the reference function, probed on a dense
  /// grid of `probes` points across the domain.
  double max_abs_error(const std::function<double(double)>& f,
                       std::size_t probes = 4096) const;

  std::size_t size() const noexcept { return values_.size(); }
  s64 scale() const noexcept { return scale_; }
  s64 domain_low_q() const noexcept { return lo_q_; }
  s64 domain_span_q() const noexcept { return step_num_; }
  double domain_low() const noexcept { return lo_; }
  double domain_high() const noexcept { return hi_; }
  const std::vector<s64>& values() const noexcept { return values_; }

 private:
  double lo_;
  double hi_;
  s64 scale_;
  s64 lo_q_;       // lo * scale
  s64 step_num_;   // (hi-lo)*scale, numerator of the step between entries
  std::vector<s64> values_;
};

}  // namespace lf::quant
