#include "rt/flight_recorder.hpp"

#include <algorithm>

#include "util/trace_report.hpp"

namespace lf::rt {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void blackbox_ring::enable(std::size_t capacity) {
  if (capacity == 0) {
    slots_.reset();
    mask_ = 0;
    head_.store(0, std::memory_order_relaxed);
    return;
  }
  const std::size_t cap = round_up_pow2(capacity);
  slots_ = std::make_unique<slot[]>(cap);
  mask_ = cap - 1;
  head_.store(0, std::memory_order_relaxed);
}

std::vector<blackbox_event> blackbox_ring::snapshot() const {
  std::vector<blackbox_event> out;
  if (slots_ == nullptr) return out;
  const std::size_t cap = mask_ + 1;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const slot& s = slots_[i];
    const std::uint64_t tag0 = s.tag.load(std::memory_order_relaxed);
    if (tag0 == 0) continue;  // never written
    blackbox_event e;
    e.t_ns = s.t_ns.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    // Re-read the tag: if an emitter rewrote the slot underneath us the
    // payload above may be mixed — drop it rather than report fiction.
    if (s.tag.load(std::memory_order_relaxed) != tag0) continue;
    e.seq = (tag0 >> 8) - 1;
    e.type = static_cast<trace::event_type>(tag0 & 0xff);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const blackbox_event& x, const blackbox_event& y) {
              if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
              return x.seq < y.seq;
            });
  return out;
}

void blackbox_ring::clear() noexcept {
  if (slots_ == nullptr) return;
  for (std::size_t i = 0; i <= mask_; ++i) {
    slots_[i].tag.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

flight_recorder::flight_recorder(const flight_recorder_config& cfg,
                                 std::size_t max_workers)
    : cfg_{cfg} {
  if (cfg.events_per_ring == 0) return;
  route_mask_ = (std::uint64_t{1} << cfg.route_sample_shift) - 1;
  control_.enable(cfg.events_per_ring);
  n_workers_ = max_workers;
  workers_ = std::make_unique<blackbox_ring[]>(max_workers);
  for (std::size_t i = 0; i < max_workers; ++i) {
    workers_[i].enable(cfg.events_per_ring);
  }
}

std::string flight_recorder::dump(std::string_view label,
                                  std::uint64_t window_ns) const {
  // Gather every ring's decoded events, find the global time extent, and
  // keep the trailing window.
  std::vector<std::vector<blackbox_event>> per_ring;
  per_ring.reserve(n_workers_ + 1);
  per_ring.push_back(control_.snapshot());
  for (std::size_t i = 0; i < n_workers_; ++i) {
    per_ring.push_back(workers_[i].snapshot());
  }

  std::uint64_t t_max = 0;
  for (const auto& v : per_ring) {
    if (!v.empty()) t_max = std::max(t_max, v.back().t_ns);
  }
  const std::uint64_t t_lo =
      (window_ns == 0 || t_max < window_ns) ? 0 : t_max - window_ns;

  std::uint64_t t_base = t_max;
  std::size_t kept = 0;
  for (const auto& v : per_ring) {
    for (const blackbox_event& e : v) {
      if (e.t_ns < t_lo) continue;
      t_base = std::min(t_base, e.t_ns);
      ++kept;
    }
  }

  // Re-emit through trace rings (wall-ns domain, timestamps re-based to the
  // oldest kept event) and export via the shared Perfetto writer.
  std::vector<std::unique_ptr<trace::ring>> rings;
  rings.reserve(per_ring.size());
  trace::collector col{{true, std::max<std::size_t>(kept, 2)}};
  for (std::size_t r = 0; r < per_ring.size(); ++r) {
    auto ring = std::make_unique<trace::ring>(
        r == 0 ? std::string{"rt.control"}
               : "rt.worker" + std::to_string(r - 1));
    col.attach(*ring);
    ring->set_domain(trace::time_domain::wall_ns);
    for (const blackbox_event& e : per_ring[r]) {
      if (e.t_ns < t_lo) continue;
      ring->emit(static_cast<double>(e.t_ns - t_base), e.type, e.a, e.b);
    }
    rings.push_back(std::move(ring));
  }
  return trace::write_trace(col, label, "BLACKBOX");
}

std::string flight_recorder::try_dump(std::string_view prefix,
                                      std::uint64_t window_ns) {
  std::uint64_t seq = 0;
  {
    // Admission under a lock: the interval check and the sequence claim
    // must be one step or two racing watchdog ticks could both pass the
    // interval test.  Slow path only — dumps happen at most once per
    // min_dump_interval_ns.
    std::lock_guard<std::mutex> g{dump_mu_};
    const std::uint64_t now = wall_ns();
    const std::uint64_t written =
        dumps_written_.load(std::memory_order_relaxed);
    const bool capped = cfg_.max_dumps != 0 && written >= cfg_.max_dumps;
    const bool too_soon = cfg_.min_dump_interval_ns != 0 && written != 0 &&
                          now - last_dump_ns_ < cfg_.min_dump_interval_ns;
    if (capped || too_soon) {
      dumps_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    last_dump_ns_ = now;
    seq = written + 1;
    dumps_written_.store(seq, std::memory_order_relaxed);
  }
  return dump(std::string{prefix} + "_" + std::to_string(seq), window_ns);
}

}  // namespace lf::rt
