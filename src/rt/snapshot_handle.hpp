// Active/standby snapshot handle for real threads (§3.4, made concurrent).
//
// This is the rt counterpart of core::inference_router's snapshot slots.
// The simulated router flips an std::optional under an *analytic* spinlock;
// here the flip is a real std::atomic pointer exchange under a real
// rt::spinlock held for a few instructions, standby installation takes no
// lock at all (the datapath never looks at the standby slot), and the
// demoted snapshot is freed only after (a) its flow-cache pin count drains
// to zero and (b) an epoch grace period proves no in-flight reader still
// holds the raw pointer.
//
// Lifecycle of one snapshot_version:
//
//   install_standby()   heap-allocates the version, pins it once (the
//                       handle's ownership pin), publishes nothing.
//   switch_active()     exchanges the active pointer (spinlock'd flip),
//                       marks the old active demoted, drops its ownership
//                       pin.  No waiting, no reader stall.
//   pin_active()        reader side, inside an epoch guard: load active,
//                       pins.fetch_add, re-check demoted.  Seeing
//                       demoted == false proves (seq_cst) the writer has
//                       not yet dropped the ownership pin, so the count
//                       can never have touched zero — the pin is safe and
//                       the version cannot be retired while it is held.
//                       Seeing demoted == true means the flip raced past
//                       us: unpin and retry with the new active.
//   unpin()             whoever drops the count to zero on a demoted
//                       version pushes it to the zombie list exactly once
//                       (retire_pushed_ gate).  Readers that transiently
//                       resurrect a zombie's count (pin then observe
//                       demoted) are safe: they are inside an epoch guard,
//                       so the grace period cannot elapse under them.
//   maintain()          writer side: moves zombies into the epoch domain's
//                       retire list and reclaims whatever has drained.
//
// The handle also carries the **switch epoch**: a monotonic counter bumped
// on every active flip and on every zombie push (the moment a version's last
// pin drains).  Per-worker L1 route caches stamp their entries with the
// counter value read *inside* an epoch guard and reject any entry whose
// stamp is stale.  The resulting guarantee: while a worker observes an
// unchanged switch epoch from within a guard, (a) no version it cached has
// been pushed toward retirement — the pointer is dereferenceable — and (b)
// no resident flow→version binding has changed generation, so serving the
// cached version preserves §3.4 flow consistency without touching the
// sharded cache at all.  (Zombie pushes strictly precede their
// epoch_domain::retire() call, so a reader that read a stale-free counter
// value inside its guard is, by the seq_cst total order, also visible to
// the grace-period scan that would enable the free.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/snapshot.hpp"
#include "rt/epoch.hpp"
#include "rt/flight_recorder.hpp"
#include "rt/spinlock.hpp"
#include "util/metrics.hpp"

namespace lf::rt {

/// One installed model generation.  Immutable payload after construction;
/// the atomics carry the concurrent lifecycle.
struct snapshot_version {
  snapshot_version(std::uint64_t g, codegen::snapshot s)
      : gen{g}, snap{std::move(s)} {}

  std::uint64_t gen;              ///< monotonic install generation
  codegen::snapshot snap;         ///< the integer program (const after build)
  std::atomic<std::uint64_t> pins{1};  ///< starts with the ownership pin
  std::atomic<bool> demoted{false};
  std::atomic<bool> retire_pushed{false};
};

/// Version-reclamation state shareable by several handles.  A multi-model
/// engine gives each logical model its own snapshot_handle but ONE of these,
/// so the whole engine has one switch-epoch counter (one L1 stamp to check
/// per route regardless of model count), one zombie list, and one live/
/// retired account — and a version pinned through one model's cache entry
/// can be unpinned through any handle of the domain.  A handle constructed
/// without one owns a private instance (single-model behavior unchanged).
struct version_reclaim {
  std::mutex zombies_mu;
  std::vector<snapshot_version*> zombies;
  /// Monotonic L1-invalidation counter (see snapshot_handle::switch_epoch).
  std::atomic<std::uint64_t> switch_epoch{1};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> live{0};
  /// Optional flight-recorder ring for lifecycle events (zombie pushes —
  /// which happen on arbitrary reader threads — and reclaim batches).  Set
  /// once before any concurrency starts; nullptr keeps the paths silent.
  blackbox_ring* recorder = nullptr;
};

class snapshot_handle {
 public:
  /// The handle retires garbage through `epochs`; every reader that calls
  /// pin_active()/peek_gen() must be inside a guard on the same domain.
  explicit snapshot_handle(epoch_domain& epochs);

  /// Share `reclaim` with the other handles of one engine (see
  /// version_reclaim).  `reclaim` must outlive the handle.
  snapshot_handle(epoch_domain& epochs, version_reclaim& reclaim);

  snapshot_handle(const snapshot_handle&) = delete;
  snapshot_handle& operator=(const snapshot_handle&) = delete;

  /// Teardown: requires all readers stopped and all cache pins released.
  ~snapshot_handle();

  // ------------------------------------------------------------- writer --

  /// Install `snap` as the standby snapshot.  Lock-free with respect to the
  /// read path (readers never inspect the standby slot).  Replacing an
  /// unswitched standby retires the old one.  Returns the new generation.
  std::uint64_t install_standby(codegen::snapshot snap);

  /// Flip active/standby: one pointer exchange under the flip spinlock
  /// (held nanoseconds — the §3.4 claim this engine exists to validate).
  /// With no standby installed this is an explicit no-op that bumps
  /// switch_noops() and returns false.
  bool switch_active();

  /// Drain zombie versions into the epoch retire list and reclaim whatever
  /// has passed its grace period.  Returns versions actually freed.  Call
  /// from the writer loop (or any maintenance thread).
  std::size_t maintain();

  // ------------------------------------------------------------- reader --

  /// Pin the current active version.  MUST be called inside an
  /// epoch_domain::guard.  Returns nullptr if nothing is active.  The pin
  /// keeps the version alive beyond the guard (a flow-cache entry holds it
  /// across packets); release with unpin().
  snapshot_version* pin_active() noexcept;

  /// Current active generation without pinning (telemetry / tests).  Must
  /// be called inside an epoch guard.  0 if nothing is active.
  std::uint64_t peek_gen() const noexcept;

  /// The current shadow candidate (the installed-but-unswitched standby),
  /// or nullptr.  MUST be called inside an epoch guard, and the pointer
  /// must not outlive it: the standby's ownership pin plus epoch-deferred
  /// reclamation keep the object alive for the guard's duration even if
  /// the writer concurrently switches or replaces it, but nothing keeps it
  /// alive beyond.  Shadow scoring dereferences it for one inference and
  /// lets go — it never pins, so a shadow read can never delay retirement.
  snapshot_version* peek_shadow() const noexcept {
    return shadow_.load(std::memory_order_acquire);
  }

  /// Drop one pin.  Safe from any thread; the zero-crossing on a demoted
  /// version queues it for epoch retirement.
  void unpin(snapshot_version* v) noexcept;

  /// Monotonic L1-invalidation counter: bumped on every active flip and on
  /// every zombie push.  Read it inside an epoch guard; an L1 entry stamped
  /// with an older value must not be served (see the file comment).
  /// Starts at 1, so 0 is a natural "never valid" sentinel for L1 entries.
  /// Shared across every handle bound to the same version_reclaim.
  std::uint64_t switch_epoch() const noexcept {
    return rec_.switch_epoch.load(std::memory_order_seq_cst);
  }

  // ------------------------------------------------------------- status --

  bool has_active() const noexcept {
    return active_.load(std::memory_order_acquire) != nullptr;
  }
  bool has_standby() const noexcept { return standby_ != nullptr; }
  /// Mid-run-readable from any thread (atomic_counter, relaxed).
  std::uint64_t installs() const noexcept { return installs_.value(); }
  std::uint64_t switches() const noexcept { return switches_.value(); }
  std::uint64_t switch_noops() const noexcept { return noops_.value(); }
  /// Retired/live accounting is per-reclaim-domain: with a shared
  /// version_reclaim these count versions across ALL its handles.
  std::uint64_t retired() const noexcept {
    return rec_.retired.load(std::memory_order_acquire);
  }
  /// Versions allocated and not yet freed (active + standby + flow-pinned +
  /// zombies awaiting grace).
  std::uint64_t live_versions() const noexcept {
    return rec_.live.load(std::memory_order_acquire);
  }
  const spinlock& flip_lock() const noexcept { return flip_lock_; }

  /// Writer-side counters under "<prefix>.installs", ".switches",
  /// ".switch_noops".  Written only by the writer thread; readable mid-run
  /// from any thread (single-writer atomic_counter).
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  void release_ownership(snapshot_version* v) noexcept;
  void push_zombie(snapshot_version* v) noexcept;

  epoch_domain& epochs_;
  version_reclaim owned_;       ///< backing store for the single-handle ctor
  version_reclaim& rec_;        ///< the domain actually used (owned_ or shared)
  std::atomic<snapshot_version*> active_{nullptr};
  /// Readable mirror of the standby slot for shadow scoring; readers deref
  /// it only inside an epoch guard (see peek_shadow).
  std::atomic<snapshot_version*> shadow_{nullptr};
  snapshot_version* standby_ = nullptr;  ///< writer-only slot
  spinlock flip_lock_;
  std::uint64_t next_gen_ = 1;  ///< writer-only

  metrics::atomic_counter installs_;   ///< written by the writer thread only
  metrics::atomic_counter switches_;   ///< written by the writer thread only
  metrics::atomic_counter noops_;      ///< written by the writer thread only
};

}  // namespace lf::rt
