// Active/standby snapshot handle for real threads (§3.4, made concurrent).
//
// This is the rt counterpart of core::inference_router's snapshot slots.
// The simulated router flips an std::optional under an *analytic* spinlock;
// here the flip is a real std::atomic pointer exchange under a real
// rt::spinlock held for a few instructions, standby installation takes no
// lock at all (the datapath never looks at the standby slot), and the
// demoted snapshot is freed only after (a) its flow-cache pin count drains
// to zero and (b) an epoch grace period proves no in-flight reader still
// holds the raw pointer.
//
// Lifecycle of one snapshot_version:
//
//   install_standby()   heap-allocates the version, pins it once (the
//                       handle's ownership pin), publishes nothing.
//   switch_active()     exchanges the active pointer (spinlock'd flip),
//                       marks the old active demoted, drops its ownership
//                       pin.  No waiting, no reader stall.
//   pin_active()        reader side, inside an epoch guard: load active,
//                       pins.fetch_add, re-check demoted.  Seeing
//                       demoted == false proves (seq_cst) the writer has
//                       not yet dropped the ownership pin, so the count
//                       can never have touched zero — the pin is safe and
//                       the version cannot be retired while it is held.
//                       Seeing demoted == true means the flip raced past
//                       us: unpin and retry with the new active.
//   unpin()             whoever drops the count to zero on a demoted
//                       version pushes it to the zombie list exactly once
//                       (retire_pushed_ gate).  Readers that transiently
//                       resurrect a zombie's count (pin then observe
//                       demoted) are safe: they are inside an epoch guard,
//                       so the grace period cannot elapse under them.
//   maintain()          writer side: moves zombies into the epoch domain's
//                       retire list and reclaims whatever has drained.
//
// Probation (gate-aware rollback, opt-in via set_probation): with probation
// enabled, switch_active() does NOT demote the outgoing version.  It keeps
// its ownership pin and parks in a probation hold — still un-demoted, so
// readers with cached pins keep serving it and a re-promotion needs no
// resurrection.  The hold ends one of three ways:
//   rollback()          re-promotes the held version through the same
//                       one-pointer-exchange critical section as the forward
//                       flip (flip_lock_, switch-epoch bump => L1
//                       invalidation, shadow clear) and demotes the
//                       regressed incumbent, which then retires through the
//                       ordinary zombie path.
//   probation_tick()    the probation clock (stats-sampler windows) expires:
//                       the held version is demoted + released exactly as a
//                       probation-less switch would have done at flip time.
//   switch_active()     a newer switch supersedes the open hold: the old
//                       held version closes cleanly first.
// Because the held version was never demoted, rollback() re-uses the
// unmodified reader protocol: after the exchange, pin_active() loads the
// re-promoted pointer and its demoted re-check still proves the ownership
// pin is live (it never left).  The regressed version's demote + release
// happen after the exchange in seq_cst order, so a reader that pinned it
// pre-exchange drains through the zombie path and no reader that observes
// the new active can pin the regressed version again.  All probation state
// transitions (and the flip they wrap) serialize under probation_mu_, so a
// sampler-thread rollback() cannot interleave with a writer-thread switch.
//
// The handle also carries the **switch epoch**: a monotonic counter bumped
// on every active flip and on every zombie push (the moment a version's last
// pin drains).  Per-worker L1 route caches stamp their entries with the
// counter value read *inside* an epoch guard and reject any entry whose
// stamp is stale.  The resulting guarantee: while a worker observes an
// unchanged switch epoch from within a guard, (a) no version it cached has
// been pushed toward retirement — the pointer is dereferenceable — and (b)
// no resident flow→version binding has changed generation, so serving the
// cached version preserves §3.4 flow consistency without touching the
// sharded cache at all.  (Zombie pushes strictly precede their
// epoch_domain::retire() call, so a reader that read a stale-free counter
// value inside its guard is, by the seq_cst total order, also visible to
// the grace-period scan that would enable the free.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/snapshot.hpp"
#include "rt/epoch.hpp"
#include "rt/flight_recorder.hpp"
#include "rt/spinlock.hpp"
#include "util/metrics.hpp"

namespace lf::rt {

/// One installed model generation.  Immutable payload after construction;
/// the atomics carry the concurrent lifecycle.
struct snapshot_version {
  snapshot_version(std::uint64_t g, codegen::snapshot s)
      : gen{g}, snap{std::move(s)} {}

  std::uint64_t gen;              ///< monotonic install generation
  codegen::snapshot snap;         ///< the integer program (const after build)
  std::atomic<std::uint64_t> pins{1};  ///< starts with the ownership pin
  std::atomic<bool> demoted{false};
  std::atomic<bool> retire_pushed{false};
};

/// Version-reclamation state shareable by several handles.  A multi-model
/// engine gives each logical model its own snapshot_handle but ONE of these,
/// so the whole engine has one switch-epoch counter (one L1 stamp to check
/// per route regardless of model count), one zombie list, and one live/
/// retired account — and a version pinned through one model's cache entry
/// can be unpinned through any handle of the domain.  A handle constructed
/// without one owns a private instance (single-model behavior unchanged).
struct version_reclaim {
  std::mutex zombies_mu;
  std::vector<snapshot_version*> zombies;
  /// Monotonic L1-invalidation counter (see snapshot_handle::switch_epoch).
  std::atomic<std::uint64_t> switch_epoch{1};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> live{0};
  /// Optional flight-recorder ring for lifecycle events (zombie pushes —
  /// which happen on arbitrary reader threads — and reclaim batches).  Set
  /// once before any concurrency starts; nullptr keeps the paths silent.
  blackbox_ring* recorder = nullptr;
};

class snapshot_handle {
 public:
  /// The handle retires garbage through `epochs`; every reader that calls
  /// pin_active()/peek_gen() must be inside a guard on the same domain.
  explicit snapshot_handle(epoch_domain& epochs);

  /// Share `reclaim` with the other handles of one engine (see
  /// version_reclaim).  `reclaim` must outlive the handle.
  snapshot_handle(epoch_domain& epochs, version_reclaim& reclaim);

  snapshot_handle(const snapshot_handle&) = delete;
  snapshot_handle& operator=(const snapshot_handle&) = delete;

  /// Teardown: requires all readers stopped and all cache pins released.
  ~snapshot_handle();

  // ------------------------------------------------------------- writer --

  /// Install `snap` as the standby snapshot.  Lock-free with respect to the
  /// read path (readers never inspect the standby slot).  Replacing an
  /// unswitched standby retires the old one.  Returns the new generation.
  std::uint64_t install_standby(codegen::snapshot snap);

  /// Flip active/standby: one pointer exchange under the flip spinlock
  /// (held nanoseconds — the §3.4 claim this engine exists to validate).
  /// With no standby installed this is an explicit no-op that bumps
  /// switch_noops() and returns false.
  bool switch_active();

  /// Drain zombie versions into the epoch retire list and reclaim whatever
  /// has passed its grace period.  Returns versions actually freed.  Call
  /// from the writer loop (or any maintenance thread).
  std::size_t maintain();

  // ---------------------------------------------------------- probation --

  /// Enable/disable probation holds (see the file comment).  Must be set
  /// before any switch traffic; default off keeps the historical
  /// demote-at-flip behavior (and its tests) bit-identical.
  void set_probation(bool on) noexcept { probation_enabled_ = on; }
  bool probation_enabled() const noexcept { return probation_enabled_; }

  /// Re-promote the probation-held previous active (any thread; the
  /// rollback policy calls this from the stats-sampler thread).  Returns
  /// false — and counts a rollback no-op — when no hold is open (probation
  /// expired, already rolled back, or probation disabled).
  bool rollback();

  /// Close an open hold cleanly: demote + release the held version exactly
  /// as a probation-less switch would have.  Returns false when no hold is
  /// open.
  bool close_probation();

  /// Advance the probation clock one stats-sampler window; closes the hold
  /// (clean retire) once it has aged `max_windows` ticks.  Returns true if
  /// this tick closed the hold.
  bool probation_tick(std::uint64_t max_windows);

  /// Snapshot of the open hold (all-zero when none).  `promoted_gen` is the
  /// generation whose switch opened the hold — the suspect the watchdog's
  /// post-switch classifier names in its incident record.
  struct probation_status {
    bool open = false;
    std::uint64_t held_gen = 0;      ///< rollback target (previous active)
    std::uint64_t promoted_gen = 0;  ///< generation the suspect switch installed
    std::uint64_t age_windows = 0;   ///< probation_tick()s since the hold opened
  };
  probation_status probation() const;

  std::uint64_t rollbacks() const noexcept { return rollbacks_.value(); }
  std::uint64_t rollback_noops() const noexcept {
    return rollback_noops_.value();
  }
  /// Holds that closed cleanly (expiry, supersede, or teardown).
  std::uint64_t probation_retires() const noexcept {
    return probation_retires_.value();
  }

  // ------------------------------------------------------------- reader --

  /// Pin the current active version.  MUST be called inside an
  /// epoch_domain::guard.  Returns nullptr if nothing is active.  The pin
  /// keeps the version alive beyond the guard (a flow-cache entry holds it
  /// across packets); release with unpin().
  snapshot_version* pin_active() noexcept;

  /// Current active generation without pinning (telemetry / tests).  Must
  /// be called inside an epoch guard.  0 if nothing is active.
  std::uint64_t peek_gen() const noexcept;

  /// The current shadow candidate (the installed-but-unswitched standby),
  /// or nullptr.  MUST be called inside an epoch guard, and the pointer
  /// must not outlive it: the standby's ownership pin plus epoch-deferred
  /// reclamation keep the object alive for the guard's duration even if
  /// the writer concurrently switches or replaces it, but nothing keeps it
  /// alive beyond.  Shadow scoring dereferences it for one inference and
  /// lets go — it never pins, so a shadow read can never delay retirement.
  snapshot_version* peek_shadow() const noexcept {
    return shadow_.load(std::memory_order_acquire);
  }

  /// Drop one pin.  Safe from any thread; the zero-crossing on a demoted
  /// version queues it for epoch retirement.
  void unpin(snapshot_version* v) noexcept;

  /// Monotonic L1-invalidation counter: bumped on every active flip and on
  /// every zombie push.  Read it inside an epoch guard; an L1 entry stamped
  /// with an older value must not be served (see the file comment).
  /// Starts at 1, so 0 is a natural "never valid" sentinel for L1 entries.
  /// Shared across every handle bound to the same version_reclaim.
  std::uint64_t switch_epoch() const noexcept {
    return rec_.switch_epoch.load(std::memory_order_seq_cst);
  }

  // ------------------------------------------------------------- status --

  bool has_active() const noexcept {
    return active_.load(std::memory_order_acquire) != nullptr;
  }
  bool has_standby() const noexcept { return standby_ != nullptr; }
  /// Mid-run-readable from any thread (atomic_counter, relaxed).
  std::uint64_t installs() const noexcept { return installs_.value(); }
  std::uint64_t switches() const noexcept { return switches_.value(); }
  std::uint64_t switch_noops() const noexcept { return noops_.value(); }
  /// Retired/live accounting is per-reclaim-domain: with a shared
  /// version_reclaim these count versions across ALL its handles.
  std::uint64_t retired() const noexcept {
    return rec_.retired.load(std::memory_order_acquire);
  }
  /// Versions allocated and not yet freed (active + standby + flow-pinned +
  /// zombies awaiting grace).
  std::uint64_t live_versions() const noexcept {
    return rec_.live.load(std::memory_order_acquire);
  }
  const spinlock& flip_lock() const noexcept { return flip_lock_; }

  /// Writer-side counters under "<prefix>.installs", ".switches",
  /// ".switch_noops".  Written only by the writer thread; readable mid-run
  /// from any thread (single-writer atomic_counter).
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  void release_ownership(snapshot_version* v) noexcept;
  void push_zombie(snapshot_version* v) noexcept;
  /// Demote + release the held version and clear the hold.  Caller holds
  /// probation_mu_ and held_ is non-null.
  void retire_held_locked() noexcept;

  epoch_domain& epochs_;
  version_reclaim owned_;       ///< backing store for the single-handle ctor
  version_reclaim& rec_;        ///< the domain actually used (owned_ or shared)
  std::atomic<snapshot_version*> active_{nullptr};
  /// Readable mirror of the standby slot for shadow scoring; readers deref
  /// it only inside an epoch guard (see peek_shadow).
  std::atomic<snapshot_version*> shadow_{nullptr};
  snapshot_version* standby_ = nullptr;  ///< writer-only slot
  spinlock flip_lock_;
  std::uint64_t next_gen_ = 1;  ///< writer-only

  /// Probation state.  The mutex serializes switch_active's flip tail,
  /// rollback(), close_probation() and probation_tick() against each other
  /// (writer thread vs. sampler thread); it is never touched on the read
  /// path.  The counters below are only incremented under it, so their
  /// non-RMW single-writer increments stay exact.
  bool probation_enabled_ = false;  ///< set before any switch traffic
  mutable std::mutex probation_mu_;
  snapshot_version* held_ = nullptr;    ///< outgoing version on probation
  std::uint64_t held_promoted_gen_ = 0;  ///< gen whose switch opened the hold
  std::uint64_t held_age_ = 0;           ///< probation_tick()s so far

  metrics::atomic_counter installs_;   ///< written by the writer thread only
  metrics::atomic_counter switches_;   ///< written by the writer thread only
  metrics::atomic_counter noops_;      ///< written by the writer thread only
  metrics::atomic_counter rollbacks_;        ///< guarded by probation_mu_
  metrics::atomic_counter rollback_noops_;   ///< guarded by probation_mu_
  metrics::atomic_counter probation_retires_;  ///< guarded by probation_mu_
};

}  // namespace lf::rt
