// Multi-model serving bench: K logical models behind ONE datapath engine.
//
// The scenario the multi-model refactor exists for: several adaptive models
// (think cc + sched + lb policies, §5) served by the same worker threads,
// one shared epoch domain, one sharded flow cache keyed by (model, flow),
// one switch-epoch counter — while every model runs its own snapshot
// lifecycle with **shadow-scored switching**:
//
//   stage A  bootstrap: install v1, switch.  No incumbent, so the gate has
//            no jurisdiction — the deployment always ships.
//   stage B  drift: install a candidate trained on different data (here: a
//            different random net).  The standby shadow-infers the sampled
//            slice of live routes; its divergence against the active blows
//            the threshold and try_switch() is BLOCKED.  The incumbent
//            keeps serving.
//   stage C  retrain: install a candidate that matches the active's
//            behavior (same weights).  Divergence ~0 over the sampled
//            slice; the gate ADMITS and the switch flips.
//
// Worker threads route continuously across all K models for the whole
// script and assert the §3.4 per-(model, flow) consistency invariant on
// every result.  Every gate ruling is pushed into an adaptation_monitor
// ledger, rendered into REPORT_multimodel.html, and summarized in
// BENCH_multimodel.json.
//
// Exit status is nonzero unless: every model flipped at least twice
// (bootstrap + post-retrain), at least one switch was gate-blocked, at
// least one was admitted after a block, no consistency violation occurred,
// and no version leaked past the drain.
//
// Env knobs:
//   LF_MM_MODELS   logical models          (default 3, min 2)
//   LF_MM_WORKERS  router threads          (default 2)
//   LF_MM_FLOWS    flows per worker/model  (default 256)
//   LF_MM_SHADOW   shadow sample rate      (default 0.25)
//   LF_RT_LAT / LF_RT_LAT_SHIFT / LF_RT_BLACKBOX /
//   LF_RT_STATS_INTERVAL_MS / LF_RT_STATS_OUT
//                  live-telemetry knobs, same semantics as the stress
//                  harness (latency and the 100 ms sampler default ON here;
//                  stats text lands in STATS_multimodel.prom)
//   LF_RT_WATCHDOG / LF_RT_WATCHDOG_*
//                  anomaly watchdog knobs (rt/anomaly_watchdog.hpp); fired
//                  incidents land in INCIDENT_multimodel.json and as chart
//                  markers in the HTML report, but never fail this harness —
//                  the scripted lifecycle is the verdict here
//   LF_RT_INJECT_BAD_SWITCH  nonzero: append stage D — switch model 0 to a
//                  degraded (~250x MACs) net *bypassing* the gate, with
//                  probation (LF_RT_PROBATION_WINDOWS, default 100: the
//                  heavy net carries only ~1/K of routes here and the
//                  scripted churn inflates the p999 baseline, so detection
//                  needs more windows than the stress harness) and the
//                  watchdog rollback policy armed.  The verdict then also
//                  requires the post_switch_regression classification and
//                  exactly one auto-rollback re-promoting the pre-switch
//                  gen, and the rolled-back row shows up in the gate table.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "codegen/snapshot.hpp"
#include "core/adaptation_monitor.hpp"
#include "nn/mlp.hpp"
#include "rt/anomaly_watchdog.hpp"
#include "rt/rt_deployment.hpp"
#include "rt/stats_sampler.hpp"
#include "util/bench_report.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/run_report.hpp"

namespace {

using namespace lf;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : fallback;
}

/// Like env_size but an explicit 0 is a real value (telemetry off switches).
std::size_t env_size0(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long n = std::atoll(v);
  return n >= 0 ? static_cast<std::size_t>(n) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

double now_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// "Training run" for model m: the seed fully determines the weights, so
/// re-running a seed reproduces the model (stage C's retrain) and a fresh
/// seed drifts it (stage B's bad candidate).
codegen::snapshot train(core::model_key m, std::uint64_t seed,
                        std::uint64_t version) {
  rng g{seed};
  return codegen::generate_snapshot(nn::make_ffnn_flow_size_net(g),
                                    "mm-m" + std::to_string(m), version);
}

/// Stage D's fault: same 8 -> 1 I/O shape but ~250x the MACs (the stress
/// harness's stall net) — a degraded snapshot that "slipped past the gate".
codegen::snapshot make_heavy(std::uint64_t version) {
  const nn::layer_spec layers[] = {{128, nn::activation::relu},
                                   {128, nn::activation::relu},
                                   {1, nn::activation::linear}};
  rng g{0xbeef00};
  nn::mlp net{8, layers, g};
  return codegen::generate_snapshot(net, "mm-bad", version);
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

struct worker_outcome {
  std::uint64_t violations = 0;
  std::uint64_t routes = 0;
};

}  // namespace

int main() {
  const std::size_t models = std::max<std::size_t>(env_size("LF_MM_MODELS", 3),
                                                   2);
  const std::size_t workers = env_size("LF_MM_WORKERS", 2);
  const std::size_t flows = env_size("LF_MM_FLOWS", 256);
  const double shadow_rate = env_double("LF_MM_SHADOW", 0.25);
  const bool inject_bad = env_size0("LF_RT_INJECT_BAD_SWITCH", 0) != 0;

  rt::engine_config cfg;
  cfg.models = models;
  cfg.max_workers = workers;
  cfg.l1_slots = 64;
  cfg.shadow.sample_rate = shadow_rate;  // gate stays at its defaults
  cfg.telemetry.latency = env_size0("LF_RT_LAT", 1) != 0;
  cfg.telemetry.latency_sample_shift =
      static_cast<unsigned>(env_size0("LF_RT_LAT_SHIFT", 0));
  cfg.telemetry.blackbox_events = env_size0("LF_RT_BLACKBOX", 2048);
  // Stage D needs a probation hold to roll back into; clean runs keep
  // probation off so their artifacts stay byte-identical.  100 windows
  // (10 s at the 100 ms default): detection here is slower than in the
  // stress harness because the degraded net carries only ~1/K of routes.
  cfg.probation_windows =
      inject_bad ? env_size("LF_RT_PROBATION_WINDOWS", 100) : 0;
  auto engine = rt::build_engine(cfg, rt::rt_deployment::multimodel);
  const core::shadow_config& sh = engine->config().shadow;

  metrics::registry reg;
  engine->register_metrics(reg, "rt");
  rt::stats_sampler_config scfg = rt::stats_config_from_env();
  if (scfg.interval_ms <= 0.0) scfg.interval_ms = 100.0;  // harness default
  if (scfg.text_out.empty()) {
    scfg.text_out = bench::output_dir() + "/STATS_multimodel.prom";
  }
  // Watchdog before the sampler: the sampler holds a raw pointer and must
  // die first (it does — reverse declaration order).
  rt::watchdog_config wcfg = rt::watchdog_config_from_env();
  wcfg.incident_label = "multimodel";
  wcfg.auto_rollback = cfg.probation_windows != 0;
  rt::anomaly_watchdog watchdog{wcfg, engine.get()};
  rt::stats_sampler sampler{*engine, scfg};
  sampler.register_metrics(reg, "rt");
  if (watchdog.enabled()) {
    watchdog.register_metrics(reg, "rt.watchdog");
    sampler.attach_watchdog(&watchdog);
  }
  core::monitor_config mon_cfg;
  mon_cfg.enabled = true;
  core::adaptation_monitor mon{mon_cfg};
  // Deployment wiring for incident capture: lifecycle stages the monitor
  // ledgers are mirrored into the engine's control ring, so a black-box dump
  // taken around an anomaly carries the slow-path work that preceded it.
  mon.set_lifecycle_mirror([&engine](trace::lifecycle_phase p, std::uint32_t m,
                                     std::uint64_t version,
                                     std::uint64_t cost_ns) {
    engine->record_lifecycle(p, static_cast<core::model_key>(m), version,
                             cost_ns);
  });

  std::printf(
      "multimodel: %zu models x %zu workers x %zu flows, shadow %.3f "
      "(threshold %.3f, min_samples %llu)\n",
      models, workers, flows, sh.sample_rate, sh.divergence_threshold,
      static_cast<unsigned long long>(sh.min_samples));

  // ---- routers ---------------------------------------------------------
  std::vector<rt::worker_handle*> handles;
  for (std::size_t i = 0; i < workers; ++i) {
    handles.push_back(&engine->register_worker());
  }
  sampler.start();
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<worker_outcome> outcomes(workers);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < workers; ++i) {
    threads.emplace_back([&, i]() {
      rng g{0xfee1 + i};
      worker_outcome& out = outcomes[i];
      const std::uint64_t flow_base = (i + 1) * 1'000'000ull;
      std::vector<std::uint64_t> expected(models * flows, 0);
      std::vector<fp::s64> input(8);
      std::vector<fp::s64> output(1);
      while (!stop.load(std::memory_order_acquire)) {
        const auto m = static_cast<core::model_key>(
            g.uniform_int(0, static_cast<std::int64_t>(models) - 1));
        const std::size_t idx = static_cast<std::size_t>(
            g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
        const auto flow = static_cast<netsim::flow_id_t>(flow_base + idx);
        for (auto& x : input) x = g.uniform_int(-900, 900);
        const rt::route_result r =
            engine->route(*handles[i], m, flow, now_seconds(t0), input,
                          output);
        if (r.gen != 0) {
          ++out.routes;
          const std::size_t slot = static_cast<std::size_t>(m) * flows + idx;
          if (r.hit && r.gen != expected[slot]) ++out.violations;
          expected[slot] = r.gen;
        }
      }
    });
  }

  // ---- scripted lifecycles --------------------------------------------
  // Wait until the sampled slice produced enough shadow evidence for one
  // model (bounded; the verdict on timeout simply lacks samples and the
  // stage expectation below fails loudly).
  const auto wait_evidence = [&](core::model_key m) {
    const double deadline = now_seconds(t0) + 10.0;
    while (engine->shadow_evidence(m).samples < sh.min_samples &&
           now_seconds(t0) < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  const auto record_gate = [&](core::model_key m, std::uint64_t version,
                               const rt::switch_outcome& o) {
    core::gate_record rec;
    rec.t = now_seconds(t0);
    rec.logical_model = m;
    rec.candidate = version;  // no nn_manager here: candidate == version
    rec.version = version;
    rec.admitted = o.status == rt::switch_outcome::result::flipped;
    rec.samples = o.verdict.samples;
    rec.mean_divergence = o.verdict.mean_divergence;
    rec.max_divergence = o.verdict.max_divergence;
    mon.on_shadow_gate(rec);
  };
  // Each install is a fresh "training run": its wall cost lands in the
  // control ring as a `train` lifecycle stage directly, and the standby
  // install goes through the adaptation monitor, whose mirror pushes the
  // `install` stage in — both halves of the slow-path evidence a black-box
  // anomaly dump correlates with datapath events.
  const auto install_trained = [&](core::model_key m, std::uint64_t seed,
                                   std::uint64_t version) {
    const auto c0 = std::chrono::steady_clock::now();
    codegen::snapshot snap = train(m, seed, version);
    const auto c1 = std::chrono::steady_clock::now();
    engine->record_lifecycle(
        trace::lifecycle_phase::train, m, version,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0)
                .count()));
    engine->install(m, std::move(snap));
    core::install_observation obs;
    obs.version = version;
    obs.model = version;  // no nn_manager here: model id == version
    obs.logical_model = m;
    obs.initial = version == 1;
    obs.install_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c1)
            .count();
    mon.on_snapshot_install(now_seconds(t0), obs);
  };

  bool script_ok = true;
  std::uint64_t blocked = 0, admitted_after_block = 0;
  const auto expect = [&](bool cond, core::model_key m, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: model %u: %s\n", m, what);
      script_ok = false;
    }
  };
  for (std::size_t mi = 0; mi < models; ++mi) {
    const auto m = static_cast<core::model_key>(mi);
    const std::uint64_t base_seed = 0x5eed0000 + mi;

    // Stage A: bootstrap deployment — no incumbent, gate has no say.
    install_trained(m, base_seed, 1);
    rt::switch_outcome a = engine->try_switch(m);
    expect(a.flipped(), m, "bootstrap switch did not flip");

    // Stage B: drifted candidate — must be blocked on live evidence.
    install_trained(m, base_seed ^ 0xbad0bad0ull, 2);
    wait_evidence(m);
    rt::switch_outcome b = engine->try_switch(m);
    record_gate(m, 2, b);
    expect(b.status == rt::switch_outcome::result::gate_blocked, m,
           "drifted candidate was not gate-blocked");
    expect(b.verdict.mean_divergence > sh.divergence_threshold, m,
           "drifted candidate divergence did not exceed the threshold");
    if (b.status == rt::switch_outcome::result::gate_blocked) ++blocked;

    // Stage C: retrained candidate reproduces the active's behavior — the
    // same evidence pipeline now admits it.
    install_trained(m, base_seed, 3);
    wait_evidence(m);
    rt::switch_outcome c = engine->try_switch(m);
    record_gate(m, 3, c);
    expect(c.flipped(), m, "retrained candidate was not admitted");
    if (c.flipped() && b.status == rt::switch_outcome::result::gate_blocked) {
      ++admitted_after_block;
    }
  }

  // ---- stage D (opt-in): a bad switch past the gate, auto-rolled-back --
  // A degraded net replaces model 0's active *without* consulting the gate
  // (the failure mode §3.3's gate cannot catch: regression only visible
  // under production load).  The probation hold keeps the outgoing version
  // re-promotable; the watchdog classifies the ensuing anomaly as
  // post_switch_regression and re-promotes it from the sampler thread while
  // the workers keep routing.
  std::uint64_t bad_gen = 0, bad_prev_gen = 0;
  bool rolled_back = false;
  if (inject_bad) {
    const auto m = static_cast<core::model_key>(0);
    // Let the watchdog re-settle its baselines after the stage-C churn so
    // the spike attributes to stage D, not to a scripted switch.
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    const auto c0 = std::chrono::steady_clock::now();
    codegen::snapshot snap = make_heavy(4);
    engine->record_lifecycle(
        trace::lifecycle_phase::train, m, 4,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - c0)
                .count()));
    engine->install(m, std::move(snap));
    engine->switch_active(m);  // deliberately bypasses try_switch
    const rt::snapshot_handle::probation_status st = engine->probation(m);
    bad_prev_gen = st.held_gen;
    bad_gen = st.promoted_gen;
    std::printf("stage D: bad switch on model 0 -> gen %llu (hold on %llu)\n",
                static_cast<unsigned long long>(bad_gen),
                static_cast<unsigned long long>(bad_prev_gen));
    // The rollback policy runs on the sampler thread; wait, bounded.
    const double deadline = now_seconds(t0) + 20.0;
    while (engine->rollbacks() == 0 && now_seconds(t0) < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    rolled_back = engine->rollbacks() != 0;
    if (rolled_back) {
      // Mirror the action into the gate ledger the way the sim stack's
      // userspace_service does, so the flight report carries the row.
      core::gate_record rec;
      rec.t = now_seconds(t0);
      rec.logical_model = m;
      rec.candidate = 3;  // stage C's retrained version, re-promoted
      rec.version = 3;
      rec.admitted = true;
      rec.rollback = true;
      mon.on_shadow_gate(rec);
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  sampler.stop();  // final window fold + final stats text snapshot
  const double elapsed = now_seconds(t0);

  // Single-threaded probe of what readers now see on model 0: a flow id no
  // worker ever touched, so the answer comes from the active pointer, not a
  // cache.  Must equal the re-promoted (held) gen after a rollback.
  std::uint64_t post_rollback_gen = 0;
  if (inject_bad) {
    std::vector<fp::s64> probe_in(8, 1);
    std::vector<fp::s64> probe_out(1);
    const rt::route_result pr =
        engine->route(*handles[0], 0, 0xbadf100u, now_seconds(t0), probe_in,
                      probe_out);
    post_rollback_gen = pr.gen;
  }

  // Drain and account.
  engine->cache().clear(engine->snapshots());
  if (inject_bad) engine->close_probation();  // a timed-out hold is not a leak
  engine->maintain();
  engine->epochs().synchronize();
  engine->publish_stats();

  std::uint64_t violations = 0, routes = 0;
  for (const worker_outcome& o : outcomes) {
    violations += o.violations;
    routes += o.routes;
  }
  const std::uint64_t live = engine->versions_live();
  std::uint64_t min_model_switches = ~0ull;
  for (std::size_t mi = 0; mi < models; ++mi) {
    min_model_switches = std::min(
        min_model_switches,
        engine->snapshots(static_cast<core::model_key>(mi)).switches());
  }
  std::printf(
      "total: %.0f routes/s, %llu switches (min %llu per model), %llu "
      "gate-blocked, %llu admitted after block, %llu shadow inferences, "
      "%llu live after drain, %llu violations\n",
      routes / elapsed, static_cast<unsigned long long>(engine->switches()),
      static_cast<unsigned long long>(min_model_switches),
      static_cast<unsigned long long>(blocked),
      static_cast<unsigned long long>(admitted_after_block),
      static_cast<unsigned long long>(engine->shadow_inferences()),
      static_cast<unsigned long long>(live),
      static_cast<unsigned long long>(violations));

  // ---- BENCH_multimodel.json ------------------------------------------
  bench::report rep{"multimodel",
                    "K models behind one engine, shadow-gated switching"};
  rep.config("models", static_cast<double>(models));
  rep.config("workers", static_cast<double>(workers));
  rep.config("flows_per_worker_model", static_cast<double>(flows));
  rep.config("shadow_sample_rate", sh.sample_rate);
  rep.config("divergence_threshold", sh.divergence_threshold);
  rep.config("min_samples", static_cast<double>(sh.min_samples));
  rep.config("duration_seconds", elapsed);
  rep.summary("routes_per_sec", routes / elapsed);
  rep.summary("switches", static_cast<double>(engine->switches()));
  rep.summary("min_switches_per_model",
              static_cast<double>(min_model_switches));
  rep.summary("gate_blocks", static_cast<double>(blocked));
  rep.summary("admitted_after_block",
              static_cast<double>(admitted_after_block));
  rep.summary("shadow_inferences",
              static_cast<double>(engine->shadow_inferences()));
  rep.summary("violations", static_cast<double>(violations));
  rep.summary("versions_live_after_drain", static_cast<double>(live));
  if (inject_bad) {
    rep.config("probation_windows", static_cast<double>(cfg.probation_windows));
    rep.summary("rollbacks", static_cast<double>(engine->rollbacks()));
    rep.summary("bad_switch_gen", static_cast<double>(bad_gen));
    rep.summary("bad_switch_prev_gen", static_cast<double>(bad_prev_gen));
  }
  for (std::size_t mi = 0; mi < models; ++mi) {
    const auto m = static_cast<core::model_key>(mi);
    rep.add_point("per_model_switches", static_cast<double>(mi),
                  static_cast<double>(engine->snapshots(m).switches()));
  }
  for (const core::gate_record& g : mon.gates()) {
    rep.add_point("gate_mean_divergence", static_cast<double>(g.logical_model),
                  g.mean_divergence);
  }

  // ---- live telemetry: whole-run percentiles + per-window time series --
  rt::latency_snapshot lat;
  engine->latency_snapshot_into(lat);
  if (lat.total() != 0) {
    rep.summary("latency_samples", static_cast<double>(lat.total()));
    rep.summary("latency_p50_ns", lat.quantile(0.50));
    rep.summary("latency_p99_ns", lat.quantile(0.99));
    rep.summary("latency_p999_ns", lat.quantile(0.999));
  }
  const std::vector<rt::stats_window> windows = sampler.windows();
  for (const rt::stats_window& w : windows) {
    rep.add_point("ts_routes_per_sec", w.t_s, w.routes_per_sec);
    if (w.samples != 0) {
      rep.add_point("ts_p50_ns", w.t_s, w.p50_ns);
      rep.add_point("ts_p99_ns", w.t_s, w.p99_ns);
      rep.add_point("ts_p999_ns", w.t_s, w.p999_ns);
    }
  }
  if (!windows.empty()) {
    rep.summary("stats_windows", static_cast<double>(windows.size()));
  }

  for (const auto& [name, value] : reg.scalars()) rep.summary(name, value);
  const std::string path = rep.write();
  if (!path.empty()) std::printf("[json] %s\n", path.c_str());

  // Watchdog incidents are advisory here (the scripted lifecycle is the
  // verdict) but still published for the record.
  const std::vector<rt::incident_record> incidents = watchdog.incidents();
  const std::string incident_path = watchdog.write_incidents();
  if (!incident_path.empty()) {
    std::printf("[incidents] %s\n", incident_path.c_str());
  }

  // ---- REPORT_multimodel.html -----------------------------------------
  report::flight_report fr;
  fr.title = "LiteFlow flight report: multimodel";
  fr.summary.emplace_back("models", std::to_string(models));
  fr.summary.emplace_back("workers", std::to_string(workers));
  fr.summary.emplace_back("switches",
                          std::to_string(engine->switches()));
  fr.summary.emplace_back("gate blocked", std::to_string(blocked));
  fr.summary.emplace_back("admitted after block",
                          std::to_string(admitted_after_block));
  fr.summary.emplace_back("violations", std::to_string(violations));
  fr.summary.emplace_back("watchdog incidents",
                          std::to_string(incidents.size()));
  if (!windows.empty()) {
    report::chart_data tele;
    tele.id = "telemetry";
    tele.title = "Routes/s and p99 route latency (per sampler window)";
    tele.y_label = "routes/s | ns";
    report::series_data rps_series{"routes/s", {}};
    report::series_data p99_series{"p99 ns", {}};
    for (const rt::stats_window& w : windows) {
      rps_series.points.emplace_back(w.t_s, w.routes_per_sec);
      if (w.samples != 0) p99_series.points.emplace_back(w.t_s, w.p99_ns);
    }
    tele.series.push_back(std::move(rps_series));
    tele.series.push_back(std::move(p99_series));
    // Gate rulings as chart markers: the latency timeline shows whether a
    // blocked or admitted switch perturbed the datapath.
    for (const core::gate_record& g : mon.gates()) {
      tele.markers.push_back(
          {g.t,
           std::string{g.rollback    ? "rollback m"
                       : g.admitted ? "admit m"
                                    : "block m"} +
               std::to_string(g.logical_model),
           !g.admitted || g.rollback});
    }
    for (const report::marker& mk : watchdog.incident_markers()) {
      tele.markers.push_back(mk);
    }
    fr.charts.push_back(std::move(tele));
  }
  if (!incidents.empty()) fr.tables.push_back(watchdog.incidents_table());
  report::table_data gates;
  gates.id = "gates";
  gates.title = "Shadow gate decisions";
  gates.caption =
      "Each row is one switch_active that went through the shadow "
      "divergence gate.  A rolled-back row is a gate-aware rollback: the "
      "previous active re-promoted out of its probation hold.";
  gates.columns = {"t (s)",   "domain model", "candidate", "version",
                   "outcome", "samples",      "mean div",  "max div"};
  for (const core::gate_record& g : mon.gates()) {
    gates.rows.push_back(
        {num(g.t), std::to_string(g.logical_model),
         std::to_string(g.candidate), std::to_string(g.version),
         g.rollback ? "rolled-back" : g.admitted ? "admitted" : "blocked",
         std::to_string(g.samples), num(g.mean_divergence),
         num(g.max_divergence)});
    gates.row_classes.push_back(g.rollback    ? "gate-rollback"
                                : g.admitted ? "gate-admitted"
                                             : "gate-blocked");
  }
  fr.tables.push_back(std::move(gates));
  const std::string report_path = report::write_flight_report(fr, "multimodel");
  if (!report_path.empty()) std::printf("[html] %s\n", report_path.c_str());

  // ---- verdict ---------------------------------------------------------
  bool ok = script_ok;
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %llu consistency violations\n",
                 static_cast<unsigned long long>(violations));
    ok = false;
  }
  if (min_model_switches < 2) {
    std::fprintf(stderr, "FAIL: a model switched fewer than 2 times\n");
    ok = false;
  }
  if (blocked == 0 || admitted_after_block == 0) {
    std::fprintf(stderr, "FAIL: gate never blocked / never re-admitted\n");
    ok = false;
  }
  if (live > 2 * models) {
    std::fprintf(stderr, "FAIL: %llu versions leaked past the drain\n",
                 static_cast<unsigned long long>(live));
    ok = false;
  }
  if (inject_bad) {
    if (bad_gen == 0 || bad_prev_gen == 0) {
      std::fprintf(stderr,
                   "FAIL: stage D did not open a probation hold "
                   "(gen %llu, prev %llu)\n",
                   static_cast<unsigned long long>(bad_gen),
                   static_cast<unsigned long long>(bad_prev_gen));
      ok = false;
    }
    if (!rolled_back) {
      std::fprintf(stderr,
                   "FAIL: stage D regression was never auto-rolled-back\n");
      ok = false;
    }
    if (engine->rollbacks() != 1) {
      std::fprintf(stderr, "FAIL: expected exactly 1 rollback, saw %llu\n",
                   static_cast<unsigned long long>(engine->rollbacks()));
      ok = false;
    }
    bool classified = false, rb_recorded = false;
    for (const rt::incident_record& ir : incidents) {
      if (ir.post_switch && ir.suspect_gen == bad_gen) classified = true;
      if (ir.rollback_gen != 0 && ir.rollback_gen == bad_prev_gen) {
        rb_recorded = true;
      }
    }
    if (!classified) {
      std::fprintf(stderr,
                   "FAIL: no incident classed post_switch_regression with "
                   "suspect gen %llu\n",
                   static_cast<unsigned long long>(bad_gen));
      ok = false;
    }
    if (!rb_recorded) {
      std::fprintf(stderr,
                   "FAIL: no incident recorded rollback to gen %llu\n",
                   static_cast<unsigned long long>(bad_prev_gen));
      ok = false;
    }
    if (post_rollback_gen != bad_prev_gen) {
      std::fprintf(stderr,
                   "FAIL: readers see gen %llu after rollback, want %llu\n",
                   static_cast<unsigned long long>(post_rollback_gen),
                   static_cast<unsigned long long>(bad_prev_gen));
      ok = false;
    }
    if (ok) {
      std::printf(
          "stage D: regression gen %llu classified and rolled back to gen "
          "%llu\n",
          static_cast<unsigned long long>(bad_gen),
          static_cast<unsigned long long>(bad_prev_gen));
    }
  }
  if (!ok) {
    // Post-mortem before the nonzero exit (same contract as the stress
    // harness): black-box dump + final stats snapshot for CI to archive.
    if (engine->recorder() != nullptr) {
      const std::string bb = engine->recorder()->dump("multimodel");
      if (!bb.empty()) std::printf("[blackbox] %s\n", bb.c_str());
    }
    if (sampler.write_text()) {
      std::printf("[stats] %s\n", sampler.config().text_out.c_str());
    }
  }
  std::printf(ok ? "multimodel: PASS\n" : "multimodel: FAIL\n");
  return ok ? 0 : 1;
}
