// Sharded flow cache for the real-thread datapath engine.
//
// The sim router's core::flow_cache is a single-threaded open-addressing
// table.  Under real concurrent workers one table plus one lock would
// serialize every packet, so the rt engine shards: S independent
// core::flow_cache instances (reusing the probe/tombstone/incremental-sweep
// machinery unchanged), each behind its own rt::spinlock, with the shard
// chosen from the high bits of a splitmix64 hash of the flow id (the cache's
// internal bucket hash uses the low bits, so shard and bucket choice stay
// uncorrelated).
//
// Entries pin a snapshot_version: the cache stores the version pointer in
// the entry's model_id field (both 64-bit), and every eviction path — FIN
// erase, incremental idle sweep, full expiry, clear — funnels through the
// owner-provided release callback so model removal remains refcount-gated
// exactly as in the sim (§3.4: a module unloads only at refcount zero).
//
// Per-shard metrics counters live inside each core::flow_cache and are
// mutated only under that shard's lock; totals() sums them and must be read
// only after the workers have stopped (or tolerated as a racy snapshot —
// the engine reads them post-join).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/flow_cache.hpp"
#include "rt/snapshot_handle.hpp"
#include "rt/spinlock.hpp"

namespace lf::rt {

class sharded_flow_cache {
 public:
  /// `shards` is rounded up to a power of two; each shard starts with
  /// `shard_capacity` slots (also rounded up, by core::flow_cache).
  explicit sharded_flow_cache(std::size_t shards = 8,
                              std::size_t shard_capacity = 1024);

  sharded_flow_cache(const sharded_flow_cache&) = delete;
  sharded_flow_cache& operator=(const sharded_flow_cache&) = delete;

  /// Hit path: look up `flow`, touch its timestamp, and return the pinned
  /// version (nullptr on miss).  Also advances the shard's incremental idle
  /// sweep by `evict_slots` buckets, releasing expired pins via unpin.
  /// The returned pointer stays valid because the entry's pin is only
  /// released by an eviction path, and the caller is inside an epoch guard
  /// (so even a racing FIN cannot lead to the version being freed under
  /// the caller).
  snapshot_version* lookup(netsim::flow_id_t flow, double now,
                           double idle_timeout, std::size_t evict_slots,
                           snapshot_handle& handle);

  /// Miss path: insert `flow` pinned to `ver` (the caller already holds the
  /// pin being transferred into the entry).  If another thread inserted the
  /// flow concurrently, the existing entry wins: the transferred pin is
  /// released and the resident version is returned so the caller serves the
  /// flow consistently.
  snapshot_version* insert(netsim::flow_id_t flow, snapshot_version* ver,
                           double now, snapshot_handle& handle);

  /// FIN: drop the flow's entry and release its pin.  False if absent.
  bool erase(netsim::flow_id_t flow, snapshot_handle& handle);

  /// Full idle expiry over every shard (maintenance path).
  std::size_t expire_idle(double now, double idle_timeout,
                          snapshot_handle& handle);

  /// Drop everything (teardown), releasing all pins.
  std::size_t clear(snapshot_handle& handle);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(netsim::flow_id_t flow) const noexcept;

  struct totals {
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rehashes = 0;
    std::uint64_t tombstone_scrubs = 0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t lock_contended = 0;
  };

  /// Sum of the per-shard tables' stats.  Quiesced read: call after the
  /// worker threads have stopped for exact numbers.
  totals stats() const;

 private:
  struct alignas(64) shard {
    spinlock lock;
    core::flow_cache cache;
    explicit shard(std::size_t capacity) : cache{capacity} {}
  };

  std::vector<std::unique_ptr<shard>> shards_;
  std::size_t shard_shift_ = 0;  ///< top bits of the mixed hash pick the shard
};

}  // namespace lf::rt
