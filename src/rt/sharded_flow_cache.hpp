// Sharded flow cache for the real-thread datapath engine — read-mostly.
//
// The first rt engine reused core::flow_cache behind one spinlock per shard,
// which put ~1 lock RMW on every route and made 4 workers *slower* than one.
// This version makes the shard hot path lock-free in the common case:
//
//  - Every slot field is a std::atomic (flow id, pinned version pointer,
//    last-used stamp, state byte), so concurrent probing is race-free by
//    construction (TSan-clean) without any lock.
//  - Lookups run a **seqlock-validated probe**: read the shard's sequence
//    counter, probe with acquire loads, re-read the counter.  An unchanged
//    even counter proves no erase/evict/rehash overlapped the probe, so the
//    (flow → version) pair read is consistent.  A torn probe retries, and
//    after a few failed attempts falls back to the shard spinlock (bounded
//    wait; counted separately so the bench can see it).
//  - Inserts publish with a release store of the state byte *last*, so a
//    concurrent reader either misses the slot entirely or sees fully
//    initialized fields — plain inserts do not bump the sequence counter
//    and therefore do not disturb concurrent readers at all.
//  - Structural mutation (insert/erase/incremental evict/expire/clear/grow)
//    keeps the per-shard spinlock.  Erase/evict/rehash additionally wrap
//    their slot writes in seq_write_begin()/seq_write_end() bumps, because
//    only those can re-bind a slot a reader is mid-probe on.
//  - Growth swaps in a new slot array and retires the old one through the
//    engine's epoch_domain: a reader that loaded the stale array pointer
//    keeps probing memory that stays allocated until its guard closes, then
//    fails seq validation and retries against the new array.
//
// Entries pin a snapshot_version exactly as before: every eviction path —
// FIN erase, incremental idle sweep, full expiry, clear — funnels through
// snapshot_handle::unpin, so model removal remains refcount-gated (§3.4).
// The incremental idle sweep moved from the (now lock-free) lookup to the
// miss/insert path: a steady state of pure hits performs no eviction work,
// which is sound because idle entries are created by churn, and churn means
// misses, FINs and inserts — exactly the operations that drive the sweep.
//
// Callers must be inside an epoch_domain::guard on the engine's domain for
// lookup() and insert(): the guard is what keeps a just-erased version and
// a just-retired slot array dereferenceable until the call returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/packet.hpp"
#include "rt/epoch.hpp"
#include "rt/snapshot_handle.hpp"
#include "rt/spinlock.hpp"

namespace lf::rt {

/// Round up to the next power of two (>= 1).  Shared by the shard count,
/// per-shard capacity and the engine's worker-derived shard default.
constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

class sharded_flow_cache {
 public:
  /// `shards` is rounded up to a power of two; each shard starts with
  /// `shard_capacity` slots (also rounded up).  Old slot arrays are retired
  /// through `epochs`, which must outlive the cache.
  explicit sharded_flow_cache(std::size_t shards, std::size_t shard_capacity,
                              epoch_domain& epochs);

  sharded_flow_cache(const sharded_flow_cache&) = delete;
  sharded_flow_cache& operator=(const sharded_flow_cache&) = delete;

  /// Teardown: requires readers stopped (frees the live slot arrays
  /// directly; arrays retired earlier drain through the epoch domain).
  ~sharded_flow_cache();

  /// Hit path: seqlock-validated lock-free probe.  Touches the entry's
  /// last-used stamp on a hit and returns the pinned version (nullptr on
  /// miss).  MUST be called inside an epoch guard.  Takes the shard lock
  /// only after repeated seq-validation failures (counted).
  snapshot_version* lookup(netsim::flow_id_t flow, double now) noexcept;

  /// Miss path: insert `flow` pinned to `ver` (the caller already holds the
  /// pin being transferred into the entry).  Runs the shard's incremental
  /// idle sweep (`evict_slots` buckets against `idle_timeout`) under the
  /// same lock acquisition.  If another thread inserted the flow
  /// concurrently, the resident entry wins: the transferred pin is released
  /// and the resident version returned so the caller serves the flow
  /// consistently.  MUST be called inside an epoch guard.
  snapshot_version* insert(netsim::flow_id_t flow, snapshot_version* ver,
                           double now, double idle_timeout,
                           std::size_t evict_slots, snapshot_handle& handle);

  /// FIN: drop the flow's entry and release its pin.  False if absent.
  bool erase(netsim::flow_id_t flow, snapshot_handle& handle);

  /// Full idle expiry over every shard (maintenance path).
  std::size_t expire_idle(double now, double idle_timeout,
                          snapshot_handle& handle);

  /// Drop everything (teardown), releasing all pins.
  std::size_t clear(snapshot_handle& handle);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(netsim::flow_id_t flow) const noexcept;

  struct totals {
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rehashes = 0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t lock_contended = 0;
    std::uint64_t read_retries = 0;    ///< seq-validation retries (lock-free)
    std::uint64_t read_fallbacks = 0;  ///< lookups that fell back to the lock
  };

  /// Sum of the per-shard stats.  Safe to call mid-run from any thread (the
  /// stats sampler does): the counters it reads are single-writer-under-lock
  /// relaxed atomics, so a concurrent read sees recent, untorn, monotonic
  /// values.  For exact end-of-run numbers, call after the workers stop.
  totals stats() const;

 private:
  enum : std::uint8_t { k_empty = 0, k_tombstone = 1, k_occupied = 2 };

  /// One probe slot.  All fields atomic so lock-free readers race no plain
  /// memory; writers publish occupancy with a release store of `state`.
  struct slot {
    std::atomic<netsim::flow_id_t> flow{0};
    std::atomic<snapshot_version*> ver{nullptr};
    std::atomic<std::uint64_t> stamp{0};  ///< bit-cast double, last_used
    std::atomic<std::uint8_t> state{k_empty};
  };

  /// Immutable-geometry slot array; the current one is published through an
  /// atomic pointer and superseded arrays are epoch-retired.
  struct table {
    explicit table(std::size_t capacity)
        : mask{capacity - 1}, slots(new slot[capacity]) {}
    const std::size_t mask;  ///< capacity - 1 (capacity is a power of two)
    std::unique_ptr<slot[]> slots;
  };

  struct alignas(64) shard {
    explicit shard(std::size_t capacity)
        : tbl{new table{round_up_pow2(capacity < 4 ? 4 : capacity)}} {}
    ~shard() { delete tbl.load(std::memory_order_relaxed); }

    spinlock lock;                   ///< insert/erase/evict/rehash
    std::atomic<std::uint64_t> seq{0};  ///< odd while a writer mutates slots
    std::atomic<table*> tbl;
    // Written only under `lock`.  occupied/evictions/rehashes are relaxed
    // atomics because stats() reads them mid-run from sampler threads;
    // the lock still serializes writers, so plain load+add+store updates
    // (see bump/bump_sub) never lose an increment.  tombstones/sweep_cursor
    // are writer-internal and stay plain.
    std::atomic<std::size_t> occupied{0};
    std::size_t tombstones = 0;
    std::size_t sweep_cursor = 0;
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> rehashes{0};
    // Reader-side slow-path accounting (atomic: touched only on seq
    // conflicts, never on the clean lock-free fast path):
    std::atomic<std::uint64_t> read_retries{0};
    std::atomic<std::uint64_t> read_fallbacks{0};

    void seq_write_begin() noexcept {
      seq.fetch_add(1, std::memory_order_acq_rel);
    }
    void seq_write_end() noexcept {
      seq.fetch_add(1, std::memory_order_release);
    }

    /// Lock-holder-only counter updates (RMW-free; see the member comment).
    template <typename T>
    static void bump(std::atomic<T>& c, T n = 1) noexcept {
      c.store(c.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    }
    template <typename T>
    static void bump_sub(std::atomic<T>& c, T n = 1) noexcept {
      c.store(c.load(std::memory_order_relaxed) - n,
              std::memory_order_relaxed);
    }
  };

  static std::size_t bucket_of(const table& t, netsim::flow_id_t flow) noexcept;

  /// Writer-side probe (under the shard lock): returns the slot holding
  /// `flow`, or the first reusable slot (tombstone preferred, else empty),
  /// or nullptr if the table is full of mismatches.
  static slot* probe_for_write(table& t, netsim::flow_id_t flow,
                               slot** reusable) noexcept;

  /// Drop one occupied slot (under the shard lock), releasing its pin.
  void evict_slot(shard& sh, slot& s, snapshot_handle& handle);

  /// Grow (or scrub) the shard's table to `new_capacity` (under the shard
  /// lock); the old array is retired through the epoch domain.
  void rehash(shard& sh, std::size_t new_capacity);

  /// Incremental idle sweep (under the shard lock).
  std::size_t step_evict(shard& sh, double now, double idle_timeout,
                         std::size_t slots, snapshot_handle& handle);

  epoch_domain& epochs_;
  std::vector<std::unique_ptr<shard>> shards_;
  std::size_t shard_shift_ = 0;  ///< top bits of the mixed hash pick the shard
};

}  // namespace lf::rt
