// Real spinlock for the real-thread datapath engine (rt/).
//
// Unlike kernelsim::spinlock — an *analytic model* that charges simulated
// wait time on a single-threaded event loop — this is an actual
// test-and-test-and-set lock taken by concurrent std::thread workers.  It
// exists so the rt engine exercises the paper's §3.4 claim for real: the
// active/standby flip holds this lock for a handful of instructions, and the
// sharded flow cache holds one per shard for a probe-and-touch.
//
// Accounting: acquisitions and contended acquisitions are mutated only while
// the lock is held, so writes are serialized by the lock itself — which is
// why the increment can stay a plain load+add+store (no lock-prefixed RMW)
// on relaxed atomics.  The atomics exist for the *readers*: the rt stats
// sampler and a mid-run publish_stats() read these from other threads while
// workers still hold and release the lock, and a relaxed load gives them a
// recent, untorn, monotonic value instead of a data race.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace lf::rt {

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    bool contended = false;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      contended = true;
      // Test-and-test-and-set: spin on the cheap load, not the RMW.
      while (flag_.test(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
      }
    }
    bump(acquisitions_);
    if (contended) bump(contended_);
  }

  bool try_lock() noexcept {
    if (flag_.test_and_set(std::memory_order_acquire)) return false;
    bump(acquisitions_);
    return true;
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

  std::uint64_t acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended_acquisitions() const noexcept {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  /// Holder-only increment: serialized by the lock, so load+add+store
  /// never loses an update and stays RMW-free.
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> acquisitions_{0};  ///< written under the lock
  std::atomic<std::uint64_t> contended_{0};     ///< written under the lock
};

/// std::lock_guard-style RAII for rt::spinlock.
class spin_guard {
 public:
  explicit spin_guard(spinlock& l) noexcept : lock_{l} { lock_.lock(); }
  ~spin_guard() { lock_.unlock(); }
  spin_guard(const spin_guard&) = delete;
  spin_guard& operator=(const spin_guard&) = delete;

 private:
  spinlock& lock_;
};

}  // namespace lf::rt
