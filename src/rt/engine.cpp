#include "rt/engine.hpp"

namespace lf::rt {
namespace {

/// L1 hits between forced L2 refreshes of a flow's last-used stamp.  At any
/// plausible route rate this bounds stamp staleness far below any sane idle
/// timeout while keeping ~98% of hits entirely worker-local.
constexpr std::uint64_t k_l1_refresh_mask = 63;

}  // namespace

void worker_handle::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  reg.register_counter(prefix + ".routes", routes_);
  reg.register_counter(prefix + ".l1_hits", l1_hits_);
  reg.register_counter(prefix + ".hits", hits_);
  reg.register_counter(prefix + ".misses", misses_);
  reg.register_counter(prefix + ".inferences", infers_);
  reg.register_counter(prefix + ".shadow_inferences", shadow_infers_);
  reg.register_counter(prefix + ".fins", fins_);
  reg.register_counter(prefix + ".batches", batches_);
}

std::size_t datapath_engine::resolved_shards(
    const engine_config& cfg) noexcept {
  const std::size_t workers = cfg.max_workers == 0 ? 1 : cfg.max_workers;
  return cfg.shards == 0 ? round_up_pow2(2 * workers)
                         : round_up_pow2(cfg.shards);
}

datapath_engine::datapath_engine(engine_config cfg)
    : cfg_{cfg},
      epochs_{cfg.max_workers == 0 ? 1 : cfg.max_workers},
      cache_{resolved_shards(cfg), cfg.shard_capacity, epochs_} {
  // Reflect the resolved policy back into config() so callers (and the
  // bench report) see the shard count actually in effect.
  cfg_.shards = cache_.shard_count();
  if (cfg_.l1_slots != 0) cfg_.l1_slots = round_up_pow2(cfg_.l1_slots);
  if (cfg_.models == 0) cfg_.models = 1;
  if (cfg_.telemetry.latency) {
    lat_mask_ =
        (std::uint64_t{1} << cfg_.telemetry.latency_sample_shift) - 1;
  }
  if (cfg_.telemetry.blackbox_events != 0) {
    recorder_ = std::make_unique<flight_recorder>(
        flight_recorder_config{cfg_.telemetry.blackbox_events,
                               cfg_.telemetry.blackbox_route_shift,
                               cfg_.telemetry.blackbox_dump_interval_ns,
                               cfg_.telemetry.blackbox_max_dumps},
        cfg_.max_workers == 0 ? 1 : cfg_.max_workers);
    bb_route_mask_ = recorder_->route_sample_mask();
    // Single-threaded here (before any worker exists), which satisfies the
    // version_reclaim contract of setting the recorder before concurrency.
    reclaim_.recorder = &recorder_->control();
  }
  for (std::size_t m = 0; m < cfg_.models; ++m) {
    handles_.emplace_back(epochs_, reclaim_);
    shadows_.emplace_back();
  }
  if (cfg_.probation_windows != 0) {
    for (snapshot_handle& h : handles_) h.set_probation(true);
  }
}

datapath_engine::~datapath_engine() {
  // Contract: worker threads are joined.  Release every flow pin so the
  // handle teardown (which runs next, then the epoch domain) can retire all
  // versions.  Any handle of the shared reclaim domain can do the unpin
  // accounting, and one maintain() drains the shared zombie list.
  cache_.clear(handles_[0]);
  handles_[0].maintain();
}

std::uint64_t datapath_engine::install(core::model_key model,
                                       codegen::snapshot snap) {
  snapshot_handle& h = handles_[model];
  const std::uint64_t gen = h.install_standby(std::move(snap));
  if (recorder_ != nullptr) {
    recorder_->control().emit(trace::event_type::snapshot_install, model, gen);
  }
  {
    // A fresh candidate invalidates whatever was measured for the old one.
    // Binding the new generation makes workers' gen-tagged records for the
    // replaced candidate drop instead of gating this one (a racing worker
    // can reach the scorer after this reset with a divergence it measured
    // against the previous standby).
    spin_guard g{shadows_[model].mu};
    shadows_[model].scorer.reset();
    shadows_[model].scorer.bind(gen);
  }
  // Opportunistic reclamation keeps the zombie list short without a
  // dedicated maintenance thread.
  h.maintain();
  return gen;
}

bool datapath_engine::switch_active(core::model_key model) {
  snapshot_handle& h = handles_[model];
  const bool flipped = h.switch_active();
  if (flipped) {
    if (recorder_ != nullptr) {
      recorder_->control().emit(trace::event_type::snapshot_switch, model, 0);
    }
    spin_guard g{shadows_[model].mu};
    shadows_[model].scorer.reset();
  }
  h.maintain();
  return flipped;
}

switch_outcome datapath_engine::try_switch(core::model_key model) {
  snapshot_handle& h = handles_[model];
  switch_outcome out;
  if (!h.has_standby()) {
    h.switch_active();  // counts the no-op where it is always counted
    out.status = switch_outcome::result::no_standby;
    return out;
  }
  {
    spin_guard g{shadows_[model].mu};
    out.verdict = shadows_[model].scorer.check(cfg_.shadow);
  }
  // Jurisdiction: gate only a replacement.  The bootstrap switch (no
  // incumbent) must ship regardless — there is nothing to diverge from.
  const bool gated = cfg_.shadow.active() && cfg_.shadow.gate_enabled &&
                     h.has_active();
  if (recorder_ != nullptr && gated) {
    recorder_->control().emit(
        trace::event_type::gate_verdict,
        (static_cast<std::uint64_t>(model) << 1) |
            (out.verdict.admit ? 1u : 0u),
        static_cast<std::uint64_t>(out.verdict.mean_divergence * 1e9));
  }
  if (gated && !out.verdict.admit) {
    gate_blocks_.inc();
    out.status = switch_outcome::result::gate_blocked;
    return out;
  }
  h.switch_active();
  if (recorder_ != nullptr) {
    recorder_->control().emit(trace::event_type::snapshot_switch, model, 0);
  }
  {
    spin_guard g{shadows_[model].mu};
    shadows_[model].scorer.reset();
  }
  h.maintain();
  out.status = switch_outcome::result::flipped;
  return out;
}

std::size_t datapath_engine::maintain() { return handles_[0].maintain(); }

bool datapath_engine::try_rollback(core::model_key model) {
  snapshot_handle& h = handles_[model];
  // Captured before the flip for the rollback event's payload; the policy
  // callers are single-threaded per model, so the status cannot change
  // between the read and the rollback.
  const snapshot_handle::probation_status st = h.probation();
  const bool rolled = h.rollback();
  if (rolled) {
    if (recorder_ != nullptr) {
      recorder_->control().emit(
          trace::event_type::snapshot_rollback,
          (static_cast<std::uint64_t>(model) << 32) |
              (st.held_gen & 0xffffffffULL),
          st.promoted_gen);
    }
    // Whatever divergence a standby accumulated was measured against the
    // regressed active; the next install starts the evidence over.
    spin_guard g{shadows_[model].mu};
    shadows_[model].scorer.reset();
  }
  h.maintain();
  return rolled;
}

std::size_t datapath_engine::probation_tick() {
  if (cfg_.probation_windows == 0) return 0;
  std::size_t closed = 0;
  for (snapshot_handle& h : handles_) {
    if (h.probation_tick(cfg_.probation_windows)) ++closed;
  }
  if (closed != 0) handles_[0].maintain();
  return closed;
}

std::size_t datapath_engine::close_probation() {
  std::size_t closed = 0;
  for (snapshot_handle& h : handles_) {
    if (h.close_probation()) ++closed;
  }
  if (closed != 0) handles_[0].maintain();
  return closed;
}

worker_handle& datapath_engine::register_worker() {
  std::lock_guard<std::mutex> g{workers_mu_};
  worker_handle& w = workers_.emplace_back();
  w.slot_ = epochs_.register_reader();
  if (cfg_.l1_slots != 0) {
    w.l1_.resize(cfg_.l1_slots);
    unsigned bits = 0;
    while ((std::size_t{1} << bits) < cfg_.l1_slots) ++bits;
    w.l1_shift_ = 64 - bits;
  }
  if (recorder_ != nullptr && w.slot_ < recorder_->worker_rings()) {
    w.bb_ = &recorder_->worker(w.slot_);
  }
  return w;
}

snapshot_version* datapath_engine::resolve_flow(worker_handle& w,
                                               snapshot_handle& h,
                                               netsim::flow_id_t key,
                                               double now, std::uint64_t se,
                                               bool& hit) {
  if (!w.l1_.empty()) {
    worker_handle::l1_entry& e = w.l1_slot(key);
    if (e.epoch == se && e.key == key &&
        (++w.l1_tick_ & k_l1_refresh_mask) != 0) {
      // L1 hit: the unchanged switch epoch proves the binding is current
      // and the pointer dereferenceable (snapshot_handle.hpp).  Every 64th
      // hit falls through to the L2 probe purely to refresh the entry's
      // idle stamp.
      hit = true;
      w.l1_hits_.inc();
      return e.ver;
    }
  }
  snapshot_version* v = cache_.lookup(key, now);
  if (v != nullptr) {
    hit = true;
    w.hits_.inc();
  } else {
    hit = false;
    w.misses_.inc();
    v = h.pin_active();
    if (v == nullptr) return nullptr;  // nothing deployed yet for this model
    v = cache_.insert(key, v, now, cfg_.idle_timeout,
                      cfg_.evict_slots_per_route, h);
  }
  if (!w.l1_.empty()) {
    // Stamp with the epoch loaded *before* the probe: if a flip or
    // retirement raced this resolve, the entry is born stale and the next
    // route re-validates against the shard instead of trusting it.
    w.l1_slot(key) = worker_handle::l1_entry{key, v, se};
  }
  return v;
}

void datapath_engine::shadow_score(worker_handle& w, core::model_key model,
                                   snapshot_version* active,
                                   std::span<const fp::s64> input,
                                   std::span<const fp::s64> active_out) {
  snapshot_version* sh = handles_[model].peek_shadow();
  // `sh` is safe to dereference (not to keep): we are inside the caller's
  // epoch guard and standby retirement goes through the epoch domain.
  // Comparing against the just-promoted active (flip race) is skipped.
  if (sh == nullptr || sh == active) return;
  // Capture the candidate's generation BEFORE inferring: install_standby can
  // replace the candidate while we compute, and the tag is what keeps this
  // divergence from being attributed to the replacement (the scorer drops
  // gen-mismatched records).
  const std::uint64_t candidate_gen = sh->gen;
  const quant::quantized_mlp& prog = sh->snap.program;
  if (input.size() != prog.input_size()) return;  // shape drifted
  w.shadow_out_.resize(prog.output_size());
  prog.infer_into(input, w.shadow_out_, w.scratch_);
  w.shadow_infers_.inc();
  const double d = core::shadow_divergence(
      active_out, active->snap.program.io_scale(), w.shadow_out_,
      prog.io_scale());
  spin_guard g{shadows_[model].mu};
  shadows_[model].scorer.record(d, candidate_gen);
}

route_result datapath_engine::route(worker_handle& w, core::model_key model,
                                    netsim::flow_id_t flow, double now,
                                    std::span<const fp::s64> input,
                                    std::span<fp::s64> out) {
  route_result r;
  w.routes_.inc();
  // Telemetry off costs one predictable branch here (short-circuit before
  // the tick) plus the null bb_ check at the bottom; sampled-off routes pay
  // the tick but no clock read.
  const bool timed =
      cfg_.telemetry.latency && ((w.lat_tick_++ & lat_mask_) == 0);
  const std::uint64_t t0 = timed ? wall_ns() : 0;
  const netsim::flow_id_t key = core::composite_flow_key(model, flow);
  snapshot_handle& h = handles_[model];
  {
    // The epoch guard spans the whole route+infer: any version pointer we
    // hold — L1-cached, shard-cached pin or freshly pinned active — cannot
    // be freed before we exit, even if a racing FIN/switch drops its last
    // pin meanwhile.  The shadow peek rides the same guard.  Closed before
    // the latency stamp so the guard's own exit cost is inside the sample
    // (it is part of the route) but the telemetry writes are not extending
    // the grace period.
    epoch_domain::guard g{epochs_, w.slot_};
    const std::uint64_t se = h.switch_epoch();
    snapshot_version* v = resolve_flow(w, h, key, now, se, r.hit);
    if (v != nullptr) {
      r.gen = v->gen;
      const quant::quantized_mlp& prog = v->snap.program;
      if (input.size() == prog.input_size() &&
          out.size() == prog.output_size()) {
        prog.infer_into(input, out, w.scratch_);
        w.infers_.inc();
        r.served = true;
        // Deterministic sampled slice: same (seed, model, flow) => same
        // decision on every run and every worker.
        if (cfg_.shadow.active() &&
            core::shadow_scorer::sampled(cfg_.shadow, model, flow)) {
          shadow_score(w, model, v, input, out);
        }
      }
    }
  }
  if (timed) w.lat_.record(wall_ns() - t0);
  if (w.bb_ != nullptr && (w.bb_tick_++ & bb_route_mask_) == 0) {
    w.bb_->emit(trace::event_type::route_summary, key, r.gen);
  }
  return r;
}

std::size_t datapath_engine::route_batch(
    worker_handle& w, core::model_key model,
    std::span<const netsim::flow_id_t> flows, double now,
    std::span<const fp::s64> inputs, std::span<fp::s64> outs,
    std::span<route_result> results) {
  const std::size_t n = flows.size();
  if (n == 0 || results.size() < n) return 0;
  w.routes_.inc(n);
  w.batches_.inc();
  // One timing decision per batch; the per-flow mean is recorded n times so
  // batched and scalar routes weigh equally in the merged histogram.
  const bool timed =
      cfg_.telemetry.latency && ((w.lat_tick_++ & lat_mask_) == 0);
  const std::uint64_t t0 = timed ? wall_ns() : 0;
  if (w.batch_vers_.size() < n) w.batch_vers_.resize(n);
  snapshot_handle& h = handles_[model];
  // One guard + one switch-epoch load amortized over the whole batch.
  epoch_domain::guard g{epochs_, w.slot_};
  const std::uint64_t se = h.switch_epoch();
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = route_result{};
    const netsim::flow_id_t key = core::composite_flow_key(model, flows[i]);
    snapshot_version* v = resolve_flow(w, h, key, now, se, results[i].hit);
    w.batch_vers_[i] = v;
    if (v != nullptr) results[i].gen = v->gen;
  }
  // Inference over maximal runs of same-version packets: one batched weight
  // pass per run.  Steady state is one run (everything on the active gen);
  // during a switch drain it degrades gracefully to a few runs.
  std::size_t served = 0;
  std::size_t i = 0;
  while (i < n) {
    snapshot_version* const v = w.batch_vers_[i];
    std::size_t j = i + 1;
    while (j < n && w.batch_vers_[j] == v) ++j;
    if (v != nullptr) {
      const quant::quantized_mlp& prog = v->snap.program;
      const std::size_t in_sz = prog.input_size();
      const std::size_t out_sz = prog.output_size();
      if (inputs.size() == n * in_sz && outs.size() == n * out_sz) {
        const std::size_t k = j - i;
        prog.infer_batch_into(inputs.subspan(i * in_sz, k * in_sz), k,
                              outs.subspan(i * out_sz, k * out_sz),
                              w.scratch_);
        w.infers_.inc(k);
        served += k;
        for (std::size_t s = i; s < j; ++s) results[s].served = true;
      }
    }
    i = j;
  }
  if (timed) w.lat_.record((wall_ns() - t0) / n, n);
  if (w.bb_ != nullptr && (w.bb_tick_++ & bb_route_mask_) == 0) {
    w.bb_->emit(trace::event_type::batch_flush, n, served);
  }
  return served;
}

bool datapath_engine::flow_finished(worker_handle& w, core::model_key model,
                                    netsim::flow_id_t flow) {
  const netsim::flow_id_t key = core::composite_flow_key(model, flow);
  if (!w.l1_.empty()) {
    // Drop the worker's own binding first: after a FIN the next packet of
    // this flow must take a miss, never an L1 hit on the closed entry.
    worker_handle::l1_entry& e = w.l1_slot(key);
    if (e.key == key) e.epoch = 0;
  }
  const bool erased = cache_.erase(key, handles_[model]);
  if (erased) w.fins_.inc();
  return erased;
}

std::size_t datapath_engine::expire_idle(double now) {
  return cache_.expire_idle(now, cfg_.idle_timeout, handles_[0]);
}

std::uint64_t datapath_engine::installs() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.installs();
  return sum;
}

std::uint64_t datapath_engine::switches() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.switches();
  return sum;
}

std::uint64_t datapath_engine::switch_noops() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.switch_noops();
  return sum;
}

std::uint64_t datapath_engine::rollbacks() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.rollbacks();
  return sum;
}

std::uint64_t datapath_engine::rollback_noops() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.rollback_noops();
  return sum;
}

std::uint64_t datapath_engine::probation_retires() const noexcept {
  std::uint64_t sum = 0;
  for (const snapshot_handle& h : handles_) sum += h.probation_retires();
  return sum;
}

std::uint64_t datapath_engine::shadow_gen_drops() const {
  std::uint64_t sum = 0;
  for (const model_shadow& s : shadows_) {
    spin_guard g{s.mu};
    sum += s.scorer.gen_mismatch_drops();
  }
  return sum;
}

std::uint64_t datapath_engine::shadow_inferences() const {
  std::uint64_t sum = 0;
  std::lock_guard<std::mutex> g{workers_mu_};
  for (const worker_handle& w : workers_) sum += w.shadow_inferences();
  return sum;
}

core::shadow_verdict datapath_engine::shadow_evidence(
    core::model_key model) const {
  spin_guard g{shadows_[model].mu};
  return shadows_[model].scorer.check(cfg_.shadow);
}

datapath_engine::live_counters datapath_engine::counters_now() const {
  live_counters c;
  {
    std::lock_guard<std::mutex> g{workers_mu_};
    for (const worker_handle& w : workers_) {
      c.routes += w.routes();
      c.l1_hits += w.l1_hits();
      c.l2_hits += w.cache_hits();
      c.misses += w.cache_misses();
      c.inferences += w.inferences();
      c.shadow_inferences += w.shadow_inferences();
      c.fins += w.fins();
      c.batches += w.batches();
    }
  }
  const sharded_flow_cache::totals t = cache_.stats();
  c.cache_size = t.size;
  c.cache_evictions = t.evictions;
  c.lock_acquisitions = t.lock_acquisitions;
  c.lock_contended = t.lock_contended;
  c.read_retries = t.read_retries;
  c.read_fallbacks = t.read_fallbacks;
  c.installs = installs();
  c.switches = switches();
  c.switch_noops = switch_noops();
  c.gate_blocks = gate_blocks_.value();
  c.versions_live = versions_live();
  c.versions_retired = versions_retired();
  c.rollbacks = rollbacks();
  c.rollback_noops = rollback_noops();
  return c;
}

void datapath_engine::latency_snapshot_into(latency_snapshot& out) const {
  std::lock_guard<std::mutex> g{workers_mu_};
  for (const worker_handle& w : workers_) w.latency().snapshot_into(out);
}

void datapath_engine::record_violation(worker_handle& w, netsim::flow_id_t key,
                                       std::uint64_t expected_gen,
                                       std::uint64_t observed_gen) noexcept {
  if (recorder_ == nullptr) return;
  const std::uint64_t packed =
      (expected_gen << 32) | (observed_gen & 0xffffffffULL);
  if (w.bb_ != nullptr) {
    w.bb_->emit(trace::event_type::invariant_violation, key, packed);
  }
  recorder_->control().emit(trace::event_type::invariant_violation, key,
                            packed);
}

void datapath_engine::record_lifecycle(trace::lifecycle_phase phase,
                                       core::model_key model,
                                       std::uint64_t version,
                                       std::uint64_t cost_ns) noexcept {
  if (recorder_ == nullptr) return;
  recorder_->control().emit(trace::event_type::lifecycle_stage,
                            trace::pack_lifecycle(phase, model, version),
                            cost_ns);
}

void datapath_engine::register_metrics(metrics::registry& reg,
                                       const std::string& prefix) {
  // Model 0 keeps the historical ".snapshots" names; extra models get a
  // ".snapshots.m<k>" prefix so multi-model reports stay per-lifecycle.
  handles_[0].register_metrics(reg, prefix + ".snapshots");
  for (std::size_t m = 1; m < handles_.size(); ++m) {
    handles_[m].register_metrics(
        reg, prefix + ".snapshots.m" + std::to_string(m));
  }
  reg.register_gauge(prefix + ".cache.size", cache_size_);
  reg.register_gauge(prefix + ".cache.evictions", cache_evictions_);
  reg.register_gauge(prefix + ".cache.rehashes", cache_rehashes_);
  reg.register_gauge(prefix + ".cache.lock_acquisitions", lock_acquisitions_);
  reg.register_gauge(prefix + ".cache.lock_contended", lock_contended_);
  reg.register_gauge(prefix + ".cache.read_retries", read_retries_);
  reg.register_gauge(prefix + ".cache.read_fallbacks", read_fallbacks_);
  reg.register_gauge(prefix + ".lock.per_route", lock_per_route_);
  reg.register_gauge(prefix + ".lock.contended_ratio", lock_contended_ratio_);
  reg.register_gauge(prefix + ".l1.hit_rate", l1_hit_rate_);
  reg.register_gauge(prefix + ".flip_lock.contended", flip_contended_);
  reg.register_gauge(prefix + ".versions.live", live_versions_gauge_);
  reg.register_gauge(prefix + ".versions.retired", retired_versions_gauge_);
  reg.register_counter(prefix + ".shadow.gate_blocks", gate_blocks_);
  reg.register_gauge(prefix + ".shadow.samples", shadow_samples_);
  reg.register_gauge(prefix + ".shadow.mean_divergence",
                     shadow_mean_divergence_);
}

void datapath_engine::publish_stats() {
  const sharded_flow_cache::totals t = cache_.stats();
  cache_size_.set(static_cast<double>(t.size));
  cache_evictions_.set(static_cast<double>(t.evictions));
  cache_rehashes_.set(static_cast<double>(t.rehashes));
  lock_acquisitions_.set(static_cast<double>(t.lock_acquisitions));
  lock_contended_.set(static_cast<double>(t.lock_contended));
  read_retries_.set(static_cast<double>(t.read_retries));
  read_fallbacks_.set(static_cast<double>(t.read_fallbacks));
  // Derived pressure rates for flight reports and the scaling bench: locks
  // taken per route and the fraction of acquisitions that actually spun.
  std::uint64_t total_routes = 0;
  std::uint64_t total_l1_hits = 0;
  {
    std::lock_guard<std::mutex> g{workers_mu_};
    for (const worker_handle& w : workers_) {
      total_routes += w.routes();
      total_l1_hits += w.l1_hits();
    }
  }
  lock_per_route_.set(total_routes == 0
                          ? 0.0
                          : static_cast<double>(t.lock_acquisitions) /
                                static_cast<double>(total_routes));
  lock_contended_ratio_.set(t.lock_acquisitions == 0
                                ? 0.0
                                : static_cast<double>(t.lock_contended) /
                                      static_cast<double>(t.lock_acquisitions));
  l1_hit_rate_.set(total_routes == 0
                       ? 0.0
                       : static_cast<double>(total_l1_hits) /
                             static_cast<double>(total_routes));
  std::uint64_t flip_contended = 0;
  for (const snapshot_handle& h : handles_) {
    flip_contended += h.flip_lock().contended_acquisitions();
  }
  flip_contended_.set(static_cast<double>(flip_contended));
  live_versions_gauge_.set(static_cast<double>(versions_live()));
  retired_versions_gauge_.set(static_cast<double>(versions_retired()));
  std::uint64_t samples = 0;
  double weighted_mean = 0.0;
  for (std::size_t m = 0; m < shadows_.size(); ++m) {
    const core::shadow_verdict v = shadow_evidence(
        static_cast<core::model_key>(m));
    samples += v.samples;
    weighted_mean += v.mean_divergence * static_cast<double>(v.samples);
  }
  shadow_samples_.set(static_cast<double>(samples));
  shadow_mean_divergence_.set(
      samples == 0 ? 0.0 : weighted_mean / static_cast<double>(samples));
}

}  // namespace lf::rt
