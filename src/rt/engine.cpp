#include "rt/engine.hpp"

namespace lf::rt {

void worker_handle::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  reg.register_counter(prefix + ".routes", routes_);
  reg.register_counter(prefix + ".hits", hits_);
  reg.register_counter(prefix + ".misses", misses_);
  reg.register_counter(prefix + ".inferences", infers_);
  reg.register_counter(prefix + ".fins", fins_);
}

datapath_engine::datapath_engine(engine_config cfg)
    : cfg_{cfg},
      epochs_{cfg.max_workers == 0 ? 1 : cfg.max_workers},
      handle_{epochs_},
      cache_{cfg.shards, cfg.shard_capacity} {}

datapath_engine::~datapath_engine() {
  // Contract: worker threads are joined.  Release every flow pin so the
  // handle teardown (which runs next, then the epoch domain) can retire all
  // versions.
  cache_.clear(handle_);
  handle_.maintain();
}

std::uint64_t datapath_engine::install(codegen::snapshot snap) {
  const std::uint64_t gen = handle_.install_standby(std::move(snap));
  // Opportunistic reclamation keeps the zombie list short without a
  // dedicated maintenance thread.
  handle_.maintain();
  return gen;
}

bool datapath_engine::switch_active() {
  const bool flipped = handle_.switch_active();
  handle_.maintain();
  return flipped;
}

std::size_t datapath_engine::maintain() { return handle_.maintain(); }

worker_handle& datapath_engine::register_worker() {
  std::lock_guard<std::mutex> g{workers_mu_};
  worker_handle& w = workers_.emplace_back();
  w.slot_ = epochs_.register_reader();
  return w;
}

route_result datapath_engine::route(worker_handle& w, netsim::flow_id_t flow,
                                    double now, std::span<const fp::s64> input,
                                    std::span<fp::s64> out) {
  route_result r;
  w.routes_.inc();
  // The epoch guard spans the whole route+infer: any version pointer we
  // hold — cached pin or freshly pinned active — cannot be freed before we
  // exit, even if a racing FIN/switch drops its last pin meanwhile.
  epoch_domain::guard g{epochs_, w.slot_};
  snapshot_version* v = cache_.lookup(flow, now, cfg_.idle_timeout,
                                      cfg_.evict_slots_per_route, handle_);
  if (v != nullptr) {
    r.hit = true;
    w.hits_.inc();
  } else {
    w.misses_.inc();
    v = handle_.pin_active();
    if (v == nullptr) return r;  // nothing deployed yet
    v = cache_.insert(flow, v, now, handle_);
  }
  r.gen = v->gen;
  const quant::quantized_mlp& prog = v->snap.program;
  if (input.size() == prog.input_size() && out.size() == prog.output_size()) {
    prog.infer_into(input, out, w.scratch_);
    w.infers_.inc();
    r.served = true;
  }
  return r;
}

bool datapath_engine::flow_finished(worker_handle& w, netsim::flow_id_t flow) {
  const bool erased = cache_.erase(flow, handle_);
  if (erased) w.fins_.inc();
  return erased;
}

std::size_t datapath_engine::expire_idle(double now) {
  return cache_.expire_idle(now, cfg_.idle_timeout, handle_);
}

void datapath_engine::register_metrics(metrics::registry& reg,
                                       const std::string& prefix) {
  handle_.register_metrics(reg, prefix + ".snapshots");
  reg.register_gauge(prefix + ".cache.size", cache_size_);
  reg.register_gauge(prefix + ".cache.evictions", cache_evictions_);
  reg.register_gauge(prefix + ".cache.rehashes", cache_rehashes_);
  reg.register_gauge(prefix + ".cache.lock_acquisitions", lock_acquisitions_);
  reg.register_gauge(prefix + ".cache.lock_contended", lock_contended_);
  reg.register_gauge(prefix + ".flip_lock.contended", flip_contended_);
  reg.register_gauge(prefix + ".versions.live", live_versions_gauge_);
  reg.register_gauge(prefix + ".versions.retired", retired_versions_gauge_);
}

void datapath_engine::publish_stats() {
  const sharded_flow_cache::totals t = cache_.stats();
  cache_size_.set(static_cast<double>(t.size));
  cache_evictions_.set(static_cast<double>(t.evictions));
  cache_rehashes_.set(static_cast<double>(t.rehashes));
  lock_acquisitions_.set(static_cast<double>(t.lock_acquisitions));
  lock_contended_.set(static_cast<double>(t.lock_contended));
  flip_contended_.set(
      static_cast<double>(handle_.flip_lock().contended_acquisitions()));
  live_versions_gauge_.set(static_cast<double>(handle_.live_versions()));
  retired_versions_gauge_.set(static_cast<double>(handle_.retired()));
}

}  // namespace lf::rt
