// Epoch-based reclamation for the real-thread datapath engine.
//
// The §3.4 read path must stay lock-free: an inference worker may hold a
// raw snapshot pointer for the duration of one route+infer, and the writer
// may not free a demoted snapshot while any such pointer is live.  Classic
// epoch-based reclamation (EBR, as in kernel RCU and userspace-RCU) fits:
//
//  - Each reader thread owns one cache-line-sized slot.  Entering a critical
//    section publishes the current global epoch into the slot (seq_cst, so
//    the publish is ordered before every load inside the section); leaving
//    stores the quiescent sentinel.
//  - The writer retires garbage by recording it against `advance()` — a bump
//    of the global epoch.  A retired object is freed once every slot is
//    either quiescent or has observed an epoch >= the retire target, which
//    proves no reader that could have seen the old pointer is still inside
//    its critical section.
//
// The one subtle interleaving: a reader may load the global epoch, stall,
// and publish a stale value after the writer has already scanned.  That is
// benign here because readers dereference only pointers loaded *after* the
// publish: if the writer's scan missed the reader, the writer's pointer swap
// (seq_cst, before the scan) is already visible to the reader's subsequent
// loads, so the reader cannot obtain the retired pointer at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace lf::rt {

class epoch_domain {
 public:
  static constexpr std::uint64_t k_quiescent = ~std::uint64_t{0};

  /// `max_readers` slots are allocated up front so the slot array never
  /// reallocates under concurrent access.
  explicit epoch_domain(std::size_t max_readers = 64);

  epoch_domain(const epoch_domain&) = delete;
  epoch_domain& operator=(const epoch_domain&) = delete;
  ~epoch_domain();

  /// Claim one reader slot (thread-safe).  Throws std::length_error once
  /// max_readers slots are taken.  Slots are never recycled: an engine
  /// registers each worker thread once at startup.
  std::size_t register_reader();

  /// Enter a read-side critical section on `slot`.  seq_cst so the slot
  /// publish is globally ordered before the section's pointer loads.
  void enter(std::size_t slot) noexcept {
    slots_[slot].epoch.store(global_.load(std::memory_order_relaxed),
                             std::memory_order_seq_cst);
  }

  /// Leave the critical section (release: orders every access inside the
  /// section before the writer's acquire scan that enables the free).
  void exit(std::size_t slot) noexcept {
    slots_[slot].epoch.store(k_quiescent, std::memory_order_release);
  }

  /// RAII critical section.
  class guard {
   public:
    guard(epoch_domain& d, std::size_t slot) noexcept : d_{d}, slot_{slot} {
      d_.enter(slot_);
    }
    ~guard() { d_.exit(slot_); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

   private:
    epoch_domain& d_;
    std::size_t slot_;
  };

  /// Writer side: queue `free_fn` to run once every reader slot has either
  /// gone quiescent or observed an epoch newer than now.  Thread-safe (the
  /// retire list is mutex-protected; contention is writer-rate, not
  /// packet-rate).  Does not free anything itself — pair with
  /// try_reclaim()/synchronize().
  void retire(std::function<void()> free_fn);

  /// Run the free functions of every retired item whose grace period has
  /// elapsed.  Returns how many were freed.  Never blocks.
  std::size_t try_reclaim();

  /// Block (spin+yield) until all read-side critical sections that started
  /// before this call have exited, then reclaim everything eligible.
  /// Writer/teardown path only.
  void synchronize();

  std::size_t reader_count() const noexcept {
    return readers_.load(std::memory_order_acquire);
  }
  std::uint64_t current_epoch() const noexcept {
    return global_.load(std::memory_order_acquire);
  }
  /// Retired items whose grace period has not yet elapsed.
  std::size_t retired_pending() const;
  std::uint64_t reclaimed() const noexcept {
    return reclaimed_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) reader_slot {
    std::atomic<std::uint64_t> epoch{k_quiescent};
  };

  struct retired_item {
    std::function<void()> free_fn;
    std::uint64_t target = 0;  ///< safe once min_observed_epoch() >= target
  };

  /// Bump the global epoch; returns the value every reader must reach (or
  /// pass through quiescence) before garbage retired now may be freed.
  std::uint64_t advance() noexcept {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Smallest epoch any active reader has published; k_quiescent if all
  /// slots are quiescent.  seq_cst loads pair with enter()'s publish.
  std::uint64_t min_observed_epoch() const noexcept;

  std::atomic<std::uint64_t> global_{1};
  std::atomic<std::size_t> readers_{0};
  std::vector<reader_slot> slots_;
  mutable std::mutex retired_mu_;
  std::vector<retired_item> retired_;
  std::atomic<std::uint64_t> reclaimed_{0};
};

}  // namespace lf::rt
