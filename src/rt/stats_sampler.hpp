// Windowed stats sampler for the rt engine: a background thread that folds
// the engine's single-writer relaxed counters into fixed-interval windows
// while the workers are still routing.
//
// Every tick it takes a counters_now() snapshot plus a merged latency
// snapshot, subtracts the previous tick's values (valid because every input
// is monotonically non-decreasing on its writer thread), and appends one
// window: routes/sec, latency p50/p99/p999 over the window's own samples,
// locks per route, L1 hit rate, live/retired version counts, and per-model
// shadow divergence.  The windows feed:
//  - lf::time_series registered under "<prefix>.ts.*" so the bench report
//    and the HTML run report can plot telemetry over time, and
//  - an optional Prometheus-style text exposition (render_text), rewritten
//    atomically-enough (truncate + write) every tick so an external scraper
//    or a post-mortem always finds a recent snapshot on disk.
//
// The sampler only *reads* engine state through mid-run-safe paths
// (counters_now, latency_snapshot_into, shadow_evidence, publish_stats), so
// it imposes zero cost on the route hot path beyond the cache traffic of
// reading the workers' counter lines ~10x a second.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/engine.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"

namespace lf::rt {

struct stats_sampler_config {
  /// Window length.  <= 0 disables the sampler entirely (start() no-ops).
  double interval_ms = 100.0;
  /// Prometheus-style text dump rewritten every tick ("" = no file).
  /// Published atomically (temp file + rename) so a concurrent scraper
  /// never reads a torn exposition.
  std::string text_out;
  /// Optional POSIX FIFO re-fed with the exposition every tick ("" = off).
  /// Created on first use; writes are O_NONBLOCK and silently skipped while
  /// no reader is attached, so a soak can be watched with `cat <fifo>`
  /// without touching the process and pays nothing when nobody looks.
  std::string fifo_out;
  /// Cap on retained windows (oldest dropped past this; keeps a runaway
  /// soak test from growing the vector unboundedly).
  std::size_t max_windows = 100000;
};

/// Environment defaults: LF_RT_STATS_INTERVAL_MS (window length; 0 or unset
/// disables), LF_RT_STATS_OUT (text exposition path) and LF_RT_STATS_FIFO
/// (live-scrape FIFO path).
stats_sampler_config stats_config_from_env();

/// One folded window.
struct stats_window {
  double t_s = 0.0;    ///< window end, seconds since sampler start
  double dt_s = 0.0;   ///< measured window length (not the nominal interval)
  std::uint64_t routes = 0;        ///< routes completed in this window
  double routes_per_sec = 0.0;
  std::uint64_t samples = 0;       ///< latency samples in this window
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double l1_hit_rate = 0.0;        ///< window L1 hits / window routes
  double locks_per_route = 0.0;    ///< window lock acquisitions / routes
  std::uint64_t versions_live = 0;
  std::uint64_t versions_retired = 0;
};

class anomaly_watchdog;

class stats_sampler {
 public:
  stats_sampler(datapath_engine& engine, stats_sampler_config cfg);
  stats_sampler(const stats_sampler&) = delete;
  stats_sampler& operator=(const stats_sampler&) = delete;
  ~stats_sampler();  ///< stop()s if still running

  bool enabled() const noexcept { return cfg_.interval_ms > 0.0; }
  const stats_sampler_config& config() const noexcept { return cfg_; }

  /// Spawn the background thread (idempotent; no-op when disabled).
  void start();

  /// Stop the thread, fold one final window, and write the final text dump.
  /// Safe to call repeatedly; called by the destructor.  The final tail
  /// fold happens exactly once per start (a second stop — e.g. explicit
  /// stop followed by the destructor — must not append a spurious
  /// near-zero-duration window that would misreport the tail rate).
  void stop();

  /// Run every folded window through this watchdog from inside tick() (the
  /// sampler thread IS the watchdog's evaluation thread — detection adds
  /// zero hot-path work).  Call before start(); null detaches.
  void attach_watchdog(anomaly_watchdog* wd) noexcept { watchdog_ = wd; }
  anomaly_watchdog* watchdog() const noexcept { return watchdog_; }

  /// Fold one window right now (what the thread does each interval; also
  /// callable directly from tests without starting the thread).
  void tick();

  /// Copy of the windows folded so far (any thread).
  std::vector<stats_window> windows() const;

  /// Register the windowed series under "<prefix>.ts.*" and per-model
  /// shadow divergence under "<prefix>.ts.shadow_divergence.m<k>".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Prometheus-style text exposition: cumulative counters, version gauges,
  /// and the merged route-latency histogram with cumulative `le` buckets.
  std::string render_text() const;

  /// Atomically replace config().text_out with render_text() (sibling temp
  /// file + rename, so a mid-tick reader parses either the old or the new
  /// exposition, never a truncated one).  False when no path is configured
  /// or the write failed (diagnostic on stderr).
  bool write_text() const;

  /// Push render_text() into config().fifo_out (created on first call).
  /// Non-blocking: returns false without writing when no path is
  /// configured, no reader is attached, or the FIFO is full.
  bool write_fifo() const;

 private:
  void run();

  datapath_engine& engine_;
  stats_sampler_config cfg_;
  anomaly_watchdog* watchdog_ = nullptr;

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;
  bool started_ = false;
  bool final_folded_ = false;    ///< tail window folded (stop ran once)
  mutable bool fifo_ready_ = false;  ///< mkfifo attempted and succeeded

  // Everything below is guarded by fold_mu_: tick() may be called from the
  // sampler thread, from stop(), or directly by a test.
  mutable std::mutex fold_mu_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t prev_ns_ = 0;
  datapath_engine::live_counters prev_counters_{};
  latency_snapshot prev_latency_{};
  std::vector<stats_window> windows_;
  time_series ts_routes_per_sec_{"rt.ts.routes_per_sec"};
  time_series ts_p50_{"rt.ts.p50_ns"};
  time_series ts_p99_{"rt.ts.p99_ns"};
  time_series ts_p999_{"rt.ts.p999_ns"};
  time_series ts_l1_hit_rate_{"rt.ts.l1_hit_rate"};
  time_series ts_locks_per_route_{"rt.ts.locks_per_route"};
  time_series ts_versions_live_{"rt.ts.versions_live"};
  time_series ts_versions_retired_{"rt.ts.versions_retired"};
  std::vector<std::unique_ptr<time_series>> ts_shadow_divergence_;
};

}  // namespace lf::rt
