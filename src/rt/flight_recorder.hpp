// Black-box flight recorder for the rt engine: per-worker overwrite-oldest
// wall-clock event rings that keep the last few thousand datapath events
// (sampled route summaries plus every switch, gate verdict, zombie push,
// reclaim, and violation) so an invariant failure or watchdog alert can dump
// a post-mortem — BLACKBOX_<label>.json, Perfetto-compatible through the
// same trace_report exporter the sim tracer uses.
//
// Concurrency model, in order of importance:
//  - emit() must be cheap and safe on the route hot path.  Every slot field
//    is a relaxed atomic; the ring head is claimed with a relaxed fetch_add.
//    Per-worker rings are effectively single-writer (their worker), the
//    control ring is written by the writer/admin threads; the fetch_add
//    makes the control ring safe for those without a lock.
//  - A dump can race live emitters.  Readers take relaxed snapshots of each
//    slot; a slot being overwritten mid-dump can yield a *stale or mixed*
//    record (timestamp from one event, payload from another).  That is an
//    accepted black-box property — the dump is forensic, not transactional
//    — and the seq tag lets the reader drop slots that are mid-rewrite for
//    the common case (tag changed between the first and second read).
//  - Timestamps are rt::wall_ns() (steady clock), the same clock the
//    latency histograms use, so dumped events and latency windows line up.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rt/latency_histogram.hpp"
#include "util/trace.hpp"

namespace lf::rt {

/// One decoded record from a ring snapshot.
struct blackbox_event {
  std::uint64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t seq = 0;
  trace::event_type type{};
};

/// Fixed-capacity overwrite-oldest ring of relaxed-atomic event slots.
class blackbox_ring {
 public:
  blackbox_ring() = default;
  blackbox_ring(const blackbox_ring&) = delete;
  blackbox_ring& operator=(const blackbox_ring&) = delete;

  /// Allocate storage (capacity rounded up to a power of two, min 2).
  /// Not thread-safe; call before emitters start.  enable(0) disables.
  void enable(std::size_t capacity);

  bool enabled() const noexcept { return slots_ != nullptr; }
  std::size_t capacity() const noexcept { return mask_ ? mask_ + 1 : 0; }
  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Hot path: stamp wall_ns() and store one event.  One branch when
  /// disabled; no allocation, no lock, no RMW beyond the head claim.
  void emit(trace::event_type type, std::uint64_t a = 0,
            std::uint64_t b = 0) noexcept {
    if (slots_ == nullptr) return;
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    s.t_ns.store(wall_ns(), std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    // Tag last: seq+1 so 0 stays the "never written" sentinel.
    s.tag.store(((seq + 1) << 8) | static_cast<std::uint64_t>(type),
                std::memory_order_relaxed);
  }

  /// Reporting path: decode every written slot, oldest first by timestamp.
  /// Slots whose tag changes while being read are dropped (mid-rewrite).
  std::vector<blackbox_event> snapshot() const;

  /// Not thread-safe; quiesced use only (tests, between runs).
  void clear() noexcept;

 private:
  struct slot {
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> tag{0};  ///< ((seq + 1) << 8) | event_type
  };

  std::unique_ptr<slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

struct flight_recorder_config {
  std::size_t events_per_ring = 0;  ///< 0 disables the recorder entirely
  /// Route summaries are sampled 1-in-2^shift per worker (everything else —
  /// switches, verdicts, zombie pushes, reclaims, violations — is recorded
  /// unconditionally).
  unsigned route_sample_shift = 6;
  /// try_dump() rate limit: dumps closer together than this are suppressed
  /// (counted, not written).  0 = no interval limit.
  std::uint64_t min_dump_interval_ns = 0;
  /// try_dump() lifetime cap; dumps past it are suppressed.  0 = no cap.
  std::uint64_t max_dumps = 0;
};

/// The recorder proper: one control ring (writer/admin events) plus one ring
/// per worker slot, all sized events_per_ring.
class flight_recorder {
 public:
  flight_recorder(const flight_recorder_config& cfg, std::size_t max_workers);

  bool enabled() const noexcept { return control_.enabled(); }
  std::uint64_t route_sample_mask() const noexcept { return route_mask_; }

  blackbox_ring& control() noexcept { return control_; }
  blackbox_ring& worker(std::size_t i) noexcept { return workers_[i]; }
  std::size_t worker_rings() const noexcept { return n_workers_; }

  /// Write BLACKBOX_<label>.json (Perfetto trace-event JSON, wall-ns time
  /// domain) into bench::output_dir().  Keeps only events within
  /// `window_ns` of the newest event across all rings (0 = everything
  /// retained).  Timestamps are re-based to the oldest kept event.
  /// Returns the path written, or "" on failure (diagnostic on stderr).
  std::string dump(std::string_view label, std::uint64_t window_ns = 0) const;

  /// Rate-limited dump for anomaly capture: writes
  /// BLACKBOX_<prefix>_<n>.json where n is a monotonic per-recorder dump
  /// sequence number, unless the config's min interval or lifetime cap says
  /// this dump must be suppressed (then counts the drop and returns "").
  /// A flapping watchdog therefore cannot flood the disk; the suppressed
  /// count is exported as rt.watchdog.dumps_suppressed.
  std::string try_dump(std::string_view prefix, std::uint64_t window_ns = 0);

  /// try_dump()s actually written / suppressed so far (any thread).
  std::uint64_t dumps() const noexcept {
    return dumps_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumps_suppressed() const noexcept {
    return dumps_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  blackbox_ring control_;
  std::unique_ptr<blackbox_ring[]> workers_;
  std::size_t n_workers_ = 0;
  std::uint64_t route_mask_ = 0;
  flight_recorder_config cfg_{};
  std::mutex dump_mu_;  ///< serializes the try_dump admission decision
  std::uint64_t last_dump_ns_ = 0;
  std::atomic<std::uint64_t> dumps_written_{0};
  std::atomic<std::uint64_t> dumps_suppressed_{0};
};

}  // namespace lf::rt
