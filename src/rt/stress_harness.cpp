// rt stress harness: real threads against the real-thread datapath engine.
//
// M flows × N worker threads route packets and run compiled integer
// inference while one writer thread performs randomized install / switch /
// no-op-switch cycles and the workers interleave FINs, idle expiry, batched
// routing and random think time.  Every worker asserts the §3.4
// flow-consistency invariant online: a flow-cache *hit* must return exactly
// the generation the flow pinned at its last miss — i.e. no flow ever
// observes two model generations within one cache incarnation.  Batched
// results are checked against the same invariant, result by result.
//
// The binary doubles as the BENCH_rt_engine.json reporter:
//   phase 1  single-threaded no-switch scalar baseline
//   phase 2  single-threaded batched-vs-scalar throughput (route_batch)
//   phase 3  worker-count sweep (default 1/2/4/8/16) under a live switch
//            storm → the scaling curve, per-point L1 hit rate and lock
//            acquisitions per route
//   phase 4  the full N-thread invariant stress (what the TSan job runs)
//
// Exit status is nonzero on any invariant violation (in any phase), on a
// missed switch target, or on version-lifecycle leaks.
//
// Env knobs:
//   LF_RT_THREADS        main-stress workers            (default 4)
//   LF_RT_FLOWS          flows per worker               (default 256)
//   LF_RT_SWITCHES       min snapshot switches          (default 120)
//   LF_RT_SECONDS        main-stress duration           (default 2.0; 0.6 fast)
//   LF_RT_SHARDS         flow-cache shards; 0 = derive from workers (default 0)
//   LF_RT_L1             per-worker L1 slots; 0 disables (default 64)
//   LF_RT_BATCH          batch size mixed into the stress; 0 = scalar only
//                        (default 8; ~25% of iterations route a batch)
//   LF_RT_SWEEP          comma list of worker counts    (default "1,2,4,8,16";
//                        empty string skips the sweep phase)
//   LF_RT_SWEEP_SECONDS  per-sweep-point duration       (default 0.5; 0.15 fast)
//   LF_RT_MODELS         logical models behind the one engine (default 1).
//                        With N > 1 every worker routes its flow partition
//                        across all N models and checks the consistency
//                        invariant per (model, flow); the writer storms all
//                        N lifecycles through the shared switch epoch.
//   LF_RT_SHADOW         shadow sample rate in [0,1] (default 0).  Nonzero
//                        turns on standby shadow inference on the sampled
//                        slice — the gate itself stays disabled here so the
//                        switch storm never stalls; this knob exists to put
//                        the peek_shadow/install/switch races under TSan.
//   LF_RT_LAT            route-latency histograms: 1 (default) on, 0 off.
//                        Applied to every phase so the scaling ratios
//                        compare like with like.
//   LF_RT_LAT_SHIFT      time 1-in-2^shift routes (default 0 = all)
//   LF_RT_BLACKBOX       flight-recorder events per ring (default 4096;
//                        0 disables the recorder)
//   LF_RT_STATS_INTERVAL_MS  stats-sampler window (default 100; <= 0 off)
//   LF_RT_STATS_OUT      Prometheus text dump path (default
//                        <bench dir>/STATS_rt_engine.prom)
//   LF_RT_STATS_FIFO     live-scrape FIFO path (default off)
//   LF_RT_WATCHDOG*      anomaly watchdog knobs (see anomaly_watchdog.hpp;
//                        default on, riding the phase-4 stats sampler)
//   LF_RT_INJECT_STALL   nonzero: swap a ~250x-MACs model into every logical
//                        model for the [0.30d, 0.50d) window — a true p999 /
//                        throughput regression the watchdog must catch
//   LF_RT_INJECT_SWITCH_STORM  nonzero: tight install+switch flip loop over
//                        [0.65d, 0.85d) — every flip bumps the shared switch
//                        epoch, so worker L1 hit rate collapses
//   LF_RT_INJECT_BAD_SWITCH  nonzero: at 0.40d the writer installs and
//                        switches to a degraded (~250x MACs) net on model 0
//                        and then stops churning — a bad snapshot that
//                        slipped past the gate.  Implies probation + the
//                        watchdog rollback policy; the verdict FAILs unless
//                        a post_switch_regression incident named the
//                        installed gen, exactly one rollback re-promoted the
//                        pre-switch gen, and the post-rollback p999 tail
//                        recovered to the clean-prefix level.
//                        With any injection on, the exit verdict also
//                        FAILs unless the expected incidents fired and no
//                        incident fired during the clean prefix.
//   LF_RT_PROBATION_WINDOWS  probation hold length in sampler windows
//                        (default 0 = off; LF_RT_INJECT_BAD_SWITCH defaults
//                        it to 30).  Nonzero also arms the watchdog's
//                        auto-rollback policy.
//   LF_BENCH_FAST        shrink durations for smoke runs
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codegen/snapshot.hpp"
#include "nn/mlp.hpp"
#include "rt/anomaly_watchdog.hpp"
#include "rt/rt_deployment.hpp"
#include "rt/stats_sampler.hpp"
#include "util/bench_report.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/run_report.hpp"

namespace {

using namespace lf;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long n = std::atoll(v);
  return n >= 0 ? static_cast<std::size_t>(n) : fallback;
}

std::vector<std::size_t> env_size_list(const char* name,
                                       const char* fallback) {
  const char* v = std::getenv(name);
  const std::string s = v != nullptr ? v : fallback;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long long n = std::atoll(tok.c_str());
    if (n > 0) out.push_back(static_cast<std::size_t>(n));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool fast_mode() {
  const char* v = std::getenv("LF_BENCH_FAST");
  return v != nullptr && *v != '\0' && *v != '0';
}

double now_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Pool of pre-generated snapshots the writer cycles through (generation is
/// the §3.1 pipeline; it is paid once here so the stress loop measures the
/// datapath, not gcc).
std::vector<codegen::snapshot> make_snapshot_pool(std::size_t n) {
  std::vector<codegen::snapshot> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rng g{0x5eed0000 + i};
    pool.push_back(codegen::generate_snapshot(nn::make_ffnn_flow_size_net(g),
                                              "rt-ffnn", i + 1));
  }
  return pool;
}

/// Scripted fault injection for the main stress run (phase 4 only).  Phases
/// are fractions of the nominal duration so a clean prefix always exists for
/// the watchdog to build baselines over before anything is injected.
struct inject_plan {
  bool stall = false;  ///< heavy-model swap (p999 / throughput regression)
  bool storm = false;  ///< tight flip loop (L1 hit-rate collapse)
  bool bad = false;    ///< one bad switch past the gate (probation rollback)
  double stall_start = 0.0, stall_end = 0.0;
  double storm_start = 0.0, storm_end = 0.0;
  double bad_start = 0.0;
  /// Pre-generated heavy snapshots (one per logical model) plus the measured
  /// §3.1 generation cost, mirrored into the control ring as a `train`
  /// lifecycle stage when the fault is injected.
  std::vector<codegen::snapshot> heavy;
  std::uint64_t heavy_train_ns = 0;
  /// Filled by the writer thread when the bad switch lands (read by the
  /// verdict after the joins): the probation hold's pre-switch gen (the
  /// rollback target) and the degraded gen it installed.
  mutable std::atomic<std::uint64_t> bad_prev_gen{0};
  mutable std::atomic<std::uint64_t> bad_gen{0};
  bool any() const noexcept { return stall || storm || bad; }
  /// Earliest injected disturbance: incidents before this are false
  /// positives.
  double clean_end() const noexcept {
    double e = 1e300;
    if (stall) e = std::min(e, stall_start);
    if (storm) e = std::min(e, storm_start);
    if (bad) e = std::min(e, bad_start);
    return e;
  }
};

/// The stall fault: same 8 -> 1 I/O shape as the pool nets (worker inputs
/// stay valid) but ~250x the multiply-accumulates — integer inference per
/// route genuinely balloons, which is what a p999 regression looks like.
std::vector<codegen::snapshot> make_heavy_pool(std::size_t n) {
  std::vector<codegen::snapshot> out;
  out.reserve(n);
  const nn::layer_spec layers[] = {{128, nn::activation::relu},
                                   {128, nn::activation::relu},
                                   {1, nn::activation::linear}};
  for (std::size_t i = 0; i < n; ++i) {
    rng g{0xbeef0000 + i};
    nn::mlp net{8, layers, g};
    out.push_back(codegen::generate_snapshot(net, "rt-heavy", 1));
  }
  return out;
}

struct worker_outcome {
  std::uint64_t violations = 0;
  std::uint64_t routes = 0;
  std::uint64_t inferences = 0;
};

/// One worker thread: routes its own flow partition (scalar and — when
/// `batch > 0` — batched, ~25% of iterations), FINs randomly, expires idle
/// entries occasionally, and checks the consistency invariant on every
/// result.
worker_outcome run_worker(rt::datapath_engine& engine, rt::worker_handle& w,
                          std::uint64_t flow_base, std::size_t flows,
                          std::size_t batch, std::uint64_t seed,
                          std::chrono::steady_clock::time_point t0,
                          const std::atomic<bool>& stop) {
  rng g{seed};
  worker_outcome out;
  const std::size_t models = engine.model_count();
  // expected generation per owned (model, flow); 0 = not pinned (flows are
  // worker-partitioned, so this thread is the only router/FINisher — and
  // each model's cache entry for a flow is an independent binding).
  std::vector<std::uint64_t> expected(models * flows, 0);
  std::vector<fp::s64> input(8);
  std::vector<fp::s64> output(1);
  std::vector<netsim::flow_id_t> bflows(batch);
  std::vector<std::size_t> bidx(batch);
  std::vector<fp::s64> binputs(batch * 8);
  std::vector<fp::s64> bouts(batch * 1);
  std::vector<rt::route_result> bresults(batch);
  std::uint64_t iter = 0;

  const auto pick_model = [&]() -> core::model_key {
    return models == 1 ? core::k_default_model
                       : static_cast<core::model_key>(g.uniform_int(
                             0, static_cast<std::int64_t>(models) - 1));
  };
  const auto check = [&](const rt::route_result& r, core::model_key m,
                         std::size_t idx) {
    if (r.gen == 0) return;
    ++out.routes;
    if (r.served) ++out.inferences;
    // The invariant: a hit serves exactly the generation pinned at this
    // (model, flow)'s last miss (expected != 0 always holds on a hit,
    // because this worker owns the flow and every hit follows a miss).
    const std::size_t slot = static_cast<std::size_t>(m) * flows + idx;
    if (r.hit && r.gen != expected[slot]) {
      ++out.violations;
      // Black-box first, accounting second: the recorder gets the violating
      // flow's key and both generations while the rings still hold the
      // events leading up to it.
      engine.record_violation(
          w, core::composite_flow_key(m, static_cast<netsim::flow_id_t>(
                                             flow_base + idx)),
          expected[slot], r.gen);
    }
    expected[slot] = r.gen;
  };

  while (!stop.load(std::memory_order_acquire)) {
    ++iter;
    const double now = now_seconds(t0);
    if (batch > 0 && (iter & 3) == 0) {
      // Batched leg: `batch` random owned flows through one route_batch
      // (batches are single-model per call, like a per-model NIC queue).
      const core::model_key m = pick_model();
      for (std::size_t b = 0; b < batch; ++b) {
        const auto idx = static_cast<std::size_t>(
            g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
        bidx[b] = idx;
        bflows[b] = static_cast<netsim::flow_id_t>(flow_base + idx);
        for (std::size_t j = 0; j < 8; ++j) {
          binputs[b * 8 + j] = g.uniform_int(-900, 900);
        }
      }
      engine.route_batch(w, m, bflows, now, binputs, bouts, bresults);
      for (std::size_t b = 0; b < batch; ++b) check(bresults[b], m, bidx[b]);
    } else {
      const core::model_key m = pick_model();
      const std::size_t idx = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
      const auto flow = static_cast<netsim::flow_id_t>(flow_base + idx);
      for (auto& x : input) x = g.uniform_int(-900, 900);  // within io_scale
      const rt::route_result r = engine.route(w, m, flow, now, input, output);
      check(r, m, idx);
    }
    // Interleavings: FIN ~3% of iterations; a full idle-expiry sweep every
    // few thousand iterations races the sweep against other workers.
    if (g.uniform() < 0.03) {
      const core::model_key m = pick_model();
      const std::size_t idx = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
      engine.flow_finished(w, m,
                           static_cast<netsim::flow_id_t>(flow_base + idx));
      expected[static_cast<std::size_t>(m) * flows + idx] = 0;
    } else if ((iter & 0x1fff) == 0) {
      engine.expire_idle(now_seconds(t0));
    }
  }
  return out;
}

struct stress_stats {
  double rps = 0.0;
  double l1_hit_rate = 0.0;
  double locks_per_route = 0.0;
  std::uint64_t violations = 0;
  std::uint64_t switches = 0;
};

/// One full stress run: n workers + one randomized writer for `duration`
/// seconds (and, when `min_switches > 0`, until the switch target is met).
stress_stats run_stress(const rt::engine_config& cfg,
                        const std::vector<codegen::snapshot>& pool,
                        std::size_t n_workers, std::size_t flows,
                        std::size_t batch, double duration,
                        std::size_t min_switches,
                        metrics::registry* reg = nullptr,
                        rt::datapath_engine** engine_out = nullptr,
                        std::vector<worker_outcome>* outcomes_out = nullptr,
                        rt::stats_sampler** sampler_out = nullptr,
                        const inject_plan* inject = nullptr,
                        rt::anomaly_watchdog** watchdog_out = nullptr) {
  static std::unique_ptr<rt::datapath_engine> keep_alive;  // for engine_out
  // Statics tear down in reverse declaration order, so borrow direction
  // dictates this order: the watchdog borrows the engine, and the sampler
  // borrows both — sampler dies first, watchdog second, engine last.
  static std::unique_ptr<rt::anomaly_watchdog> keep_watchdog;
  static std::unique_ptr<rt::stats_sampler> keep_sampler;
  auto engine = rt::build_engine(cfg);
  if (reg != nullptr) engine->register_metrics(*reg, "rt");
  const std::size_t models = engine->model_count();
  for (std::size_t m = 0; m < models; ++m) {
    const auto key = static_cast<core::model_key>(m);
    engine->install(key, pool[m % pool.size()]);
    engine->switch_active(key);
  }

  std::vector<rt::worker_handle*> handles;
  for (std::size_t i = 0; i < n_workers; ++i) {
    rt::worker_handle& w = engine->register_worker();
    if (reg != nullptr) {
      w.register_metrics(*reg, "rt.worker" + std::to_string(i));
    }
    handles.push_back(&w);
  }

  // The windowed stats sampler rides the instrumented (registry) run only:
  // the sweep phases measure scaling and should not pay even the sampler's
  // cache traffic.
  // Same borrow-direction ordering as the keep_* statics: the sampler is
  // declared after the watchdog it calls into, so it is destroyed first.
  std::unique_ptr<rt::anomaly_watchdog> watchdog;
  std::unique_ptr<rt::stats_sampler> sampler;
  if (reg != nullptr) {
    rt::stats_sampler_config scfg = rt::stats_config_from_env();
    if (scfg.interval_ms <= 0.0) scfg.interval_ms = 100.0;  // harness default
    if (scfg.text_out.empty()) {
      scfg.text_out = bench::output_dir() + "/STATS_rt_engine.prom";
    }
    sampler = std::make_unique<rt::stats_sampler>(*engine, scfg);
    sampler->register_metrics(*reg, "rt");
    rt::watchdog_config wcfg = rt::watchdog_config_from_env();
    if (wcfg.enabled) {
      wcfg.incident_label = "rt_engine";
      // Probation without a policy is just a slower retire: whenever holds
      // are open the watchdog is the component that acts on them.
      wcfg.auto_rollback = cfg.probation_windows != 0;
      watchdog = std::make_unique<rt::anomaly_watchdog>(std::move(wcfg),
                                                        engine.get());
      watchdog->register_metrics(*reg, "rt.watchdog");
      sampler->attach_watchdog(watchdog.get());
    }
    sampler->start();
  }

  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  // Writer: randomized install/switch/no-op interleavings until both the
  // duration and the switch target are met.
  std::thread writer{[&]() {
    rng g{0x3717e4};
    std::uint64_t version = 1;
    bool stall_active = false;
    bool bad_active = false;
    std::uint64_t storm_flips = 0;
    // The bad-switch fault waives the switch target once it lands: the
    // writer deliberately stops churning so the rollback flip is the last
    // lifecycle event the tail windows see.
    while (now_seconds(t0) < duration ||
           (!bad_active && engine->switches() < min_switches + 1)) {
      const double now = now_seconds(t0);
      // ---- fault injection (phase-4 only; see inject_plan) ----
      if (inject != nullptr && inject->bad && now >= inject->bad_start) {
        if (!bad_active) {
          bad_active = true;
          // One degraded net through the ordinary install+switch path on
          // model 0 — the shadow gate is off here, i.e. the candidate was
          // admitted — then hold still.  The probation hold now retains the
          // healthy incumbent; detection and the rollback flip are entirely
          // the watchdog/sampler thread's job while workers keep routing.
          codegen::snapshot snap = inject->heavy[0];
          snap.version = ++version;
          engine->record_lifecycle(trace::lifecycle_phase::train,
                                   core::k_default_model, version,
                                   inject->heavy_train_ns);
          engine->install(core::k_default_model, std::move(snap));
          engine->switch_active(core::k_default_model);
          const auto st = engine->probation(core::k_default_model);
          inject->bad_prev_gen.store(st.held_gen, std::memory_order_release);
          inject->bad_gen.store(st.promoted_gen, std::memory_order_release);
        }
        engine->maintain();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      if (inject != nullptr && inject->stall && now >= inject->stall_start &&
          now < inject->stall_end) {
        if (!stall_active) {
          stall_active = true;
          // Swap the heavy net into every logical model and hold it there:
          // per-route inference balloons, p999 and routes/sec regress for
          // real.  The generation cost is mirrored as a `train` lifecycle
          // stage so the anomaly dump correlates the regression with the
          // slow-path work that caused it.
          for (std::size_t m = 0; m < models; ++m) {
            const auto key = static_cast<core::model_key>(m);
            codegen::snapshot snap = inject->heavy[m % inject->heavy.size()];
            snap.version = ++version;
            engine->record_lifecycle(trace::lifecycle_phase::train, key,
                                     version, inject->heavy_train_ns);
            engine->install(key, std::move(snap));
            engine->switch_active(key);
          }
        }
        engine->maintain();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      if (stall_active) {
        // Stall window over: revert every model to a pool net so the
        // watchdog sees recovery (and re-arms) before the storm phase.
        stall_active = false;
        for (std::size_t m = 0; m < models; ++m) {
          const auto key = static_cast<core::model_key>(m);
          codegen::snapshot snap = pool[version % pool.size()];
          snap.version = ++version;
          engine->install(key, std::move(snap));
          engine->switch_active(key);
        }
      }
      if (inject != nullptr && inject->storm && now >= inject->storm_start &&
          now < inject->storm_end) {
        // Tight flip loop: every switch bumps the shared switch epoch, so
        // every worker's L1 invalidates between consecutive routes, and the
        // install rate outruns reclamation — the live version count holds
        // an order of magnitude above the steady churn level.
        const auto m = static_cast<core::model_key>(
            models == 1
                ? 0
                : g.uniform_int(0, static_cast<std::int64_t>(models) - 1));
        codegen::snapshot snap = pool[version % pool.size()];
        snap.version = ++version;
        engine->install(m, std::move(snap));
        engine->switch_active(m);
        engine->maintain();
        if ((++storm_flips & 255) == 0) {
          // Breathe every 256 flips: on a starved single-core host a
          // no-sleep loop can monopolize the CPU so thoroughly that the
          // stats sampler never folds a storm-era window — and an anomaly
          // nobody sampled is an anomaly nobody can detect.  The cadence is
          // deliberately coarse: the live-version level the watchdog
          // detects is flip rate x version residency, so breathing too
          // often would let reclamation keep pace and dissolve the very
          // anomaly being injected.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        continue;
      }
      // All model lifecycles are driven from one writer thread (the rt
      // contract), round-robining randomly so every model's flips land in
      // the shared switch epoch interleaved with the others'.
      const auto m = static_cast<core::model_key>(
          models == 1 ? 0
                      : g.uniform_int(0, static_cast<std::int64_t>(models) - 1));
      const double dice = g.uniform();
      if (dice < 0.75) {
        codegen::snapshot snap = pool[version % pool.size()];
        snap.version = ++version;
        engine->install(m, std::move(snap));
        engine->switch_active(m);
      } else if (dice < 0.85) {
        // Standby replaced before ever activating (orphan retirement path).
        codegen::snapshot snap = pool[version % pool.size()];
        snap.version = ++version;
        engine->install(m, std::move(snap));
      } else {
        // No-standby switch: must be a counted no-op, never a null flip.
        engine->switch_active(m);
      }
      engine->maintain();
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int>(g.uniform(100.0, 4000.0))));
    }
    stop.store(true, std::memory_order_release);
  }};

  std::vector<std::thread> pool_threads;
  std::vector<worker_outcome> outcomes(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    pool_threads.emplace_back([&, i]() {
      outcomes[i] = run_worker(*engine, *handles[i], (i + 1) * 1'000'000ull,
                               flows, batch, 0xf00d + i, t0, stop);
    });
  }
  for (auto& t : pool_threads) t.join();
  writer.join();
  // Stop after the joins: the final fold captures the tail of the run and
  // rewrites the on-disk text snapshot one last time.
  if (sampler != nullptr) sampler->stop();
  const double elapsed = now_seconds(t0);

  stress_stats st;
  st.switches = engine->switches();
  std::uint64_t routes = 0, l1_hits = 0;
  for (std::size_t i = 0; i < n_workers; ++i) {
    st.violations += outcomes[i].violations;
    routes += outcomes[i].routes;
    l1_hits += handles[i]->l1_hits();
  }
  st.rps = elapsed > 0 ? static_cast<double>(routes) / elapsed : 0.0;
  st.l1_hit_rate =
      routes > 0 ? static_cast<double>(l1_hits) / static_cast<double>(routes)
                 : 0.0;
  const auto totals = engine->cache().stats();
  st.locks_per_route =
      routes > 0 ? static_cast<double>(totals.lock_acquisitions) /
                       static_cast<double>(routes)
                 : 0.0;

  if (engine_out != nullptr) {
    // Hand the drained engine back to the caller (main stress phase needs
    // the lifecycle counters and registry gauges after the drain).
    keep_alive = std::move(engine);
    *engine_out = keep_alive.get();
  }
  if (sampler_out != nullptr) {
    keep_sampler = std::move(sampler);
    *sampler_out = keep_sampler.get();
  }
  if (watchdog_out != nullptr) {
    keep_watchdog = std::move(watchdog);
    *watchdog_out = keep_watchdog.get();
  }
  if (outcomes_out != nullptr) *outcomes_out = std::move(outcomes);
  return st;
}

}  // namespace

int main() {
  const std::size_t threads = env_size("LF_RT_THREADS", 4);
  const std::size_t flows = env_size("LF_RT_FLOWS", 256);
  const std::size_t min_switches = env_size("LF_RT_SWITCHES", 120);
  const double duration = env_double("LF_RT_SECONDS", fast_mode() ? 0.6 : 2.0);
  const std::size_t shards = env_size("LF_RT_SHARDS", 0);
  const std::size_t l1_slots = env_size("LF_RT_L1", 64);
  const std::size_t batch = env_size("LF_RT_BATCH", 8);
  const std::vector<std::size_t> sweep =
      env_size_list("LF_RT_SWEEP", "1,2,4,8,16");
  const double sweep_seconds =
      env_double("LF_RT_SWEEP_SECONDS", fast_mode() ? 0.15 : 0.5);
  const std::size_t models = std::max<std::size_t>(env_size("LF_RT_MODELS", 1),
                                                   1);
  const double shadow_rate = env_double("LF_RT_SHADOW", 0.0);
  const bool lat_on = env_size("LF_RT_LAT", 1) != 0;
  const std::size_t lat_shift = env_size("LF_RT_LAT_SHIFT", 0);
  const std::size_t blackbox = env_size("LF_RT_BLACKBOX", 4096);
  const bool inject_stall = env_size("LF_RT_INJECT_STALL", 0) != 0;
  const bool inject_storm = env_size("LF_RT_INJECT_SWITCH_STORM", 0) != 0;
  const bool inject_bad = env_size("LF_RT_INJECT_BAD_SWITCH", 0) != 0;
  const std::size_t probation_windows =
      env_size("LF_RT_PROBATION_WINDOWS", inject_bad ? 30 : 0);
  const unsigned host_cpus = std::thread::hardware_concurrency();

  rt::engine_config cfg;
  cfg.probation_windows = probation_windows;
  cfg.shards = shards;
  cfg.idle_timeout = 0.05;  // aggressive: force idle-expiry races
  cfg.l1_slots = l1_slots;
  cfg.models = models;
  cfg.shadow.sample_rate = shadow_rate;
  // Shadow inference races are what we stress; the gate would starve the
  // switch storm (the writer flips unconditionally), so keep it out.
  cfg.shadow.gate_enabled = false;
  // Telemetry applies to EVERY phase (baseline, batched, sweep, stress) so
  // the speedup ratios compare runs with identical per-route overhead.
  cfg.telemetry.latency = lat_on;
  cfg.telemetry.latency_sample_shift = static_cast<unsigned>(lat_shift);
  cfg.telemetry.blackbox_events = blackbox;
  // Anomaly dumps are rate-limited at the recorder: a flapping rule cannot
  // flood the bench directory (suppressions are counted, not silent).
  cfg.telemetry.blackbox_dump_interval_ns = 250'000'000;  // 250ms
  cfg.telemetry.blackbox_max_dumps = 16;
  cfg.max_workers = std::max<std::size_t>(
      threads + 1,
      (sweep.empty() ? 0 : *std::max_element(sweep.begin(), sweep.end())) + 1);

  std::printf(
      "rt stress: %zu workers x %zu flows, >= %zu switches, %.2fs "
      "(batch %zu, l1 %zu, %zu models, shadow %.3f, %u host cpus)\n",
      threads, flows, min_switches, duration, batch, l1_slots, models,
      shadow_rate, host_cpus);
  const std::vector<codegen::snapshot> pool = make_snapshot_pool(6);

  // ---- phase 1: single-threaded, no-switch scalar baseline -------------
  double baseline_rps = 0.0;
  {
    auto engine = rt::build_engine(cfg);
    engine->install(pool[0]);
    engine->switch_active();
    rt::worker_handle& w = engine->register_worker();
    std::atomic<bool> stop{false};
    const auto t0 = std::chrono::steady_clock::now();
    const double base_dur = std::min(duration * 0.5, 0.5);
    std::thread stopper{[&]() {
      std::this_thread::sleep_for(std::chrono::duration<double>(base_dur));
      stop.store(true, std::memory_order_release);
    }};
    const worker_outcome base =
        run_worker(*engine, w, 1, flows, 0, 0xba5e, t0, stop);
    stopper.join();
    const double elapsed = now_seconds(t0);
    baseline_rps = elapsed > 0 ? static_cast<double>(base.routes) / elapsed : 0;
    std::printf("baseline (1 worker, no switches, scalar): %.0f routes/s\n",
                baseline_rps);
  }

  // ---- phase 2: batched vs scalar (1 worker, no switches) --------------
  double batched_rps = 0.0;
  {
    constexpr std::size_t k_bench_batch = 16;
    auto engine = rt::build_engine(cfg);
    engine->install(pool[0]);
    engine->switch_active();
    rt::worker_handle& w = engine->register_worker();
    rng g{0xba7c4};
    std::vector<netsim::flow_id_t> bflows(k_bench_batch);
    std::vector<fp::s64> binputs(k_bench_batch * 8);
    std::vector<fp::s64> bouts(k_bench_batch);
    std::vector<rt::route_result> bresults(k_bench_batch);
    const auto t0 = std::chrono::steady_clock::now();
    const double dur = std::min(duration * 0.5, 0.5);
    std::uint64_t routed = 0;
    while (now_seconds(t0) < dur) {
      for (std::size_t b = 0; b < k_bench_batch; ++b) {
        bflows[b] = static_cast<netsim::flow_id_t>(
            1 + g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
        for (std::size_t j = 0; j < 8; ++j) {
          binputs[b * 8 + j] = g.uniform_int(-900, 900);
        }
      }
      engine->route_batch(w, bflows, now_seconds(t0), binputs, bouts,
                          bresults);
      routed += k_bench_batch;
    }
    const double elapsed = now_seconds(t0);
    batched_rps = elapsed > 0 ? static_cast<double>(routed) / elapsed : 0.0;
    std::printf("batched (1 worker, no switches, batch %zu): %.0f routes/s "
                "(%.2fx scalar)\n",
                k_bench_batch, batched_rps,
                baseline_rps > 0 ? batched_rps / baseline_rps : 0.0);
  }

  // ---- phase 3: worker-count sweep under a switch storm ----------------
  struct sweep_point {
    std::size_t workers;
    stress_stats st;
  };
  std::vector<sweep_point> curve;
  std::uint64_t sweep_violations = 0;
  for (const std::size_t n : sweep) {
    const stress_stats st =
        run_stress(cfg, pool, n, flows, batch, sweep_seconds, 0);
    sweep_violations += st.violations;
    curve.push_back({n, st});
    std::printf(
        "sweep %2zu workers: %9.0f routes/s (%.2fx), l1 %.3f, locks/route "
        "%.4f\n",
        n, st.rps, baseline_rps > 0 ? st.rps / baseline_rps : 0.0,
        st.l1_hit_rate, st.locks_per_route);
  }

  // ---- phase 4: main N-worker invariant stress -------------------------
  inject_plan inject;
  inject.stall = inject_stall;
  inject.storm = inject_storm;
  inject.bad = inject_bad;
  inject.stall_start = 0.30 * duration;
  inject.stall_end = 0.50 * duration;
  inject.storm_start = 0.65 * duration;
  inject.storm_end = 0.85 * duration;
  inject.bad_start = 0.40 * duration;
  if (inject.stall || inject.bad) {
    // Pay heavy-model generation before the clock starts so the stall
    // window measures the datapath regression, not codegen; the measured
    // cost is what the writer mirrors as the `train` lifecycle stage.
    const auto gen_t0 = std::chrono::steady_clock::now();
    inject.heavy = make_heavy_pool(inject.stall ? models : 1);
    inject.heavy_train_ns = static_cast<std::uint64_t>(
        now_seconds(gen_t0) * 1e9 / static_cast<double>(inject.heavy.size()));
  }
  if (inject.stall) {
    std::printf("inject: stall window [%.2fs, %.2fs) (heavy pool: %zu nets)\n",
                inject.stall_start, inject.stall_end, inject.heavy.size());
  }
  if (inject.storm) {
    std::printf("inject: switch storm window [%.2fs, %.2fs)\n",
                inject.storm_start, inject.storm_end);
  }
  if (inject.bad) {
    std::printf(
        "inject: bad switch at %.2fs (probation %zu windows, auto-rollback)\n",
        inject.bad_start, probation_windows);
  }
  metrics::registry reg;
  rt::datapath_engine* engine = nullptr;
  rt::stats_sampler* sampler = nullptr;
  rt::anomaly_watchdog* watchdog = nullptr;
  std::vector<worker_outcome> outcomes;
  const auto stress_t0 = std::chrono::steady_clock::now();
  const stress_stats main_st =
      run_stress(cfg, pool, threads, flows, batch, duration, min_switches,
                 &reg, &engine, &outcomes, &sampler,
                 inject.any() ? &inject : nullptr, &watchdog);
  const double elapsed = now_seconds(stress_t0);

  // Drain: FIN every flow, then retire everything demoted.  After the
  // grace period only the final active (and possibly standby) survive.
  engine->cache().clear(engine->snapshots());
  // A hold left open by the final switch is an orderly close, not a leak.
  engine->close_probation();
  engine->maintain();
  engine->epochs().synchronize();
  engine->publish_stats();

  std::uint64_t violations = sweep_violations, total_routes = 0,
                total_infers = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    violations += outcomes[i].violations;
    total_routes += outcomes[i].routes;
    total_infers += outcomes[i].inferences;
    std::printf("worker%zu: %.0f routes/s (%llu routes, %llu violations)\n",
                i, outcomes[i].routes / elapsed,
                static_cast<unsigned long long>(outcomes[i].routes),
                static_cast<unsigned long long>(outcomes[i].violations));
  }
  const double total_rps = total_routes / elapsed;
  const double speedup = baseline_rps > 0 ? total_rps / baseline_rps : 0.0;
  const std::uint64_t live = engine->versions_live();
  std::printf(
      "total: %.0f routes/s (%.2fx single-thread), l1 %.3f, locks/route "
      "%.4f, %llu switches, %llu no-op switches, %llu versions retired, "
      "%llu live, %llu violations\n",
      total_rps, speedup, main_st.l1_hit_rate, main_st.locks_per_route,
      static_cast<unsigned long long>(engine->switches()),
      static_cast<unsigned long long>(engine->switch_noops()),
      static_cast<unsigned long long>(engine->versions_retired()),
      static_cast<unsigned long long>(live),
      static_cast<unsigned long long>(violations));

  // ---- report ----------------------------------------------------------
  bench::report rep{"rt_engine", "real-thread datapath engine stress"};
  rep.config("threads", static_cast<double>(threads));
  rep.config("flows_per_worker", static_cast<double>(flows));
  rep.config("min_switches", static_cast<double>(min_switches));
  rep.config("shards", static_cast<double>(engine->config().shards));
  rep.config("l1_slots", static_cast<double>(engine->config().l1_slots));
  rep.config("batch", static_cast<double>(batch));
  rep.config("host_cpus", static_cast<double>(host_cpus));
  // Multi-model knobs are only reported when in use so the default
  // single-model fast-seed JSON stays byte-identical across this change.
  if (models > 1 || shadow_rate > 0.0) {
    rep.config("models", static_cast<double>(models));
    rep.config("shadow_sample_rate", shadow_rate);
    rep.summary("shadow_inferences",
                static_cast<double>(engine->shadow_inferences()));
  }
  rep.config("duration_seconds", elapsed);
  rep.config("sweep_seconds", sweep_seconds);
  rep.config_bool("fast_mode", fast_mode());
  // Injection knobs only appear when in use (same contract as the
  // multi-model knobs above: the default JSON stays stable).
  const double clean_end = inject.clean_end();
  if (inject.any()) {
    rep.config_bool("inject_stall", inject.stall);
    rep.config_bool("inject_switch_storm", inject.storm);
    rep.config_bool("inject_bad_switch", inject.bad);
    rep.config("inject_clean_prefix_seconds", clean_end);
  }
  if (inject.bad) {
    rep.config("probation_windows", static_cast<double>(probation_windows));
    rep.summary("rollbacks", static_cast<double>(engine->rollbacks()));
    rep.summary("rollback_noops",
                static_cast<double>(engine->rollback_noops()));
    rep.summary("bad_switch_gen", static_cast<double>(
                                      inject.bad_gen.load(
                                          std::memory_order_acquire)));
    rep.summary("bad_switch_prev_gen",
                static_cast<double>(inject.bad_prev_gen.load(
                    std::memory_order_acquire)));
  }
  rep.config_bool("latency_telemetry", lat_on);
  rep.config("latency_sample_shift", static_cast<double>(lat_shift));
  rep.config("blackbox_events", static_cast<double>(blackbox));
  if (sampler != nullptr) {
    rep.config("stats_interval_ms", sampler->config().interval_ms);
  }
  rep.summary("baseline_routes_per_sec", baseline_rps);
  rep.summary("batched_routes_per_sec", batched_rps);
  rep.summary("batched_speedup_vs_scalar",
              baseline_rps > 0 ? batched_rps / baseline_rps : 0.0);
  rep.summary("total_routes_per_sec", total_rps);
  rep.summary("total_inferences_per_sec", total_infers / elapsed);
  rep.summary("speedup_vs_single_thread", speedup);
  rep.summary("l1_hit_rate", main_st.l1_hit_rate);
  rep.summary("lock_acquisitions_per_route", main_st.locks_per_route);
  rep.summary("violations", static_cast<double>(violations));
  rep.summary("versions_live_after_drain", static_cast<double>(live));
  for (const sweep_point& p : curve) {
    const double x = static_cast<double>(p.workers);
    rep.add_point("scaling_routes_per_sec", x, p.st.rps);
    rep.add_point("scaling_speedup", x,
                  baseline_rps > 0 ? p.st.rps / baseline_rps : 0.0);
    rep.add_point("scaling_l1_hit_rate", x, p.st.l1_hit_rate);
    rep.add_point("scaling_locks_per_route", x, p.st.locks_per_route);
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    rep.add_point("per_worker_routes_per_sec", static_cast<double>(i),
                  outcomes[i].routes / elapsed);
  }

  // ---- live telemetry: whole-run percentiles + per-window time series --
  rt::latency_snapshot lat;
  engine->latency_snapshot_into(lat);
  if (lat.total() != 0) {
    rep.summary("latency_samples", static_cast<double>(lat.total()));
    rep.summary("latency_p50_ns", lat.quantile(0.50));
    rep.summary("latency_p99_ns", lat.quantile(0.99));
    rep.summary("latency_p999_ns", lat.quantile(0.999));
    rep.summary("latency_mean_ns", lat.approx_mean_ns());
  }
  std::vector<rt::stats_window> windows;
  if (sampler != nullptr) windows = sampler->windows();
  for (const rt::stats_window& w : windows) {
    rep.add_point("ts_routes_per_sec", w.t_s, w.routes_per_sec);
    if (w.samples != 0) {
      rep.add_point("ts_p50_ns", w.t_s, w.p50_ns);
      rep.add_point("ts_p99_ns", w.t_s, w.p99_ns);
      rep.add_point("ts_p999_ns", w.t_s, w.p999_ns);
    }
    if (w.routes != 0) {
      rep.add_point("ts_l1_hit_rate", w.t_s, w.l1_hit_rate);
      rep.add_point("ts_locks_per_route", w.t_s, w.locks_per_route);
    }
    // The series the retired_leak rule watches: post-mortems of a missed or
    // spurious leak verdict need the per-window live count, not just the
    // end-of-run gauge.
    rep.add_point("ts_versions_live", w.t_s,
                  static_cast<double>(w.versions_live));
    rep.add_point("ts_versions_retired", w.t_s,
                  static_cast<double>(w.versions_retired));
  }
  if (!windows.empty()) {
    rep.summary("stats_windows", static_cast<double>(windows.size()));
  }

  for (const auto& [name, value] : reg.scalars()) rep.summary(name, value);
  const std::string path = rep.write();
  if (!path.empty()) std::printf("[json] %s\n", path.c_str());

  // Incident file (absent when the run was clean — CI asserts exactly that).
  std::vector<rt::incident_record> incidents;
  if (watchdog != nullptr) {
    incidents = watchdog->incidents();
    const std::string inc_path = watchdog->write_incidents();
    if (!inc_path.empty()) std::printf("[incidents] %s\n", inc_path.c_str());
  }

  // ---- REPORT_rt_engine.html ------------------------------------------
  {
    report::flight_report fr;
    fr.title = "LiteFlow flight report: rt engine stress";
    fr.summary.emplace_back("workers", std::to_string(threads));
    fr.summary.emplace_back("routes/s",
                            std::to_string(static_cast<long long>(total_rps)));
    fr.summary.emplace_back("switches", std::to_string(engine->switches()));
    fr.summary.emplace_back("violations", std::to_string(violations));
    if (lat.total() != 0) {
      fr.summary.emplace_back(
          "latency p50/p99/p999 (ns)",
          std::to_string(static_cast<long long>(lat.quantile(0.50))) + " / " +
              std::to_string(static_cast<long long>(lat.quantile(0.99))) +
              " / " +
              std::to_string(static_cast<long long>(lat.quantile(0.999))));
    }
    if (watchdog != nullptr) {
      fr.summary.emplace_back("watchdog incidents",
                              std::to_string(incidents.size()));
    }
    if (!windows.empty()) {
      // Incident markers land on both telemetry charts: the regression and
      // the detection are readable off the same time axis.
      const std::vector<report::marker> markers =
          watchdog != nullptr ? watchdog->incident_markers()
                              : std::vector<report::marker>{};
      report::chart_data rate;
      rate.id = "throughput";
      rate.title = "Routes per second (per sampler window)";
      rate.y_label = "routes/s";
      report::series_data rps_series;
      rps_series.name = "routes/s";
      for (const rt::stats_window& w : windows) {
        rps_series.points.emplace_back(w.t_s, w.routes_per_sec);
      }
      rate.series.push_back(std::move(rps_series));
      rate.markers = markers;
      fr.charts.push_back(std::move(rate));

      report::chart_data pct;
      pct.id = "latency_percentiles";
      pct.title = "Route latency percentiles (per sampler window)";
      pct.y_label = "ns";
      report::series_data p50{"p50", {}}, p99{"p99", {}}, p999{"p999", {}};
      for (const rt::stats_window& w : windows) {
        if (w.samples == 0) continue;
        p50.points.emplace_back(w.t_s, w.p50_ns);
        p99.points.emplace_back(w.t_s, w.p99_ns);
        p999.points.emplace_back(w.t_s, w.p999_ns);
      }
      pct.series.push_back(std::move(p50));
      pct.series.push_back(std::move(p99));
      pct.series.push_back(std::move(p999));
      pct.markers = markers;
      fr.charts.push_back(std::move(pct));
    }
    if (watchdog != nullptr && !incidents.empty()) {
      fr.tables.push_back(watchdog->incidents_table());
    }
    if (lat.total() != 0) {
      report::histogram_data h;
      h.name = "route latency (ns)";
      h.mean = lat.approx_mean_ns();
      h.total = lat.total();
      for (std::size_t i = 0; i < rt::latency_snapshot::k_buckets; ++i) {
        if (lat.counts[i] == 0) continue;
        h.buckets.push_back(
            {static_cast<double>(rt::latency_histogram::bucket_floor(i)),
             static_cast<double>(rt::latency_histogram::bucket_floor(i) +
                                 rt::latency_histogram::bucket_width(i)),
             lat.counts[i]});
      }
      fr.histograms.push_back(std::move(h));
    }
    const std::string html = report::write_flight_report(fr, "rt_engine");
    if (!html.empty()) std::printf("[html] %s\n", html.c_str());
  }

  // ---- verdict ---------------------------------------------------------
  bool ok = true;
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %llu flow-consistency violations\n",
                 static_cast<unsigned long long>(violations));
    ok = false;
  }
  if (engine->switches() < min_switches) {
    std::fprintf(stderr, "FAIL: only %llu switches (target %zu)\n",
                 static_cast<unsigned long long>(engine->switches()),
                 min_switches);
    ok = false;
  }
  if (engine->switch_noops() == 0) {
    std::fprintf(stderr,
                 "FAIL: no-op switch path never exercised (writer bug)\n");
    ok = false;
  }
  // Refcount + epoch gating: after the drain, only each model's final
  // active (and a possibly-uninstalled standby) may still be alive.
  if (live > 2 * models) {
    std::fprintf(stderr, "FAIL: %llu versions leaked past the drain\n",
                 static_cast<unsigned long long>(live));
    ok = false;
  }
  // Injection verdict: each injected fault must have been detected as the
  // incident kind it provokes, and nothing may have fired during the clean
  // prefix (true-positive AND zero-false-positive, asserted in-process).
  if (inject.any() && watchdog != nullptr) {
    std::uint64_t spikes = 0, leaks = 0, early = 0;
    for (const rt::incident_record& inc : incidents) {
      if (inc.kind == rt::anomaly_kind::p999_spike) ++spikes;
      if (inc.kind == rt::anomaly_kind::retired_leak) ++leaks;
      // Small slack: the sampler clock starts a beat before the writer's.
      if (inc.t_s < clean_end - 0.1) ++early;
    }
    if (inject.stall && spikes == 0) {
      std::fprintf(stderr,
                   "FAIL: injected stall produced no p999_spike incident\n");
      ok = false;
    }
    // The storm's scheduler-independent signature is reclamation losing to
    // the flip rate (live-version explosion).  An L1 hit-rate collapse only
    // shows on hosts with real parallelism — on a single CPU the writer's
    // flips batch into scheduler quanta and workers repopulate the L1
    // between them — so it is not the asserted kind here.
    if (inject.storm && leaks == 0) {
      std::fprintf(stderr,
                   "FAIL: injected switch storm produced no retired_leak "
                   "incident\n");
      ok = false;
    }
    if (early != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu incident(s) fired during the clean prefix "
                   "(< %.2fs)\n",
                   static_cast<unsigned long long>(early), clean_end);
      ok = false;
    }
    // Bad-switch verdict: the full detect -> classify -> rollback -> recover
    // loop must have closed, in process, within the probation window.
    if (inject.bad) {
      const std::uint64_t bad_gen =
          inject.bad_gen.load(std::memory_order_acquire);
      const std::uint64_t prev_gen =
          inject.bad_prev_gen.load(std::memory_order_acquire);
      if (bad_gen == 0 || prev_gen == 0) {
        std::fprintf(stderr,
                     "FAIL: bad switch never landed (no probation hold)\n");
        ok = false;
      }
      bool classified = false, repromoted = false;
      for (const rt::incident_record& inc : incidents) {
        if (inc.post_switch && inc.suspect_gen == bad_gen) classified = true;
        if (inc.rollback_gen == prev_gen && prev_gen != 0) repromoted = true;
      }
      if (!classified) {
        std::fprintf(stderr,
                     "FAIL: no post_switch_regression incident named the "
                     "degraded gen %llu\n",
                     static_cast<unsigned long long>(bad_gen));
        ok = false;
      }
      if (!repromoted) {
        std::fprintf(stderr,
                     "FAIL: no incident recorded a rollback to the "
                     "pre-switch gen %llu\n",
                     static_cast<unsigned long long>(prev_gen));
        ok = false;
      }
      if (engine->rollbacks() != 1) {
        std::fprintf(stderr, "FAIL: %llu rollbacks (expected exactly 1)\n",
                     static_cast<unsigned long long>(engine->rollbacks()));
        ok = false;
      }
      // The datapath must be serving the re-promoted generation again.
      {
        rt::worker_handle& probe = engine->register_worker();
        std::vector<fp::s64> pin(8, 0), pout(1, 0);
        const rt::route_result pr =
            engine->route(probe, 0xbadf10u, now_seconds(stress_t0), pin, pout);
        if (pr.gen != prev_gen) {
          std::fprintf(stderr,
                       "FAIL: active gen %llu after the run (expected the "
                       "re-promoted gen %llu)\n",
                       static_cast<unsigned long long>(pr.gen),
                       static_cast<unsigned long long>(prev_gen));
          ok = false;
        }
      }
      // Post-rollback p999 must drop back to the clean-prefix level (the
      // regression is ~250x MACs, so "recovered" and "still degraded" are
      // separated by orders of magnitude; 5x + scheduler slack is generous).
      std::vector<double> clean_p999, tail_p999;
      for (const rt::stats_window& w : windows) {
        if (w.samples == 0) continue;
        if (w.t_s < clean_end - 0.1) clean_p999.push_back(w.p999_ns);
      }
      for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
        if (it->samples == 0) continue;
        tail_p999.push_back(it->p999_ns);
        if (tail_p999.size() == 3) break;
      }
      const auto median = [](std::vector<double>& v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
      };
      if (clean_p999.empty() || tail_p999.empty()) {
        std::fprintf(stderr,
                     "FAIL: not enough sampler windows for the p999 "
                     "recovery check\n");
        ok = false;
      } else {
        const double clean_med = median(clean_p999);
        const double tail_med = median(tail_p999);
        if (tail_med > 5.0 * clean_med + 50e3) {
          std::fprintf(stderr,
                       "FAIL: post-rollback p999 %.0fns never recovered "
                       "(clean prefix median %.0fns)\n",
                       tail_med, clean_med);
          ok = false;
        } else {
          std::printf(
              "bad-switch: detected gen %llu, rolled back to gen %llu, "
              "tail p999 %.0fns vs clean %.0fns\n",
              static_cast<unsigned long long>(bad_gen),
              static_cast<unsigned long long>(prev_gen), tail_med, clean_med);
        }
      }
    }
  }
  if (!ok) {
    // Post-mortem before the nonzero exit: dump the black-box rings (the
    // recorder holds the events leading up to any violation) and a final
    // stats snapshot so CI can archive both.
    if (engine->recorder() != nullptr) {
      const std::string bb = engine->recorder()->dump("rt_engine");
      if (!bb.empty()) std::printf("[blackbox] %s\n", bb.c_str());
    }
    if (sampler != nullptr && sampler->write_text()) {
      std::printf("[stats] %s\n", sampler->config().text_out.c_str());
    }
  }
  std::printf(ok ? "rt stress: PASS\n" : "rt stress: FAIL\n");
  return ok ? 0 : 1;
}
