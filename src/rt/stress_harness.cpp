// rt stress harness: real threads against the real-thread datapath engine.
//
// M flows × N worker threads route packets and run compiled integer
// inference while one writer thread performs randomized install / switch /
// no-op-switch cycles and the workers interleave FINs, idle expiry and
// random think time.  Every worker asserts the §3.4 flow-consistency
// invariant online: a flow-cache *hit* must return exactly the generation
// the flow pinned at its last miss — i.e. no flow ever observes two model
// generations within one cache incarnation.
//
// The binary doubles as the BENCH_rt_engine.json reporter: phase 1 measures
// a single-threaded no-switch baseline, phase 2 the full N-thread stress,
// and the report records per-thread route+infer throughput plus the speedup
// so the bench trajectory tracks rt scaling next to the sim fast path.
//
// Exit status is nonzero on any invariant violation, on a missed switch
// target, or on version-lifecycle leaks — this is what the TSan CI job runs.
//
// Env knobs:
//   LF_RT_THREADS   worker threads        (default 4)
//   LF_RT_FLOWS     flows per worker      (default 256)
//   LF_RT_SWITCHES  min snapshot switches (default 120)
//   LF_RT_SECONDS   stress duration       (default 2.0; 0.6 in fast mode)
//   LF_RT_SHARDS    flow-cache shards     (default 16)
//   LF_BENCH_FAST   shrink durations for smoke runs
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "codegen/snapshot.hpp"
#include "nn/mlp.hpp"
#include "rt/rt_deployment.hpp"
#include "util/bench_report.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace lf;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : fallback;
}

bool fast_mode() {
  const char* v = std::getenv("LF_BENCH_FAST");
  return v != nullptr && *v != '\0' && *v != '0';
}

double now_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Pool of pre-generated snapshots the writer cycles through (generation is
/// the §3.1 pipeline; it is paid once here so the stress loop measures the
/// datapath, not gcc).
std::vector<codegen::snapshot> make_snapshot_pool(std::size_t n) {
  std::vector<codegen::snapshot> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rng g{0x5eed0000 + i};
    pool.push_back(codegen::generate_snapshot(nn::make_ffnn_flow_size_net(g),
                                              "rt-ffnn", i + 1));
  }
  return pool;
}

struct worker_outcome {
  std::uint64_t violations = 0;
  std::uint64_t routes = 0;
  std::uint64_t inferences = 0;
};

/// One worker thread: routes its own flow partition, FINs randomly, expires
/// idle entries occasionally, and checks the consistency invariant.
worker_outcome run_worker(rt::datapath_engine& engine, rt::worker_handle& w,
                          std::uint64_t flow_base, std::size_t flows,
                          std::uint64_t seed,
                          std::chrono::steady_clock::time_point t0,
                          const std::atomic<bool>& stop) {
  rng g{seed};
  worker_outcome out;
  // expected generation per owned flow; 0 = not pinned (flows are
  // worker-partitioned, so this thread is the only router/FINisher).
  std::vector<std::uint64_t> expected(flows, 0);
  std::vector<fp::s64> input(8);
  std::vector<fp::s64> output(1);
  std::uint64_t iter = 0;
  while (!stop.load(std::memory_order_acquire)) {
    ++iter;
    const std::size_t idx =
        static_cast<std::size_t>(g.uniform_int(0, static_cast<std::int64_t>(flows) - 1));
    const auto flow = static_cast<netsim::flow_id_t>(flow_base + idx);
    for (auto& x : input) x = g.uniform_int(-900, 900);  // within io_scale
    const double now = now_seconds(t0);
    const rt::route_result r = engine.route(w, flow, now, input, output);
    if (r.gen != 0) {
      ++out.routes;
      if (r.served) ++out.inferences;
      // The invariant: a hit serves exactly the generation pinned at this
      // flow's last miss (expected != 0 always holds on a hit, because this
      // worker owns the flow and every hit follows a miss).
      if (r.hit && r.gen != expected[idx]) ++out.violations;
      expected[idx] = r.gen;
    }
    // Interleavings: FIN ~3% of packets; a full idle-expiry sweep every few
    // thousand iterations races the sweep against other workers' routes.
    if (g.uniform() < 0.03) {
      engine.flow_finished(w, flow);
      expected[idx] = 0;
    } else if ((iter & 0x1fff) == 0) {
      engine.expire_idle(now_seconds(t0));
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t threads = env_size("LF_RT_THREADS", 4);
  const std::size_t flows = env_size("LF_RT_FLOWS", 256);
  const std::size_t min_switches = env_size("LF_RT_SWITCHES", 120);
  const double duration =
      env_double("LF_RT_SECONDS", fast_mode() ? 0.6 : 2.0);
  const std::size_t shards = env_size("LF_RT_SHARDS", 16);

  rt::engine_config cfg;
  cfg.shards = shards;
  cfg.idle_timeout = 0.05;  // aggressive: force idle-expiry races
  cfg.max_workers = threads + 1;

  std::printf("rt stress: %zu workers x %zu flows, >= %zu switches, %.2fs\n",
              threads, flows, min_switches, duration);
  const std::vector<codegen::snapshot> pool = make_snapshot_pool(6);

  // ---- phase 1: single-threaded, no-switch baseline --------------------
  double baseline_rps = 0.0;
  {
    auto engine = rt::build_engine(cfg);
    engine->install(pool[0]);
    engine->switch_active();
    rt::worker_handle& w = engine->register_worker();
    std::atomic<bool> stop{false};
    const auto t0 = std::chrono::steady_clock::now();
    const double base_dur = std::min(duration * 0.5, 0.5);
    std::thread stopper{[&]() {
      std::this_thread::sleep_for(std::chrono::duration<double>(base_dur));
      stop.store(true, std::memory_order_release);
    }};
    const worker_outcome base =
        run_worker(*engine, w, 1, flows, 0xba5e, t0, stop);
    stopper.join();
    const double elapsed = now_seconds(t0);
    baseline_rps = elapsed > 0 ? static_cast<double>(base.routes) / elapsed : 0;
    std::printf("baseline (1 worker, no switches): %.0f routes/s\n",
                baseline_rps);
  }

  // ---- phase 2: N workers + writer stress ------------------------------
  metrics::registry reg;
  auto engine = rt::build_engine(cfg);
  engine->register_metrics(reg, "rt");
  engine->install(pool[0]);
  engine->switch_active();

  std::vector<rt::worker_handle*> handles;
  for (std::size_t i = 0; i < threads; ++i) {
    rt::worker_handle& w = engine->register_worker();
    w.register_metrics(reg, "rt.worker" + std::to_string(i));
    handles.push_back(&w);
  }

  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  // Writer: randomized install/switch/no-op interleavings until both the
  // duration and the switch target are met.
  std::thread writer{[&]() {
    rng g{0x3717e4};
    std::uint64_t version = 1;
    while (now_seconds(t0) < duration ||
           engine->switches() < min_switches + 1) {
      const double dice = g.uniform();
      if (dice < 0.75) {
        codegen::snapshot snap = pool[version % pool.size()];
        snap.version = ++version;
        engine->install(std::move(snap));
        engine->switch_active();
      } else if (dice < 0.85) {
        // Standby replaced before ever activating (orphan retirement path).
        codegen::snapshot snap = pool[version % pool.size()];
        snap.version = ++version;
        engine->install(std::move(snap));
      } else {
        // No-standby switch: must be a counted no-op, never a null flip.
        engine->switch_active();
      }
      engine->maintain();
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int>(g.uniform(100.0, 4000.0))));
    }
    stop.store(true, std::memory_order_release);
  }};

  std::vector<std::thread> pool_threads;
  std::vector<worker_outcome> outcomes(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    pool_threads.emplace_back([&, i]() {
      outcomes[i] = run_worker(*engine, *handles[i],
                               (i + 1) * 1'000'000ull, flows,
                               0xf00d + i, t0, stop);
    });
  }
  for (auto& t : pool_threads) t.join();
  writer.join();
  const double elapsed = now_seconds(t0);

  // Drain: FIN every flow, then retire everything demoted.  After the
  // grace period only the final active (and possibly standby) survive.
  engine->cache().clear(engine->snapshots());
  engine->maintain();
  engine->epochs().synchronize();
  engine->publish_stats();

  std::uint64_t violations = 0, total_routes = 0, total_infers = 0;
  for (std::size_t i = 0; i < threads; ++i) {
    violations += outcomes[i].violations;
    total_routes += outcomes[i].routes;
    total_infers += outcomes[i].inferences;
    std::printf("worker%zu: %.0f routes/s (%llu routes, %llu violations)\n",
                i, outcomes[i].routes / elapsed,
                static_cast<unsigned long long>(outcomes[i].routes),
                static_cast<unsigned long long>(outcomes[i].violations));
  }
  const double total_rps = total_routes / elapsed;
  const double speedup = baseline_rps > 0 ? total_rps / baseline_rps : 0.0;
  const std::uint64_t live = engine->versions_live();
  std::printf(
      "total: %.0f routes/s (%.2fx single-thread), %llu switches, "
      "%llu no-op switches, %llu versions retired, %llu live, "
      "%llu violations\n",
      total_rps, speedup,
      static_cast<unsigned long long>(engine->switches()),
      static_cast<unsigned long long>(engine->switch_noops()),
      static_cast<unsigned long long>(engine->versions_retired()),
      static_cast<unsigned long long>(live),
      static_cast<unsigned long long>(violations));

  // ---- report ----------------------------------------------------------
  bench::report rep{"rt_engine", "real-thread datapath engine stress"};
  rep.config("threads", static_cast<double>(threads));
  rep.config("flows_per_worker", static_cast<double>(flows));
  rep.config("min_switches", static_cast<double>(min_switches));
  rep.config("shards", static_cast<double>(engine->config().shards));
  rep.config("duration_seconds", elapsed);
  rep.config_bool("fast_mode", fast_mode());
  rep.summary("baseline_routes_per_sec", baseline_rps);
  rep.summary("total_routes_per_sec", total_rps);
  rep.summary("total_inferences_per_sec", total_infers / elapsed);
  rep.summary("speedup_vs_single_thread", speedup);
  rep.summary("violations", static_cast<double>(violations));
  rep.summary("versions_live_after_drain", static_cast<double>(live));
  for (std::size_t i = 0; i < threads; ++i) {
    rep.add_point("per_worker_routes_per_sec", static_cast<double>(i),
                  outcomes[i].routes / elapsed);
  }
  for (const auto& [name, value] : reg.scalars()) rep.summary(name, value);
  const std::string path = rep.write();
  if (!path.empty()) std::printf("[json] %s\n", path.c_str());

  // ---- verdict ---------------------------------------------------------
  bool ok = true;
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %llu flow-consistency violations\n",
                 static_cast<unsigned long long>(violations));
    ok = false;
  }
  if (engine->switches() < min_switches) {
    std::fprintf(stderr, "FAIL: only %llu switches (target %zu)\n",
                 static_cast<unsigned long long>(engine->switches()),
                 min_switches);
    ok = false;
  }
  if (engine->switch_noops() == 0) {
    std::fprintf(stderr,
                 "FAIL: no-op switch path never exercised (writer bug)\n");
    ok = false;
  }
  // Refcount + epoch gating: after the drain, only the final active (and a
  // possibly-uninstalled standby) may still be alive.
  if (live > 2) {
    std::fprintf(stderr, "FAIL: %llu versions leaked past the drain\n",
                 static_cast<unsigned long long>(live));
    ok = false;
  }
  std::printf(ok ? "rt stress: PASS\n" : "rt stress: FAIL\n");
  return ok ? 0 : 1;
}
