// Anomaly watchdog for the rt engine: rolling-baseline detection of
// transient datapath regressions, evaluated entirely on the stats-sampler
// thread.
//
// The failure modes that matter in production are transient — a p999 spike
// during a switch storm, a routes/sec collapse under cache pressure, an L1
// hit-rate cliff after an install flood, shadow-divergence drift after an
// admit, a retired-version leak — and they are invisible in end-of-run
// aggregates.  The watchdog rides the windows the stats sampler already
// folds (no new hot-path instrumentation: workers pay nothing they did not
// already pay for telemetry) and keeps one rolling baseline per watched
// series:
//
//   baseline: EWMA mean + EWMA mean-absolute-deviation (MAD), warmup-gated.
//     mean' = mean + alpha * (v - mean)
//     mad'  = mad  + alpha * (|v - mean| - mad)
//   Breaching windows are NOT folded into the baseline (an anomaly must not
//   teach the detector that anomalous is normal); recovery windows are.
//
//   trigger: edge-triggered k-of-M — a rule fires only after
//   `breach_windows` consecutive breaching windows, fires once, and re-arms
//   when a window comes back inside the envelope (the adaptation_monitor's
//   alert semantics, applied to the rt plane).  retired_leak alone needs
//   several consecutive clean windows to re-arm (retired_leak_rearm):
//   reclamation wins isolated windows mid-storm, and those dips must not
//   reset the count or fold into the baseline.
//
// On fire the watchdog emits a typed `anomaly` event into the flight
// recorder's control ring, triggers a rate-limited black-box dump
// (BLACKBOX_anomaly_<n>.json via flight_recorder::try_dump), bumps the
// rt.watchdog.* metrics, and appends a structured incident record — rule,
// observed/baseline/threshold, the breaching window, control-plane context
// (live/retired versions, switches, installs, gate blocks), dump path — to
// INCIDENT_<label>.json (rewritten atomically, absent while no incident has
// fired so a clean run leaves no file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rt/engine.hpp"
#include "rt/stats_sampler.hpp"
#include "util/metrics.hpp"
#include "util/run_report.hpp"

namespace lf::rt {

/// What breached.  Order is the trace `anomaly` event's `a` payload and the
/// rt.watchdog.<kind> metric suffix — append-only.
enum class anomaly_kind : std::uint8_t {
  p999_spike = 0,   ///< window p999 above the baseline envelope
  rps_collapse,     ///< routes/sec collapsed below a fraction of baseline
  l1_collapse,      ///< L1 hit rate collapsed below a fraction of baseline
  locks_spike,      ///< locks/route above the baseline envelope
  shadow_drift,     ///< per-model shadow divergence above the envelope
  retired_leak,     ///< live version count far above its rolling baseline
                    ///< (retired snapshots piling up un-reclaimed: the
                    ///< cumulative retired counter grows on every healthy
                    ///< switch, but the *live* count stays near the steady
                    ///< churn level unless reclamation is losing to the
                    ///< switch rate)
};

inline constexpr std::size_t anomaly_kind_count = 6;

std::string_view to_string(anomaly_kind k) noexcept;

struct watchdog_config {
  bool enabled = true;
  /// Windows a rule's baseline must absorb before it may breach.  During
  /// warmup every window (spike or not) feeds the baseline and nothing
  /// fires — a cold start must not alert on its own ramp.
  std::size_t warmup_windows = 5;
  /// Windows with fewer routes than this are skipped outright (no baseline
  /// update, no breach evaluation): idle phases and the short tail window
  /// after workers join carry no signal, only noise.
  std::size_t min_window_routes = 64;
  /// EWMA smoothing for both the mean and the MAD.
  double ewma_alpha = 0.25;
  /// Consecutive breaching windows required to fire (the M in k-of-M).
  /// 3 is deliberate: on a loaded single-CPU host, two back-to-back
  /// scheduler-stall p999 spikes show up in genuinely clean runs.
  std::size_t breach_windows = 3;

  // Per-rule envelopes.  High-side rules breach above
  //   max(mean * factor, mean + mad_slack * mad) + abs_min
  // (the MAD term keeps a noisy-but-legitimate series from alerting on its
  // own jitter); low-side rules breach below mean * frac.
  double mad_slack = 8.0;
  double p999_spike_factor = 4.0;
  double p999_spike_min_ns = 250.0;
  double rps_collapse_frac = 0.25;
  double l1_collapse_frac = 0.5;
  /// l1_collapse only applies when the baseline says the L1 was actually
  /// absorbing traffic (an L1-disabled run has nothing to collapse).
  double l1_min_baseline = 0.2;
  double locks_spike_factor = 8.0;
  double locks_spike_min = 0.05;
  double shadow_drift_factor = 4.0;
  double shadow_drift_min = 1e-3;
  /// retired_leak breaches when versions_live exceeds
  ///   mean * factor + retired_leak_min.
  /// A *level* envelope, deliberately not a growth trend: a switch storm
  /// that outruns reclamation does not grow the live count monotonically —
  /// reclaim wins individual windows mid-storm — but it does hold the level
  /// an order of magnitude above the steady churn baseline (which the EWMA
  /// tracks through slow creep without alerting).  The absolute floor keeps
  /// small deployments (baseline of a handful of versions) from alerting on
  /// trivial counts.  4x (not the p999 rule's tighter envelope): the live
  /// count legitimately swings 2-3x while reclamation absorbs a recovery
  /// (e.g. a heavy model draining out), and a real reclamation loss sits an
  /// order of magnitude up.  Unlike the other high-side rules there is no
  /// mad_slack term: the series is low-jitter when healthy, and mid-storm
  /// reclaim-win dips that fold as "clean" would feed the MAD deviations
  /// large enough to balloon the envelope above the storm plateau itself.
  double retired_leak_factor = 4.0;
  double retired_leak_min = 64.0;
  /// Consecutive clean windows required to close a retired_leak breach run
  /// (re-arm the trigger and resume folding the baseline).  Every other
  /// rule re-arms on a single clean window; here reclamation wins single
  /// windows *mid-storm* — the live count whipsaws 3x and back while the
  /// leak rages — so one clean window proves nothing.  While a breach run
  /// is open, clean windows below this count are a suspicious period: they
  /// neither fold into the baseline (a storm-level "dip" of 300 against a
  /// baseline of 100 would teach the EWMA that the storm is normal) nor
  /// reset the breach count (the k-of-M run survives isolated dips).
  std::size_t retired_leak_rearm = 3;

  /// Trailing window kept in anomaly dumps (0 = whole rings).
  std::uint64_t dump_window_ns = 0;
  /// INCIDENT_<label>.json basename; "" disables the incident file.
  std::string incident_label;
  /// Rollback policy: when a firing rule is classified
  /// `post_switch_regression` (see incident_record), invoke
  /// engine::try_rollback on the offending model from the sampler thread.
  /// Off by default — the watchdog stays a pure observer unless the
  /// deployment opted into probation holds.
  bool auto_rollback = false;
};

/// Environment defaults, all optional:
///   LF_RT_WATCHDOG          0 disables (default on)
///   LF_RT_WATCHDOG_WARMUP   warmup_windows
///   LF_RT_WATCHDOG_BREACH   breach_windows (M)
///   LF_RT_WATCHDOG_MIN_ROUTES  min_window_routes
///   LF_RT_WATCHDOG_P999_FACTOR p999_spike_factor
watchdog_config watchdog_config_from_env();

/// One rule's rolling baseline (exposed for tests and the incident record).
struct baseline_stats {
  double mean = 0.0;
  double mad = 0.0;
  std::size_t samples = 0;  ///< windows folded in
};

/// One fired anomaly.
struct incident_record {
  std::uint64_t seq = 0;  ///< 1-based, monotonic per watchdog
  double t_s = 0.0;       ///< breach window end (sampler clock)
  anomaly_kind kind{};
  double observed = 0.0;
  double baseline = 0.0;   ///< baseline mean at trigger time
  double threshold = 0.0;  ///< envelope edge the observation crossed
  std::size_t breach_windows = 0;  ///< consecutive breaches at trigger
  double first_breach_t_s = 0.0;
  stats_window window{};   ///< the window that completed the k-of-M run
  std::string dump_path;   ///< BLACKBOX_anomaly_<n>.json ("" if suppressed)
  // Control-plane context at trigger time.
  std::uint64_t versions_live = 0;
  std::uint64_t versions_retired = 0;
  std::uint64_t switches = 0;
  std::uint64_t installs = 0;
  std::uint64_t gate_blocks = 0;
  // Post-switch classifier (cross-rule correlation): a p999_spike /
  // shadow_drift / rps_collapse that fires while a snapshot switch's
  // probation hold is still open is a different incident class than a bare
  // spike — the admitted candidate is the prime suspect.
  bool post_switch = false;        ///< classed post_switch_regression
  std::uint64_t suspect_model = 0;  ///< model whose probation hold was open
  std::uint64_t suspect_gen = 0;    ///< gen the suspect switch installed
  std::uint64_t rollback_gen = 0;   ///< previous gen re-promoted by the
                                    ///< rollback policy (0: policy off or
                                    ///< the rollback lost a race)
};

class anomaly_watchdog {
 public:
  /// `engine` may be null (pure-baseline tests): then no counters context,
  /// no anomaly event, no dump — just incident records.
  explicit anomaly_watchdog(watchdog_config cfg,
                            datapath_engine* engine = nullptr);

  anomaly_watchdog(const anomaly_watchdog&) = delete;
  anomaly_watchdog& operator=(const anomaly_watchdog&) = delete;

  bool enabled() const noexcept { return cfg_.enabled; }
  const watchdog_config& config() const noexcept { return cfg_; }

  /// Evaluate one folded window (called by stats_sampler::tick on the
  /// sampler thread; any single thread in tests).  `max_shadow_divergence`
  /// is the worst per-model mean divergence with evidence this window
  /// (<= 0 = no evidence, rule skipped).
  void observe(const stats_window& w, double max_shadow_divergence = 0.0);

  std::vector<incident_record> incidents() const;
  std::uint64_t incident_count() const;
  std::uint64_t incident_count(anomaly_kind k) const;
  /// Incidents classified post_switch_regression / rollbacks the policy
  /// actually executed (auto_rollback on, engine rollback succeeded).
  std::uint64_t post_switch_incidents() const;
  std::uint64_t rollbacks_issued() const;
  baseline_stats baseline(anomaly_kind k) const;
  std::size_t windows_seen() const;

  /// Anomaly dumps written / suppressed by the engine's recorder (0 each
  /// without an engine or recorder).
  std::uint64_t dumps() const noexcept;
  std::uint64_t dumps_suppressed() const noexcept;

  /// Counters under "<prefix>.incidents", "<prefix>.<kind>" and gauges
  /// "<prefix>.dumps" / "<prefix>.dumps_suppressed" (the gauges mirror the
  /// recorder's rate-limiter state at the last fire).
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Rewrite INCIDENT_<label>.json in bench::output_dir() (temp + rename,
  /// same atomicity contract as the Prometheus text).  Returns the path, or
  /// "" when there are no incidents or no label — a clean run never creates
  /// the file, which is exactly what CI's zero-false-positive leg asserts.
  std::string write_incidents() const;

  /// Incidents table for the HTML flight report (empty table when clean).
  report::table_data incidents_table() const;
  /// One alert marker per incident for the telemetry charts.
  std::vector<report::marker> incident_markers() const;

 private:
  struct rule_state {
    baseline_stats base;
    std::size_t breach_run = 0;  ///< breaching windows in the open run
    std::size_t clean_run = 0;   ///< consecutive clean windows since a breach
    bool latched = false;        ///< fired and not yet re-armed
    double first_breach_t = 0.0;
  };

  /// One rule evaluation: warmup/baseline fold on clean windows, breach-run
  /// bookkeeping and (maybe) fire on breaching ones.  high = breach above
  /// the envelope, else below.  Caller holds mu_.
  void evaluate(anomaly_kind k, const stats_window& w, double v);
  void fire(anomaly_kind k, const stats_window& w, double observed,
            double threshold, rule_state& r);
  /// True for the rules the post-switch classifier correlates with an open
  /// probation hold (datapath symptoms a bad candidate produces).
  static bool classifiable(anomaly_kind k) noexcept;
  double envelope(anomaly_kind k, const baseline_stats& b) const;
  /// Clean windows needed to close a breach run: retired_leak_rearm for
  /// that rule, 1 (re-arm on any clean window) for every other.
  std::size_t rearm_windows(anomaly_kind k) const noexcept;
  std::string write_incidents_locked() const;

  watchdog_config cfg_;
  datapath_engine* engine_;

  mutable std::mutex mu_;
  std::size_t windows_seen_ = 0;
  rule_state rules_[anomaly_kind_count];
  std::vector<incident_record> incidents_;
  metrics::counter incidents_total_;
  metrics::counter per_kind_[anomaly_kind_count];
  metrics::counter post_switch_;
  metrics::counter rollbacks_issued_;
  metrics::gauge dumps_gauge_;
  metrics::gauge dumps_suppressed_gauge_;
};

}  // namespace lf::rt
