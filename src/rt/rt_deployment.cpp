#include "rt/rt_deployment.hpp"

#include <stdexcept>

namespace lf::rt {
namespace {

void do_register() {
  apps::register_deployment(
      apps::app_kind::rt, rt_deployment::engine, "rt-engine",
      engine_builder{[](const engine_config& cfg) {
        return std::make_unique<datapath_engine>(cfg);
      }});
}

struct registrar {
  registrar() { do_register(); }
};
const registrar auto_registrar{};

}  // namespace

void ensure_rt_deployments_registered() {
  if (apps::deployment_registry::instance()
          .builder_as<engine_builder>(
              apps::app_kind::rt, static_cast<int>(rt_deployment::engine)) ==
      nullptr) {
    do_register();
  }
}

std::unique_ptr<datapath_engine> build_engine(const engine_config& cfg) {
  ensure_rt_deployments_registered();
  const engine_builder* b =
      apps::deployment_registry::instance().builder_as<engine_builder>(
          apps::app_kind::rt, static_cast<int>(rt_deployment::engine));
  if (b == nullptr) {
    throw std::runtime_error{"rt-engine deployment not registered"};
  }
  return (*b)(cfg);
}

}  // namespace lf::rt
