#include "rt/rt_deployment.hpp"

#include <stdexcept>

namespace lf::rt {
namespace {

void do_register() {
  apps::register_deployment(
      apps::app_kind::rt, rt_deployment::engine, "rt-engine",
      engine_builder{[](const engine_config& cfg) {
        return std::make_unique<datapath_engine>(cfg);
      }});
  apps::register_deployment(
      apps::app_kind::rt, rt_deployment::multimodel, "rt-multimodel",
      engine_builder{[](const engine_config& cfg) {
        engine_config mm = cfg;
        if (mm.models < 2) mm.models = 2;
        if (mm.shadow.sample_rate <= 0.0) mm.shadow.sample_rate = 1.0 / 16.0;
        return std::make_unique<datapath_engine>(mm);
      }});
}

struct registrar {
  registrar() { do_register(); }
};
const registrar auto_registrar{};

}  // namespace

void ensure_rt_deployments_registered() {
  if (apps::deployment_registry::instance()
          .builder_as<engine_builder>(
              apps::app_kind::rt,
              static_cast<int>(rt_deployment::multimodel)) == nullptr) {
    do_register();
  }
}

std::unique_ptr<datapath_engine> build_engine(const engine_config& cfg,
                                              rt_deployment which) {
  ensure_rt_deployments_registered();
  const engine_builder* b =
      apps::deployment_registry::instance().builder_as<engine_builder>(
          apps::app_kind::rt, static_cast<int>(which));
  if (b == nullptr) {
    throw std::runtime_error{"rt deployment not registered"};
  }
  return (*b)(cfg);
}

}  // namespace lf::rt
