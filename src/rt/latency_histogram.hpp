// Per-worker route-latency histogram: HDR-style log2 bucketing with one
// sub-bucket bit, 64 buckets total, covering 1 ns .. ~3.2 s (everything
// above clamps into the top bucket).
//
// Memory-ordering contract (the same single-writer shape as
// metrics::atomic_counter): each histogram is owned by exactly one worker
// thread, which is the only mutator.  record() is load(relaxed) + add +
// store(relaxed) on one bucket — no lock-prefixed RMW ever touches the hot
// path, so the enabled cost is the bucket index math (a count-leading-zeros
// and two shifts) plus one L1-resident load/store.  The stats sampler reads
// the buckets with relaxed loads from another thread; it may observe a
// snapshot that is a few events stale or that tears *across* buckets (bucket
// i from instant T1, bucket j from T2), but never a torn single count and
// never a decreasing one.  Windowed deltas therefore always subtract
// monotonically non-decreasing values.
//
// The quantile estimator interpolates linearly within the crossing bucket,
// matching metrics::fixed_histogram's convention, so p50 <= p99 <= p999 by
// construction on any snapshot.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace lf::rt {

/// Steady-clock nanoseconds (arbitrary epoch, monotonic).  One shared clock
/// for latency deltas and flight-recorder timestamps so recorder events and
/// histogram samples line up on the same timeline.
inline std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Off-thread copy of a histogram's buckets: plain integers, mergeable and
/// subtractable (for per-window deltas), with quantile estimation.
struct latency_snapshot {
  static constexpr std::size_t k_buckets = 64;

  std::array<std::uint64_t, k_buckets> counts{};

  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto c : counts) n += c;
    return n;
  }

  latency_snapshot& merge(const latency_snapshot& o) noexcept {
    for (std::size_t i = 0; i < k_buckets; ++i) counts[i] += o.counts[i];
    return *this;
  }

  /// Per-window delta: *this (later) minus `earlier`.  Valid because every
  /// bucket is monotonically non-decreasing on the writer side.
  latency_snapshot delta_since(const latency_snapshot& earlier) const noexcept {
    latency_snapshot d;
    for (std::size_t i = 0; i < k_buckets; ++i) {
      d.counts[i] = counts[i] - earlier.counts[i];
    }
    return d;
  }

  /// Quantile q in [0, 1] in nanoseconds, interpolated within the crossing
  /// bucket.  0 for an empty snapshot.
  double quantile(double q) const noexcept;

  /// Mean estimated from bucket midpoints (exact for the 0/1 ns buckets).
  double approx_mean_ns() const noexcept;
};

/// The per-worker recording side.  Cache-line padding is the *owner's* job:
/// worker_handle is already alignas(128), and the histogram sits inside it
/// next to the worker's other single-writer counters.
class latency_histogram {
 public:
  static constexpr std::size_t k_buckets = latency_snapshot::k_buckets;

  /// Bucket for a nanosecond value: one power-of-two exponent bucket split
  /// once by the next-lower bit.  0 and 1 get their own buckets; index 63
  /// (values >= 3.2 s) absorbs the tail.
  static constexpr std::size_t bucket_index(std::uint64_t ns) noexcept {
    if (ns < 2) return static_cast<std::size_t>(ns);
    const auto e = static_cast<unsigned>(std::bit_width(ns)) - 1;  // >= 1
    const auto sub = static_cast<std::size_t>((ns >> (e - 1)) & 1u);
    const std::size_t i = (static_cast<std::size_t>(e) << 1) | sub;
    return i < k_buckets ? i : k_buckets - 1;
  }

  /// Smallest nanosecond value that lands in bucket i.
  static constexpr std::uint64_t bucket_floor(std::size_t i) noexcept {
    if (i < 2) return i;
    const auto e = static_cast<unsigned>(i >> 1);
    const std::uint64_t base = std::uint64_t{1} << e;
    return base | ((i & 1) ? (base >> 1) : 0);
  }

  /// Width of bucket i in nanoseconds (1 for the two unit buckets).
  static constexpr std::uint64_t bucket_width(std::size_t i) noexcept {
    if (i < 2) return 1;
    return std::uint64_t{1} << (static_cast<unsigned>(i >> 1) - 1);
  }

  /// Hot path (owner thread only): one bucket-index computation plus a
  /// relaxed load+store.  `n` lets route_batch spread one timed batch over
  /// its flows (mean per-flow delta recorded n times).
  void record(std::uint64_t ns, std::uint64_t n = 1) noexcept {
    auto& b = counts_[bucket_index(ns)];
    b.store(b.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  /// Off-thread read (sampler / report path): accumulate into `out`.
  void snapshot_into(latency_snapshot& out) const noexcept {
    for (std::size_t i = 0; i < k_buckets; ++i) {
      out.counts[i] += counts_[i].load(std::memory_order_relaxed);
    }
  }

  /// Owner-thread (or quiesced) reset between runs.
  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, k_buckets> counts_{};
};

inline double latency_snapshot::quantile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < k_buckets; ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return static_cast<double>(latency_histogram::bucket_floor(i)) +
             static_cast<double>(latency_histogram::bucket_width(i)) *
                 std::clamp(within, 0.0, 1.0);
    }
    seen += c;
  }
  return static_cast<double>(
      latency_histogram::bucket_floor(k_buckets - 1) +
      latency_histogram::bucket_width(k_buckets - 1));
}

inline double latency_snapshot::approx_mean_ns() const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < k_buckets; ++i) {
    if (counts[i] == 0) continue;
    const double mid =
        static_cast<double>(latency_histogram::bucket_floor(i)) +
        0.5 * static_cast<double>(latency_histogram::bucket_width(i));
    sum += mid * static_cast<double>(counts[i]);
  }
  return sum / static_cast<double>(n);
}

}  // namespace lf::rt
