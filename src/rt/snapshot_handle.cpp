#include "rt/snapshot_handle.hpp"

#include <utility>

namespace lf::rt {

snapshot_handle::snapshot_handle(epoch_domain& epochs)
    : epochs_{epochs}, rec_{owned_} {}

snapshot_handle::snapshot_handle(epoch_domain& epochs, version_reclaim& reclaim)
    : epochs_{epochs}, rec_{reclaim} {}

snapshot_handle::~snapshot_handle() {
  // Contract: readers are stopped and all flow pins are released, so the
  // only remaining pins are the handle's own ownership pins.
  {
    std::lock_guard<std::mutex> pl{probation_mu_};
    if (held_ != nullptr) retire_held_locked();
  }
  shadow_.store(nullptr, std::memory_order_release);
  if (standby_ != nullptr) {
    release_ownership(std::exchange(standby_, nullptr));
  }
  if (snapshot_version* v = active_.exchange(nullptr,
                                             std::memory_order_acq_rel)) {
    v->demoted.store(true, std::memory_order_seq_cst);
    release_ownership(v);
  }
  maintain();
  epochs_.synchronize();
}

std::uint64_t snapshot_handle::install_standby(codegen::snapshot snap) {
  auto* v = new snapshot_version{next_gen_++, std::move(snap)};
  rec_.live.fetch_add(1, std::memory_order_acq_rel);
  if (standby_ != nullptr) {
    // Replaced before ever activating: demote the orphan standby directly.
    // Publish the replacement shadow first so a concurrent shadow read
    // lands on the new candidate or the (epoch-protected) old one, never
    // on a torn slot.
    shadow_.store(v, std::memory_order_release);
    snapshot_version* old = std::exchange(standby_, nullptr);
    old->demoted.store(true, std::memory_order_seq_cst);
    release_ownership(old);
  } else {
    shadow_.store(v, std::memory_order_release);
  }
  standby_ = v;
  installs_.inc();
  return v->gen;
}

bool snapshot_handle::switch_active() {
  if (standby_ == nullptr) {
    // Explicit guard: flipping an empty standby would publish a null active
    // and lose the running snapshot.  Mirror the sim router's fixed
    // semantics: no-op plus a counter the caller can alarm on.
    noops_.inc();
    return false;
  }
  snapshot_version* incoming = std::exchange(standby_, nullptr);
  // The candidate is being promoted: stop shadow-comparing against it.  A
  // reader mid-guard may still compare one route against it — comparing the
  // new active with itself yields divergence 0, which is harmless.
  shadow_.store(nullptr, std::memory_order_release);
  // With probation on, the whole flip tail serializes against a concurrent
  // sampler-thread rollback(); without it the mutex is never touched and
  // the historical single-writer path is unchanged.
  std::unique_lock<std::mutex> plock;
  if (probation_enabled_) plock = std::unique_lock<std::mutex>{probation_mu_};
  snapshot_version* outgoing = nullptr;
  {
    // The paper's "3 lines of code" critical section: one pointer exchange.
    spin_guard g{flip_lock_};
    outgoing = active_.exchange(incoming, std::memory_order_seq_cst);
  }
  switches_.inc();
  // L1 invalidation: any worker-cached flow→version binding may now differ
  // from what a fresh shard lookup would pin (new flows bind to `incoming`),
  // so every L1 entry stamped before this bump must fall back to the shard.
  rec_.switch_epoch.fetch_add(1, std::memory_order_seq_cst);
  if (outgoing != nullptr) {
    if (probation_enabled_) {
      // Probation hold: keep the ownership pin and skip the demote — the
      // outgoing version stays re-promotable until the hold closes.  A
      // still-open hold from an earlier switch is superseded: close it as
      // its clean expiry would have.
      if (held_ != nullptr) retire_held_locked();
      held_ = outgoing;
      held_promoted_gen_ = incoming->gen;
      held_age_ = 0;
    } else {
      // Order matters: readers re-check demoted *after* pinning; publishing
      // demoted before the ownership-pin drop is what makes their check
      // conclusive (see pin_active).
      outgoing->demoted.store(true, std::memory_order_seq_cst);
      release_ownership(outgoing);
    }
  }
  return true;
}

bool snapshot_handle::rollback() {
  std::lock_guard<std::mutex> pl{probation_mu_};
  if (held_ == nullptr) {
    rollback_noops_.inc();
    return false;
  }
  snapshot_version* prev = std::exchange(held_, nullptr);
  held_promoted_gen_ = 0;
  held_age_ = 0;
  // A standby installed after the suspect switch was shadow-scored against
  // the regressed active; pause scoring until the next install re-arms it.
  shadow_.store(nullptr, std::memory_order_release);
  // Same critical section as the forward flip.  `prev` still carries its
  // ownership pin and was never demoted, so the reader protocol needs no
  // resurrection: a pin_active() that loads it post-exchange passes the
  // demoted re-check exactly as it would for a fresh promotion.
  snapshot_version* regressed = nullptr;
  {
    spin_guard g{flip_lock_};
    regressed = active_.exchange(prev, std::memory_order_seq_cst);
  }
  rollbacks_.inc();
  rec_.switch_epoch.fetch_add(1, std::memory_order_seq_cst);
  if (regressed != nullptr) {
    regressed->demoted.store(true, std::memory_order_seq_cst);
    release_ownership(regressed);
  }
  return true;
}

bool snapshot_handle::close_probation() {
  std::lock_guard<std::mutex> pl{probation_mu_};
  if (held_ == nullptr) return false;
  retire_held_locked();
  return true;
}

bool snapshot_handle::probation_tick(std::uint64_t max_windows) {
  std::lock_guard<std::mutex> pl{probation_mu_};
  if (held_ == nullptr) return false;
  if (++held_age_ < max_windows) return false;
  retire_held_locked();
  return true;
}

snapshot_handle::probation_status snapshot_handle::probation() const {
  std::lock_guard<std::mutex> pl{probation_mu_};
  probation_status s;
  if (held_ != nullptr) {
    s.open = true;
    s.held_gen = held_->gen;
    s.promoted_gen = held_promoted_gen_;
    s.age_windows = held_age_;
  }
  return s;
}

void snapshot_handle::retire_held_locked() noexcept {
  snapshot_version* v = std::exchange(held_, nullptr);
  held_promoted_gen_ = 0;
  held_age_ = 0;
  v->demoted.store(true, std::memory_order_seq_cst);
  release_ownership(v);
  probation_retires_.inc();
}

snapshot_version* snapshot_handle::pin_active() noexcept {
  for (;;) {
    snapshot_version* v = active_.load(std::memory_order_seq_cst);
    if (v == nullptr) return nullptr;
    v->pins.fetch_add(1, std::memory_order_seq_cst);
    if (!v->demoted.load(std::memory_order_seq_cst)) {
      // seq_cst: demoted was still false after our pin, so the writer's
      // ownership-pin drop (which follows its demoted store) had not
      // happened — the count never reached zero and this pin holds.
      return v;
    }
    // A switch raced past us between the load and the pin; the surrounding
    // epoch guard keeps `v` allocated, so the transient pin/unpin on a
    // possibly-zombie version is memory-safe.
    unpin(v);
  }
}

std::uint64_t snapshot_handle::peek_gen() const noexcept {
  const snapshot_version* v = active_.load(std::memory_order_seq_cst);
  return v ? v->gen : 0;
}

void snapshot_handle::unpin(snapshot_version* v) noexcept {
  if (v->pins.fetch_sub(1, std::memory_order_seq_cst) != 1) return;
  // We dropped the last pin.  Only a demoted version can reach zero (the
  // ownership pin outlives active/standby tenure), and only one dropper
  // may queue it for retirement.
  if (!v->retire_pushed.exchange(true, std::memory_order_seq_cst)) {
    push_zombie(v);
  }
}

void snapshot_handle::release_ownership(snapshot_version* v) noexcept {
  unpin(v);
}

void snapshot_handle::push_zombie(snapshot_version* v) noexcept {
  // Bump-before-push: a worker that still reads the pre-bump switch epoch
  // from inside its guard precedes this store in the seq_cst order, hence
  // also precedes the retire()'s epoch advance — the grace period cannot
  // elapse under that worker, so its L1 pointer stays dereferenceable for
  // the remainder of its guard.  Workers that see the bump reject the entry.
  rec_.switch_epoch.fetch_add(1, std::memory_order_seq_cst);
  if (rec_.recorder != nullptr) {
    // This runs on whatever thread dropped the last pin — worker or writer
    // — which is exactly why the recorder ring tolerates multi-producer
    // emission.  b = the post-bump switch epoch, so a dump shows which L1
    // invalidation the push rode on.
    rec_.recorder->emit(trace::event_type::zombie_push, v->gen,
                        rec_.switch_epoch.load(std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> g{rec_.zombies_mu};
  rec_.zombies.push_back(v);
}

std::size_t snapshot_handle::maintain() {
  std::vector<snapshot_version*> batch;
  {
    std::lock_guard<std::mutex> g{rec_.zombies_mu};
    batch.swap(rec_.zombies);
  }
  for (snapshot_version* v : batch) {
    // Capture the reclaim domain, not `this`: with a shared domain the
    // deferred delete may run from another handle's maintain() after this
    // handle is gone.
    version_reclaim* rec = &rec_;
    epochs_.retire([rec, v]() {
      delete v;
      rec->retired.fetch_add(1, std::memory_order_acq_rel);
      rec->live.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  const std::size_t freed = epochs_.try_reclaim();
  if (freed != 0 && rec_.recorder != nullptr) {
    rec_.recorder->emit(trace::event_type::version_reclaim, freed,
                        rec_.retired.load(std::memory_order_relaxed));
  }
  return freed;
}

void snapshot_handle::register_metrics(metrics::registry& reg,
                                       const std::string& prefix) {
  reg.register_counter(prefix + ".installs", installs_);
  reg.register_counter(prefix + ".switches", switches_);
  reg.register_counter(prefix + ".switch_noops", noops_);
  if (probation_enabled_) {
    // Registered only when probation is in play so the single-model
    // clean-run Prometheus text stays byte-identical.
    reg.register_counter(prefix + ".rollbacks", rollbacks_);
    reg.register_counter(prefix + ".rollback_noops", rollback_noops_);
    reg.register_counter(prefix + ".probation_retires", probation_retires_);
  }
}

}  // namespace lf::rt
