// Real-thread datapath engine (§3.4 exercised by actual std::threads).
//
// Everything else in this repository runs on the single-threaded simulated
// clock, where the snapshot-update concurrency claims are *cost-accounted*
// but never contended.  This engine is the parallel deployment target that
// runs them for real: N worker threads route flows and execute compiled
// integer inference (the same quant/codegen programs the sim installs)
// while one writer installs standby snapshots lock-free and flips the
// active pointer under a nanoseconds-held rt::spinlock.
//
// Multi-model serving: one engine hosts `engine_config::models` logical
// models.  Each gets its own snapshot_handle (its own active/standby pair
// and flip lock), but ALL of them share one epoch domain, one
// version_reclaim (hence ONE switch-epoch counter), one sharded flow cache
// and one per-worker L1 — routing keys both caches by
// core::composite_flow_key(model, flow), so the L1 tag doubles as the model
// tag and a single stale-epoch check still covers every model.  Model 0
// through the keyless legacy API is bit-compatible with the single-model
// engine (composite key 0|flow == flow).
//
// Read-path layering (fastest first):
//   L1    per-worker direct-mapped key→version cache inside worker_handle.
//         No atomics beyond one switch-epoch load; entries are stamped with
//         snapshot_handle::switch_epoch() and rejected after any flip or
//         version retirement (see snapshot_handle.hpp for why the epoch
//         guard then keeps the raw pointer dereferenceable).
//   L2    sharded_flow_cache: seqlock-validated lock-free probe; the shard
//         spinlock is touched only by insert/erase/evict/rehash.
//   miss  pin_active() + insert (pin transfer), under the shard lock.
//
// Every ~64th L1 hit is demoted to an L2 probe so the entry's last-used
// stamp keeps moving and the idle sweep never evicts a hot flow whose
// traffic the L1 absorbed.
//
// Shadow scoring (scalar route path only): with a nonzero
// engine_config::shadow.sample_rate, routes on the deterministic sampled
// slice also run the model's standby snapshot (peek_shadow — dereferenced
// inside the same epoch guard, never pinned) and fold the output divergence
// into a per-model, spinlocked scorer.  try_switch() consults that evidence
// and refuses a flip whose candidate diverges beyond the threshold.  The
// batch path deliberately does not shadow: it exists to measure peak
// routing throughput, and harnesses that want shadow coverage route the
// sampled slice through route().
//
// Composition:
//   epoch_domain        grace periods for the lock-free read path
//   snapshot_handle     active/standby flip + pin-gated, epoch-deferred
//                       version retirement (one per model)
//   version_reclaim     the shared switch epoch + zombie/live accounting
//   sharded_flow_cache  per-flow model pinning (flow consistency invariant)
//
// Time is caller-supplied (seconds on any monotonic clock shared by the
// threads): the stress harness passes wall time, the deterministic tests
// pass scripted instants.  The engine never reads a clock itself, which is
// what keeps the 2-thread interleaving tests reproducible.
//
// What this deliberately does NOT do: it is not wired into the simulated
// experiments.  The sim path (core::inference_router + kernelsim::spinlock)
// is untouched, so every fixed-seed result stays bit-for-bit identical; the
// rt engine is selected explicitly via the deployment registry (app_kind::rt)
// or constructed directly by the harness/tests.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "codegen/snapshot.hpp"
#include "core/model_domain.hpp"
#include "quant/quantized_mlp.hpp"
#include "rt/epoch.hpp"
#include "rt/flight_recorder.hpp"
#include "rt/latency_histogram.hpp"
#include "rt/sharded_flow_cache.hpp"
#include "rt/snapshot_handle.hpp"
#include "util/fixed_point.hpp"
#include "util/metrics.hpp"

namespace lf::rt {

/// Live-telemetry knobs.  Everything defaults OFF: the route path then pays
/// one predictable branch for the histogram and one null check for the
/// recorder (bench_micro pins both), and no ring memory is allocated.
struct telemetry_config {
  /// Record route latency into the per-worker log2 histograms.
  bool latency = false;
  /// Sample 1-in-2^shift routes for timing (0 = every route).  Sampled
  /// routes pay two steady_clock reads; unsampled ones a branch + tick.
  unsigned latency_sample_shift = 0;
  /// Per-ring flight-recorder capacity in events; 0 disables the recorder.
  std::size_t blackbox_events = 0;
  /// Route summaries are sampled 1-in-2^shift per worker; lifecycle events
  /// (switches, verdicts, zombie pushes, reclaims, violations) always record.
  unsigned blackbox_route_shift = 6;
  /// flight_recorder::try_dump rate limit (anomaly capture): minimum
  /// spacing between dumps and a lifetime cap.  0 = unlimited.
  std::uint64_t blackbox_dump_interval_ns = 0;
  std::uint64_t blackbox_max_dumps = 0;
};

struct engine_config {
  /// Flow-cache shards.  0 (the default) derives the count from
  /// `max_workers`: the next power of two >= 2x the worker budget, so the
  /// shard count scales with the deployment instead of being a fixed 8.
  /// Explicit values are rounded up to a power of two.
  std::size_t shards = 0;
  std::size_t shard_capacity = 1024;  ///< initial slots per shard
  double idle_timeout = 30.0;         ///< seconds before idle eviction
  std::size_t evict_slots_per_route = 2;  ///< incremental sweep per miss
  std::size_t max_workers = 64;       ///< epoch reader slots preallocated
  /// Per-worker L1 route-cache slots (rounded up to a power of two);
  /// 0 disables the L1 so benches can measure the L2 path in isolation.
  std::size_t l1_slots = 64;
  /// Logical models served by this engine (clamped to >= 1; must fit the
  /// composite-key model bits).  Model keys are 0..models-1.
  std::size_t models = 1;
  /// Probation / gate-aware rollback: hold the outgoing version for this
  /// many stats-sampler windows after every switch (instead of demoting it
  /// at flip time) so a post-switch regression can auto-rollback.  0 = off:
  /// the historical demote-at-flip behavior, with byte-identical clean-run
  /// artifacts.
  std::size_t probation_windows = 0;
  /// Shadow scoring / switch gating knobs (rate 0 = off, zero overhead).
  core::shadow_config shadow{};
  /// Latency histograms + flight recorder (off by default).
  telemetry_config telemetry{};
};

struct route_result {
  std::uint64_t gen = 0;  ///< generation that served the packet; 0 = none
  bool hit = false;       ///< flow-cache hit (pinned generation reused)
  bool served = false;    ///< inference executed into `out`
};

/// Outcome of one try_switch() consultation.
struct switch_outcome {
  enum class result : std::uint8_t {
    flipped,       ///< active/standby exchanged
    no_standby,    ///< nothing to switch to (counted no-op)
    gate_blocked,  ///< standby present but shadow divergence refused it
  };
  result status = result::no_standby;
  core::shadow_verdict verdict{};  ///< evidence at the moment of the ruling

  bool flipped() const noexcept { return status == result::flipped; }
};

/// Per-worker state: the epoch reader slot, the inference scratch, the
/// direct-mapped L1 route cache, the latency histogram, and the worker's own
/// counters.  Counters and histogram buckets are single-writer relaxed
/// atomics (metrics::atomic_counter semantics): only the owning worker
/// mutates them, so increments stay RMW-free, while the stats sampler and a
/// mid-run publish_stats() read recent untorn values from other threads.
/// Over-aligned so adjacent workers in the engine's deque never false-share
/// a cache line on the hot counters.
class alignas(128) worker_handle {
 public:
  std::uint64_t routes() const noexcept { return routes_.value(); }
  std::uint64_t l1_hits() const noexcept { return l1_hits_.value(); }
  std::uint64_t cache_hits() const noexcept { return hits_.value(); }
  std::uint64_t cache_misses() const noexcept { return misses_.value(); }
  std::uint64_t inferences() const noexcept { return infers_.value(); }
  std::uint64_t shadow_inferences() const noexcept {
    return shadow_infers_.value();
  }
  std::uint64_t fins() const noexcept { return fins_.value(); }
  std::uint64_t batches() const noexcept { return batches_.value(); }
  std::size_t epoch_slot() const noexcept { return slot_; }
  std::size_t l1_capacity() const noexcept { return l1_.size(); }
  /// This worker's route-latency histogram (empty unless
  /// telemetry_config::latency is on).  Readable from any thread.
  const latency_histogram& latency() const noexcept { return lat_; }

  /// Publish this worker's counters under "<prefix>.routes", ".hits", ...
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  friend class datapath_engine;

  /// One L1 binding: serve composite `key` from `ver` for as long as the
  /// global switch epoch still equals `epoch` (0 = never valid; epochs
  /// start at 1).  The key's top bits carry the model, so the slot hash and
  /// the tag match both model and flow with no extra field.
  struct l1_entry {
    netsim::flow_id_t key = 0;
    snapshot_version* ver = nullptr;
    std::uint64_t epoch = 0;
  };

  l1_entry& l1_slot(netsim::flow_id_t key) noexcept {
    // Fibonacci top-bits: one multiply, decorrelated from both the shard
    // index (splitmix top bits) and the in-shard bucket (splitmix low bits).
    return l1_[(key * 0x9e3779b97f4a7c15ULL) >> l1_shift_];
  }

  std::size_t slot_ = 0;
  quant::inference_scratch scratch_;
  std::vector<l1_entry> l1_;  ///< direct-mapped; sized by engine_config
  unsigned l1_shift_ = 63;
  std::uint64_t l1_tick_ = 0;  ///< forces periodic L2 stamp refresh
  std::vector<snapshot_version*> batch_vers_;  ///< route_batch scratch
  std::vector<fp::s64> shadow_out_;  ///< standby-output staging (no alloc/route)
  latency_histogram lat_;            ///< route latency (telemetry.latency)
  std::uint64_t lat_tick_ = 0;       ///< latency sampling counter
  blackbox_ring* bb_ = nullptr;      ///< this worker's flight-recorder ring
  std::uint64_t bb_tick_ = 0;        ///< route-summary sampling counter
  metrics::atomic_counter routes_;
  metrics::atomic_counter l1_hits_;
  metrics::atomic_counter hits_;
  metrics::atomic_counter misses_;
  metrics::atomic_counter infers_;
  metrics::atomic_counter shadow_infers_;
  metrics::atomic_counter fins_;
  metrics::atomic_counter batches_;
};

class datapath_engine {
 public:
  explicit datapath_engine(engine_config cfg = {});

  datapath_engine(const datapath_engine&) = delete;
  datapath_engine& operator=(const datapath_engine&) = delete;

  /// Teardown: requires worker threads joined.  Drains the flow cache and
  /// waits out the final grace period.
  ~datapath_engine();

  // ------------------------------------------------------------- writer --

  /// Install a generated snapshot as one model's standby (no lock; readers
  /// unaffected).  Returns the generation number it will serve under
  /// (generations are per-model).  The keyless form serves model 0.
  std::uint64_t install(codegen::snapshot snap) {
    return install(core::k_default_model, std::move(snap));
  }
  std::uint64_t install(core::model_key model, codegen::snapshot snap);

  /// Flip active/standby (spinlock'd pointer exchange).  False + counter
  /// when no standby is installed.  Bypasses the shadow gate — this is the
  /// unconditioned flip single-model harnesses and tests exercise.
  bool switch_active() { return switch_active(core::k_default_model); }
  bool switch_active(core::model_key model);

  /// Shadow-gated flip: consult the model's divergence evidence first.
  /// With shadowing off (rate 0), no gate, or no incumbent active this
  /// degrades to switch_active().
  switch_outcome try_switch(core::model_key model);

  /// Retire/reclaim demoted versions whose pins and epochs have drained.
  std::size_t maintain();

  /// Roll back `model`'s last switch: re-promote the probation-held
  /// previous version through the flip critical section (switch-epoch bump,
  /// L1 invalidation) and demote the regressed incumbent into the ordinary
  /// retire path.  Resets the model's shadow evidence (it was measured
  /// against the regressed active).  Counted no-op (false) when no hold is
  /// open — probation off, expired, or already rolled back.  Callable from
  /// the sampler thread; this is the rollback policy's entry point.
  bool try_rollback(core::model_key model);

  /// Advance every model's probation clock one stats-sampler window; holds
  /// older than engine_config::probation_windows close cleanly (the
  /// historical demote + retire).  No-op when probation is off.  Returns
  /// the number of holds closed this tick.
  std::size_t probation_tick();

  /// Close every open probation hold (clean retire, as if each had aged
  /// out).  Orderly-shutdown path: call before drain accounting so a hold
  /// opened by the final switch is not mistaken for a version leak.
  std::size_t close_probation();

  /// Probation status of one model (all-zero when no hold is open).
  snapshot_handle::probation_status probation(core::model_key model) const {
    return handles_[model].probation();
  }

  // ------------------------------------------------------------ readers --

  /// Register the calling worker thread.  Thread-safe; the returned
  /// reference is stable for the engine's lifetime.
  worker_handle& register_worker();

  /// Route one packet of `flow` at time `now` and run inference.
  /// `input`/`out` must match the installed program's input/output sizes;
  /// pass empty spans to route without inferring (tests).  The flow is
  /// served by its pinned generation if cached (L1 first, then the sharded
  /// cache), else pins the current active.  Returns gen 0 (and no insert)
  /// when nothing is active.  The keyless form serves model 0.
  route_result route(worker_handle& w, netsim::flow_id_t flow, double now,
                     std::span<const fp::s64> input, std::span<fp::s64> out) {
    return route(w, core::k_default_model, flow, now, input, out);
  }
  route_result route(worker_handle& w, core::model_key model,
                     netsim::flow_id_t flow, double now,
                     std::span<const fp::s64> input, std::span<fp::s64> out);

  /// Batched routing: route `flows.size()` packets of ONE model under ONE
  /// epoch-guard entry/exit and ONE switch-epoch load, then feed runs of
  /// same-version flows through one batched weight pass
  /// (quantized_mlp::infer_batch_into).  `inputs` is row-major
  /// flows.size() x input_size, `outs` row-major flows.size() x output_size;
  /// pass empty spans to route without inferring.  `results` must have at
  /// least flows.size() entries; each is filled exactly as the scalar
  /// route() would.  Returns the number of packets actually served with
  /// inference.  Does NOT shadow-score (see the file comment).
  std::size_t route_batch(worker_handle& w,
                          std::span<const netsim::flow_id_t> flows, double now,
                          std::span<const fp::s64> inputs,
                          std::span<fp::s64> outs,
                          std::span<route_result> results) {
    return route_batch(w, core::k_default_model, flows, now, inputs, outs,
                       results);
  }
  std::size_t route_batch(worker_handle& w, core::model_key model,
                          std::span<const netsim::flow_id_t> flows, double now,
                          std::span<const fp::s64> inputs,
                          std::span<fp::s64> outs,
                          std::span<route_result> results);

  /// TCP FIN: drop the flow's pin and the calling worker's L1 binding.
  /// False if the flow was not cached.  FINs for a flow must come from the
  /// worker that routes it (other workers' L1 entries for the flow stay
  /// valid until the next switch epoch bump — safe, but they would keep
  /// serving the old binding until then).
  bool flow_finished(worker_handle& w, netsim::flow_id_t flow) {
    return flow_finished(w, core::k_default_model, flow);
  }
  bool flow_finished(worker_handle& w, core::model_key model,
                     netsim::flow_id_t flow);

  /// Full idle expiry across all shards (maintenance).
  std::size_t expire_idle(double now);

  // ------------------------------------------------------------- status --

  bool has_active() const noexcept { return handles_[0].has_active(); }
  bool has_active(core::model_key model) const noexcept {
    return handles_[model].has_active();
  }
  /// Writer counters summed across every model's handle.
  std::uint64_t installs() const noexcept;
  std::uint64_t switches() const noexcept;
  std::uint64_t switch_noops() const noexcept;
  /// Switches refused by the shadow-divergence gate.
  std::uint64_t gate_blocks() const noexcept { return gate_blocks_.value(); }
  /// Rollbacks executed / refused-for-no-hold, summed over all models.
  std::uint64_t rollbacks() const noexcept;
  std::uint64_t rollback_noops() const noexcept;
  /// Probation holds that closed cleanly (expiry, supersede, teardown).
  std::uint64_t probation_retires() const noexcept;
  /// Shadow samples dropped for carrying a stale candidate generation
  /// (install replaced the candidate mid-measurement), summed over models.
  std::uint64_t shadow_gen_drops() const;
  /// Version lifecycle accounting (shared reclaim domain, all models).
  std::uint64_t versions_retired() const noexcept {
    return handles_[0].retired();
  }
  std::uint64_t versions_live() const noexcept {
    return handles_[0].live_versions();
  }
  /// Shadow evidence currently accumulated for one model.
  core::shadow_verdict shadow_evidence(core::model_key model) const;
  /// Standby inferences run by the shadow sampler, summed over all workers.
  /// Safe mid-run (single-writer atomic counters).
  std::uint64_t shadow_inferences() const;

  /// One coherent-enough snapshot of every live counter the stats sampler
  /// windows over.  Each field is individually untorn and monotonic; the
  /// set is not transactional (fields may be a few events apart).
  struct live_counters {
    std::uint64_t routes = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inferences = 0;
    std::uint64_t shadow_inferences = 0;
    std::uint64_t fins = 0;
    std::uint64_t batches = 0;
    std::uint64_t cache_size = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t lock_contended = 0;
    std::uint64_t read_retries = 0;
    std::uint64_t read_fallbacks = 0;
    std::uint64_t installs = 0;
    std::uint64_t switches = 0;
    std::uint64_t switch_noops = 0;
    std::uint64_t gate_blocks = 0;
    std::uint64_t versions_live = 0;
    std::uint64_t versions_retired = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t rollback_noops = 0;
  };

  /// Relaxed mid-run snapshot of the engine-wide counters (any thread).
  live_counters counters_now() const;

  /// Merge every worker's latency histogram into `out` (any thread).
  void latency_snapshot_into(latency_snapshot& out) const;

  /// The flight recorder, or nullptr when telemetry.blackbox_events == 0.
  flight_recorder* recorder() noexcept { return recorder_.get(); }

  /// Record a flow-consistency violation into the flight recorder (the
  /// worker's ring AND the control ring, so a dump finds it even if one
  /// ring's history was overwritten).  No-op without a recorder.
  void record_violation(worker_handle& w, netsim::flow_id_t key,
                        std::uint64_t expected_gen,
                        std::uint64_t observed_gen) noexcept;

  /// Mirror one control-plane pipeline stage (train/freeze/quantize/…)
  /// into the flight recorder's control ring, so an anomaly dump shows what
  /// the slow path was doing when the datapath degraded.  Call from the
  /// writer/admin threads (the control ring's fetch_add head makes the emit
  /// safe there).  No-op without a recorder.
  void record_lifecycle(trace::lifecycle_phase phase, core::model_key model,
                        std::uint64_t version,
                        std::uint64_t cost_ns = 0) noexcept;
  std::size_t cached_flows() const { return cache_.stats().size; }
  std::size_t model_count() const noexcept { return handles_.size(); }
  const engine_config& config() const noexcept { return cfg_; }
  epoch_domain& epochs() noexcept { return epochs_; }
  snapshot_handle& snapshots() noexcept { return handles_[0]; }
  snapshot_handle& snapshots(core::model_key model) noexcept {
    return handles_[model];
  }
  sharded_flow_cache& cache() noexcept { return cache_; }

  /// Shard count an engine_config resolves to: explicit values round up to
  /// a power of two, 0 derives next_pow2(2 * max_workers).  Exposed so the
  /// config test and the harness can assert the policy without building an
  /// engine.
  static std::size_t resolved_shards(const engine_config& cfg) noexcept;

  /// Register writer counters plus post-run aggregate gauges under
  /// "<prefix>.*"; call publish_stats() after the workers stop to fill the
  /// aggregates before reading the registry.  Model 0's handle registers
  /// under "<prefix>.snapshots" (single-model names unchanged); additional
  /// models register under "<prefix>.snapshots.m<k>".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Snapshot the sharded-cache totals, version lifecycle, and the derived
  /// lock-pressure rates (lock.per_route, lock.contended_ratio, l1.hit_rate)
  /// into the registered gauges.  Safe to call MID-RUN from any thread:
  /// every input is a single-writer relaxed atomic (worker counters, shard
  /// bookkeeping, spinlock accounting), so the gauges get a recent untorn
  /// view while workers keep routing.  Call again after join for exact
  /// end-of-run numbers.
  void publish_stats();

 private:
  /// Shared resolve step of route()/route_batch(): L1, then the lock-free
  /// shard probe, then the pin+insert miss path.  `key` is the composite
  /// (model, flow) key and `h` the model's handle.  Must be called inside
  /// the worker's epoch guard with `se` loaded inside that same guard.
  snapshot_version* resolve_flow(worker_handle& w, snapshot_handle& h,
                                 netsim::flow_id_t key, double now,
                                 std::uint64_t se, bool& hit);
  /// Run the standby on `input` and fold the divergence into the model's
  /// scorer.  Inside the caller's epoch guard; `active_out` is the active's
  /// freshly computed output for the same input.
  void shadow_score(worker_handle& w, core::model_key model,
                    snapshot_version* active, std::span<const fp::s64> input,
                    std::span<const fp::s64> active_out);

  /// Per-model divergence evidence; the spinlock serializes worker record()
  /// against writer check()/reset().  Over-aligned: adjacent models' locks
  /// must not false-share under concurrent shadow traffic.
  struct alignas(64) model_shadow {
    mutable spinlock mu;
    core::shadow_scorer scorer;
  };

  engine_config cfg_;
  epoch_domain epochs_;      // declared before handles_: destroyed after them
  version_reclaim reclaim_;  // ditto — shared by every handle
  /// Flight recorder; declared before handles_ because reclaim_.recorder
  /// points into it and handle teardown can still push zombies.
  std::unique_ptr<flight_recorder> recorder_;
  std::deque<snapshot_handle> handles_;  // one per model; stable references
  std::deque<model_shadow> shadows_;     // one per model
  sharded_flow_cache cache_;
  std::uint64_t lat_mask_ = 0;       ///< (1 << latency_sample_shift) - 1
  std::uint64_t bb_route_mask_ = 0;  ///< (1 << blackbox_route_shift) - 1
  mutable std::mutex workers_mu_;
  std::deque<worker_handle> workers_;  // deque: stable references
  metrics::atomic_counter gate_blocks_;  ///< written by the writer thread only
  metrics::gauge cache_size_;
  metrics::gauge cache_evictions_;
  metrics::gauge cache_rehashes_;
  metrics::gauge lock_acquisitions_;
  metrics::gauge lock_contended_;
  metrics::gauge lock_per_route_;
  metrics::gauge lock_contended_ratio_;
  metrics::gauge read_retries_;
  metrics::gauge read_fallbacks_;
  metrics::gauge l1_hit_rate_;
  metrics::gauge flip_contended_;
  metrics::gauge live_versions_gauge_;
  metrics::gauge retired_versions_gauge_;
  metrics::gauge shadow_samples_;
  metrics::gauge shadow_mean_divergence_;
  metrics::gauge gate_blocks_gauge_;
};

}  // namespace lf::rt
