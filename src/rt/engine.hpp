// Real-thread datapath engine (§3.4 exercised by actual std::threads).
//
// Everything else in this repository runs on the single-threaded simulated
// clock, where the snapshot-update concurrency claims are *cost-accounted*
// but never contended.  This engine is the parallel deployment target that
// runs them for real: N worker threads route flows and execute compiled
// integer inference (the same quant/codegen programs the sim installs)
// while one writer installs standby snapshots lock-free and flips the
// active pointer under a nanoseconds-held rt::spinlock.
//
// Composition:
//   epoch_domain        grace periods for the lock-free read path
//   snapshot_handle     active/standby flip + pin-gated, epoch-deferred
//                       version retirement
//   sharded_flow_cache  per-flow model pinning (flow consistency invariant)
//
// Time is caller-supplied (seconds on any monotonic clock shared by the
// threads): the stress harness passes wall time, the deterministic tests
// pass scripted instants.  The engine never reads a clock itself, which is
// what keeps the 2-thread interleaving tests reproducible.
//
// What this deliberately does NOT do: it is not wired into the simulated
// experiments.  The sim path (core::inference_router + kernelsim::spinlock)
// is untouched, so every fixed-seed result stays bit-for-bit identical; the
// rt engine is selected explicitly via the deployment registry (app_kind::rt)
// or constructed directly by the harness/tests.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>

#include "codegen/snapshot.hpp"
#include "quant/quantized_mlp.hpp"
#include "rt/epoch.hpp"
#include "rt/sharded_flow_cache.hpp"
#include "rt/snapshot_handle.hpp"
#include "util/fixed_point.hpp"
#include "util/metrics.hpp"

namespace lf::rt {

struct engine_config {
  std::size_t shards = 8;             ///< flow-cache shards (rounded to 2^k)
  std::size_t shard_capacity = 1024;  ///< initial slots per shard
  double idle_timeout = 30.0;         ///< seconds before idle eviction
  std::size_t evict_slots_per_route = 2;  ///< incremental sweep per lookup
  std::size_t max_workers = 64;       ///< epoch reader slots preallocated
};

struct route_result {
  std::uint64_t gen = 0;  ///< generation that served the packet; 0 = none
  bool hit = false;       ///< flow-cache hit (pinned generation reused)
  bool served = false;    ///< inference executed into `out`
};

/// Per-worker state: the epoch reader slot, the inference scratch, and the
/// worker's own counters (single-writer, so plain metrics::counter is safe;
/// read them after the worker stops).  Over-aligned so adjacent workers in
/// the engine's deque never false-share a cache line on the hot counters.
class alignas(128) worker_handle {
 public:
  std::uint64_t routes() const noexcept { return routes_.value(); }
  std::uint64_t cache_hits() const noexcept { return hits_.value(); }
  std::uint64_t cache_misses() const noexcept { return misses_.value(); }
  std::uint64_t inferences() const noexcept { return infers_.value(); }
  std::uint64_t fins() const noexcept { return fins_.value(); }
  std::size_t epoch_slot() const noexcept { return slot_; }

  /// Publish this worker's counters under "<prefix>.routes", ".hits", ...
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  friend class datapath_engine;
  std::size_t slot_ = 0;
  quant::inference_scratch scratch_;
  metrics::counter routes_;
  metrics::counter hits_;
  metrics::counter misses_;
  metrics::counter infers_;
  metrics::counter fins_;
};

class datapath_engine {
 public:
  explicit datapath_engine(engine_config cfg = {});

  datapath_engine(const datapath_engine&) = delete;
  datapath_engine& operator=(const datapath_engine&) = delete;

  /// Teardown: requires worker threads joined.  Drains the flow cache and
  /// waits out the final grace period.
  ~datapath_engine();

  // ------------------------------------------------------------- writer --

  /// Install a generated snapshot as standby (no lock; readers unaffected).
  /// Returns the generation number it will serve under.
  std::uint64_t install(codegen::snapshot snap);

  /// Flip active/standby (spinlock'd pointer exchange).  False + counter
  /// when no standby is installed.
  bool switch_active();

  /// Retire/reclaim demoted versions whose pins and epochs have drained.
  std::size_t maintain();

  // ------------------------------------------------------------ readers --

  /// Register the calling worker thread.  Thread-safe; the returned
  /// reference is stable for the engine's lifetime.
  worker_handle& register_worker();

  /// Route one packet of `flow` at time `now` and run inference.
  /// `input`/`out` must match the installed program's input/output sizes;
  /// pass empty spans to route without inferring (tests).  The flow is
  /// served by its pinned generation if cached, else pins the current
  /// active.  Returns gen 0 (and no insert) when nothing is active.
  route_result route(worker_handle& w, netsim::flow_id_t flow, double now,
                     std::span<const fp::s64> input, std::span<fp::s64> out);

  /// TCP FIN: drop the flow's pin.  False if the flow was not cached.
  bool flow_finished(worker_handle& w, netsim::flow_id_t flow);

  /// Full idle expiry across all shards (maintenance).
  std::size_t expire_idle(double now);

  // ------------------------------------------------------------- status --

  bool has_active() const noexcept { return handle_.has_active(); }
  std::uint64_t installs() const noexcept { return handle_.installs(); }
  std::uint64_t switches() const noexcept { return handle_.switches(); }
  std::uint64_t switch_noops() const noexcept {
    return handle_.switch_noops();
  }
  std::uint64_t versions_retired() const noexcept { return handle_.retired(); }
  std::uint64_t versions_live() const noexcept {
    return handle_.live_versions();
  }
  std::size_t cached_flows() const { return cache_.stats().size; }
  const engine_config& config() const noexcept { return cfg_; }
  epoch_domain& epochs() noexcept { return epochs_; }
  snapshot_handle& snapshots() noexcept { return handle_; }
  sharded_flow_cache& cache() noexcept { return cache_; }

  /// Register writer counters plus post-run aggregate gauges under
  /// "<prefix>.*"; call publish_stats() after the workers stop to fill the
  /// aggregates before reading the registry.
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Snapshot the sharded-cache totals and version lifecycle into the
  /// registered gauges (quiesced read — run after worker threads join).
  void publish_stats();

 private:
  engine_config cfg_;
  epoch_domain epochs_;      // declared before handle_: destroyed after it
  snapshot_handle handle_;
  sharded_flow_cache cache_;
  std::mutex workers_mu_;
  std::deque<worker_handle> workers_;  // deque: stable references
  metrics::gauge cache_size_;
  metrics::gauge cache_evictions_;
  metrics::gauge cache_rehashes_;
  metrics::gauge lock_acquisitions_;
  metrics::gauge lock_contended_;
  metrics::gauge flip_contended_;
  metrics::gauge live_versions_gauge_;
  metrics::gauge retired_versions_gauge_;
};

}  // namespace lf::rt
