#include "rt/anomaly_watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/bench_report.hpp"

namespace lf::rt {

std::string_view to_string(anomaly_kind k) noexcept {
  switch (k) {
    case anomaly_kind::p999_spike: return "p999_spike";
    case anomaly_kind::rps_collapse: return "rps_collapse";
    case anomaly_kind::l1_collapse: return "l1_collapse";
    case anomaly_kind::locks_spike: return "locks_spike";
    case anomaly_kind::shadow_drift: return "shadow_drift";
    case anomaly_kind::retired_leak: return "retired_leak";
  }
  return "unknown";
}

watchdog_config watchdog_config_from_env() {
  watchdog_config cfg;
  if (const char* v = std::getenv("LF_RT_WATCHDOG")) {
    cfg.enabled = std::atoi(v) != 0;
  }
  const auto env_sz = [](const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    const long long n = std::atoll(v);
    return n > 0 ? static_cast<std::size_t>(n) : fallback;
  };
  cfg.warmup_windows = env_sz("LF_RT_WATCHDOG_WARMUP", cfg.warmup_windows);
  cfg.breach_windows = env_sz("LF_RT_WATCHDOG_BREACH", cfg.breach_windows);
  cfg.min_window_routes =
      env_sz("LF_RT_WATCHDOG_MIN_ROUTES", cfg.min_window_routes);
  if (const char* v = std::getenv("LF_RT_WATCHDOG_P999_FACTOR")) {
    const double f = std::atof(v);
    if (f > 1.0) cfg.p999_spike_factor = f;
  }
  return cfg;
}

anomaly_watchdog::anomaly_watchdog(watchdog_config cfg,
                                   datapath_engine* engine)
    : cfg_{std::move(cfg)}, engine_{engine} {}

std::size_t anomaly_watchdog::rearm_windows(anomaly_kind k) const noexcept {
  return k == anomaly_kind::retired_leak
             ? std::max<std::size_t>(1, cfg_.retired_leak_rearm)
             : 1;
}

double anomaly_watchdog::envelope(anomaly_kind k,
                                  const baseline_stats& b) const {
  switch (k) {
    case anomaly_kind::p999_spike:
      return std::max(b.mean * cfg_.p999_spike_factor,
                      b.mean + cfg_.mad_slack * b.mad) +
             cfg_.p999_spike_min_ns;
    case anomaly_kind::rps_collapse:
      return b.mean * cfg_.rps_collapse_frac;
    case anomaly_kind::l1_collapse:
      return b.mean * cfg_.l1_collapse_frac;
    case anomaly_kind::locks_spike:
      return std::max({b.mean * cfg_.locks_spike_factor,
                       b.mean + cfg_.mad_slack * b.mad,
                       cfg_.locks_spike_min});
    case anomaly_kind::shadow_drift:
      return std::max({b.mean * cfg_.shadow_drift_factor,
                       b.mean + cfg_.mad_slack * b.mad,
                       cfg_.shadow_drift_min});
    case anomaly_kind::retired_leak:
      // No MAD term, deliberately.  Mid-storm the live count whipsaws
      // (reclaim wins a window, drops it 3x, loses the next) — if one such
      // dip lands inside the envelope it folds, and a MAD fed a deviation
      // that large inflates the envelope above the storm plateau itself,
      // turning every later storm window "clean".  The live count is
      // low-jitter in steady state, so the pure-factor envelope loses
      // nothing the MAD term was protecting.
      return b.mean * cfg_.retired_leak_factor + cfg_.retired_leak_min;
  }
  return 0.0;
}

void anomaly_watchdog::evaluate(anomaly_kind k, const stats_window& w,
                                double v) {
  rule_state& r = rules_[static_cast<std::size_t>(k)];
  const bool warm = r.base.samples >= cfg_.warmup_windows;
  bool breach = false;
  double thr = 0.0;
  if (warm) {
    thr = envelope(k, r.base);
    switch (k) {
      case anomaly_kind::rps_collapse:
        breach = r.base.mean > 0.0 && v < thr;
        break;
      case anomaly_kind::l1_collapse:
        breach = r.base.mean >= cfg_.l1_min_baseline && v < thr;
        break;
      default:
        breach = v > thr;
    }
  }
  if (!breach) {
    // Clean (or warmup) window.  While a breach run is open the window is
    // only provisionally clean: until rearm_windows(k) consecutive clean
    // windows close the run, it is a suspicious period — the value is not
    // folded (it may be a storm-level "dip" that would teach the baseline
    // the anomaly is normal) and the breach count survives.
    if (r.breach_run > 0 && r.clean_run + 1 < rearm_windows(k)) {
      ++r.clean_run;
      return;
    }
    // Genuinely clean: fold into the baseline and re-arm.
    if (r.base.samples == 0) {
      r.base.mean = v;
      r.base.mad = 0.0;
    } else {
      const double dev = std::abs(v - r.base.mean);
      r.base.mean += cfg_.ewma_alpha * (v - r.base.mean);
      r.base.mad += cfg_.ewma_alpha * (dev - r.base.mad);
    }
    ++r.base.samples;
    r.breach_run = 0;
    r.clean_run = 0;
    r.latched = false;
    return;
  }
  // Breaching window: never folded into the baseline.
  r.clean_run = 0;
  if (r.breach_run == 0) r.first_breach_t = w.t_s;
  ++r.breach_run;
  if (r.breach_run >= cfg_.breach_windows && !r.latched) {
    r.latched = true;  // edge trigger: one incident per excursion
    fire(k, w, v, thr, r);
  }
}

void anomaly_watchdog::observe(const stats_window& w,
                               double max_shadow_divergence) {
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> g{mu_};
  ++windows_seen_;

  // retired_leak is a control-plane rule, watched on every window (an idle
  // datapath can still leak versions).  The watched series is the *live*
  // version count — the cumulative retired counter grows on every healthy
  // switch — and the signal is its level, not its slope: a storm that
  // outruns reclamation does not grow it monotonically (reclaim wins
  // individual windows mid-storm) but holds it an order of magnitude above
  // the steady churn baseline, which the EWMA tracks through slow creep
  // without alerting.
  evaluate(anomaly_kind::retired_leak, w,
           static_cast<double>(w.versions_live));

  // Traffic rules only see windows with enough routes to mean anything:
  // idle phases and the short tail window after the workers join would
  // otherwise read as throughput collapses.
  if (w.routes < cfg_.min_window_routes) return;

  if (w.samples != 0) evaluate(anomaly_kind::p999_spike, w, w.p999_ns);
  evaluate(anomaly_kind::rps_collapse, w, w.routes_per_sec);
  evaluate(anomaly_kind::l1_collapse, w, w.l1_hit_rate);
  evaluate(anomaly_kind::locks_spike, w, w.locks_per_route);
  if (max_shadow_divergence > 0.0) {
    evaluate(anomaly_kind::shadow_drift, w, max_shadow_divergence);
  }
}

bool anomaly_watchdog::classifiable(anomaly_kind k) noexcept {
  // The datapath symptoms a freshly admitted bad candidate produces: slower
  // inference (p999), output drift vs. the next standby (shadow), and a
  // throughput collapse from the heavier program.  The control-plane rules
  // (retired_leak) and the cache-shape rules (l1_collapse, locks_spike) say
  // nothing about the candidate itself.
  return k == anomaly_kind::p999_spike || k == anomaly_kind::shadow_drift ||
         k == anomaly_kind::rps_collapse;
}

void anomaly_watchdog::fire(anomaly_kind k, const stats_window& w,
                            double observed, double threshold,
                            rule_state& r) {
  incident_record inc;
  inc.seq = incidents_.size() + 1;
  inc.t_s = w.t_s;
  inc.kind = k;
  inc.observed = observed;
  inc.baseline = r.base.mean;
  inc.threshold = threshold;
  inc.breach_windows = r.breach_run;
  inc.first_breach_t_s = r.first_breach_t;
  inc.window = w;
  if (engine_ != nullptr) {
    const datapath_engine::live_counters c = engine_->counters_now();
    inc.versions_live = c.versions_live;
    inc.versions_retired = c.versions_retired;
    inc.switches = c.switches;
    inc.installs = c.installs;
    inc.gate_blocks = c.gate_blocks;
    if (flight_recorder* rec = engine_->recorder()) {
      // The trigger goes into the control ring BEFORE the rollback and the
      // dump, so the dump reads causally: anomaly, then the
      // snapshot_rollback the policy issued for it.
      rec->control().emit(
          trace::event_type::anomaly, static_cast<std::uint64_t>(k),
          static_cast<std::uint64_t>(std::max(0.0, observed) * 1e3));
    }
    // Cross-rule correlation: a datapath symptom while a switch's probation
    // hold is still open names the admitted candidate as the suspect.
    if (classifiable(k)) {
      for (std::size_t m = 0; m < engine_->model_count(); ++m) {
        const snapshot_handle::probation_status st =
            engine_->probation(static_cast<core::model_key>(m));
        if (!st.open) continue;
        inc.post_switch = true;
        inc.suspect_model = m;
        inc.suspect_gen = st.promoted_gen;
        post_switch_.inc();
        // The rollback policy: detect -> act, still on the sampler thread.
        if (cfg_.auto_rollback &&
            engine_->try_rollback(static_cast<core::model_key>(m))) {
          inc.rollback_gen = st.held_gen;
          rollbacks_issued_.inc();
        }
        break;  // one suspect per incident; N simultaneous holds are a
                // switch storm, not a classifiable regression
      }
    }
    if (flight_recorder* rec = engine_->recorder()) {
      inc.dump_path = rec->try_dump("anomaly", cfg_.dump_window_ns);
      dumps_gauge_.set(static_cast<double>(rec->dumps()));
      dumps_suppressed_gauge_.set(
          static_cast<double>(rec->dumps_suppressed()));
    }
  }
  incidents_total_.inc();
  per_kind_[static_cast<std::size_t>(k)].inc();
  std::fprintf(stderr,
               "[watchdog] incident %llu: %s at t=%.3fs observed=%.4g "
               "baseline=%.4g threshold=%.4g (%zu windows)%s%s\n",
               static_cast<unsigned long long>(inc.seq),
               std::string{to_string(k)}.c_str(), inc.t_s, inc.observed,
               inc.baseline, inc.threshold, inc.breach_windows,
               inc.dump_path.empty() ? "" : " dump=",
               inc.dump_path.c_str());
  incidents_.push_back(std::move(inc));
  write_incidents_locked();
}

std::vector<incident_record> anomaly_watchdog::incidents() const {
  std::lock_guard<std::mutex> g{mu_};
  return incidents_;
}

std::uint64_t anomaly_watchdog::incident_count() const {
  std::lock_guard<std::mutex> g{mu_};
  return incidents_.size();
}

std::uint64_t anomaly_watchdog::incident_count(anomaly_kind k) const {
  std::lock_guard<std::mutex> g{mu_};
  return per_kind_[static_cast<std::size_t>(k)].value();
}

std::uint64_t anomaly_watchdog::post_switch_incidents() const {
  std::lock_guard<std::mutex> g{mu_};
  return post_switch_.value();
}

std::uint64_t anomaly_watchdog::rollbacks_issued() const {
  std::lock_guard<std::mutex> g{mu_};
  return rollbacks_issued_.value();
}

baseline_stats anomaly_watchdog::baseline(anomaly_kind k) const {
  std::lock_guard<std::mutex> g{mu_};
  return rules_[static_cast<std::size_t>(k)].base;
}

std::size_t anomaly_watchdog::windows_seen() const {
  std::lock_guard<std::mutex> g{mu_};
  return windows_seen_;
}

std::uint64_t anomaly_watchdog::dumps() const noexcept {
  if (engine_ == nullptr || engine_->recorder() == nullptr) return 0;
  return engine_->recorder()->dumps();
}

std::uint64_t anomaly_watchdog::dumps_suppressed() const noexcept {
  if (engine_ == nullptr || engine_->recorder() == nullptr) return 0;
  return engine_->recorder()->dumps_suppressed();
}

void anomaly_watchdog::register_metrics(metrics::registry& reg,
                                        const std::string& prefix) {
  reg.register_counter(prefix + ".incidents", incidents_total_);
  for (std::size_t k = 0; k < anomaly_kind_count; ++k) {
    reg.register_counter(
        prefix + "." +
            std::string{to_string(static_cast<anomaly_kind>(k))},
        per_kind_[k]);
  }
  reg.register_gauge(prefix + ".dumps", dumps_gauge_);
  reg.register_gauge(prefix + ".dumps_suppressed", dumps_suppressed_gauge_);
  if (engine_ != nullptr && engine_->config().probation_windows != 0) {
    // The classifier and the rollback policy only exist while probation
    // holds can open; registering their counters conditionally keeps the
    // probation-less clean-run artifacts' key set byte-identical.
    reg.register_counter(prefix + ".post_switch_regressions", post_switch_);
    reg.register_counter(prefix + ".rollbacks_issued", rollbacks_issued_);
  }
}

namespace {

void append_window_json(std::ostringstream& os, const stats_window& w) {
  using bench::json_number;
  os << "{\"t_s\":" << json_number(w.t_s) << ",\"dt_s\":"
     << json_number(w.dt_s) << ",\"routes\":" << w.routes
     << ",\"routes_per_sec\":" << json_number(w.routes_per_sec)
     << ",\"samples\":" << w.samples << ",\"p50_ns\":"
     << json_number(w.p50_ns) << ",\"p99_ns\":" << json_number(w.p99_ns)
     << ",\"p999_ns\":" << json_number(w.p999_ns) << ",\"l1_hit_rate\":"
     << json_number(w.l1_hit_rate) << ",\"locks_per_route\":"
     << json_number(w.locks_per_route) << ",\"versions_live\":"
     << w.versions_live << ",\"versions_retired\":" << w.versions_retired
     << "}";
}

}  // namespace

std::string anomaly_watchdog::write_incidents_locked() const {
  if (cfg_.incident_label.empty() || incidents_.empty()) return {};
  using bench::json_escape;
  using bench::json_number;
  std::ostringstream os;
  os << "{\n  \"label\": \"" << json_escape(cfg_.incident_label)
     << "\",\n  \"incidents\": [";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const incident_record& inc = incidents_[i];
    os << (i ? "," : "") << "\n    {\"seq\":" << inc.seq << ",\"t_s\":"
       << json_number(inc.t_s) << ",\"rule\":\"" << to_string(inc.kind)
       << "\",\"observed\":" << json_number(inc.observed) << ",\"baseline\":"
       << json_number(inc.baseline) << ",\"threshold\":"
       << json_number(inc.threshold) << ",\"breach_windows\":"
       << inc.breach_windows << ",\"first_breach_t_s\":"
       << json_number(inc.first_breach_t_s) << ",\"dump\":\""
       << json_escape(inc.dump_path) << "\",\"versions_live\":"
       << inc.versions_live << ",\"versions_retired\":"
       << inc.versions_retired << ",\"switches\":" << inc.switches
       << ",\"installs\":" << inc.installs << ",\"gate_blocks\":"
       << inc.gate_blocks;
    if (inc.post_switch) {
      // Appended only for classified incidents, so the non-probation legs'
      // incident files keep their historical shape byte-for-byte.
      os << ",\"class\":\"post_switch_regression\",\"suspect_model\":"
         << inc.suspect_model << ",\"suspect_gen\":" << inc.suspect_gen
         << ",\"rollback_gen\":" << inc.rollback_gen;
    }
    os << ",\"window\":";
    append_window_json(os, inc.window);
    os << "}";
  }
  os << "\n  ]\n}\n";

  const std::string path =
      bench::output_dir() + "/INCIDENT_" + cfg_.incident_label + ".json";
  // Same publication contract as the sampler's text exposition: a reader
  // (CI's python assert, a tail -f) must never see a torn file, so write a
  // sibling temp file and rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f{tmp, std::ios::trunc};
    if (!f) {
      std::fprintf(stderr, "watchdog: cannot open %s for writing\n",
                   tmp.c_str());
      return {};
    }
    f << os.str();
    if (!f) {
      std::fprintf(stderr, "watchdog: write to %s failed\n", tmp.c_str());
      return {};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "watchdog: rename %s -> %s failed\n", tmp.c_str(),
                 path.c_str());
    return {};
  }
  return path;
}

std::string anomaly_watchdog::write_incidents() const {
  std::lock_guard<std::mutex> g{mu_};
  return write_incidents_locked();
}

namespace {

std::string num4(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

report::table_data anomaly_watchdog::incidents_table() const {
  std::lock_guard<std::mutex> g{mu_};
  report::table_data t;
  t.id = "incidents";
  t.title = "Watchdog incidents";
  t.caption =
      "Each row is one edge-triggered anomaly: the rule, the observation "
      "that completed the k-of-M breach run, the rolling baseline it was "
      "judged against, and the black-box dump captured at trigger time.";
  t.columns = {"t (s)",     "rule",     "observed", "baseline",
               "threshold", "windows",  "dump"};
  for (const incident_record& inc : incidents_) {
    std::string rule{to_string(inc.kind)};
    if (inc.post_switch) {
      rule += " [post-switch gen " + std::to_string(inc.suspect_gen);
      if (inc.rollback_gen != 0) {
        rule += " → rolled back to gen " + std::to_string(inc.rollback_gen);
      }
      rule += "]";
    }
    t.rows.push_back({num4(inc.t_s), std::move(rule), num4(inc.observed),
                      num4(inc.baseline), num4(inc.threshold),
                      std::to_string(inc.breach_windows),
                      inc.dump_path.empty() ? "(suppressed)"
                                            : inc.dump_path});
    t.row_classes.push_back("incident");
  }
  return t;
}

std::vector<report::marker> anomaly_watchdog::incident_markers() const {
  std::lock_guard<std::mutex> g{mu_};
  std::vector<report::marker> out;
  out.reserve(incidents_.size());
  for (const incident_record& inc : incidents_) {
    out.push_back({inc.t_s, std::string{to_string(inc.kind)}, true});
  }
  return out;
}

}  // namespace lf::rt
