#include "rt/epoch.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

namespace lf::rt {

epoch_domain::epoch_domain(std::size_t max_readers) : slots_(max_readers) {
  if (max_readers == 0) {
    throw std::invalid_argument{"epoch_domain: max_readers must be > 0"};
  }
}

epoch_domain::~epoch_domain() {
  // Callers must have stopped their readers; run the outstanding frees.
  synchronize();
}

std::size_t epoch_domain::register_reader() {
  const std::size_t slot = readers_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= slots_.size()) {
    readers_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::length_error{"epoch_domain: out of reader slots"};
  }
  return slot;
}

std::uint64_t epoch_domain::min_observed_epoch() const noexcept {
  std::uint64_t min_epoch = k_quiescent;
  const std::size_t n = readers_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void epoch_domain::retire(std::function<void()> free_fn) {
  const std::uint64_t target = advance();
  std::lock_guard<std::mutex> g{retired_mu_};
  retired_.push_back(retired_item{std::move(free_fn), target});
}

std::size_t epoch_domain::try_reclaim() {
  std::vector<retired_item> ready;
  {
    std::lock_guard<std::mutex> g{retired_mu_};
    if (retired_.empty()) return 0;
    const std::uint64_t min_epoch = min_observed_epoch();
    for (std::size_t i = 0; i < retired_.size();) {
      if (min_epoch >= retired_[i].target) {
        ready.push_back(std::move(retired_[i]));
        retired_[i] = std::move(retired_.back());
        retired_.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Run the deleters outside the list lock: a free function may itself
  // retire more garbage (a snapshot version releasing nested state).
  for (retired_item& item : ready) item.free_fn();
  reclaimed_.fetch_add(ready.size(), std::memory_order_acq_rel);
  return ready.size();
}

void epoch_domain::synchronize() {
  const std::uint64_t target = advance();
  while (min_observed_epoch() < target) std::this_thread::yield();
  while (true) {
    {
      std::lock_guard<std::mutex> g{retired_mu_};
      if (retired_.empty()) return;
    }
    if (try_reclaim() == 0) std::this_thread::yield();
  }
}

std::size_t epoch_domain::retired_pending() const {
  std::lock_guard<std::mutex> g{retired_mu_};
  return retired_.size();
}

}  // namespace lf::rt
