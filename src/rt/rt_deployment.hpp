// Deployment-registry entry for the real-thread engine.
//
// The rt engine is a *parallel* deployment target: it never rides along in
// the simulated experiments (whose fixed-seed outputs must stay bit-for-bit
// stable) but is selected explicitly, the same way the cc/sched/lb apps
// resolve their datapath flavours — through apps::deployment_registry under
// app_kind::rt.  The registered builder constructs a datapath_engine from an
// engine_config; the stress harness and tests resolve it by value.
#pragma once

#include <functional>
#include <memory>

#include "apps/common/deployment_registry.hpp"
#include "rt/engine.hpp"

namespace lf::rt {

enum class rt_deployment {
  engine = 0,      ///< "rt-engine": N real worker threads over compiled snapshots
  multimodel = 1,  ///< "rt-multimodel": N models behind one engine, shadow-gated
};

/// Builder type stored (type-erased) in the deployment registry.
using engine_builder =
    std::function<std::unique_ptr<datapath_engine>(const engine_config&)>;

/// Idempotently register the rt deployments.  The registrar also runs at
/// static-init time when lf_rt is linked, but binaries should call this to
/// guarantee the TU is not dropped by the archive linker.
void ensure_rt_deployments_registered();

/// Resolve the registered builder and construct an engine; throws
/// std::runtime_error if the deployment is missing (never after
/// ensure_rt_deployments_registered()).  "rt-multimodel" applies the
/// multi-model profile before delegating to the same datapath_engine: at
/// least two model slots, and shadow scoring on (1/16 sampling with the
/// default gate) unless the caller configured a rate explicitly.
std::unique_ptr<datapath_engine> build_engine(
    const engine_config& cfg, rt_deployment which = rt_deployment::engine);

}  // namespace lf::rt
