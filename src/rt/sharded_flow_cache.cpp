#include "rt/sharded_flow_cache.hpp"

namespace lf::rt {
namespace {

constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// splitmix64 finalizer — same mixer family as core::flow_cache's bucket
/// hash; we take the *top* bits so shard choice and in-shard bucket choice
/// are decorrelated.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

lf::core::model_id to_model_id(snapshot_version* v) noexcept {
  return static_cast<lf::core::model_id>(reinterpret_cast<std::uintptr_t>(v));
}

snapshot_version* from_model_id(lf::core::model_id id) noexcept {
  return reinterpret_cast<snapshot_version*>(static_cast<std::uintptr_t>(id));
}

}  // namespace

sharded_flow_cache::sharded_flow_cache(std::size_t shards,
                                       std::size_t shard_capacity) {
  const std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<shard>(shard_capacity));
  }
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  shard_shift_ = 64 - bits;
}

std::size_t sharded_flow_cache::shard_of(netsim::flow_id_t flow) const noexcept {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(mix(flow) >> shard_shift_);
}

snapshot_version* sharded_flow_cache::lookup(netsim::flow_id_t flow,
                                             double now, double idle_timeout,
                                             std::size_t evict_slots,
                                             snapshot_handle& handle) {
  shard& sh = *shards_[shard_of(flow)];
  const core::flow_cache::evict_fn release = [&handle](core::model_id m) {
    handle.unpin(from_model_id(m));
  };
  spin_guard g{sh.lock};
  if (evict_slots > 0) {
    sh.cache.step_evict(now, idle_timeout, evict_slots, release);
  }
  if (auto* e = sh.cache.find(flow)) {
    e->last_used = now;
    return from_model_id(e->model);
  }
  return nullptr;
}

snapshot_version* sharded_flow_cache::insert(netsim::flow_id_t flow,
                                             snapshot_version* ver, double now,
                                             snapshot_handle& handle) {
  shard& sh = *shards_[shard_of(flow)];
  snapshot_version* resident = nullptr;
  {
    spin_guard g{sh.lock};
    if (auto* e = sh.cache.find(flow)) {
      // Lost an insert race for the same flow: the resident entry wins so
      // the flow stays on one generation.
      e->last_used = now;
      resident = from_model_id(e->model);
    } else {
      sh.cache.insert(flow, to_model_id(ver), now);
    }
  }
  if (resident != nullptr) {
    // Release the pin we brought; the caller's epoch guard keeps `resident`
    // alive even if a racing FIN drops the entry's pin right now.
    handle.unpin(ver);
    return resident;
  }
  return ver;
}

bool sharded_flow_cache::erase(netsim::flow_id_t flow,
                               snapshot_handle& handle) {
  shard& sh = *shards_[shard_of(flow)];
  const core::flow_cache::evict_fn release = [&handle](core::model_id m) {
    handle.unpin(from_model_id(m));
  };
  spin_guard g{sh.lock};
  return sh.cache.erase(flow, release);
}

std::size_t sharded_flow_cache::expire_idle(double now, double idle_timeout,
                                            snapshot_handle& handle) {
  const core::flow_cache::evict_fn release = [&handle](core::model_id m) {
    handle.unpin(from_model_id(m));
  };
  std::size_t evicted = 0;
  for (auto& sh : shards_) {
    spin_guard g{sh->lock};
    evicted += sh->cache.expire_idle(now, idle_timeout, release);
  }
  return evicted;
}

std::size_t sharded_flow_cache::clear(snapshot_handle& handle) {
  const core::flow_cache::evict_fn release = [&handle](core::model_id m) {
    handle.unpin(from_model_id(m));
  };
  std::size_t dropped = 0;
  for (auto& sh : shards_) {
    spin_guard g{sh->lock};
    dropped += sh->cache.size();
    sh->cache.clear(release);
  }
  return dropped;
}

sharded_flow_cache::totals sharded_flow_cache::stats() const {
  totals t;
  for (const auto& sh : shards_) {
    t.size += sh->cache.size();
    t.capacity += sh->cache.capacity();
    t.evictions += sh->cache.evictions();
    t.rehashes += sh->cache.rehashes();
    t.tombstone_scrubs += sh->cache.tombstone_scrubs();
    t.lock_acquisitions += sh->lock.acquisitions();
    t.lock_contended += sh->lock.contended_acquisitions();
  }
  return t;
}

}  // namespace lf::rt
