#include "rt/sharded_flow_cache.hpp"

#include <bit>

namespace lf::rt {
namespace {

/// splitmix64 finalizer — same mixer family as core::flow_cache's bucket
/// hash.  The shard index takes the *top* bits and the in-shard bucket the
/// low bits, so the two choices stay decorrelated.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t stamp_bits(double now) noexcept {
  return std::bit_cast<std::uint64_t>(now);
}

inline double stamp_seconds(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

/// Seq-validation attempts before a lookup falls back to the shard lock.
/// Conflicts require a concurrent erase/evict/rehash on the same shard, so
/// even 2 attempts almost always suffice; the fallback only bounds the tail.
constexpr int k_read_attempts = 8;

}  // namespace

sharded_flow_cache::sharded_flow_cache(std::size_t shards,
                                       std::size_t shard_capacity,
                                       epoch_domain& epochs)
    : epochs_{epochs} {
  const std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<shard>(shard_capacity));
  }
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  shard_shift_ = 64 - bits;
}

sharded_flow_cache::~sharded_flow_cache() = default;

std::size_t sharded_flow_cache::shard_of(netsim::flow_id_t flow) const noexcept {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(mix(flow) >> shard_shift_);
}

std::size_t sharded_flow_cache::bucket_of(const table& t,
                                          netsim::flow_id_t flow) noexcept {
  return static_cast<std::size_t>(mix(flow)) & t.mask;
}

snapshot_version* sharded_flow_cache::lookup(netsim::flow_id_t flow,
                                             double now) noexcept {
  shard& sh = *shards_[shard_of(flow)];
  for (int attempt = 0; attempt < k_read_attempts; ++attempt) {
    const std::uint64_t s0 = sh.seq.load(std::memory_order_acquire);
    if ((s0 & 1) != 0) {
      // A writer is mid-mutation; its critical section is a handful of
      // stores, so retrying immediately is cheaper than blocking.
      sh.read_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    table* const t = sh.tbl.load(std::memory_order_acquire);
    slot* found = nullptr;
    std::size_t idx = bucket_of(*t, flow);
    for (std::size_t n = 0; n <= t->mask; ++n, idx = (idx + 1) & t->mask) {
      slot& s = t->slots[idx];
      const std::uint8_t st = s.state.load(std::memory_order_acquire);
      if (st == k_empty) break;
      if (st == k_occupied &&
          s.flow.load(std::memory_order_relaxed) == flow) {
        found = &s;
        break;
      }
    }
    snapshot_version* const v =
        found != nullptr ? found->ver.load(std::memory_order_relaxed)
                         : nullptr;
    // Canonical seqlock validation (Boehm): the acquire fence keeps every
    // probe load above the re-read, and upgrades them to acquire loads for
    // everything that follows — including the caller's dereference of `v`.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (sh.seq.load(std::memory_order_relaxed) != s0) {
      // An erase/evict/rehash overlapped the probe: the (flow, ver) pair
      // may be torn, so nothing read this round can be trusted.
      sh.read_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (found == nullptr || v == nullptr) {
      // Validated miss.  (`v == nullptr` with a matching slot means the
      // probe raced a concurrent insert's field stores; treating it as a
      // miss is benign — the insert path's resident-wins check resolves
      // the duplicate.)
      return nullptr;
    }
    // Hit: touch the timestamp so the idle sweep sees the flow as hot.  A
    // plain release-free store — the stamp is advisory, read only by the
    // sweep's eviction heuristic.
    found->stamp.store(stamp_bits(now), std::memory_order_relaxed);
    return v;
  }
  // Persistent seq conflicts (eviction storm on this shard): take the lock
  // for an authoritative probe so the lookup cannot livelock.
  sh.read_fallbacks.fetch_add(1, std::memory_order_relaxed);
  spin_guard g{sh.lock};
  table& t = *sh.tbl.load(std::memory_order_relaxed);
  slot* reusable = nullptr;
  if (slot* s = probe_for_write(t, flow, &reusable)) {
    s->stamp.store(stamp_bits(now), std::memory_order_relaxed);
    return s->ver.load(std::memory_order_relaxed);
  }
  return nullptr;
}

sharded_flow_cache::slot* sharded_flow_cache::probe_for_write(
    table& t, netsim::flow_id_t flow, slot** reusable) noexcept {
  std::size_t idx = bucket_of(t, flow);
  for (std::size_t n = 0; n <= t.mask; ++n, idx = (idx + 1) & t.mask) {
    slot& s = t.slots[idx];
    const std::uint8_t st = s.state.load(std::memory_order_relaxed);
    if (st == k_empty) {
      if (*reusable == nullptr) *reusable = &s;
      return nullptr;
    }
    if (st == k_tombstone) {
      if (*reusable == nullptr) *reusable = &s;
      continue;
    }
    if (s.flow.load(std::memory_order_relaxed) == flow) return &s;
  }
  return nullptr;
}

snapshot_version* sharded_flow_cache::insert(netsim::flow_id_t flow,
                                             snapshot_version* ver, double now,
                                             double idle_timeout,
                                             std::size_t evict_slots,
                                             snapshot_handle& handle) {
  shard& sh = *shards_[shard_of(flow)];
  snapshot_version* resident = nullptr;
  {
    spin_guard g{sh.lock};
    // The incremental idle sweep rides the miss path now that lookups are
    // lock-free: churn (misses/FINs/inserts) is what creates idle entries,
    // so it is also what pays for draining them.
    if (evict_slots > 0) {
      step_evict(sh, now, idle_timeout, evict_slots, handle);
    }
    table* t = sh.tbl.load(std::memory_order_relaxed);
    slot* reusable = nullptr;
    if (slot* s = probe_for_write(*t, flow, &reusable)) {
      // Lost an insert race for the same flow: the resident entry wins so
      // the flow stays on one generation.
      s->stamp.store(stamp_bits(now), std::memory_order_relaxed);
      resident = s->ver.load(std::memory_order_relaxed);
    } else {
      const std::size_t cap = t->mask + 1;
      const std::size_t occ = sh.occupied.load(std::memory_order_relaxed);
      if ((occ + sh.tombstones + 1) * 4 > cap * 3) {
        // Grow on genuine pressure, scrub in place when tombstones alone
        // crossed the load factor.
        rehash(sh, occ + 1 > cap / 2 ? cap * 2 : cap);
        t = sh.tbl.load(std::memory_order_relaxed);
        reusable = nullptr;
        (void)probe_for_write(*t, flow, &reusable);
      }
      slot& dst = *reusable;
      const bool reusing_tombstone =
          dst.state.load(std::memory_order_relaxed) == k_tombstone;
      // Publication order: fields first, then the state byte with release.
      // A concurrent lock-free probe either skips the slot (stale state) or
      // sees fully initialized fields through its acquire load of `state`;
      // no seq bump is needed because no (flow → ver) binding visible to a
      // reader is ever changed by a plain insert.
      dst.flow.store(flow, std::memory_order_relaxed);
      dst.ver.store(ver, std::memory_order_relaxed);
      dst.stamp.store(stamp_bits(now), std::memory_order_relaxed);
      dst.state.store(k_occupied, std::memory_order_release);
      shard::bump(sh.occupied);
      if (reusing_tombstone) --sh.tombstones;
    }
  }
  if (resident != nullptr) {
    // Release the pin we brought; the caller's epoch guard keeps `resident`
    // alive even if a racing FIN drops the entry's pin right now.
    handle.unpin(ver);
    return resident;
  }
  return ver;
}

void sharded_flow_cache::evict_slot(shard& sh, slot& s,
                                    snapshot_handle& handle) {
  snapshot_version* const v = s.ver.load(std::memory_order_relaxed);
  // The seq bump brackets the re-binding store: any lock-free probe that
  // overlapped it re-runs and sees the tombstone.
  sh.seq_write_begin();
  s.state.store(k_tombstone, std::memory_order_relaxed);
  sh.seq_write_end();
  shard::bump_sub(sh.occupied);
  ++sh.tombstones;
  shard::bump(sh.evictions);
  handle.unpin(v);
}

void sharded_flow_cache::rehash(shard& sh, std::size_t new_capacity) {
  table* const old = sh.tbl.load(std::memory_order_relaxed);
  auto* fresh = new table{round_up_pow2(new_capacity)};
  for (std::size_t i = 0; i <= old->mask; ++i) {
    slot& s = old->slots[i];
    if (s.state.load(std::memory_order_relaxed) != k_occupied) continue;
    const netsim::flow_id_t flow = s.flow.load(std::memory_order_relaxed);
    std::size_t idx = bucket_of(*fresh, flow);
    while (fresh->slots[idx].state.load(std::memory_order_relaxed) !=
           k_empty) {
      idx = (idx + 1) & fresh->mask;
    }
    slot& d = fresh->slots[idx];
    d.flow.store(flow, std::memory_order_relaxed);
    d.ver.store(s.ver.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    d.stamp.store(s.stamp.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    d.state.store(k_occupied, std::memory_order_relaxed);
  }
  // Scale the sweep cursor into the new layout instead of restarting at 0,
  // mirroring core::flow_cache's fix: no head double-visit, no tail
  // starvation.
  sh.sweep_cursor = old->mask == 0
                        ? 0
                        : (sh.sweep_cursor * (fresh->mask + 1)) /
                              (old->mask + 1) & fresh->mask;
  sh.tombstones = 0;
  shard::bump(sh.rehashes);
  sh.seq_write_begin();
  sh.tbl.store(fresh, std::memory_order_release);
  sh.seq_write_end();
  // Readers inside an epoch guard may still be probing the old array; free
  // it only after a grace period proves they are gone.
  epochs_.retire([old]() { delete old; });
}

std::size_t sharded_flow_cache::step_evict(shard& sh, double now,
                                           double idle_timeout,
                                           std::size_t slots,
                                           snapshot_handle& handle) {
  table& t = *sh.tbl.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (std::size_t n = 0; n < slots; ++n) {
    slot& s = t.slots[sh.sweep_cursor];
    sh.sweep_cursor = (sh.sweep_cursor + 1) & t.mask;
    if (s.state.load(std::memory_order_relaxed) != k_occupied) continue;
    const double last =
        stamp_seconds(s.stamp.load(std::memory_order_relaxed));
    if (now - last > idle_timeout) {
      evict_slot(sh, s, handle);
      ++evicted;
    }
  }
  return evicted;
}

bool sharded_flow_cache::erase(netsim::flow_id_t flow,
                               snapshot_handle& handle) {
  shard& sh = *shards_[shard_of(flow)];
  spin_guard g{sh.lock};
  table& t = *sh.tbl.load(std::memory_order_relaxed);
  slot* reusable = nullptr;
  slot* const s = probe_for_write(t, flow, &reusable);
  if (s == nullptr) return false;
  evict_slot(sh, *s, handle);
  return true;
}

std::size_t sharded_flow_cache::expire_idle(double now, double idle_timeout,
                                            snapshot_handle& handle) {
  std::size_t evicted = 0;
  for (auto& shp : shards_) {
    shard& sh = *shp;
    spin_guard g{sh.lock};
    table& t = *sh.tbl.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i <= t.mask; ++i) {
      slot& s = t.slots[i];
      if (s.state.load(std::memory_order_relaxed) != k_occupied) continue;
      const double last =
          stamp_seconds(s.stamp.load(std::memory_order_relaxed));
      if (now - last > idle_timeout) {
        evict_slot(sh, s, handle);
        ++evicted;
      }
    }
  }
  return evicted;
}

std::size_t sharded_flow_cache::clear(snapshot_handle& handle) {
  std::size_t dropped = 0;
  for (auto& shp : shards_) {
    shard& sh = *shp;
    spin_guard g{sh.lock};
    table& t = *sh.tbl.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i <= t.mask; ++i) {
      slot& s = t.slots[i];
      const std::uint8_t st = s.state.load(std::memory_order_relaxed);
      if (st == k_occupied) {
        ++dropped;
        evict_slot(sh, s, handle);
      }
      if (st != k_empty) {
        sh.seq_write_begin();
        s.state.store(k_empty, std::memory_order_relaxed);
        sh.seq_write_end();
      }
    }
    sh.tombstones = 0;
    sh.sweep_cursor = 0;
  }
  return dropped;
}

sharded_flow_cache::totals sharded_flow_cache::stats() const {
  totals t;
  for (const auto& shp : shards_) {
    const shard& sh = *shp;
    t.size += sh.occupied.load(std::memory_order_relaxed);
    t.capacity += sh.tbl.load(std::memory_order_relaxed)->mask + 1;
    t.evictions += sh.evictions.load(std::memory_order_relaxed);
    t.rehashes += sh.rehashes.load(std::memory_order_relaxed);
    t.lock_acquisitions += sh.lock.acquisitions();
    t.lock_contended += sh.lock.contended_acquisitions();
    t.read_retries += sh.read_retries.load(std::memory_order_relaxed);
    t.read_fallbacks += sh.read_fallbacks.load(std::memory_order_relaxed);
  }
  return t;
}

}  // namespace lf::rt
