#include "rt/stats_sampler.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "rt/anomaly_watchdog.hpp"

namespace lf::rt {

stats_sampler_config stats_config_from_env() {
  stats_sampler_config cfg;
  cfg.interval_ms = 0.0;  // env default: off until asked for
  if (const char* v = std::getenv("LF_RT_STATS_INTERVAL_MS")) {
    cfg.interval_ms = std::atof(v);
  }
  if (const char* v = std::getenv("LF_RT_STATS_OUT")) {
    cfg.text_out = v;
  }
  if (const char* v = std::getenv("LF_RT_STATS_FIFO")) {
    cfg.fifo_out = v;
  }
  return cfg;
}

stats_sampler::stats_sampler(datapath_engine& engine, stats_sampler_config cfg)
    : engine_{engine}, cfg_{std::move(cfg)} {
  ts_shadow_divergence_.reserve(engine_.model_count());
  for (std::size_t m = 0; m < engine_.model_count(); ++m) {
    ts_shadow_divergence_.push_back(std::make_unique<time_series>(
        "rt.ts.shadow_divergence.m" + std::to_string(m)));
  }
  start_ns_ = wall_ns();
  prev_ns_ = start_ns_;
  prev_counters_ = engine_.counters_now();
  engine_.latency_snapshot_into(prev_latency_);
}

stats_sampler::~stats_sampler() { stop(); }

void stats_sampler::start() {
  if (!enabled() || started_) return;
  started_ = true;
  stopping_ = false;
  final_folded_ = false;
  thread_ = std::thread{[this] { run(); }};
}

void stats_sampler::stop() {
  if (started_) {
    {
      std::lock_guard<std::mutex> g{wake_mu_};
      stopping_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
    started_ = false;
  }
  // Final fold so the tail of the run (joined-but-unsampled work) still
  // lands in a window and the on-disk text dump reflects end-of-run state.
  // Exactly once: tick() stamps the window with the measured (shorter)
  // tail duration, so a second stop — the destructor after an explicit
  // stop() — must not fold again or it would append a near-zero-dt window
  // and skew the tail routes/sec.
  if (final_folded_) return;
  final_folded_ = true;
  tick();
  write_text();
  write_fifo();
}

void stats_sampler::run() {
  const auto interval =
      std::chrono::duration<double, std::milli>{cfg_.interval_ms};
  std::unique_lock<std::mutex> lk{wake_mu_};
  while (!stopping_) {
    if (wake_cv_.wait_for(lk, interval, [this] { return stopping_; })) break;
    lk.unlock();
    tick();
    write_text();
    write_fifo();
    lk.lock();
  }
}

void stats_sampler::tick() {
  std::lock_guard<std::mutex> g{fold_mu_};
  const std::uint64_t now_ns = wall_ns();
  const datapath_engine::live_counters c = engine_.counters_now();
  latency_snapshot lat;
  engine_.latency_snapshot_into(lat);
  const latency_snapshot delta = lat.delta_since(prev_latency_);

  stats_window w;
  w.t_s = static_cast<double>(now_ns - start_ns_) * 1e-9;
  w.dt_s = static_cast<double>(now_ns - prev_ns_) * 1e-9;
  w.routes = c.routes - prev_counters_.routes;
  w.routes_per_sec =
      w.dt_s > 0.0 ? static_cast<double>(w.routes) / w.dt_s : 0.0;
  w.samples = delta.total();
  if (w.samples != 0) {
    w.p50_ns = delta.quantile(0.50);
    w.p99_ns = delta.quantile(0.99);
    w.p999_ns = delta.quantile(0.999);
  }
  const std::uint64_t d_l1 = c.l1_hits - prev_counters_.l1_hits;
  const std::uint64_t d_locks =
      c.lock_acquisitions - prev_counters_.lock_acquisitions;
  w.l1_hit_rate = w.routes == 0 ? 0.0
                                : static_cast<double>(d_l1) /
                                      static_cast<double>(w.routes);
  w.locks_per_route = w.routes == 0 ? 0.0
                                    : static_cast<double>(d_locks) /
                                          static_cast<double>(w.routes);
  w.versions_live = c.versions_live;
  w.versions_retired = c.versions_retired;

  windows_.push_back(w);
  if (windows_.size() > cfg_.max_windows) {
    windows_.erase(windows_.begin(),
                   windows_.begin() +
                       static_cast<std::ptrdiff_t>(windows_.size() -
                                                   cfg_.max_windows));
  }
  ts_routes_per_sec_.record(w.t_s, w.routes_per_sec);
  if (w.samples != 0) {
    // Empty windows record nothing: a gap in the percentile series means
    // "no timed routes here", not "latency was zero".
    ts_p50_.record(w.t_s, w.p50_ns);
    ts_p99_.record(w.t_s, w.p99_ns);
    ts_p999_.record(w.t_s, w.p999_ns);
  }
  if (w.routes != 0) {
    ts_l1_hit_rate_.record(w.t_s, w.l1_hit_rate);
    ts_locks_per_route_.record(w.t_s, w.locks_per_route);
  }
  ts_versions_live_.record(w.t_s, static_cast<double>(w.versions_live));
  ts_versions_retired_.record(w.t_s, static_cast<double>(w.versions_retired));
  double max_shadow_divergence = 0.0;
  for (std::size_t m = 0; m < ts_shadow_divergence_.size(); ++m) {
    const core::shadow_verdict v =
        engine_.shadow_evidence(static_cast<core::model_key>(m));
    if (v.samples != 0) {
      ts_shadow_divergence_[m]->record(w.t_s, v.mean_divergence);
      max_shadow_divergence =
          std::max(max_shadow_divergence, v.mean_divergence);
    }
  }
  // Anomaly detection rides the fold: the sampler thread is the watchdog's
  // evaluation thread, so detection costs the datapath nothing.  A
  // post-switch regression may roll the last switch back right here (the
  // watchdog's rollback policy), before the probation clock below ages the
  // hold toward its clean close.
  if (watchdog_ != nullptr) watchdog_->observe(w, max_shadow_divergence);
  // Probation clock: open holds age one sampler window per fold and close
  // cleanly at engine_config::probation_windows.  No-op when probation is
  // off, which keeps the probation-less tick byte-identical.
  engine_.probation_tick();
  prev_ns_ = now_ns;
  prev_counters_ = c;
  prev_latency_ = lat;

  // publish_stats() is mid-run-safe (single-writer relaxed inputs), so the
  // registered gauges stay fresh for anything dumping the registry mid-run.
  engine_.publish_stats();
}

std::vector<stats_window> stats_sampler::windows() const {
  std::lock_guard<std::mutex> g{fold_mu_};
  return windows_;
}

void stats_sampler::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  reg.register_series(prefix + ".ts.routes_per_sec", ts_routes_per_sec_);
  reg.register_series(prefix + ".ts.p50_ns", ts_p50_);
  reg.register_series(prefix + ".ts.p99_ns", ts_p99_);
  reg.register_series(prefix + ".ts.p999_ns", ts_p999_);
  reg.register_series(prefix + ".ts.l1_hit_rate", ts_l1_hit_rate_);
  reg.register_series(prefix + ".ts.locks_per_route", ts_locks_per_route_);
  reg.register_series(prefix + ".ts.versions_live", ts_versions_live_);
  reg.register_series(prefix + ".ts.versions_retired", ts_versions_retired_);
  for (std::size_t m = 0; m < ts_shadow_divergence_.size(); ++m) {
    reg.register_series(prefix + ".ts.shadow_divergence.m" + std::to_string(m),
                        *ts_shadow_divergence_[m]);
  }
}

std::string stats_sampler::render_text() const {
  const datapath_engine::live_counters c = engine_.counters_now();
  latency_snapshot lat;
  engine_.latency_snapshot_into(lat);

  std::ostringstream os;
  const auto counter = [&os](const char* name, std::uint64_t v) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  };
  const auto gauge = [&os](const char* name, std::uint64_t v) {
    os << "# TYPE " << name << " gauge\n" << name << " " << v << "\n";
  };
  counter("lf_rt_routes_total", c.routes);
  counter("lf_rt_l1_hits_total", c.l1_hits);
  counter("lf_rt_l2_hits_total", c.l2_hits);
  counter("lf_rt_misses_total", c.misses);
  counter("lf_rt_inferences_total", c.inferences);
  counter("lf_rt_shadow_inferences_total", c.shadow_inferences);
  counter("lf_rt_fins_total", c.fins);
  counter("lf_rt_batches_total", c.batches);
  counter("lf_rt_cache_evictions_total", c.cache_evictions);
  counter("lf_rt_lock_acquisitions_total", c.lock_acquisitions);
  counter("lf_rt_lock_contended_total", c.lock_contended);
  counter("lf_rt_read_retries_total", c.read_retries);
  counter("lf_rt_read_fallbacks_total", c.read_fallbacks);
  counter("lf_rt_installs_total", c.installs);
  counter("lf_rt_switches_total", c.switches);
  counter("lf_rt_switch_noops_total", c.switch_noops);
  counter("lf_rt_gate_blocks_total", c.gate_blocks);
  if (engine_.config().probation_windows != 0) {
    // Only rendered for probation deployments: the clean-run exposition
    // must stay byte-identical when the feature is off.
    counter("lf_rt_rollbacks_total", c.rollbacks);
    counter("lf_rt_rollback_noops_total", c.rollback_noops);
  }
  gauge("lf_rt_cache_size", c.cache_size);
  gauge("lf_rt_versions_live", c.versions_live);
  gauge("lf_rt_versions_retired", c.versions_retired);
  if (watchdog_ != nullptr) {
    counter("lf_rt_watchdog_incidents_total", watchdog_->incident_count());
    counter("lf_rt_watchdog_dumps_total", watchdog_->dumps());
    counter("lf_rt_watchdog_dumps_suppressed_total",
            watchdog_->dumps_suppressed());
  }

  // Cumulative-`le` histogram in nanoseconds; _sum is approximated from
  // bucket midpoints (the recorder keeps counts, not exact sums).
  os << "# TYPE lf_rt_route_latency_ns histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < latency_snapshot::k_buckets; ++i) {
    cum += lat.counts[i];
    if (lat.counts[i] == 0 && i + 1 != latency_snapshot::k_buckets) continue;
    const std::uint64_t hi = latency_histogram::bucket_floor(i) +
                             latency_histogram::bucket_width(i);
    os << "lf_rt_route_latency_ns_bucket{le=\"";
    if (i + 1 == latency_snapshot::k_buckets) {
      os << "+Inf";
    } else {
      os << hi;
    }
    os << "\"} " << cum << "\n";
  }
  os << "lf_rt_route_latency_ns_sum "
     << lat.approx_mean_ns() * static_cast<double>(lat.total()) << "\n";
  os << "lf_rt_route_latency_ns_count " << lat.total() << "\n";
  return os.str();
}

bool stats_sampler::write_text() const {
  if (cfg_.text_out.empty()) return false;
  const std::string body = render_text();
  // Publish atomically: a scraper racing the tick must parse either the
  // previous exposition or this one, never a truncated half-write.  The
  // temp file is a sibling so the rename stays within one filesystem.
  const std::string tmp = cfg_.text_out + ".tmp";
  {
    std::ofstream os{tmp, std::ios::trunc};
    if (!os) {
      std::fprintf(stderr, "stats_sampler: cannot open %s for writing\n",
                   tmp.c_str());
      return false;
    }
    os << body;
    if (!os) {
      std::fprintf(stderr, "stats_sampler: write to %s failed\n",
                   tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), cfg_.text_out.c_str()) != 0) {
    std::fprintf(stderr, "stats_sampler: rename %s -> %s failed\n",
                 tmp.c_str(), cfg_.text_out.c_str());
    return false;
  }
  return true;
}

bool stats_sampler::write_fifo() const {
#if defined(__unix__) || defined(__APPLE__)
  if (cfg_.fifo_out.empty()) return false;
  if (!fifo_ready_) {
    if (mkfifo(cfg_.fifo_out.c_str(), 0644) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "stats_sampler: mkfifo %s failed (errno %d)\n",
                   cfg_.fifo_out.c_str(), errno);
      return false;
    }
    fifo_ready_ = true;
  }
  // O_NONBLOCK open fails with ENXIO while nobody holds the read end —
  // exactly the "pay nothing when nobody looks" contract.  Opened per tick
  // so a reader can attach and detach at will mid-soak.
  const int fd = ::open(cfg_.fifo_out.c_str(), O_WRONLY | O_NONBLOCK);
  if (fd < 0) return false;
  const std::string body = render_text();
  std::size_t off = 0;
  bool ok = true;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) {
      // EAGAIN (reader not draining) or a vanished reader: drop the rest of
      // this tick's exposition rather than block the sampler thread.
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return ok;
#else
  return false;
#endif
}

}  // namespace lf::rt
