#include "kernelsim/cpu.hpp"

#include <stdexcept>

namespace lf::kernelsim {

std::string_view to_string(task_category c) noexcept {
  switch (c) {
    case task_category::datapath:
      return "datapath";
    case task_category::softirq:
      return "softirq";
    case task_category::user_nn:
      return "user_nn";
    case task_category::user_train:
      return "user_train";
    case task_category::kernel_train:
      return "kernel_train";
    case task_category::other:
      return "other";
  }
  return "?";
}

cpu_model::cpu_model(sim::simulation& sim, double capacity)
    : sim_{sim}, capacity_{capacity} {
  if (capacity <= 0.0) throw std::invalid_argument{"cpu capacity must be > 0"};
}

void cpu_model::submit(task_category category, double cost,
                       std::function<void()> done) {
  if (cost < 0.0) throw std::invalid_argument{"negative work cost"};
  queue_.push_back(work_item{category, cost, std::move(done)});
  if (!busy_) start_next();
}

void cpu_model::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  work_item item = std::move(queue_.front());
  queue_.pop_front();
  busy_seconds_[static_cast<std::size_t>(item.category)].add(item.cost);
  const double duration = item.cost / capacity_;
  const auto category = static_cast<std::uint64_t>(item.category);
  trace_.emit(sim_.now(), trace::event_type::task_begin, category,
              static_cast<std::uint64_t>(item.cost * 1e9));
  sim_.schedule(duration, [this, category, done = std::move(item.done)]() {
    trace_.emit(sim_.now(), trace::event_type::task_end, category);
    if (done) done();
    start_next();
  });
}

double cpu_model::busy_seconds(task_category category) const noexcept {
  return busy_seconds_[static_cast<std::size_t>(category)].value();
}

double cpu_model::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const auto& s : busy_seconds_) total += s.value();
  return total;
}

double cpu_model::utilization_since(double t0, double busy_at_t0) const noexcept {
  const double window = sim_.now() - t0;
  if (window <= 0.0) return 0.0;
  return (total_busy_seconds() - busy_at_t0) / (capacity_ * window);
}

double cpu_model::backlog_clear_time() const noexcept {
  double pending = 0.0;
  for (const auto& item : queue_) pending += item.cost;
  return sim_.now() + pending / capacity_;
}

void cpu_model::reset_accounting() noexcept {
  for (auto& s : busy_seconds_) s.reset();
}

void cpu_model::register_metrics(metrics::registry& reg,
                                 const std::string& prefix) {
  for (std::size_t c = 0; c < task_category_count; ++c) {
    reg.register_gauge(
        prefix + ".cpu." +
            std::string{to_string(static_cast<task_category>(c))} + "_seconds",
        busy_seconds_[c]);
  }
}

void cpu_model::register_trace(trace::collector& col,
                               const std::string& prefix) {
  col.attach(trace_, prefix + ".cpu");
}

}  // namespace lf::kernelsim
