// Simulated kernel spinlock with contention accounting (§3.4).
//
// The paper's snapshot-update analysis hinges on how long datapath control
// flows stall on a lock: a direct install holds it for the entire parameter
// copy (milliseconds), while LiteFlow's inference router holds it only for
// a pointer flip (nanoseconds).  The model is analytic: acquire() returns
// how long the caller would have spun, and extends the lock's busy period.
#pragma once

#include <cstdint>
#include <string>

#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lf::kernelsim {

class spinlock {
 public:
  explicit spinlock(sim::simulation& sim) : sim_{&sim} {}

  /// Acquire at the current sim time, holding for `hold_seconds`.  Returns
  /// the spin (wait) time the caller experienced.  Serialized FIFO: a
  /// caller arriving while the lock is held waits until the current busy
  /// period ends.
  double acquire(double hold_seconds);

  std::uint64_t acquisitions() const noexcept { return acquisitions_.value(); }
  std::uint64_t contended_acquisitions() const noexcept {
    return contended_.value();
  }
  double total_wait_seconds() const noexcept { return total_wait_.value(); }
  double total_hold_seconds() const noexcept { return total_hold_.value(); }
  double max_wait_seconds() const noexcept { return max_wait_.value(); }

  /// Publish acquisition/contention counters and hold/wait gauges under
  /// "<prefix>.acquisitions", "<prefix>.hold_seconds", ...
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the lock-event ring to a trace collector under "<prefix>".
  /// Every acquire emits lock_acquire (hold, wait ns); contended acquires
  /// additionally emit lock_contend.
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  sim::simulation* sim_;
  double busy_until_ = 0.0;
  metrics::counter acquisitions_;
  metrics::counter contended_;
  metrics::gauge total_wait_;
  metrics::gauge total_hold_;
  metrics::gauge max_wait_;
  trace::ring trace_{"spinlock"};
};

}  // namespace lf::kernelsim
