// Simulated kernel/user cross-space communication channels.
//
// Three channel flavours appear in the paper's evaluation:
//  - ccp_ipc:     CCP's agent IPC (unix socket + process wakeup), used by the
//                 userspace CC deployments (CCP-Aurora / CCP-MOCC);
//  - char_device: blocking char-device read/write (char-FFNN, char-MLP);
//  - netlink:     netlink socket (netlink-FFNN and LiteFlow's own batch
//                 data delivery, §4.2).
// Every round trip costs kernel CPU (accounted as softirq, which is what
// mpstat shows exploding in Fig. 4), optionally userspace CPU for whatever
// work runs on the far side, and wall-clock latency.
#pragma once

#include <cstdint>
#include <functional>

#include "kernelsim/cost_model.hpp"
#include "kernelsim/cpu.hpp"
#include "sim/sim.hpp"

namespace lf::kernelsim {

enum class channel_kind : std::uint8_t {
  ccp_ipc,
  char_device,
  netlink,
};

std::string_view to_string(channel_kind k) noexcept;

class crossspace_channel {
 public:
  crossspace_channel(sim::simulation& sim, cpu_model& cpu,
                     const cost_model& costs, channel_kind kind);

  /// Kernel -> user -> kernel round trip.  `user_cost` CPU-seconds of work
  /// (e.g. model inference) run in userspace before the reply; `done` fires
  /// when the reply is visible in kernel space and receives the end-to-end
  /// latency in seconds.
  void round_trip(std::size_t request_bytes, std::size_t reply_bytes,
                  double user_cost, task_category user_category,
                  std::function<void(double latency)> done);

  /// One-way kernel -> user delivery (LiteFlow batch data delivery).
  /// `delivered` fires when userspace has the data.
  void send_to_user(std::size_t bytes, std::function<void()> delivered);

  /// One-way user -> kernel delivery (snapshot parameter install traffic).
  void send_to_kernel(std::size_t bytes, std::function<void()> delivered);

  std::uint64_t round_trips() const noexcept { return round_trips_; }
  std::uint64_t one_way_messages() const noexcept { return one_way_; }
  std::uint64_t bytes_transferred() const noexcept { return bytes_; }
  channel_kind kind() const noexcept { return kind_; }

 private:
  double kernel_side_cost(std::size_t bytes) const noexcept;
  double latency() const noexcept;

  sim::simulation& sim_;
  cpu_model& cpu_;
  const cost_model& costs_;
  channel_kind kind_;
  std::uint64_t round_trips_ = 0;
  std::uint64_t one_way_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace lf::kernelsim
