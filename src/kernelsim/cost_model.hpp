// Calibrated cost constants for the simulated kernel execution environment.
//
// The paper's overhead results (Figs. 3/4/13/14/15) are CPU-contention
// phenomena: every datapath action consumes cycles on a finite CPU, and
// cross-space communication consumes disproportionately many of them
// (softirq + context switch + copies).  All costs live here, in seconds of
// CPU time per operation, so benchmarks and tests share one calibration.
//
// Calibration anchors from the paper:
//  - Fig. 15: mean inference latency 2.19us (in-kernel snapshot),
//    4.34us (char device round trip), 8.09us (netlink round trip).
//  - Fig. 4:  with 10 flows, softirq time grows 30.8ms -> 133.9ms as the
//    CCP communication interval shrinks 100ms -> 1ms (72.3% of CPU),
//    implying roughly 70us of kernel-side work per cross-space round trip.
//  - §2.3:    an in-kernel SGD optimizer costs so much that throughput
//    drops by up to 90% even with mini-batches.
#pragma once

#include <cstddef>

namespace lf::kernelsim {

struct cost_model {
  // ---- datapath ----
  /// Kernel packet processing (tx or rx+ACK logic) per packet.
  double datapath_packet_cost = 0.6e-6;

  // ---- in-kernel NN fast path ----
  /// Integer snapshot inference per multiply-accumulate.
  double snapshot_mac_cost = 1.3e-9;
  /// Fixed entry/exit cost of one lf_query_model call (router + flow cache).
  double snapshot_query_overhead = 0.3e-6;

  // ---- cross-space communication ----
  /// Kernel-side softirq cost of one CCP-style IPC round trip (wakeup,
  /// scheduling, copies).  Dominates Fig. 3/4.
  double ccp_roundtrip_softirq_cost = 70e-6;
  /// End-to-end latency of that round trip (request to reply visible).
  double ccp_roundtrip_latency = 120e-6;

  /// Char-device round trip: blocking read/write, cheaper than a socket.
  double chardev_roundtrip_softirq_cost = 2.2e-6;
  double chardev_roundtrip_latency = 4.34e-6 - 2.19e-6;  // minus inference

  /// Netlink round trip: skb alloc + netlink ack path.
  double netlink_roundtrip_softirq_cost = 4.0e-6;
  double netlink_roundtrip_latency = 8.09e-6 - 2.19e-6;  // minus inference

  /// Copy cost per byte crossing the kernel/user boundary (both channels).
  double crossspace_per_byte_cost = 1.0e-9;

  // ---- userspace NN work ----
  /// Userspace FP32 inference per MAC (TensorFlow-style, includes framework
  /// overhead folded into the fixed part below).
  double user_inference_mac_cost = 1.0e-9;
  double user_inference_overhead = 2.0e-6;
  /// Slow-path training cost per sample per parameter (SGD/Adam in FP).
  double user_train_cost_per_sample_param = 0.15e-9;
  double user_train_fixed_cost = 150e-6;

  // ---- in-kernel training (the §2.3 anti-pattern) ----
  /// Integer/soft-float SGD in kernel space per sample per parameter.
  /// Kernel code cannot use FPU state freely: gradient math runs on
  /// emulated floating point with kernel_fpu_begin/end fencing, costing
  /// ~3 orders of magnitude more than userspace SIMD.  At a 50ms mini-batch
  /// cadence this occupies most of the core — the paper's "throughput drops
  /// by up to 90% even with batched data" (§2.3).
  double kernel_train_cost_per_sample_param = 800e-9;
  double kernel_train_fixed_cost = 2e-3;

  // ---- snapshot install (§3.4) ----
  /// Copying one parameter byte from userspace into a standby snapshot.
  double snapshot_install_per_byte = 4.0e-9;
  /// Pointer-flip critical section of the inference router ("3 lines of
  /// code"), held under spinlock.
  double router_switch_lock_hold = 20e-9;

  /// Baseline softirq cost of normal packet receive handling, per packet
  /// (this is why even BBR shows ~12.6% softirq in Fig. 4).
  double rx_softirq_per_packet = 0.25e-6;

  // ---- snapshot pipeline stage estimates (§3.1, accounting only) ----
  // The freeze -> quantize -> translate -> compile pipeline runs out of
  // band in userspace (the paper does it offline in Python + gcc), so these
  // constants are *never charged to the simulated CPU* — they exist solely
  // for the snapshot lifecycle ledger the adaptation monitor keeps, where
  // they estimate per-stage wall time from the model's parameter count.
  /// Serializing one FP32 parameter to the frozen graph.
  double pipeline_freeze_per_param = 12e-9;
  /// Range scan + integer conversion of one parameter.
  double pipeline_quantize_per_param = 25e-9;
  /// Emitting fixed-point C source for one parameter.
  double pipeline_translate_per_param = 40e-9;
  /// Compiler invocation: fixed toolchain startup plus per-parameter work.
  double pipeline_compile_fixed = 180e-3;
  double pipeline_compile_per_param = 60e-9;
};

}  // namespace lf::kernelsim
