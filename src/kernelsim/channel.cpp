#include "kernelsim/channel.hpp"

namespace lf::kernelsim {

std::string_view to_string(channel_kind k) noexcept {
  switch (k) {
    case channel_kind::ccp_ipc:
      return "ccp-ipc";
    case channel_kind::char_device:
      return "char-device";
    case channel_kind::netlink:
      return "netlink";
  }
  return "?";
}

crossspace_channel::crossspace_channel(sim::simulation& sim, cpu_model& cpu,
                                       const cost_model& costs,
                                       channel_kind kind)
    : sim_{sim}, cpu_{cpu}, costs_{costs}, kind_{kind} {}

double crossspace_channel::kernel_side_cost(std::size_t bytes) const noexcept {
  double base = 0.0;
  switch (kind_) {
    case channel_kind::ccp_ipc:
      base = costs_.ccp_roundtrip_softirq_cost;
      break;
    case channel_kind::char_device:
      base = costs_.chardev_roundtrip_softirq_cost;
      break;
    case channel_kind::netlink:
      base = costs_.netlink_roundtrip_softirq_cost;
      break;
  }
  return base + static_cast<double>(bytes) * costs_.crossspace_per_byte_cost;
}

double crossspace_channel::latency() const noexcept {
  switch (kind_) {
    case channel_kind::ccp_ipc:
      return costs_.ccp_roundtrip_latency;
    case channel_kind::char_device:
      return costs_.chardev_roundtrip_latency;
    case channel_kind::netlink:
      return costs_.netlink_roundtrip_latency;
  }
  return 0.0;
}

void crossspace_channel::round_trip(std::size_t request_bytes,
                                    std::size_t reply_bytes, double user_cost,
                                    task_category user_category,
                                    std::function<void(double)> done) {
  ++round_trips_;
  bytes_ += request_bytes + reply_bytes;
  const double t_start = sim_.now();
  const double wire = latency();
  // Kernel-side softirq work to ship the request (half the round-trip cost;
  // the other half pays for receiving the reply).
  const double half_cost = 0.5 * kernel_side_cost(request_bytes + reply_bytes);
  cpu_.submit(task_category::softirq, half_cost, [this, wire, user_cost,
                                                  user_category, half_cost,
                                                  t_start,
                                                  done = std::move(done)]() {
    sim_.schedule(0.5 * wire, [this, user_cost, user_category, half_cost, wire,
                               t_start, done = std::move(done)]() {
      cpu_.submit(user_category, user_cost, [this, half_cost, wire, t_start,
                                             done = std::move(done)]() {
        sim_.schedule(0.5 * wire, [this, half_cost, t_start,
                                   done = std::move(done)]() {
          cpu_.submit(task_category::softirq, half_cost,
                      [this, t_start, done = std::move(done)]() {
                        if (done) done(sim_.now() - t_start);
                      });
        });
      });
    });
  });
}

void crossspace_channel::send_to_user(std::size_t bytes,
                                      std::function<void()> delivered) {
  ++one_way_;
  bytes_ += bytes;
  const double wire = latency();
  cpu_.submit(task_category::softirq, kernel_side_cost(bytes),
              [this, wire, delivered = std::move(delivered)]() {
                sim_.schedule(0.5 * wire, [delivered = std::move(delivered)]() {
                  if (delivered) delivered();
                });
              });
}

void crossspace_channel::send_to_kernel(std::size_t bytes,
                                        std::function<void()> delivered) {
  ++one_way_;
  bytes_ += bytes;
  const double wire = latency();
  sim_.schedule(0.5 * wire, [this, bytes, delivered = std::move(delivered)]() {
    cpu_.submit(task_category::softirq, kernel_side_cost(bytes),
                [delivered = std::move(delivered)]() {
                  if (delivered) delivered();
                });
  });
}

}  // namespace lf::kernelsim
