#include "kernelsim/spinlock.hpp"

#include <algorithm>
#include <stdexcept>

namespace lf::kernelsim {

double spinlock::acquire(double hold_seconds) {
  if (hold_seconds < 0.0) {
    throw std::invalid_argument{"spinlock: negative hold time"};
  }
  const double now = sim_->now();
  const double wait = std::max(0.0, busy_until_ - now);
  busy_until_ = now + wait + hold_seconds;
  ++acquisitions_;
  if (wait > 0.0) ++contended_;
  total_wait_ += wait;
  total_hold_ += hold_seconds;
  max_wait_ = std::max(max_wait_, wait);
  return wait;
}

}  // namespace lf::kernelsim
