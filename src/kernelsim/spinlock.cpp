#include "kernelsim/spinlock.hpp"

#include <algorithm>
#include <stdexcept>

namespace lf::kernelsim {

double spinlock::acquire(double hold_seconds) {
  if (hold_seconds < 0.0) {
    throw std::invalid_argument{"spinlock: negative hold time"};
  }
  const double now = sim_->now();
  const double wait = std::max(0.0, busy_until_ - now);
  busy_until_ = now + wait + hold_seconds;
  acquisitions_.inc();
  if (wait > 0.0) contended_.inc();
  total_wait_.add(wait);
  total_hold_.add(hold_seconds);
  max_wait_.set(std::max(max_wait_.value(), wait));
  const auto hold_ns = static_cast<std::uint64_t>(hold_seconds * 1e9);
  const auto wait_ns = static_cast<std::uint64_t>(wait * 1e9);
  trace_.emit(now, trace::event_type::lock_acquire, hold_ns, wait_ns);
  if (wait > 0.0) {
    trace_.emit(now, trace::event_type::lock_contend, wait_ns);
  }
  return wait;
}

void spinlock::register_metrics(metrics::registry& reg,
                                const std::string& prefix) {
  reg.register_counter(prefix + ".acquisitions", acquisitions_);
  reg.register_counter(prefix + ".contended", contended_);
  reg.register_gauge(prefix + ".wait_seconds", total_wait_);
  reg.register_gauge(prefix + ".hold_seconds", total_hold_);
  reg.register_gauge(prefix + ".max_wait_seconds", max_wait_);
}

void spinlock::register_trace(trace::collector& col,
                              const std::string& prefix) {
  col.attach(trace_, prefix);
}

}  // namespace lf::kernelsim
