// A simulated host CPU with per-category time accounting (the `mpstat` of
// this repository).
//
// The CPU is a single FIFO server: work items are submitted with a category
// and a cost in CPU-seconds; each runs to completion in submission order and
// fires its callback when done.  When offered load exceeds capacity the
// queue grows and completions stretch out — exactly the saturation effect
// behind the paper's Figs. 3/4/13.  Task categories mirror the paper's CPU
// breakdown: datapath processing, softirq (cross-space communication and rx
// interrupts), userspace NN work, and in-kernel training.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lf::kernelsim {

enum class task_category : std::uint8_t {
  datapath = 0,   ///< kernel packet/ACK processing
  softirq,        ///< cross-space communication + rx interrupt handling
  user_nn,        ///< userspace model inference
  user_train,     ///< userspace slow-path tuning
  kernel_train,   ///< in-kernel SGD (the §2.3 anti-pattern)
  other,
};

inline constexpr std::size_t task_category_count = 6;

std::string_view to_string(task_category c) noexcept;

class cpu_model {
 public:
  /// `capacity` is the number of CPU-seconds available per wall second
  /// (1.0 = one dedicated core, the paper's per-host normalization).
  cpu_model(sim::simulation& sim, double capacity = 1.0);

  cpu_model(const cpu_model&) = delete;
  cpu_model& operator=(const cpu_model&) = delete;

  /// Submit a work item costing `cost` CPU-seconds.  `done` (optional) fires
  /// when the work completes.  Work is serviced FIFO at `capacity` speed.
  void submit(task_category category, double cost,
              std::function<void()> done = {});

  /// CPU-seconds consumed so far by a category (completed + in-progress
  /// work counts when it was started).
  double busy_seconds(task_category category) const noexcept;

  /// Sum of busy_seconds over all categories.
  double total_busy_seconds() const noexcept;

  /// Utilization over [t0, now]: busy seconds accumulated since t0 divided
  /// by capacity * (now - t0).  Callers snapshot busy_seconds at t0.
  double utilization_since(double t0, double busy_at_t0) const noexcept;

  /// Time at which currently queued work will complete (>= now).
  double backlog_clear_time() const noexcept;

  /// Number of queued-but-not-started work items.
  std::size_t queue_depth() const noexcept { return queue_.size(); }

  double capacity() const noexcept { return capacity_; }

  /// Zero all accounting (not the queue).
  void reset_accounting() noexcept;

  /// Publish per-category busy-seconds gauges ("<prefix>.cpu.datapath", ...)
  /// into a telemetry registry.  The gauges are the accounting backing
  /// store, so readings are always live — no bespoke polling getters.
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the task-span ring ("<prefix>.cpu") to a trace collector.
  /// Emits task_begin/task_end around every serviced work item once the
  /// collector enables the ring; free until then.
  void register_trace(trace::collector& col, const std::string& prefix);

 private:
  struct work_item {
    task_category category;
    double cost;
    std::function<void()> done;
  };

  void start_next();

  sim::simulation& sim_;
  double capacity_;
  std::deque<work_item> queue_;
  bool busy_ = false;
  std::array<metrics::gauge, task_category_count> busy_seconds_{};
  trace::ring trace_{"cpu"};
};

}  // namespace lf::kernelsim
