// Workload generation: constant-rate background traffic (the paper's
// congestion emulation UDP stream), time-varying traffic patterns (for the
// online-adaptation experiments), Poisson flow arrivals with empirical
// flow-size distributions (DCTCP web-search workload for §5.2/§5.3).
#pragma once

#include <functional>
#include <vector>

#include "netsim/host.hpp"
#include "netsim/packet.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lf::netsim {

/// Constant-bit-rate UDP source attached to a host; rate adjustable at
/// runtime to emulate changing traffic patterns (Fig. 5 / Fig. 12).
class cbr_source {
 public:
  cbr_source(sim::simulation& sim, host& src, host_id_t dst, flow_id_t flow,
             double rate_bps, std::uint32_t packet_bytes = 1460);

  void start();
  void stop() noexcept { running_ = false; }
  /// Change the sending rate; takes effect at the next packet.
  void set_rate(double rate_bps) noexcept { rate_bps_ = rate_bps; }
  double rate() const noexcept { return rate_bps_; }

 private:
  void emit();

  sim::simulation& sim_;
  host& src_;
  host_id_t dst_;
  flow_id_t flow_;
  double rate_bps_;
  std::uint32_t packet_bytes_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
};

/// The web-search flow-size distribution from the DCTCP paper (Alizadeh et
/// al., SIGCOMM'10, Fig. 4), as (bytes, cumulative probability) knots.
empirical_cdf web_search_flow_sizes();

/// Short/medium/long classification used in the paper's Figs. 16/17.
enum class flow_class { short_flow, mid_flow, long_flow };
flow_class classify_flow(std::uint64_t bytes) noexcept;
std::string_view to_string(flow_class c) noexcept;

/// Poisson open-loop flow generator: every arrival draws a size from the
/// CDF and a (src, dst) pair via the chooser, then invokes start_flow.
class poisson_flow_generator {
 public:
  struct flow_request {
    flow_id_t id;
    std::size_t src;
    std::size_t dst;
    std::uint64_t size_bytes;
    double start_time;
  };
  using pair_chooser = std::function<std::pair<std::size_t, std::size_t>(rng&)>;
  using flow_starter = std::function<void(const flow_request&)>;

  poisson_flow_generator(sim::simulation& sim, rng gen, double arrivals_per_sec,
                         empirical_cdf sizes, pair_chooser choose,
                         flow_starter start);

  /// Begin generating; stops after max_flows arrivals (0 = unbounded).
  void start(std::size_t max_flows);

  std::size_t generated() const noexcept { return generated_; }

 private:
  void arrival();

  sim::simulation& sim_;
  rng gen_;
  double rate_;
  empirical_cdf sizes_;
  pair_chooser choose_;
  flow_starter start_flow_;
  std::size_t max_flows_ = 0;
  std::size_t generated_ = 0;
  flow_id_t next_id_ = 1;
};

}  // namespace lf::netsim
