#include "netsim/node.hpp"

#include <stdexcept>

namespace lf::netsim {

link& switch_node::add_port(std::unique_ptr<link> port) {
  ports_.push_back(std::move(port));
  return *ports_.back();
}

void switch_node::deliver(packet pkt) {
  if (!route_) throw std::logic_error{name() + ": no route function"};
  const std::size_t port_index = route_(pkt);
  if (port_index >= ports_.size()) {
    throw std::logic_error{name() + ": route returned bad port"};
  }
  ports_[port_index]->enqueue(pkt);
}

}  // namespace lf::netsim
