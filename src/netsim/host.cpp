#include "netsim/host.hpp"

#include <stdexcept>

namespace lf::netsim {

host::host(sim::simulation& sim, host_id_t id, std::string name,
           const kernelsim::cost_model& costs, double cpu_capacity)
    : node{std::move(name)}, sim_{sim}, id_{id}, costs_{costs},
      cpu_{sim, cpu_capacity} {}

void host::send_packet(packet pkt) {
  pkt.src = id_;
  pkt.wire_bytes = pkt.is_ack ? k_ack_bytes : pkt.payload_bytes + k_header_bytes;
  if (!cpu_gating_) {
    transmit(pkt);
    return;
  }
  cpu_.submit(kernelsim::task_category::datapath, costs_.datapath_packet_cost,
              [this, pkt]() mutable { transmit(pkt); });
}

void host::send_packet_free(packet pkt) {
  pkt.src = id_;
  pkt.wire_bytes = pkt.is_ack ? k_ack_bytes : pkt.payload_bytes + k_header_bytes;
  transmit(pkt);
}

void host::transmit(packet pkt) {
  if (!egress_) throw std::logic_error{name() + ": no egress link"};
  pkt.send_time = sim_.now();
  egress_->enqueue(pkt);
}

void host::register_sender(flow_id_t flow, flow_sender* sender) {
  if (!sender) throw std::invalid_argument{"null flow_sender"};
  senders_[flow] = sender;
}

void host::unregister_sender(flow_id_t flow) { senders_.erase(flow); }

void host::deliver(packet pkt) {
  if (!cpu_gating_) {
    if (pkt.is_ack) {
      process_ack(pkt);
    } else {
      process_data(pkt);
    }
    return;
  }
  // Receive interrupt (softirq), then protocol processing (datapath).
  cpu_.submit(kernelsim::task_category::softirq, costs_.rx_softirq_per_packet);
  cpu_.submit(kernelsim::task_category::datapath, costs_.datapath_packet_cost,
              [this, pkt]() {
                if (pkt.is_ack) {
                  process_ack(pkt);
                } else {
                  process_data(pkt);
                }
              });
}

void host::process_ack(const packet& pkt) {
  const auto it = senders_.find(pkt.flow_id);
  if (it != senders_.end()) it->second->on_ack(pkt);
}

void host::process_data(packet pkt) {
  auto& state = receive_[pkt.flow_id];
  if (state.delivered_payload == 0 && state.next_expected == 0) {
    state.first_data_time = sim_.now();
  }
  const std::uint64_t begin = pkt.seq;
  const std::uint64_t end = pkt.seq + pkt.payload_bytes;
  std::uint64_t new_bytes = 0;

  if (end > state.next_expected) {
    // Insert [max(begin, next_expected), end) into the out-of-order set,
    // counting genuinely new bytes.
    std::uint64_t lo = std::max(begin, state.next_expected);
    std::uint64_t hi = end;
    // Merge with overlapping/adjacent intervals: the union replaces them
    // all, and the genuinely new bytes are the union length minus what was
    // already present.
    std::uint64_t already_present = 0;
    auto it = state.out_of_order.lower_bound(lo);
    if (it != state.out_of_order.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) it = prev;
    }
    while (it != state.out_of_order.end() && it->first <= hi) {
      if (it->second >= lo) {
        already_present += it->second - it->first;
        lo = std::min(lo, it->first);
        hi = std::max(hi, it->second);
        it = state.out_of_order.erase(it);
      } else {
        ++it;
      }
    }
    new_bytes = (hi - lo) - already_present;
    state.out_of_order[lo] = hi;
    // Advance the cumulative watermark through contiguous intervals.
    auto front = state.out_of_order.begin();
    while (front != state.out_of_order.end() &&
           front->first <= state.next_expected) {
      state.next_expected = std::max(state.next_expected, front->second);
      front = state.out_of_order.erase(front);
    }
  }
  state.delivered_payload += new_bytes;
  delivered_ += new_bytes;
  if (new_bytes > 0 && on_delivery_) on_delivery_(pkt.flow_id, new_bytes);

  if (pkt.fin) {
    state.fin_seen = true;
    state.fin_end = end;
  }
  const bool complete =
      state.fin_seen && state.next_expected >= state.fin_end && !state.completed;
  if (complete) {
    state.completed = true;
    state.complete_time = sim_.now();
    completed_flows_.inc();
    const double fct = state.complete_time - state.first_data_time;
    fct_trace_.record(state.complete_time, fct);
    trace_ring_.emit(state.complete_time, trace::event_type::flow_complete,
                     pkt.flow_id, static_cast<std::uint64_t>(fct * 1e9));
  }

  // Generate an ACK (per packet, no delayed ACKs; NN-based CC wants a dense
  // feedback signal).
  packet ack;
  ack.flow_id = pkt.flow_id;
  ack.dst = pkt.src;
  ack.is_ack = true;
  ack.ack_seq = state.next_expected;
  ack.ack_echo_seq = pkt.seq;
  ack.ack_echo_send_time = pkt.send_time;
  ack.ack_ecn_echo = pkt.ecn_marked;
  ack.ecn_capable = false;
  ack.fin_ack = complete;
  ack.priority = 0;  // ACKs ride the highest band
  send_packet(ack);

  if (complete && on_complete_) on_complete_(pkt.flow_id, state);
}

const receive_state* host::flow_state(flow_id_t flow) const {
  const auto it = receive_.find(flow);
  return it == receive_.end() ? nullptr : &it->second;
}

void host::register_metrics(metrics::registry& reg, const std::string& prefix) {
  const std::string base = prefix + "." + name();
  reg.register_counter(base + ".completed_flows", completed_flows_);
  reg.register_series(base + ".fct_seconds", fct_trace_);
  cpu_.register_metrics(reg, base);
}

void host::register_trace(trace::collector& col, const std::string& prefix) {
  const std::string base = prefix + "." + name();
  col.attach(trace_ring_, base);
  cpu_.register_trace(col, base);
}

}  // namespace lf::netsim
