// End host: the simulated machine running the kernel datapath.
//
// A host owns a simulated CPU (kernelsim::cpu_model).  Every packet it
// sends or receives costs datapath CPU before touching the wire — this is
// what couples network throughput to the cross-space communication overhead
// in the paper's Figs. 3/4/13/14: softirq work from NN deployments competes
// with packet processing on the same CPU.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "kernelsim/cost_model.hpp"
#include "kernelsim/cpu.hpp"
#include "netsim/node.hpp"
#include "netsim/packet.hpp"
#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"
#include "util/trace.hpp"

namespace lf::netsim {

/// Sender-side transport interface: hosts dispatch ACKs to these.
class flow_sender {
 public:
  virtual ~flow_sender() = default;
  virtual void on_ack(const packet& ack) = 0;
};

/// Receiver-side per-flow reassembly and delivery accounting.
struct receive_state {
  std::uint64_t next_expected = 0;  ///< cumulative in-order watermark
  /// Out-of-order byte intervals [first, second), disjoint, sorted.
  std::map<std::uint64_t, std::uint64_t> out_of_order;
  std::uint64_t delivered_payload = 0;  ///< unique payload bytes received
  bool fin_seen = false;
  std::uint64_t fin_end = 0;  ///< byte offset one past the last flow byte
  bool completed = false;
  double first_data_time = 0.0;
  double complete_time = 0.0;
};

class host final : public node {
 public:
  host(sim::simulation& sim, host_id_t id, std::string name,
       const kernelsim::cost_model& costs, double cpu_capacity = 1.0);

  host_id_t id() const noexcept { return id_; }
  kernelsim::cpu_model& cpu() noexcept { return cpu_; }
  const kernelsim::cost_model& costs() const noexcept { return costs_; }
  sim::simulation& simulator() noexcept { return sim_; }

  /// The host's single uplink (set by the topology builder; not owned).
  void set_egress(link* uplink) noexcept { egress_ = uplink; }
  link* egress() noexcept { return egress_; }

  /// Transport entry point: pay datapath CPU, then put the packet on the
  /// wire.  Fills in wire_bytes/send_time/src.
  void send_packet(packet pkt);

  /// Emit without CPU cost (background/UDP traffic generators — the paper's
  /// congestion emulation traffic originates outside the host under test).
  void send_packet_free(packet pkt);

  void register_sender(flow_id_t flow, flow_sender* sender);
  void unregister_sender(flow_id_t flow);

  /// Fires when a flow completes (all bytes + FIN delivered) at this host.
  using completion_hook =
      std::function<void(flow_id_t, const receive_state&)>;
  void set_completion_hook(completion_hook hook) { on_complete_ = std::move(hook); }

  /// Observes every delivered (unique) payload chunk: (flow, new bytes).
  using delivery_hook = std::function<void(flow_id_t, std::uint64_t)>;
  void set_delivery_hook(delivery_hook hook) { on_delivery_ = std::move(hook); }

  void deliver(packet pkt) override;

  const receive_state* flow_state(flow_id_t flow) const;
  std::uint64_t total_delivered_payload() const noexcept { return delivered_; }
  std::uint64_t completed_flows() const noexcept {
    return completed_flows_.value();
  }
  /// (completion time, FCT seconds) per flow completed at this host.
  const time_series& fct_trace() const noexcept { return fct_trace_; }

  /// Publish completed-flow count, the per-flow FCT series, and this host's
  /// CPU category accounting under "<prefix>.<host name>.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach this host's rings to a trace collector: flow_complete events
  /// under "<prefix>.<host name>" plus the owned CPU's task spans under
  /// "<prefix>.<host name>.cpu".
  void register_trace(trace::collector& col, const std::string& prefix);

  /// Disable/enable ACK generation CPU cost modeling (on by default).
  void set_cpu_gating(bool enabled) noexcept { cpu_gating_ = enabled; }

 private:
  void process_data(packet pkt);
  void process_ack(const packet& pkt);
  void transmit(packet pkt);

  sim::simulation& sim_;
  host_id_t id_;
  const kernelsim::cost_model& costs_;
  kernelsim::cpu_model cpu_;
  link* egress_ = nullptr;
  bool cpu_gating_ = true;

  std::map<flow_id_t, flow_sender*> senders_;
  std::map<flow_id_t, receive_state> receive_;
  std::uint64_t delivered_ = 0;
  metrics::counter completed_flows_;
  time_series fct_trace_{"fct_seconds"};
  trace::ring trace_ring_{"host"};
  completion_hook on_complete_;
  delivery_hook on_delivery_;
};

}  // namespace lf::netsim
