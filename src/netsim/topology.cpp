#include "netsim/topology.hpp"

#include <stdexcept>

namespace lf::netsim {

// ------------------------------------------------------------- dumbbell --

dumbbell::dumbbell(sim::simulation& sim, dumbbell_config config)
    : config_{std::move(config)} {
  sw_ = std::make_unique<switch_node>("sw");
  sender_ = std::make_unique<host>(sim, sender_id, "sender", config_.costs,
                                   config_.sender_cpu_capacity);
  bg_sender_ = std::make_unique<host>(sim, bg_sender_id, "bg", config_.costs);
  bg_sender_->set_cpu_gating(false);
  receiver_ = std::make_unique<host>(sim, receiver_id, "receiver",
                                     config_.costs);

  const double tiny = 0.5e-6;  // access link propagation
  // The emulated RTT is split between the forward bottleneck and the
  // reverse path, like netem applied on both directions.
  const double one_way = 0.5 * config_.rtt;

  // Switch egress ports.
  link_config fwd;
  fwd.rate_bps = config_.bottleneck_bps;
  fwd.propagation_delay = one_way;
  fwd.buffer_bytes = config_.buffer_bytes;
  fwd.ecn_threshold_bytes = config_.ecn_threshold_bytes;
  fwd.name = "bottleneck";
  bottleneck_ = &sw_->add_port(std::make_unique<link>(sim, fwd, *receiver_));

  link_config rev;
  rev.rate_bps = config_.access_bps;
  rev.propagation_delay = one_way;
  rev.buffer_bytes = 4u << 20;
  rev.name = "reverse-to-sender";
  sw_->add_port(std::make_unique<link>(sim, rev, *sender_));

  link_config rev_bg = rev;
  rev_bg.name = "reverse-to-bg";
  sw_->add_port(std::make_unique<link>(sim, rev_bg, *bg_sender_));

  sw_->set_route([](const packet& pkt) -> std::size_t {
    switch (pkt.dst) {
      case receiver_id:
        return 0;
      case sender_id:
        return 1;
      case bg_sender_id:
        return 2;
      default:
        throw std::logic_error{"dumbbell: unknown destination"};
    }
  });

  // Access links host -> switch.
  link_config acc;
  acc.rate_bps = config_.access_bps;
  acc.propagation_delay = tiny;
  acc.buffer_bytes = 4u << 20;
  acc.name = "access";
  for (host* h : {sender_.get(), bg_sender_.get(), receiver_.get()}) {
    access_links_.push_back(std::make_unique<link>(sim, acc, *sw_));
    h->set_egress(access_links_.back().get());
  }
}

// ------------------------------------------------------------ spine-leaf --

spine_leaf::spine_leaf(sim::simulation& sim, spine_leaf_config config)
    : config_{std::move(config)} {
  if (config_.leaves == 0 || config_.spines == 0 ||
      config_.hosts_per_leaf == 0) {
    throw std::invalid_argument{"spine_leaf: empty dimension"};
  }
  const std::size_t n_hosts = config_.leaves * config_.hosts_per_leaf;

  for (std::size_t l = 0; l < config_.leaves; ++l) {
    leaves_.push_back(
        std::make_unique<switch_node>("leaf" + std::to_string(l)));
  }
  for (std::size_t s = 0; s < config_.spines; ++s) {
    spines_.push_back(
        std::make_unique<switch_node>("spine" + std::to_string(s)));
  }
  for (std::size_t h = 0; h < n_hosts; ++h) {
    hosts_.push_back(std::make_unique<host>(
        sim, static_cast<host_id_t>(h), "h" + std::to_string(h),
        config_.costs, config_.host_cpu_capacity));
    hosts_.back()->set_cpu_gating(config_.cpu_gating);
  }

  link_config down;
  down.rate_bps = config_.host_bps;
  down.propagation_delay = config_.link_delay;
  down.buffer_bytes = config_.buffer_bytes;
  down.ecn_threshold_bytes = config_.ecn_threshold_bytes;

  link_config up;
  up.rate_bps = config_.fabric_bps;
  up.propagation_delay = config_.link_delay;
  up.buffer_bytes = config_.buffer_bytes;
  up.ecn_threshold_bytes = config_.ecn_threshold_bytes;

  leaf_uplink_port_.assign(config_.leaves,
                           std::vector<std::size_t>(config_.spines, 0));

  // Leaf ports: hosts_per_leaf downlinks, then one uplink per spine.
  for (std::size_t l = 0; l < config_.leaves; ++l) {
    for (std::size_t i = 0; i < config_.hosts_per_leaf; ++i) {
      auto cfg = down;
      cfg.name = "leaf" + std::to_string(l) + "->h";
      leaves_[l]->add_port(std::make_unique<link>(
          sim, cfg, *hosts_[l * config_.hosts_per_leaf + i]));
    }
    for (std::size_t s = 0; s < config_.spines; ++s) {
      auto cfg = up;
      cfg.name = "leaf" + std::to_string(l) + "->spine" + std::to_string(s);
      leaves_[l]->add_port(std::make_unique<link>(sim, cfg, *spines_[s]));
      leaf_uplink_port_[l][s] = config_.hosts_per_leaf + s;
    }
    const std::size_t hosts_per_leaf = config_.hosts_per_leaf;
    const std::size_t spines = config_.spines;
    const std::size_t this_leaf = l;
    leaves_[l]->set_route([this_leaf, hosts_per_leaf,
                           spines](const packet& pkt) -> std::size_t {
      const auto dst_leaf = static_cast<std::size_t>(pkt.dst) / hosts_per_leaf;
      if (dst_leaf == this_leaf) {
        return static_cast<std::size_t>(pkt.dst) % hosts_per_leaf;
      }
      // Uplink: explicit path tag wins (XPath), else ECMP on flow id.
      std::size_t spine;
      if (pkt.path_tag != 0) {
        spine = (pkt.path_tag - 1) % spines;
      } else {
        spine = static_cast<std::size_t>(pkt.flow_id * 2654435761u) % spines;
      }
      return hosts_per_leaf + spine;
    });
  }

  // Spine ports: one downlink per leaf.
  for (std::size_t s = 0; s < config_.spines; ++s) {
    for (std::size_t l = 0; l < config_.leaves; ++l) {
      auto cfg = up;
      cfg.name = "spine" + std::to_string(s) + "->leaf" + std::to_string(l);
      spines_[s]->add_port(std::make_unique<link>(sim, cfg, *leaves_[l]));
    }
    const std::size_t hosts_per_leaf = config_.hosts_per_leaf;
    spines_[s]->set_route([hosts_per_leaf](const packet& pkt) -> std::size_t {
      return static_cast<std::size_t>(pkt.dst) / hosts_per_leaf;
    });
  }

  // Host access links (host -> its leaf).
  link_config acc;
  acc.rate_bps = config_.host_bps;
  acc.propagation_delay = config_.link_delay;
  acc.buffer_bytes = config_.buffer_bytes;
  acc.ecn_threshold_bytes = config_.ecn_threshold_bytes;
  for (std::size_t h = 0; h < n_hosts; ++h) {
    auto cfg = acc;
    cfg.name = "h" + std::to_string(h) + "->leaf";
    access_links_.push_back(std::make_unique<link>(
        sim, cfg, *leaves_[h / config_.hosts_per_leaf]));
    hosts_[h]->set_egress(access_links_.back().get());
  }
}

link& spine_leaf::uplink(std::size_t l, std::size_t s) {
  return leaves_.at(l)->port(leaf_uplink_port_.at(l).at(s));
}

}  // namespace lf::netsim
