// Unidirectional link with a strict-priority, drop-tail, optionally
// ECN-marking egress queue.
//
// This is the bottleneck-queue abstraction behind every figure in the
// paper's evaluation: Fig. 1b plots exactly this queue's depth, DCTCP
// needs its ECN threshold, and pFabric-style flow scheduling uses its
// priority bands.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>

#include "netsim/packet.hpp"
#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/time_series.hpp"
#include "util/trace.hpp"

namespace lf::netsim {

class node;  // fwd

inline constexpr std::size_t k_priority_bands = 8;

struct link_config {
  double rate_bps = 1e9;
  double propagation_delay = 10e-6;
  /// Total buffer across all bands, bytes.  Drop-tail when exceeded.
  std::uint64_t buffer_bytes = 150 * 1000;
  /// ECN marking threshold in bytes; packets enqueued beyond it get CE.
  /// Default: no marking.
  std::uint64_t ecn_threshold_bytes = std::numeric_limits<std::uint64_t>::max();
  /// Stochastic (non-congestion) loss probability per packet; emulates a
  /// lossy segment.  Adjustable at runtime via set_random_loss().
  double random_loss_prob = 0.0;
  std::uint64_t drop_seed = 0x10552;
  std::string name = "link";
};

class link {
 public:
  link(sim::simulation& sim, link_config config, node& dst);

  link(const link&) = delete;
  link& operator=(const link&) = delete;

  /// Enqueue for transmission; may drop (drop-tail) and/or CE-mark.
  void enqueue(packet pkt);

  // Statistics.
  std::uint64_t enqueued_packets() const noexcept { return enqueued_.value(); }
  std::uint64_t dropped_packets() const noexcept { return dropped_.value(); }
  std::uint64_t transmitted_packets() const noexcept {
    return transmitted_.value();
  }
  std::uint64_t transmitted_bytes() const noexcept { return tx_bytes_.value(); }
  std::uint64_t marked_packets() const noexcept { return marked_.value(); }
  std::uint64_t queued_bytes() const noexcept { return queued_bytes_; }

  /// Publish drop/ECN-mark/throughput counters (and the queue trace, when
  /// enabled) under "<prefix>.<link name>.*".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

  /// Attach the packet-event ring ("<prefix>.<link name>") to a trace
  /// collector: pkt_enqueue per accepted packet, pkt_drop for random and
  /// drop-tail losses, ecn_mark per CE mark.
  void register_trace(trace::collector& col, const std::string& prefix);

  const link_config& config() const noexcept { return config_; }

  /// When enabled, records (time, queued_bytes) on every change.
  void enable_queue_trace() { trace_enabled_ = true; }
  const time_series& queue_trace() const noexcept { return queue_trace_; }

  /// Optional hook observing every transmitted packet (throughput probes).
  void set_tx_hook(std::function<void(const packet&)> hook) {
    tx_hook_ = std::move(hook);
  }

  /// Adjust stochastic loss at runtime (environment-dynamics experiments).
  void set_random_loss(double prob) noexcept {
    config_.random_loss_prob = prob;
  }
  std::uint64_t random_dropped_packets() const noexcept {
    return random_dropped_.value();
  }

 private:
  void try_transmit();
  void record_queue();

  sim::simulation& sim_;
  link_config config_;
  node& dst_;
  std::array<std::deque<packet>, k_priority_bands> bands_;
  std::uint64_t queued_bytes_ = 0;
  bool transmitting_ = false;

  rng drop_gen_;
  metrics::counter enqueued_;
  metrics::counter dropped_;
  metrics::counter random_dropped_;
  metrics::counter transmitted_;
  metrics::counter tx_bytes_;
  metrics::counter marked_;
  bool trace_enabled_ = false;
  time_series queue_trace_{"queue_bytes"};
  trace::ring trace_ring_{"link"};
  std::function<void(const packet&)> tx_hook_;
};

}  // namespace lf::netsim
