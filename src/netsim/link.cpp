#include "netsim/link.hpp"

#include <stdexcept>

#include "netsim/node.hpp"

namespace lf::netsim {

link::link(sim::simulation& sim, link_config config, node& dst)
    : sim_{sim}, config_{std::move(config)}, dst_{dst},
      drop_gen_{config_.drop_seed} {
  if (config_.rate_bps <= 0.0) {
    throw std::invalid_argument{"link rate must be positive"};
  }
}

void link::record_queue() {
  if (trace_enabled_) {
    queue_trace_.record(sim_.now(), static_cast<double>(queued_bytes_));
  }
}

void link::enqueue(packet pkt) {
  enqueued_.inc();
  if (config_.random_loss_prob > 0.0 &&
      drop_gen_.bernoulli(config_.random_loss_prob)) {
    random_dropped_.inc();
    trace_ring_.emit(sim_.now(), trace::event_type::pkt_drop, pkt.flow_id,
                     pkt.wire_bytes);
    return;
  }
  if (queued_bytes_ + pkt.wire_bytes > config_.buffer_bytes) {
    dropped_.inc();
    trace_ring_.emit(sim_.now(), trace::event_type::pkt_drop, pkt.flow_id,
                     pkt.wire_bytes);
    return;
  }
  if (pkt.ecn_capable && queued_bytes_ >= config_.ecn_threshold_bytes) {
    pkt.ecn_marked = true;
    marked_.inc();
    trace_ring_.emit(sim_.now(), trace::event_type::ecn_mark, pkt.flow_id,
                     queued_bytes_);
  }
  trace_ring_.emit(sim_.now(), trace::event_type::pkt_enqueue, pkt.flow_id,
                   pkt.wire_bytes);
  const auto band = static_cast<std::size_t>(
      pkt.priority < k_priority_bands ? pkt.priority : k_priority_bands - 1);
  queued_bytes_ += pkt.wire_bytes;
  bands_[band].push_back(pkt);
  record_queue();
  if (!transmitting_) try_transmit();
}

void link::try_transmit() {
  // Strict priority: lowest band index first.
  std::size_t band = k_priority_bands;
  for (std::size_t b = 0; b < k_priority_bands; ++b) {
    if (!bands_[b].empty()) {
      band = b;
      break;
    }
  }
  if (band == k_priority_bands) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  packet pkt = bands_[band].front();
  bands_[band].pop_front();
  queued_bytes_ -= pkt.wire_bytes;
  record_queue();
  const double tx_time =
      static_cast<double>(pkt.wire_bytes) * 8.0 / config_.rate_bps;
  sim_.schedule(tx_time, [this, pkt]() mutable {
    transmitted_.inc();
    tx_bytes_.inc(pkt.wire_bytes);
    if (tx_hook_) tx_hook_(pkt);
    // Propagation happens in parallel with the next serialization.
    sim_.schedule(config_.propagation_delay,
                  [this, pkt]() mutable { dst_.deliver(pkt); });
    try_transmit();
  });
}

void link::register_metrics(metrics::registry& reg, const std::string& prefix) {
  const std::string base = prefix + "." + config_.name;
  reg.register_counter(base + ".enqueued", enqueued_);
  reg.register_counter(base + ".dropped", dropped_);
  reg.register_counter(base + ".random_dropped", random_dropped_);
  reg.register_counter(base + ".transmitted", transmitted_);
  reg.register_counter(base + ".tx_bytes", tx_bytes_);
  reg.register_counter(base + ".ecn_marked", marked_);
  if (trace_enabled_) reg.register_series(base + ".queue_bytes", queue_trace_);
}

void link::register_trace(trace::collector& col, const std::string& prefix) {
  col.attach(trace_ring_, prefix + "." + config_.name);
}

}  // namespace lf::netsim
