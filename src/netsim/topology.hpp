// Topology builders for the paper's three experimental setups:
//  - dumbbell: 2 servers + switch + emulated-RTT bottleneck (the CC testbed
//    of §2.2/§5.1, and the Mahimahi toy link of Fig. 2),
//  - spine_leaf: the 2x2 spine-leaf fabric used for flow scheduling (§5.2,
//    32 hosts) and load balancing (§5.3, 8 hosts).
#pragma once

#include <memory>
#include <vector>

#include "kernelsim/cost_model.hpp"
#include "netsim/host.hpp"
#include "netsim/node.hpp"
#include "sim/sim.hpp"

namespace lf::netsim {

// ------------------------------------------------------------- dumbbell --

struct dumbbell_config {
  double bottleneck_bps = 1e9;
  double rtt = 10e-3;  ///< end-to-end round trip (netem emulation)
  std::uint64_t buffer_bytes = 150 * 1000;  ///< paper: 150KB bottleneck buffer
  std::uint64_t ecn_threshold_bytes =
      std::numeric_limits<std::uint64_t>::max();
  double access_bps = 100e9;  ///< server NIC rate (100GbE testbed)
  double sender_cpu_capacity = 1.0;
  kernelsim::cost_model costs{};
};

/// sender ---access--> [switch] ---bottleneck---> receiver
///   ^                                               |
///   +---------------- reverse path <----------------+
/// A second, CPU-free host injects background UDP traffic ahead of the
/// bottleneck to emulate congestion, exactly like the paper's 0.1 Gbps
/// constant-rate UDP stream.
class dumbbell {
 public:
  dumbbell(sim::simulation& sim, dumbbell_config config);

  host& sender() noexcept { return *sender_; }
  host& bg_sender() noexcept { return *bg_sender_; }
  host& receiver() noexcept { return *receiver_; }
  link& bottleneck() noexcept { return *bottleneck_; }
  const dumbbell_config& config() const noexcept { return config_; }
  const kernelsim::cost_model& costs() const noexcept { return config_.costs; }

  static constexpr host_id_t sender_id = 1;
  static constexpr host_id_t bg_sender_id = 2;
  static constexpr host_id_t receiver_id = 3;

 private:
  dumbbell_config config_;
  std::unique_ptr<switch_node> sw_;
  std::unique_ptr<host> sender_;
  std::unique_ptr<host> bg_sender_;
  std::unique_ptr<host> receiver_;
  // Access links (host -> switch) owned here; switch owns its egress ports.
  std::vector<std::unique_ptr<link>> access_links_;
  link* bottleneck_ = nullptr;
};

// ------------------------------------------------------------ spine-leaf --

struct spine_leaf_config {
  std::size_t leaves = 2;
  std::size_t spines = 2;
  std::size_t hosts_per_leaf = 16;  ///< 32 hosts total for flow scheduling
  double host_bps = 10e9;
  double fabric_bps = 40e9;  ///< leaf<->spine links
  double link_delay = 2e-6;
  std::uint64_t buffer_bytes = 250 * 1500;
  /// DCTCP marking threshold (K): ~65 full-size packets at 10G.
  std::uint64_t ecn_threshold_bytes = 65 * 1500;
  double host_cpu_capacity = 1.0;
  bool cpu_gating = false;  ///< FCT experiments disable per-packet CPU cost
  kernelsim::cost_model costs{};
};

/// Standard two-tier Clos.  Uplink selection at the leaf: packets with
/// path_tag != 0 take spine (path_tag - 1) (XPath-style explicit path
/// control); otherwise an ECMP hash of the flow id picks the spine.
class spine_leaf {
 public:
  spine_leaf(sim::simulation& sim, spine_leaf_config config);

  std::size_t host_count() const noexcept { return hosts_.size(); }
  host& host_at(std::size_t i) { return *hosts_.at(i); }
  std::size_t leaf_of(std::size_t host_index) const noexcept {
    return host_index / config_.hosts_per_leaf;
  }
  switch_node& leaf(std::size_t i) { return *leaves_.at(i); }
  switch_node& spine(std::size_t i) { return *spines_.at(i); }
  const spine_leaf_config& config() const noexcept { return config_; }
  const kernelsim::cost_model& costs() const noexcept { return config_.costs; }

  /// Uplink (leaf -> spine s) of leaf l, for congestion probing.
  link& uplink(std::size_t l, std::size_t s);

 private:
  spine_leaf_config config_;
  std::vector<std::unique_ptr<switch_node>> leaves_;
  std::vector<std::unique_ptr<switch_node>> spines_;
  std::vector<std::unique_ptr<host>> hosts_;
  std::vector<std::unique_ptr<link>> access_links_;
  // leaf_uplink_port_[l][s]: port index on leaf l reaching spine s.
  std::vector<std::vector<std::size_t>> leaf_uplink_port_;
};

}  // namespace lf::netsim
