#include "netsim/workload.hpp"

#include <stdexcept>

namespace lf::netsim {

cbr_source::cbr_source(sim::simulation& sim, host& src, host_id_t dst,
                       flow_id_t flow, double rate_bps,
                       std::uint32_t packet_bytes)
    : sim_{sim}, src_{src}, dst_{dst}, flow_{flow}, rate_bps_{rate_bps},
      packet_bytes_{packet_bytes} {
  if (packet_bytes == 0) throw std::invalid_argument{"cbr: zero packet size"};
}

void cbr_source::start() {
  if (running_) return;
  running_ = true;
  emit();
}

void cbr_source::emit() {
  if (!running_) return;
  if (rate_bps_ > 0.0) {
    packet pkt;
    pkt.flow_id = flow_;
    pkt.dst = dst_;
    pkt.seq = next_seq_;
    pkt.payload_bytes = packet_bytes_;
    next_seq_ += packet_bytes_;
    // Background traffic bypasses the host CPU: it emulates congestion
    // originating elsewhere in the network.
    src_.send_packet_free(pkt);
  }
  const double gap =
      rate_bps_ > 0.0
          ? static_cast<double>(packet_bytes_ + k_header_bytes) * 8.0 / rate_bps_
          : 1e-3;  // idle poll while rate is zero
  sim_.schedule(gap, [this]() { emit(); });
}

empirical_cdf web_search_flow_sizes() {
  // Digitized from the DCTCP paper's web-search workload CDF; values in
  // bytes.  Heavy-tailed: >95% of bytes come from >1MB flows while most
  // flows are small.
  return empirical_cdf::from_knots({
      {1000, 0.0},
      {6000, 0.15},
      {13000, 0.20},
      {19000, 0.30},
      {33000, 0.40},
      {53000, 0.53},
      {133000, 0.60},
      {667000, 0.70},
      {1333000, 0.80},
      {3333000, 0.90},
      {6667000, 0.95},
      {20000000, 1.0},
  });
}

flow_class classify_flow(std::uint64_t bytes) noexcept {
  if (bytes < 10'000) return flow_class::short_flow;
  if (bytes <= 100'000) return flow_class::mid_flow;
  return flow_class::long_flow;
}

std::string_view to_string(flow_class c) noexcept {
  switch (c) {
    case flow_class::short_flow:
      return "short(<10KB)";
    case flow_class::mid_flow:
      return "mid(10-100KB)";
    case flow_class::long_flow:
      return "long(>100KB)";
  }
  return "?";
}

poisson_flow_generator::poisson_flow_generator(
    sim::simulation& sim, rng gen, double arrivals_per_sec, empirical_cdf sizes,
    pair_chooser choose, flow_starter start)
    : sim_{sim}, gen_{gen}, rate_{arrivals_per_sec}, sizes_{std::move(sizes)},
      choose_{std::move(choose)}, start_flow_{std::move(start)} {
  if (rate_ <= 0.0) throw std::invalid_argument{"poisson rate must be > 0"};
  if (!choose_ || !start_flow_) {
    throw std::invalid_argument{"poisson generator needs chooser and starter"};
  }
}

void poisson_flow_generator::start(std::size_t max_flows) {
  max_flows_ = max_flows;
  sim_.schedule(gen_.exponential(rate_), [this]() { arrival(); });
}

void poisson_flow_generator::arrival() {
  if (max_flows_ != 0 && generated_ >= max_flows_) return;
  ++generated_;
  flow_request req;
  req.id = next_id_++;
  const auto [src, dst] = choose_(gen_);
  req.src = src;
  req.dst = dst;
  req.size_bytes =
      static_cast<std::uint64_t>(std::max(1.0, sizes_.quantile(gen_.uniform())));
  req.start_time = sim_.now();
  start_flow_(req);
  sim_.schedule(gen_.exponential(rate_), [this]() { arrival(); });
}

}  // namespace lf::netsim
