// Packet representation for the packet-level network simulator.
#pragma once

#include <cstdint>

namespace lf::netsim {

using flow_id_t = std::uint64_t;
using host_id_t = std::uint32_t;

inline constexpr std::uint32_t k_default_mtu = 1500;
inline constexpr std::uint32_t k_header_bytes = 40;
inline constexpr std::uint32_t k_ack_bytes = 40;

struct packet {
  flow_id_t flow_id = 0;
  host_id_t src = 0;
  host_id_t dst = 0;

  /// First payload byte offset carried by this packet (data packets).
  std::uint64_t seq = 0;
  /// Payload bytes (data packets); 0 for pure ACKs.
  std::uint32_t payload_bytes = 0;
  /// Total wire size including headers.
  std::uint32_t wire_bytes = 0;

  bool is_ack = false;
  /// Cumulative ACK: next byte expected by the receiver (ACK packets).
  std::uint64_t ack_seq = 0;
  /// Echo of the data packet's seq this ACK acknowledges (selective info).
  std::uint64_t ack_echo_seq = 0;
  /// Echo of the acknowledged data packet's send timestamp (RTT sampling).
  double ack_echo_send_time = 0.0;

  /// Sender marks this flag when the flow's last byte is in this packet.
  bool fin = false;
  /// ACK of a fin-carrying packet.
  bool fin_ack = false;

  // ECN (RFC 3168-style simplified).
  bool ecn_capable = false;
  bool ecn_marked = false;   ///< CE set by a congested queue
  bool ack_ecn_echo = false; ///< receiver echoes CE on the ACK

  /// Scheduling priority: 0 is served first (strict priority queues).
  std::uint8_t priority = 0;

  /// Explicit path tag (XPath-style source routing); switches may use it to
  /// pick an uplink.  0 means "no explicit path" (ECMP hash instead).
  std::uint32_t path_tag = 0;

  /// Timestamp when the sender handed the packet to the NIC.
  double send_time = 0.0;
};

}  // namespace lf::netsim
