// Node interface plus the switch implementation.
//
// A switch forwards by destination host via a routing function installed by
// the topology builder.  Spine-leaf builders install functions that consult
// the packet's explicit path tag (XPath-style, §4.2 "LiteFlow Path
// Selection Module") or an ECMP hash when no tag is set.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/packet.hpp"

namespace lf::netsim {

class node {
 public:
  explicit node(std::string name) : name_(std::move(name)) {}
  virtual ~node() = default;

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// A packet arrives at this node (after link propagation).
  virtual void deliver(packet pkt) = 0;

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class switch_node final : public node {
 public:
  /// Chooses the egress port index for a packet.
  using route_fn = std::function<std::size_t(const packet&)>;

  explicit switch_node(std::string name) : node{std::move(name)} {}

  /// Ports are owned by the switch; add in index order.
  link& add_port(std::unique_ptr<link> port);

  void set_route(route_fn fn) { route_ = std::move(fn); }

  void deliver(packet pkt) override;

  std::size_t port_count() const noexcept { return ports_.size(); }
  link& port(std::size_t i) { return *ports_.at(i); }
  const link& port(std::size_t i) const { return *ports_.at(i); }

 private:
  std::vector<std::unique_ptr<link>> ports_;
  route_fn route_;
};

}  // namespace lf::netsim
