#include "sim/sim.hpp"

#include <stdexcept>

namespace lf::sim {

void simulation::schedule_at(sim_time t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  queue_.push(event{t, next_seq_++, std::move(fn)});
}

void simulation::schedule(sim_time delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument{"schedule: negative delay"};
  schedule_at(now_ + delay, std::move(fn));
}

void simulation::run_until(sim_time t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) {
    // Copy out before pop so the handler may schedule freely.
    auto fn = queue_.top().fn;
    now_ = queue_.top().t;
    queue_.pop();
    ++executed_;
    fn();
  }
  if (now_ < t_end) now_ = t_end;
}

void simulation::run() {
  while (!queue_.empty()) {
    auto fn = queue_.top().fn;
    now_ = queue_.top().t;
    queue_.pop();
    ++executed_;
    fn();
  }
}

}  // namespace lf::sim
