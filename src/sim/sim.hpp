// Discrete-event simulation core shared by the network simulator and the
// kernel CPU model.  Single-threaded, deterministic: events at equal times
// fire in scheduling order (FIFO tie-break via a sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lf::sim {

using sim_time = double;  ///< seconds

class simulation {
 public:
  sim_time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now).
  void schedule_at(sim_time t, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(sim_time delay, std::function<void()> fn);

  /// Run events until the queue drains or the clock would pass `t_end`;
  /// the clock is left at min(t_end, last event time).
  void run_until(sim_time t_end);

  /// Run until the queue is empty.
  void run();

  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct event {
    sim_time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<event, std::vector<event>, later> queue_;
};

}  // namespace lf::sim
