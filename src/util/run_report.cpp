#include "util/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/bench_report.hpp"

namespace lf::report {
namespace {

// Chart geometry (one fixed layout keeps the renderer allocation-simple).
constexpr double k_w = 760.0, k_h = 300.0;
constexpr double k_ml = 64.0, k_mr = 14.0, k_mt = 14.0, k_mb = 34.0;
constexpr double k_plot_w = k_w - k_ml - k_mr;
constexpr double k_plot_h = k_h - k_mt - k_mb;

constexpr const char* k_palette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                     "#9467bd", "#ff7f0e", "#8c564b"};

std::string fmt(double v) {
  if (!std::isfinite(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

struct range {
  double lo = 0.0;
  double hi = 1.0;

  void widen(double v) {
    if (!std::isfinite(v)) return;
    if (!seen) {
      lo = hi = v;
      seen = true;
      return;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  /// Guarantee hi > lo so projection never divides by zero.
  void finish(double pad_fraction) {
    if (!seen) {
      lo = 0.0;
      hi = 1.0;
      return;
    }
    if (hi <= lo) {
      const double bump = std::max(1.0, std::abs(lo)) * 0.5;
      lo -= bump;
      hi += bump;
      return;
    }
    const double pad = (hi - lo) * pad_fraction;
    lo -= pad;
    hi += pad;
  }

  bool seen = false;
};

double project_x(const range& r, double t) {
  return k_ml + (t - r.lo) / (r.hi - r.lo) * k_plot_w;
}
double project_y(const range& r, double v) {
  return k_mt + k_plot_h - (v - r.lo) / (r.hi - r.lo) * k_plot_h;
}

void render_chart(std::ostringstream& os, const chart_data& c) {
  os << "<section id=\"" << html_escape(c.id) << "\">\n<h2>"
     << html_escape(c.title) << "</h2>\n";

  std::size_t total_points = 0;
  range xr, yr;
  for (const series_data& s : c.series) {
    total_points += s.points.size();
    for (const auto& [t, v] : s.points) {
      xr.widen(t);
      yr.widen(v);
    }
  }
  if (total_points == 0) {
    os << "<p class=\"empty\">no data recorded</p>\n</section>\n";
    return;
  }
  for (const marker& m : c.markers) xr.widen(m.t);
  for (const threshold_line& th : c.thresholds) yr.widen(th.value);
  xr.finish(0.0);
  yr.finish(0.06);

  // Legend (plain colored text; the SVG stays label-free).
  os << "<p class=\"legend\">";
  for (std::size_t i = 0; i < c.series.size(); ++i) {
    os << "<span style=\"color:"
       << k_palette[i % (sizeof(k_palette) / sizeof(k_palette[0]))] << "\">"
       << html_escape(c.series[i].name) << "</span> ";
  }
  os << "</p>\n";

  os << "<svg viewBox=\"0 0 " << k_w << " " << k_h
     << "\" role=\"img\" aria-label=\"" << html_escape(c.title) << "\">\n";
  // Plot frame.
  os << "<rect class=\"frame\" x=\"" << k_ml << "\" y=\"" << k_mt
     << "\" width=\"" << k_plot_w << "\" height=\"" << k_plot_h << "\"/>\n";

  // Axis tick labels: min / mid / max on both axes.
  const double xm = (xr.lo + xr.hi) / 2.0, ym = (yr.lo + yr.hi) / 2.0;
  os << "<text class=\"tick\" x=\"" << k_ml << "\" y=\"" << (k_h - 12)
     << "\">" << fmt(xr.lo) << "</text>\n"
     << "<text class=\"tick\" x=\"" << (k_ml + k_plot_w / 2)
     << "\" y=\"" << (k_h - 12) << "\" text-anchor=\"middle\">" << fmt(xm)
     << "</text>\n"
     << "<text class=\"tick\" x=\"" << (k_w - k_mr) << "\" y=\""
     << (k_h - 12) << "\" text-anchor=\"end\">" << fmt(xr.hi)
     << "</text>\n";
  os << "<text class=\"tick\" x=\"" << (k_ml - 6) << "\" y=\""
     << (k_mt + k_plot_h) << "\" text-anchor=\"end\">" << fmt(yr.lo)
     << "</text>\n"
     << "<text class=\"tick\" x=\"" << (k_ml - 6) << "\" y=\""
     << (k_mt + k_plot_h / 2) << "\" text-anchor=\"end\">" << fmt(ym)
     << "</text>\n"
     << "<text class=\"tick\" x=\"" << (k_ml - 6) << "\" y=\""
     << (k_mt + 10) << "\" text-anchor=\"end\">" << fmt(yr.hi)
     << "</text>\n";
  // Axis captions.
  os << "<text class=\"axis\" x=\"" << (k_ml + k_plot_w / 2) << "\" y=\""
     << (k_h - 1) << "\" text-anchor=\"middle\">time (s)</text>\n";
  if (!c.y_label.empty()) {
    os << "<text class=\"axis\" transform=\"rotate(-90)\" x=\""
       << -(k_mt + k_plot_h / 2) << "\" y=\"12\" text-anchor=\"middle\">"
       << html_escape(c.y_label) << "</text>\n";
  }

  // Threshold reference lines.
  for (const threshold_line& th : c.thresholds) {
    const double y = project_y(yr, th.value);
    os << "<line class=\"threshold\" x1=\"" << k_ml << "\" y1=\"" << y
       << "\" x2=\"" << (k_ml + k_plot_w) << "\" y2=\"" << y
       << "\"><title>" << html_escape(th.label) << " = " << fmt(th.value)
       << "</title></line>\n";
  }

  // Event markers (installs gray, alerts red; <title> is the hover label).
  for (const marker& m : c.markers) {
    const double x = project_x(xr, m.t);
    os << "<line class=\"" << (m.alert ? "marker-alert" : "marker-install")
       << "\" x1=\"" << x << "\" y1=\"" << k_mt << "\" x2=\"" << x
       << "\" y2=\"" << (k_mt + k_plot_h) << "\"><title>"
       << html_escape(m.label) << " @ " << fmt(m.t) << "s</title></line>\n";
  }

  for (std::size_t i = 0; i < c.series.size(); ++i) {
    const series_data& s = c.series[i];
    if (s.points.empty()) continue;
    os << "<polyline class=\"series\" stroke=\""
       << k_palette[i % (sizeof(k_palette) / sizeof(k_palette[0]))]
       << "\" points=\"";
    for (const auto& [t, v] : s.points) {
      os << fmt(project_x(xr, t)) << "," << fmt(project_y(yr, v)) << " ";
    }
    os << "\"/>\n";
  }
  os << "</svg>\n</section>\n";
}

void render_table(std::ostringstream& os, const table_data& t) {
  os << "<section id=\"" << html_escape(t.id) << "\">\n<h2>"
     << html_escape(t.title) << "</h2>\n";
  if (!t.caption.empty()) {
    os << "<p class=\"caption\">" << html_escape(t.caption) << "</p>\n";
  }
  if (t.rows.empty()) {
    os << "<p class=\"empty\">empty</p>\n</section>\n";
    return;
  }
  os << "<table>\n<thead><tr>";
  for (const std::string& col : t.columns) {
    os << "<th>" << html_escape(col) << "</th>";
  }
  os << "</tr></thead>\n<tbody>\n";
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    const std::string* cls =
        r < t.row_classes.size() && !t.row_classes[r].empty()
            ? &t.row_classes[r]
            : nullptr;
    os << "<tr";
    if (cls) os << " class=\"" << html_escape(*cls) << "\"";
    os << ">";
    for (const std::string& cell : t.rows[r]) {
      os << "<td>" << html_escape(cell) << "</td>";
    }
    os << "</tr>\n";
  }
  os << "</tbody>\n</table>\n</section>\n";
}

void render_histogram(std::ostringstream& os, const histogram_data& h) {
  os << "<div class=\"hist\">\n<h3>" << html_escape(h.name) << "</h3>\n"
     << "<p class=\"caption\">count " << h.total << ", mean " << fmt(h.mean)
     << "</p>\n";
  if (h.buckets.empty()) {
    os << "<p class=\"empty\">empty</p>\n</div>\n";
    return;
  }
  std::uint64_t max_count = 0;
  for (const auto& b : h.buckets) max_count = std::max(max_count, b.count);
  // Horizontal bars: one row per non-empty bucket, bar length ∝ count.
  constexpr double bw = 360.0, row_h = 16.0, label_w = 150.0;
  const double hh = row_h * static_cast<double>(h.buckets.size());
  os << "<svg viewBox=\"0 0 " << (label_w + bw + 60) << " " << hh
     << "\" role=\"img\" aria-label=\"" << html_escape(h.name) << "\">\n";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const auto& b = h.buckets[i];
    const double y = row_h * static_cast<double>(i);
    const double len =
        bw * static_cast<double>(b.count) / static_cast<double>(max_count);
    os << "<text class=\"tick\" x=\"" << (label_w - 6) << "\" y=\""
       << (y + 12) << "\" text-anchor=\"end\">[" << fmt(b.lo) << ", "
       << fmt(b.hi) << ")</text>\n"
       << "<rect class=\"bar\" x=\"" << label_w << "\" y=\"" << (y + 2)
       << "\" width=\"" << fmt(std::max(len, 1.0)) << "\" height=\""
       << (row_h - 4) << "\"/>\n"
       << "<text class=\"tick\" x=\"" << (label_w + len + 4) << "\" y=\""
       << (y + 12) << "\">" << b.count << "</text>\n";
  }
  os << "</svg>\n</div>\n";
}

constexpr const char* k_css =
    "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:"
    "860px;color:#1a1a2e;background:#fafafa}"
    "h1{font-size:22px}h2{font-size:17px;margin:28px 0 6px;border-bottom:"
    "1px solid #ddd;padding-bottom:3px}h3{font-size:14px;margin:14px 0 2px}"
    "table{border-collapse:collapse;width:100%;font-size:13px}"
    "th,td{border:1px solid #ccc;padding:3px 8px;text-align:right}"
    "th{background:#eee}td:first-child,th:first-child{text-align:left}"
    "tr.alert-row td{background:#fdecea}"
    "tr.gate-rollback td{background:#fff4e5}"
    "svg{width:100%;height:auto;background:#fff;border:1px solid #ddd}"
    ".frame{fill:none;stroke:#999;stroke-width:1}"
    ".series{fill:none;stroke-width:1.6}"
    ".tick{font:11px sans-serif;fill:#555}.axis{font:11px sans-serif;"
    "fill:#333}"
    ".threshold{stroke:#b8860b;stroke-width:1;stroke-dasharray:6 3}"
    ".marker-install{stroke:#888;stroke-width:1;stroke-dasharray:2 3}"
    ".marker-alert{stroke:#d62728;stroke-width:1.4;stroke-dasharray:4 2}"
    ".bar{fill:#1f77b4}"
    ".caption,.legend{color:#555;font-size:12px;margin:2px 0 6px}"
    ".empty{color:#888;font-style:italic}"
    "dl{display:grid;grid-template-columns:max-content 1fr;gap:2px 16px;"
    "font-size:13px}dt{color:#555}dd{margin:0;font-variant-numeric:"
    "tabular-nums}";

}  // namespace

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

histogram_data make_histogram_data(std::string name,
                                   const metrics::fixed_histogram& h) {
  histogram_data out;
  out.name = std::move(name);
  out.mean = h.mean();
  out.total = h.total();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) == 0) continue;
    out.buckets.push_back(
        histogram_data::bucket{h.bucket_low(i), h.bucket_high(i),
                               h.bucket(i)});
  }
  return out;
}

std::string render_html(const flight_report& r) {
  std::ostringstream os;
  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>" << html_escape(r.title)
     << "</title>\n<style>" << k_css << "</style>\n</head>\n<body>\n"
     << "<h1>" << html_escape(r.title) << "</h1>\n";

  os << "<section id=\"summary\">\n<h2>Run summary</h2>\n<dl>\n";
  for (const auto& [k, v] : r.summary) {
    os << "<dt>" << html_escape(k) << "</dt><dd>" << html_escape(v)
       << "</dd>\n";
  }
  os << "</dl>\n</section>\n";

  for (const chart_data& c : r.charts) render_chart(os, c);
  for (const table_data& t : r.tables) render_table(os, t);

  os << "<section id=\"latency\">\n<h2>Datapath latency</h2>\n";
  if (r.histograms.empty()) {
    os << "<p class=\"empty\">no span data (run with LF_TRACE=1)</p>\n";
  }
  for (const histogram_data& h : r.histograms) render_histogram(os, h);
  os << "</section>\n</body>\n</html>\n";
  return os.str();
}

std::string write_flight_report(const flight_report& r,
                                std::string_view label) {
  std::string safe;
  safe.reserve(label.size());
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    safe += ok ? c : '-';
  }
  if (safe.empty()) safe = "run";

  const std::string dir = bench::output_dir();
  const std::string path = dir + "/REPORT_" + safe + ".html";
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    std::fprintf(stderr,
                 "run_report: cannot write %s: output directory '%s' does "
                 "not exist (check LF_BENCH_OUT)\n",
                 path.c_str(), dir.c_str());
    return {};
  }
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "run_report: cannot open %s for writing\n",
                 path.c_str());
    return {};
  }
  os << render_html(r);
  if (!os) {
    std::fprintf(stderr, "run_report: write to %s failed\n", path.c_str());
    return {};
  }
  return path;
}

}  // namespace lf::report
