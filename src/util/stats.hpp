// Statistics helpers used throughout the benchmarks and tests: running
// moments, percentile extraction, empirical CDFs (both for reporting results
// and for sampling flow sizes from workload distributions) and histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lf {

/// Streaming mean / variance / min / max (Welford's algorithm).
class running_stats {
 public:
  void add(double x) noexcept;
  void merge(const running_stats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using linear interpolation; p in [0, 100].
/// The input is copied and sorted. Returns 0 for an empty sample.
double percentile(std::span<const double> samples, double p);

/// Convenience: several percentiles at once over one sort.
std::vector<double> percentiles(std::span<const double> samples,
                                std::span<const double> ps);

/// Arithmetic mean (0 for empty input).
double mean_of(std::span<const double> samples);

/// Empirical CDF. Built either from raw samples or from explicit
/// (value, cumulative-probability) knots; supports both evaluation (what
/// fraction is <= x) and inverse sampling (value at quantile u).
class empirical_cdf {
 public:
  empirical_cdf() = default;

  /// Build from raw samples (sorted internally).
  static empirical_cdf from_samples(std::span<const double> samples);

  /// Build from knots: pairs of (value, cum_prob), cum_prob non-decreasing,
  /// last cum_prob must be 1.0. Linear interpolation between knots.
  static empirical_cdf from_knots(std::vector<std::pair<double, double>> knots);

  /// P(X <= x).
  double cdf(double x) const noexcept;

  /// Inverse CDF: value at quantile u in [0, 1].
  double quantile(double u) const noexcept;

  double min_value() const noexcept;
  double max_value() const noexcept;
  double mean_value() const noexcept;  ///< mean of the piecewise-linear CDF

  bool empty() const noexcept { return knots_.empty(); }

 private:
  // Sorted (value, cum_prob) pairs.
  std::vector<std::pair<double, double>> knots_;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket so nothing is silently dropped.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const;
  std::uint64_t total() const noexcept { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pretty-print a series of (x, y) rows as an aligned two-column table.
std::string format_series(std::span<const std::pair<double, double>> rows,
                          const std::string& x_name, const std::string& y_name);

}  // namespace lf
