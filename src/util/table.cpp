#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace lf {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"table needs headers"};
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"row width does not match header count"};
  }
  rows_.push_back(std::move(cells));
}

std::string text_table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string text_table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-') << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace lf
