// A tracer that records (time, value) pairs during a simulation run and can
// resample them into fixed-interval averages for plotting paper-style
// figures (goodput vs. time, queue length vs. time, ...).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lf {

class time_series {
 public:
  time_series() = default;
  explicit time_series(std::string name) : name_(std::move(name)) {}

  void record(double t, double value);
  void clear() noexcept { points_.clear(); }

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  std::span<const std::pair<double, double>> points() const noexcept {
    return points_;
  }

  /// Average of values with t in [t0, t1). Returns 0 if no points fall there.
  double average(double t0, double t1) const noexcept;

  /// Resample into buckets of width dt covering [t_start, t_end); each output
  /// element is (bucket_mid_time, mean value in bucket). Empty buckets carry
  /// the previous bucket's value (sample-and-hold), which matches how the
  /// paper plots sparse rate traces.
  std::vector<std::pair<double, double>> resample(double t_start, double t_end,
                                                  double dt) const;

  /// Values only (for percentile computations).
  std::vector<double> values() const;

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;  // sorted by record() order
};

}  // namespace lf
