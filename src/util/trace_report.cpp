#include "util/trace_report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <system_error>
#include <tuple>

#include "util/bench_report.hpp"

namespace lf::trace {
namespace {

using bench::json_escape;
using bench::json_number;

/// One serialized traceEvents entry plus its sort key.  Events are
/// generated in merged-stream order and stable-sorted by timestamp, which
/// keeps B before E (and E before the next same-ts B) for zero-duration
/// spans — generation order is the tie-break.
struct emitted {
  double ts = 0.0;
  std::string json;
};

std::string args_for(const event& e) {
  std::ostringstream os;
  switch (e.type) {
    case event_type::snapshot_install:
      os << "{\"model\":" << e.a << ",\"version\":" << e.b << "}";
      break;
    case event_type::snapshot_switch:
      os << "{\"active_model\":" << e.a << ",\"lock_wait_ns\":" << e.b << "}";
      break;
    case event_type::flow_cache_evict:
      os << "{\"flow\":" << e.a << ",\"model\":" << e.b << "}";
      break;
    case event_type::batch_flush:
      os << "{\"samples\":" << e.a << ",\"bytes\":" << e.b << "}";
      break;
    case event_type::sync_decision:
      os << "{\"converged\":" << ((e.a & 1) ? "true" : "false")
         << ",\"necessary\":" << ((e.a & 2) ? "true" : "false")
         << ",\"min_loss_1e9\":" << e.b << "}";
      break;
    case event_type::lock_acquire:
      os << "{\"hold_ns\":" << e.a << ",\"wait_ns\":" << e.b << "}";
      break;
    case event_type::lock_contend:
      os << "{\"wait_ns\":" << e.a << "}";
      break;
    case event_type::ecn_mark:
      os << "{\"flow\":" << e.a << ",\"queued_bytes\":" << e.b << "}";
      break;
    case event_type::pkt_enqueue:
    case event_type::pkt_drop:
      os << "{\"flow\":" << e.a << ",\"bytes\":" << e.b << "}";
      break;
    case event_type::flow_complete:
      os << "{\"flow\":" << e.a << ",\"fct_ns\":" << e.b << "}";
      break;
    case event_type::alert:
      os << "{\"kind\":" << e.a << ",\"value_1e9\":" << e.b << "}";
      break;
    case event_type::route_summary:
      os << "{\"key\":" << e.a << ",\"gen\":" << e.b << "}";
      break;
    case event_type::gate_verdict:
      os << "{\"model\":" << (e.a >> 1)
         << ",\"admitted\":" << ((e.a & 1) ? "true" : "false")
         << ",\"mean_divergence_1e9\":" << e.b << "}";
      break;
    case event_type::zombie_push:
      os << "{\"gen\":" << e.a << ",\"switch_epoch\":" << e.b << "}";
      break;
    case event_type::version_reclaim:
      os << "{\"freed\":" << e.a << ",\"retired\":" << e.b << "}";
      break;
    case event_type::invariant_violation:
      os << "{\"key\":" << e.a << ",\"expected_gen\":" << (e.b >> 32)
         << ",\"observed_gen\":" << (e.b & 0xffffffffULL) << "}";
      break;
    case event_type::anomaly:
      os << "{\"kind\":" << e.a << ",\"value_1e3\":" << e.b << "}";
      break;
    case event_type::lifecycle_stage:
      os << "{\"stage\":\"" << to_string(lifecycle_phase_of(e.a))
         << "\",\"model\":" << lifecycle_model_of(e.a)
         << ",\"version\":" << lifecycle_version_of(e.a)
         << ",\"cost_ns\":" << e.b << "}";
      break;
    case event_type::snapshot_rollback:
      os << "{\"model\":" << (e.a >> 32)
         << ",\"repromoted_gen\":" << (e.a & 0xffffffffULL)
         << ",\"regressed_gen\":" << e.b << "}";
      break;
    default:
      os << "{\"a\":" << e.a << ",\"b\":" << e.b << "}";
  }
  return os.str();
}

std::string instant_json(const merged_event& m) {
  std::ostringstream os;
  os << "{\"name\":\"" << to_string(m.e.type) << "\",\"ph\":\"i\",\"s\":\"t\""
     << ",\"ts\":" << json_number(m.us) << ",\"pid\":0"
     << ",\"tid\":" << m.component << ",\"args\":" << args_for(m.e) << "}";
  return os.str();
}

}  // namespace

std::string_view task_category_label(std::uint64_t category) noexcept {
  switch (category) {
    case 0: return "datapath";
    case 1: return "softirq";
    case 2: return "user_nn";
    case 3: return "user_train";
    case 4: return "kernel_train";
    default: return "other";
  }
}

std::vector<span> derive_spans(const std::vector<merged_event>& events) {
  std::vector<span> out;
  // FIFO per (component, open type, a): the merged stream is causally
  // ordered, so the oldest open begin with a matching key is the pair.
  std::map<std::tuple<std::uint32_t, event_type, std::uint64_t>,
           std::vector<const merged_event*>>
      open;
  for (const merged_event& m : events) {
    if (is_span_begin(m.e.type)) {
      open[{m.component, m.e.type, m.e.a}].push_back(&m);
      continue;
    }
    const event_type opener = [&]() {
      switch (m.e.type) {
        case event_type::inference_end: return event_type::inference_begin;
        case event_type::task_end: return event_type::task_begin;
        default: return m.e.type;  // not a span end
      }
    }();
    if (opener == m.e.type) continue;
    auto it = open.find({m.component, opener, m.e.a});
    if (it == open.end() || it->second.empty()) continue;  // begin overwritten
    const merged_event* b = it->second.front();
    it->second.erase(it->second.begin());
    out.push_back(span{b->e.t, m.e.t, b->us, m.us, m.domain, m.component,
                       opener, b->e.a, b->e.b});
  }
  return out;
}

void derive_span_stats(const collector& col, span_stats& out) {
  const auto events = col.merged();
  for (const span& s : derive_spans(events)) {
    // One rounding on the raw delta (not a difference of two
    // separately-rounded timestamps): durations stay bit-exact with the
    // pre-time-domain exporter for sim rings.
    const double us = to_export_us(s.domain, s.end - s.begin);
    if (s.open == event_type::inference_begin) {
      out.inference_us.observe(us);
    } else {
      out.task_us.observe(us);
    }
  }
  for (const merged_event& m : events) {
    if (m.e.type == event_type::lock_acquire) {
      out.lock_hold_ns.observe(static_cast<double>(m.e.a));
      out.lock_wait_ns.observe(static_cast<double>(m.e.b));
    }
  }
}

void register_span_stats(span_stats& stats, metrics::registry& reg,
                         const std::string& prefix) {
  reg.register_histogram(prefix + ".span.inference_us", stats.inference_us);
  reg.register_histogram(prefix + ".span.task_us", stats.task_us);
  reg.register_histogram(prefix + ".span.lock_hold_ns", stats.lock_hold_ns);
  reg.register_histogram(prefix + ".span.lock_wait_ns", stats.lock_wait_ns);
}

std::string perfetto_json(const collector& col) {
  const auto merged_events = col.merged();

  std::vector<emitted> out;
  out.reserve(merged_events.size() + col.ring_count());

  // Walk the causal stream once: instants emit in place; span ends emit
  // their whole pair (the begin entry carries the earlier timestamp and is
  // moved into place by the final stable sort).
  struct open_mark {
    double t = 0.0;   ///< raw ring-domain units, for single-rounding durs
    double us = 0.0;  ///< exported microseconds
  };
  std::map<std::tuple<std::uint32_t, event_type, std::uint64_t>,
           std::vector<open_mark>>
      open;
  // All exported timestamps come from merged_event::us (already normalized
  // per the source ring's time domain), so wall-ns flight-recorder rings and
  // sim-second rings share one timeline.  Durations convert the raw delta
  // once instead of subtracting two rounded timestamps.
  for (const merged_event& m : merged_events) {
    switch (m.e.type) {
      case event_type::inference_begin:
      case event_type::task_begin:
        open[{m.component, m.e.type, m.e.a}].push_back(
            open_mark{m.e.t, m.us});
        break;
      case event_type::inference_end: {
        auto it = open.find({m.component, event_type::inference_begin, m.e.a});
        if (it == open.end() || it->second.empty()) break;
        const open_mark begin = it->second.front();
        it->second.erase(it->second.begin());
        std::ostringstream os;
        os << "{\"name\":\"inference\",\"ph\":\"X\",\"ts\":"
           << json_number(begin.us) << ",\"dur\":"
           << json_number(to_export_us(m.domain, m.e.t - begin.t))
           << ",\"pid\":0,\"tid\":" << m.component << ",\"args\":{\"flow\":"
           << m.e.a << ",\"model\":" << m.e.b << "}}";
        out.push_back(emitted{begin.us, os.str()});
        break;
      }
      case event_type::task_end: {
        auto it = open.find({m.component, event_type::task_begin, m.e.a});
        if (it == open.end() || it->second.empty()) break;
        const double begin = it->second.front().us;
        it->second.erase(it->second.begin());
        const std::string name{task_category_label(m.e.a)};
        std::ostringstream b;
        b << "{\"name\":\"" << name << "\",\"ph\":\"B\",\"ts\":"
          << json_number(begin)
          << ",\"pid\":0,\"tid\":" << m.component << "}";
        out.push_back(emitted{begin, b.str()});
        std::ostringstream e;
        e << "{\"name\":\"" << name << "\",\"ph\":\"E\",\"ts\":"
          << json_number(m.us)
          << ",\"pid\":0,\"tid\":" << m.component << "}";
        out.push_back(emitted{m.us, e.str()});
        break;
      }
      default:
        out.push_back(emitted{m.us, instant_json(m)});
    }
  }

  // Perfetto wants ts-sorted streams per thread; stable keeps generation
  // order as the tie-break (B before E at equal ts).
  std::stable_sort(out.begin(), out.end(),
                   [](const emitted& x, const emitted& y) {
                     return x.ts < y.ts;
                   });

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  os << "\n    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"name\":\"liteflow-sim\"}}";
  for (std::uint32_t c = 0; c < col.ring_count(); ++c) {
    os << ",\n    {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << c << ",\"args\":{\"name\":\""
       << json_escape(col.component_name(c)) << "\"}}";
  }
  for (const emitted& e : out) {
    os << ",\n    " << e.json;
  }
  os << "\n  ],\n";

  os << "  \"liteflow\": {\n"
     << "    \"total_emitted\": " << col.total_emitted() << ",\n"
     << "    \"total_overwritten\": " << col.total_overwritten() << ",\n"
     << "    \"components\": [";
  for (std::uint32_t c = 0; c < col.ring_count(); ++c) {
    const ring& r = col.ring_at(c);
    os << (c ? "," : "") << "\n      {\"name\": \"" << json_escape(r.name())
       << "\", \"emitted\": " << r.emitted()
       << ", \"overwritten\": " << r.overwritten()
       << ", \"capacity\": " << r.capacity() << "}";
  }
  os << (col.ring_count() ? "\n    " : "") << "]\n  }\n}\n";
  return os.str();
}

std::string write_trace(const collector& col, std::string_view label,
                        std::string_view prefix) {
  std::string safe;
  safe.reserve(label.size());
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    safe += ok ? c : '-';
  }
  if (safe.empty()) safe = "trace";

  const std::string dir = bench::output_dir();
  const std::string path =
      dir + "/" + std::string{prefix} + "_" + safe + ".json";
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    std::fprintf(stderr,
                 "trace_report: cannot write %s: output directory '%s' does "
                 "not exist (check LF_BENCH_OUT)\n",
                 path.c_str(), dir.c_str());
    return {};
  }
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "trace_report: cannot open %s for writing\n",
                 path.c_str());
    return {};
  }
  os << perfetto_json(col);
  if (!os) {
    std::fprintf(stderr, "trace_report: write to %s failed\n", path.c_str());
    return {};
  }
  return path;
}

}  // namespace lf::trace
