#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lf {

void running_stats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void running_stats::reset() noexcept { *this = running_stats{}; }

double running_stats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> percentiles(std::span<const double> samples,
                                std::span<const double> ps) {
  std::vector<double> out;
  out.reserve(ps.size());
  if (samples.empty()) {
    out.assign(ps.size(), 0.0);
    return out;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  for (const double p : ps) {
    const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    out.push_back(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  }
  return out;
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (const double x : samples) s += x;
  return s / static_cast<double>(samples.size());
}

empirical_cdf empirical_cdf::from_samples(std::span<const double> samples) {
  empirical_cdf c;
  if (samples.empty()) return c;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  c.knots_.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    c.knots_.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return c;
}

empirical_cdf empirical_cdf::from_knots(
    std::vector<std::pair<double, double>> knots) {
  if (knots.empty()) throw std::invalid_argument{"empty CDF knots"};
  for (std::size_t i = 1; i < knots.size(); ++i) {
    if (knots[i].first < knots[i - 1].first ||
        knots[i].second < knots[i - 1].second) {
      throw std::invalid_argument{"CDF knots must be non-decreasing"};
    }
  }
  if (knots.back().second != 1.0) {
    throw std::invalid_argument{"last CDF knot must have cum_prob == 1"};
  }
  empirical_cdf c;
  c.knots_ = std::move(knots);
  return c;
}

double empirical_cdf::cdf(double x) const noexcept {
  if (knots_.empty()) return 0.0;
  if (x < knots_.front().first) return 0.0;
  if (x >= knots_.back().first) return 1.0;
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const auto& k) { return v < k.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.first == lo.first) return hi.second;
  const double frac = (x - lo.first) / (hi.first - lo.first);
  return lo.second + frac * (hi.second - lo.second);
}

double empirical_cdf::quantile(double u) const noexcept {
  if (knots_.empty()) return 0.0;
  u = std::clamp(u, 0.0, 1.0);
  if (u <= knots_.front().second) return knots_.front().first;
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), u,
      [](const auto& k, double v) { return k.second < v; });
  if (it == knots_.begin()) return knots_.front().first;
  if (it == knots_.end()) return knots_.back().first;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.second == lo.second) return hi.first;
  const double frac = (u - lo.second) / (hi.second - lo.second);
  return lo.first + frac * (hi.first - lo.first);
}

double empirical_cdf::min_value() const noexcept {
  return knots_.empty() ? 0.0 : knots_.front().first;
}

double empirical_cdf::max_value() const noexcept {
  return knots_.empty() ? 0.0 : knots_.back().first;
}

double empirical_cdf::mean_value() const noexcept {
  if (knots_.empty()) return 0.0;
  // Integrate value over probability: sum of trapezoids in quantile space.
  double m = knots_.front().first * knots_.front().second;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const double dp = knots_[i].second - knots_[i - 1].second;
    m += 0.5 * (knots_[i].first + knots_[i - 1].first) * dp;
  }
  return m;
}

histogram::histogram(double lo, double hi, std::size_t buckets)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(buckets)},
      counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument{"histogram requires hi > lo and buckets > 0"};
  }
}

void histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t histogram::count(std::size_t bucket) const {
  return counts_.at(bucket);
}

double histogram::bucket_low(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range{"bucket"};
  return lo_ + width_ * static_cast<double>(bucket);
}

double histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket) + width_;
}

std::string format_series(std::span<const std::pair<double, double>> rows,
                          const std::string& x_name,
                          const std::string& y_name) {
  std::ostringstream os;
  os << x_name << "\t" << y_name << "\n";
  for (const auto& [x, y] : rows) os << x << "\t" << y << "\n";
  return os.str();
}

}  // namespace lf
