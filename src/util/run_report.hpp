// Per-run HTML flight report.
//
// BENCH_*.json is for machines and TRACE_*.json needs the Perfetto UI; this
// is the human-facing artifact: one self-contained HTML file per run
// (inline CSS + inline SVG, no external assets, no JavaScript) that a CI
// job can archive and a browser can open from anywhere.  It renders
//   - time-series charts (goodput, fidelity drift) with vertical markers
//     for snapshot installs and health alerts and horizontal threshold
//     lines (the §3.3 necessity bound),
//   - tables (the adaptation monitor's snapshot lifecycle ledger, the
//     fired-alert log),
//   - latency histograms derived from trace spans.
// The renderer is deliberately generic — charts/tables/histograms in, HTML
// out — so apps fill a flight_report from run_result and stay free of
// markup.  Section ids ("summary", "goodput", ..., "latency") are stable
// anchors the report_smoke test greps for.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/metrics.hpp"

namespace lf::report {

/// One plotted line.
struct series_data {
  std::string name;
  std::vector<std::pair<double, double>> points;  ///< (t seconds, value)
};

/// Vertical event marker on a chart's time axis.
struct marker {
  double t = 0.0;
  std::string label;
  bool alert = false;  ///< alert markers render distinctly from installs
};

/// Horizontal reference line (e.g. the necessity threshold).
struct threshold_line {
  double value = 0.0;
  std::string label;
};

struct chart_data {
  std::string id;  ///< section anchor (e.g. "goodput")
  std::string title;
  std::string y_label;
  std::vector<series_data> series;
  std::vector<marker> markers;
  std::vector<threshold_line> thresholds;
};

struct table_data {
  std::string id;  ///< section anchor (e.g. "lifecycle")
  std::string title;
  std::string caption;  ///< rendered under the title; may be empty
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Optional CSS class per row (parallel to rows; "" for none).  Tests
  /// count rows by class (e.g. "lifecycle-update").
  std::vector<std::string> row_classes;
};

/// Pre-digested histogram: only non-empty buckets survive.
struct histogram_data {
  struct bucket {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
  };
  std::string name;
  double mean = 0.0;
  std::uint64_t total = 0;
  std::vector<bucket> buckets;
};

histogram_data make_histogram_data(std::string name,
                                   const metrics::fixed_histogram& h);

struct flight_report {
  std::string title;
  /// Key/value run facts rendered in the "summary" section, in order.
  std::vector<std::pair<std::string, std::string>> summary;
  std::vector<chart_data> charts;
  std::vector<table_data> tables;
  /// Rendered together under the "latency" section anchor.
  std::vector<histogram_data> histograms;
};

/// Escape text for HTML body / attribute contexts.
std::string html_escape(std::string_view s);

/// Render the full self-contained document.
std::string render_html(const flight_report& r);

/// Write REPORT_<label>.html into bench::output_dir() (label sanitized the
/// same way trace files are).  Returns the path, or "" on I/O failure.
std::string write_flight_report(const flight_report& r,
                                std::string_view label);

}  // namespace lf::report
