// Saturating 64-bit integer arithmetic used by the kernel-space snapshot
// engine.  The Linux kernel forbids floating point in most contexts, so the
// generated snapshots (see src/codegen) work exclusively in scaled integers
// ("s64" in kernel parlance).  These helpers centralize the rounding and
// overflow rules so the quantizer, the code generator and the interpreter
// all agree bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace lf::fp {

using s64 = std::int64_t;

inline constexpr s64 s64_max = std::numeric_limits<s64>::max();
inline constexpr s64 s64_min = std::numeric_limits<s64>::min();

/// Saturating addition.
constexpr s64 sat_add(s64 a, s64 b) noexcept {
  s64 r = 0;
  if (__builtin_add_overflow(a, b, &r)) return b > 0 ? s64_max : s64_min;
  return r;
}

/// Saturating subtraction.
constexpr s64 sat_sub(s64 a, s64 b) noexcept {
  s64 r = 0;
  if (__builtin_sub_overflow(a, b, &r)) return b < 0 ? s64_max : s64_min;
  return r;
}

/// Saturating multiplication.
constexpr s64 sat_mul(s64 a, s64 b) noexcept {
  s64 r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    return ((a > 0) == (b > 0)) ? s64_max : s64_min;
  }
  return r;
}

/// Division rounding to nearest, ties away from zero. Divisor must be != 0.
/// Total for all (num, den) pairs: s64_min / -1 saturates to s64_max, and the
/// round-away test is written subtraction-style so it cannot overflow even
/// when |den| > s64_max / 2 (agrees with mul_div(num, 1, den) everywhere).
constexpr s64 div_round(s64 num, s64 den) noexcept {
  if (num == s64_min && den == -1) return s64_max;
  const s64 q = num / den;
  const s64 rem = num % den;
  if (rem == 0) return q;
  // |rem|*2 >= |den| -> round away from zero.  Magnitudes are taken in u64
  // (|s64_min| = 2^63 fits) and compared as |rem| >= |den| - |rem|, which
  // cannot wrap since 0 < |rem| < |den|.
  const auto mag = [](s64 v) {
    return v < 0 ? 0 - static_cast<std::uint64_t>(v)
                 : static_cast<std::uint64_t>(v);
  };
  if (mag(rem) >= mag(den) - mag(rem)) {
    return ((num < 0) == (den < 0)) ? q + 1 : q - 1;
  }
  return q;
}

/// Floor division (rounds toward negative infinity). Divisor must be > 0.
constexpr s64 div_floor(s64 num, s64 den) noexcept {
  const s64 q = num / den;
  const s64 rem = num % den;
  return (rem != 0 && rem < 0) ? q - 1 : q;
}

/// Clamp into [lo, hi].
constexpr s64 clamp(s64 x, s64 lo, s64 hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Multiply then divide with 128-bit intermediate: (a * b) / den, rounded to
/// nearest.  This is the core op of requantization between layers.
constexpr s64 mul_div(s64 a, s64 b, s64 den) noexcept {
  const __int128 prod = static_cast<__int128>(a) * b;
  const __int128 d = den;
  __int128 q = prod / d;
  const __int128 rem = prod % d;
  __int128 abs_rem = rem < 0 ? -rem : rem;
  __int128 abs_d = d < 0 ? -d : d;
  if (abs_rem * 2 >= abs_d) q += ((prod < 0) == (d < 0)) ? 1 : -1;
  if (q > s64_max) return s64_max;
  if (q < s64_min) return s64_min;
  return static_cast<s64>(q);
}

/// Quantize a double to s64, saturating at the representable range instead of
/// hitting the UB of llround on out-of-range values.  NaN maps to 0.
inline s64 sat_quantize(double v) noexcept {
  // 2^63 is exactly representable as a double; every double below it rounds
  // to an in-range s64 (the nearest doubles are >= 1024 apart up there).
  constexpr double hi = 9223372036854775808.0;  // 2^63
  if (v != v) return 0;
  if (v >= hi) return s64_max;
  if (v < -hi) return s64_min;
  return static_cast<s64>(__builtin_llround(v));
}

}  // namespace lf::fp
