// Telemetry registry: one metrics spine every layer reports through.
//
// Design rules (the kernel-datapath constraints of the paper apply to the
// instrumentation too):
//  - Components *own* their metric objects as plain members.  The hot-path
//    operations (counter::inc, gauge::add, fixed_histogram::observe) are
//    inline arithmetic on those members — no map lookup, no locking, no
//    allocation, and identical cost whether or not a registry ever sees
//    them ("zero-overhead when unregistered").
//  - A registry is a borrowing name -> metric* index built at wiring time
//    (experiment setup), used only on the reporting path: enumeration,
//    scalar snapshots for BENCH_*.json, and reset between runs.
//  - Re-registering a name rebinds it (components are torn down and rebuilt
//    between runs); registering never transfers ownership.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time_series.hpp"

namespace lf::metrics {

/// Monotonic event count.  The increment path is a single add.
class counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Single-writer counter whose value may be *read* from other threads while
/// the writer is still incrementing (the rt stats sampler, a mid-run
/// publish_stats()).  The increment stays a plain load+add+store — no
/// lock-prefixed RMW on the hot path — which is exactly correct for the
/// one-writer-many-readers shape: the owning thread is the only mutator, so
/// load(relaxed)+n never loses an update, and readers get some recent value
/// without a data race.  Cross-thread readers must tolerate slightly stale
/// counts; they never see torn or decreasing ones.
class atomic_counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level that can move both ways (queue depth, accumulated CPU-seconds).
class gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi).  Buckets are allocated once at
/// construction; observe() clamps out-of-range values into the edge buckets
/// (nothing is silently dropped) and never allocates.
class fixed_histogram {
 public:
  /// Throws std::invalid_argument for buckets == 0 or any range where
  /// !(hi > lo) — inverted, empty, or NaN bounds — before any width
  /// arithmetic happens.
  fixed_histogram(double lo, double hi, std::size_t buckets);

  void observe(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_low(std::size_t i) const noexcept;
  double bucket_high(std::size_t i) const noexcept;

  std::uint64_t total() const noexcept { return total_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;

  /// Quantile q in [0, 1] estimated by linear interpolation within the
  /// bucket that crosses the target rank.  0 for an empty histogram.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

enum class metric_kind { counter, atomic_counter, gauge, histogram, series };

std::string_view to_string(metric_kind k) noexcept;

/// Borrowing name -> metric index.  Not an owner: the registered objects
/// must outlive the registry or be unregistered/rebound first.
class registry {
 public:
  void register_counter(std::string name, counter& c);
  void register_counter(std::string name, atomic_counter& c);
  void register_gauge(std::string name, gauge& g);
  void register_histogram(std::string name, fixed_histogram& h);
  void register_series(std::string name, time_series& s);

  /// Remove one binding; no-op if absent.
  void unregister(std::string_view name);

  counter* find_counter(std::string_view name) const noexcept;
  atomic_counter* find_atomic_counter(std::string_view name) const noexcept;
  gauge* find_gauge(std::string_view name) const noexcept;
  fixed_histogram* find_histogram(std::string_view name) const noexcept;
  time_series* find_series(std::string_view name) const noexcept;

  bool contains(std::string_view name) const noexcept;
  std::size_t size() const noexcept { return bindings_.size(); }

  /// Every counter and gauge flattened to (name, value), plus each
  /// histogram's count/mean as "<name>.count" / "<name>.mean".  Sorted by
  /// name (map order) so output is deterministic.
  std::vector<std::pair<std::string, double>> scalars() const;

  /// Reset every registered metric (between experiment runs); registered
  /// time series are cleared.
  void reset_all();

  /// Visit (name, kind) for every binding, in name order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, b] : bindings_) fn(name, b.kind);
  }

 private:
  struct binding {
    metric_kind kind;
    void* ptr;
  };

  void bind(std::string name, metric_kind kind, void* ptr);
  const binding* find(std::string_view name, metric_kind kind) const noexcept;

  std::map<std::string, binding, std::less<>> bindings_;
};

}  // namespace lf::metrics
