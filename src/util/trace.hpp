// Datapath event tracer: per-component ring buffers + a borrowing collector.
//
// The metrics spine (util/metrics.hpp) answers "how many / how much" at the
// end of a run; this answers "when, in what order, and how long apart".  The
// same kernel-datapath constraints apply to the instrumentation:
//  - Components *own* a trace::ring as a plain member.  Emission is a bounds
//    mask, a struct store and an increment into a fixed-capacity
//    power-of-two buffer that overwrites the oldest event when full — no
//    allocation, no locking, no branching beyond the single enabled check.
//    A disabled ring (the default: capacity 0) costs exactly that one
//    branch, which bench_micro's tracer-overhead benches pin down.
//  - A trace::collector is a borrowing ring index built at wiring time
//    (experiment setup), used only on the reporting path: it merges every
//    attached ring into one causally-ordered stream (sorted by timestamp,
//    ties broken by component id then per-ring emission order) for the
//    Perfetto exporter and the derived span statistics in
//    util/trace_report.hpp.
//
// Timestamps are simulation::now() seconds; the emitting component supplies
// them (rings do not know about the clock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lf::trace {

/// Typed datapath events.  *_begin types open a span closed by the next
/// enum value (is_span_begin/span_end_of), everything else is a point event.
enum class event_type : std::uint8_t {
  inference_begin = 0,  ///< a = flow id, b = model (snapshot) id
  inference_end,        ///< a = flow id, b = model (snapshot) id
  task_begin,           ///< a = kernelsim task category, b = cost (ns)
  task_end,             ///< a = kernelsim task category
  snapshot_install,     ///< a = model id or version (no lock taken)
  snapshot_switch,      ///< a = new active model id, b = lock wait (ns)
  flow_cache_evict,     ///< a = flow id, b = model id
  batch_flush,          ///< a = samples in the batch, b = bytes shipped
  sync_decision,        ///< a = bit0 converged, bit1 necessary; b = min fidelity loss (1e-9 units)
  lock_acquire,         ///< a = hold (ns), b = wait (ns; 0 if uncontended)
  lock_contend,         ///< a = wait (ns); emitted only when wait > 0
  pkt_enqueue,          ///< a = flow id, b = wire bytes
  pkt_drop,             ///< a = flow id, b = wire bytes (tail or random drop)
  ecn_mark,             ///< a = flow id, b = queued bytes at mark time
  flow_complete,        ///< a = flow id, b = FCT (ns)
  alert,                ///< a = health alert kind, b = rule value (1e-9 units)
  // rt flight-recorder events (wall-clock rings).  Appended so existing
  // numeric values stay stable for stored traces.
  route_summary,        ///< a = composite flow key, b = snapshot generation
  gate_verdict,         ///< a = (model id << 1) | admitted, b = mean divergence (1e-9 units)
  zombie_push,          ///< a = demoted generation, b = switch epoch after bump
  version_reclaim,      ///< a = versions freed, b = versions still retired
  invariant_violation,  ///< a = composite flow key, b = (expected gen << 32) | observed gen
  anomaly,              ///< a = watchdog anomaly kind, b = observed value (1e-3 units)
  lifecycle_stage,      ///< a = pack_lifecycle(stage, model, version), b = stage cost (ns)
  snapshot_rollback,    ///< a = (model id << 32) | re-promoted gen, b = demoted (regressed) gen
};

inline constexpr std::size_t event_type_count = 24;

std::string_view to_string(event_type t) noexcept;

/// Control-plane pipeline stages mirrored into the rt flight recorder as
/// `lifecycle_stage` events (§3.1's freeze → quantize → translate → compile
/// → install sequence, bracketed by train and closed by remove).
enum class lifecycle_phase : std::uint8_t {
  train = 0,
  freeze,
  quantize,
  translate,
  compile,
  install,
  remove,
};

inline constexpr std::size_t lifecycle_phase_count = 7;

std::string_view to_string(lifecycle_phase p) noexcept;

/// Pack a lifecycle_stage event's `a` payload: low byte the phase, next
/// byte the logical model, the rest the snapshot version.
constexpr std::uint64_t pack_lifecycle(lifecycle_phase p, std::uint64_t model,
                                       std::uint64_t version) noexcept {
  return (version << 16) | ((model & 0xff) << 8) |
         static_cast<std::uint64_t>(p);
}

constexpr lifecycle_phase lifecycle_phase_of(std::uint64_t a) noexcept {
  return static_cast<lifecycle_phase>(a & 0xff);
}
constexpr std::uint64_t lifecycle_model_of(std::uint64_t a) noexcept {
  return (a >> 8) & 0xff;
}
constexpr std::uint64_t lifecycle_version_of(std::uint64_t a) noexcept {
  return a >> 16;
}

constexpr bool is_span_begin(event_type t) noexcept {
  return t == event_type::inference_begin || t == event_type::task_begin;
}

/// The closing type of a span opener (valid only when is_span_begin).
constexpr event_type span_end_of(event_type t) noexcept {
  return static_cast<event_type>(static_cast<std::uint8_t>(t) + 1);
}

/// The unit of event::t for one ring.  Sim components stamp seconds from
/// simulation::now(); the rt flight recorder stamps steady_clock
/// nanoseconds.  The exporter normalizes both to microseconds so mixed
/// dumps merge into one causally-ordered Perfetto stream.
enum class time_domain : std::uint8_t { sim_seconds, wall_ns };

/// event::t converted to exported microseconds under domain `d`.
constexpr double to_export_us(time_domain d, double t) noexcept {
  return d == time_domain::sim_seconds ? t * 1e6 : t * 1e-3;
}

/// One trace record.  Fixed-size POD so ring storage is a flat array.
struct event {
  double t = 0.0;  ///< ring time_domain units (sim seconds or wall ns)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  event_type type{};
};

/// Fixed-capacity overwrite-oldest event buffer owned by one component.
/// Disabled (capacity 0) until a collector attaches it or enable() is
/// called; emit() on a disabled ring is a single branch.
class ring {
 public:
  explicit ring(std::string name) : name_{std::move(name)} {}

  ring(const ring&) = delete;
  ring& operator=(const ring&) = delete;

  /// Allocate storage (capacity rounded up to a power of two, minimum 2).
  /// Existing events are discarded.  enable(0) disables.
  void enable(std::size_t capacity);
  void disable() noexcept;
  bool enabled() const noexcept { return !buf_.empty(); }

  /// Hot path: record one event.  Zero allocation; overwrites the oldest
  /// record once the ring is full; no-op (one branch) when disabled.
  void emit(double t, event_type type, std::uint64_t a = 0,
            std::uint64_t b = 0) noexcept {
    if (buf_.empty()) return;
    event& e = buf_[static_cast<std::size_t>(head_) & mask_];
    e.t = t;
    e.a = a;
    e.b = b;
    e.type = type;
    ++head_;
  }

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Unit of event::t for this ring (default: simulation seconds, which
  /// keeps every existing sim component unchanged).
  time_domain domain() const noexcept { return domain_; }
  void set_domain(time_domain d) noexcept { domain_ = d; }

  std::size_t capacity() const noexcept { return buf_.size(); }
  /// Events currently retained (<= capacity).
  std::size_t size() const noexcept;
  /// Total events ever emitted (monotonic, survives overwrites).
  std::uint64_t emitted() const noexcept { return head_; }
  /// Events lost to overwrite-oldest.
  std::uint64_t overwritten() const noexcept;

  void clear() noexcept { head_ = 0; }

  /// Retained events, oldest first (reporting path; allocates).
  std::vector<event> snapshot() const;

  /// Emission index of the oldest retained event (seq of snapshot()[0]).
  std::uint64_t first_seq() const noexcept { return head_ - size(); }

 private:
  std::string name_;
  std::vector<event> buf_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;
  time_domain domain_ = time_domain::sim_seconds;
};

struct collector_config {
  bool enabled = false;
  std::size_t ring_capacity = 4096;  ///< applied to rings on attach
};

/// Environment defaults: LF_TRACE (nonzero enables) and LF_TRACE_RING
/// (per-ring capacity, events).
collector_config config_from_env();

/// One event from the merged stream, tagged with its source ring.
struct merged_event {
  event e;
  double us = 0.0;              ///< e.t normalized to exported microseconds
  std::uint32_t component = 0;  ///< attach order, stable merge tie-break
  std::uint64_t seq = 0;        ///< per-ring emission index
  /// Source ring's domain.  Span durations are computed as
  /// to_export_us(domain, end.t - begin.t) — one rounding on the raw
  /// delta, not a difference of two separately-rounded timestamps.
  time_domain domain = time_domain::sim_seconds;
};

/// Borrowing name -> ring index; rings must outlive the collector.  attach()
/// enables each ring with the configured capacity when tracing is on, so
/// components constructed before wiring pay nothing until then.
class collector {
 public:
  explicit collector(collector_config config = {}) : config_{config} {}

  collector(const collector&) = delete;
  collector& operator=(const collector&) = delete;

  /// Register a ring under `name` (overrides the ring's own name) and
  /// return its component id (attach order).
  std::uint32_t attach(ring& r, std::string name);
  std::uint32_t attach(ring& r) { return attach(r, r.name()); }

  bool enabled() const noexcept { return config_.enabled; }
  const collector_config& config() const noexcept { return config_; }
  std::size_t ring_count() const noexcept { return rings_.size(); }
  const ring& ring_at(std::uint32_t component) const {
    return *rings_[component];
  }
  const std::string& component_name(std::uint32_t component) const {
    return rings_[component]->name();
  }

  /// All retained events merged into causal order: sorted by normalized
  /// microsecond timestamp (so sim-second and wall-ns rings interleave
  /// correctly), equal timestamps ordered by component id, then per-ring
  /// emission order.
  std::vector<merged_event> merged() const;

  std::uint64_t total_emitted() const noexcept;
  std::uint64_t total_overwritten() const noexcept;

  /// Retained (post-overwrite) event count per event_type, indexed by the
  /// enum value.
  std::vector<std::uint64_t> counts_by_type() const;

  void clear_all() noexcept;

 private:
  collector_config config_;
  std::vector<ring*> rings_;  ///< borrowed
};

}  // namespace lf::trace
