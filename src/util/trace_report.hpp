// Reporting side of the datapath tracer (util/trace.hpp): merge the
// per-component rings and export
//  (a) Chrome/Perfetto trace-event JSON — load TRACE_*.json in
//      ui.perfetto.dev or chrome://tracing.  CPU task spans become B/E
//      pairs (they are sequential per component, the FIFO CPU guarantees
//      it); inference spans become X complete events because queries from
//      different flows overlap while queued on the CPU; everything else is
//      an "i" instant with typed args.  pid 0 is the simulated machine,
//      tid is the component id, named via "M" thread_name metadata.
//  (b) derived span statistics (per-phase latency histograms, lock hold
//      vs. wait) fed back into the metrics registry so TRACE-derived
//      numbers land in the same telemetry scalar map as everything else.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lf::trace {

/// Perfetto label for a kernelsim task category id.  Hardcoded copies of
/// kernelsim::to_string(task_category) — util sits below kernelsim in the
/// layer order, so the labels live here and a unit test pins them to the
/// kernelsim names.  Out-of-range ids label as "other".
std::string_view task_category_label(std::uint64_t category) noexcept;

/// A matched begin/end pair from the merged stream.  begin/end are in the
/// source ring's raw time units (sim seconds or wall ns); begin_us/end_us
/// are normalized to exported microseconds, which is what duration math
/// must use when rings of different time domains are mixed.
struct span {
  double begin = 0.0;  ///< raw ring-domain units (sim seconds or wall ns)
  double end = 0.0;
  double begin_us = 0.0;  ///< exported-microsecond timestamps
  double end_us = 0.0;
  time_domain domain = time_domain::sim_seconds;
  std::uint32_t component = 0;
  event_type open{};     ///< inference_begin or task_begin
  std::uint64_t a = 0;   ///< opening event's a (flow id / task category)
  std::uint64_t b = 0;   ///< opening event's b (model id / cost ns)
};

/// FIFO-match *_begin/*_end pairs keyed by (component, span kind, a).
/// Unmatched events — begins still open at the end of the run, ends whose
/// begin was overwritten in the ring — are dropped, which is what keeps
/// the exported B/E stream balanced by construction.
std::vector<span> derive_spans(const std::vector<merged_event>& events);

/// Latency decomposition derived from a trace.  Histogram means are exact
/// (observe() accumulates the raw value even when it clamps the bucket).
struct span_stats {
  metrics::fixed_histogram inference_us{0.0, 100.0, 100};
  metrics::fixed_histogram task_us{0.0, 1000.0, 100};
  metrics::fixed_histogram lock_hold_ns{0.0, 1000.0, 100};
  metrics::fixed_histogram lock_wait_ns{0.0, 1000.0, 100};
};

void derive_span_stats(const collector& col, span_stats& out);

/// Bind the four histograms under "<prefix>.span.*" so registry.scalars()
/// flattens them into the run telemetry ("....count" / "....mean").
void register_span_stats(span_stats& stats, metrics::registry& reg,
                         const std::string& prefix);

/// The full Chrome trace-event document ("traceEvents" array plus a
/// "liteflow" block recording emitted/overwritten totals per component).
std::string perfetto_json(const collector& col);

/// Write <prefix>_<label>.json into bench::output_dir() (same rules as
/// BENCH_*.json).  Non-[A-Za-z0-9._-] label characters become '-'.
/// The default prefix is "TRACE"; the rt flight recorder dumps with
/// "BLACKBOX" through the same exporter.  Returns the path written, or an
/// empty string after a stderr diagnostic.
std::string write_trace(const collector& col, std::string_view label,
                        std::string_view prefix = "TRACE");

}  // namespace lf::trace
