// Aligned text tables for the benchmark binaries.  Every bench prints the
// rows/series its paper figure reports; this keeps the output format uniform
// and trivially diffable against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lf {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  /// Add a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::string to_string() const;
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lf
