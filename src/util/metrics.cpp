#include "util/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace lf::metrics {

namespace {

/// Validate before any arithmetic touches the arguments: the bucket width
/// must never be computed from a zero bucket count or an empty/inverted
/// range (hi <= lo, including NaN bounds, which fail the `hi > lo` test).
double checked_bucket_width(double lo, double hi, std::size_t buckets) {
  if (buckets == 0) throw std::invalid_argument{"histogram needs >= 1 bucket"};
  if (!(hi > lo)) throw std::invalid_argument{"histogram range must be hi > lo"};
  return (hi - lo) / static_cast<double>(buckets);
}

}  // namespace

fixed_histogram::fixed_histogram(double lo, double hi, std::size_t buckets)
    : lo_{lo}, width_{checked_bucket_width(lo, hi, buckets)} {
  counts_.assign(buckets, 0);
}

void fixed_histogram::observe(double x) noexcept {
  const auto last = static_cast<double>(counts_.size() - 1);
  double idx = (x - lo_) / width_;
  if (idx < 0.0) idx = 0.0;
  if (idx > last) idx = last;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  sum_ += x;
}

double fixed_histogram::bucket_low(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double fixed_histogram::bucket_high(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double fixed_histogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double fixed_histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return bucket_low(i) + width_ * std::clamp(within, 0.0, 1.0);
    }
    seen += c;
  }
  return bucket_high(counts_.size() - 1);
}

void fixed_histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

std::string_view to_string(metric_kind k) noexcept {
  switch (k) {
    case metric_kind::counter:
      return "counter";
    case metric_kind::atomic_counter:
      return "atomic_counter";
    case metric_kind::gauge:
      return "gauge";
    case metric_kind::histogram:
      return "histogram";
    case metric_kind::series:
      return "series";
  }
  return "?";
}

void registry::bind(std::string name, metric_kind kind, void* ptr) {
  bindings_.insert_or_assign(std::move(name), binding{kind, ptr});
}

void registry::register_counter(std::string name, counter& c) {
  bind(std::move(name), metric_kind::counter, &c);
}

void registry::register_counter(std::string name, atomic_counter& c) {
  bind(std::move(name), metric_kind::atomic_counter, &c);
}

void registry::register_gauge(std::string name, gauge& g) {
  bind(std::move(name), metric_kind::gauge, &g);
}

void registry::register_histogram(std::string name, fixed_histogram& h) {
  bind(std::move(name), metric_kind::histogram, &h);
}

void registry::register_series(std::string name, time_series& s) {
  bind(std::move(name), metric_kind::series, &s);
}

void registry::unregister(std::string_view name) {
  if (auto it = bindings_.find(name); it != bindings_.end()) {
    bindings_.erase(it);
  }
}

const registry::binding* registry::find(std::string_view name,
                                        metric_kind kind) const noexcept {
  const auto it = bindings_.find(name);
  if (it == bindings_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

counter* registry::find_counter(std::string_view name) const noexcept {
  const auto* b = find(name, metric_kind::counter);
  return b ? static_cast<counter*>(b->ptr) : nullptr;
}

atomic_counter* registry::find_atomic_counter(
    std::string_view name) const noexcept {
  const auto* b = find(name, metric_kind::atomic_counter);
  return b ? static_cast<atomic_counter*>(b->ptr) : nullptr;
}

gauge* registry::find_gauge(std::string_view name) const noexcept {
  const auto* b = find(name, metric_kind::gauge);
  return b ? static_cast<gauge*>(b->ptr) : nullptr;
}

fixed_histogram* registry::find_histogram(std::string_view name) const noexcept {
  const auto* b = find(name, metric_kind::histogram);
  return b ? static_cast<fixed_histogram*>(b->ptr) : nullptr;
}

time_series* registry::find_series(std::string_view name) const noexcept {
  const auto* b = find(name, metric_kind::series);
  return b ? static_cast<time_series*>(b->ptr) : nullptr;
}

bool registry::contains(std::string_view name) const noexcept {
  return bindings_.find(name) != bindings_.end();
}

std::vector<std::pair<std::string, double>> registry::scalars() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(bindings_.size());
  for (const auto& [name, b] : bindings_) {
    switch (b.kind) {
      case metric_kind::counter:
        out.emplace_back(name, static_cast<double>(
                                   static_cast<counter*>(b.ptr)->value()));
        break;
      case metric_kind::atomic_counter:
        out.emplace_back(
            name, static_cast<double>(
                      static_cast<atomic_counter*>(b.ptr)->value()));
        break;
      case metric_kind::gauge:
        out.emplace_back(name, static_cast<gauge*>(b.ptr)->value());
        break;
      case metric_kind::histogram: {
        const auto* h = static_cast<fixed_histogram*>(b.ptr);
        out.emplace_back(name + ".count", static_cast<double>(h->total()));
        out.emplace_back(name + ".mean", h->mean());
        break;
      }
      case metric_kind::series:
        break;  // series are not scalars; reported as series
    }
  }
  return out;
}

void registry::reset_all() {
  for (auto& [name, b] : bindings_) {
    switch (b.kind) {
      case metric_kind::counter:
        static_cast<counter*>(b.ptr)->reset();
        break;
      case metric_kind::atomic_counter:
        static_cast<atomic_counter*>(b.ptr)->reset();
        break;
      case metric_kind::gauge:
        static_cast<gauge*>(b.ptr)->reset();
        break;
      case metric_kind::histogram:
        static_cast<fixed_histogram*>(b.ptr)->reset();
        break;
      case metric_kind::series:
        static_cast<time_series*>(b.ptr)->clear();
        break;
    }
  }
}

}  // namespace lf::metrics
