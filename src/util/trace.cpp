#include "util/trace.hpp"

#include <algorithm>
#include <cstdlib>

namespace lf::trace {

std::string_view to_string(event_type t) noexcept {
  switch (t) {
    case event_type::inference_begin: return "inference_begin";
    case event_type::inference_end: return "inference_end";
    case event_type::task_begin: return "task_begin";
    case event_type::task_end: return "task_end";
    case event_type::snapshot_install: return "snapshot_install";
    case event_type::snapshot_switch: return "snapshot_switch";
    case event_type::flow_cache_evict: return "flow_cache_evict";
    case event_type::batch_flush: return "batch_flush";
    case event_type::sync_decision: return "sync_decision";
    case event_type::lock_acquire: return "lock_acquire";
    case event_type::lock_contend: return "lock_contend";
    case event_type::pkt_enqueue: return "pkt_enqueue";
    case event_type::pkt_drop: return "pkt_drop";
    case event_type::ecn_mark: return "ecn_mark";
    case event_type::flow_complete: return "flow_complete";
    case event_type::alert: return "alert";
    case event_type::route_summary: return "route_summary";
    case event_type::gate_verdict: return "gate_verdict";
    case event_type::zombie_push: return "zombie_push";
    case event_type::version_reclaim: return "version_reclaim";
    case event_type::invariant_violation: return "invariant_violation";
    case event_type::anomaly: return "anomaly";
    case event_type::lifecycle_stage: return "lifecycle_stage";
    case event_type::snapshot_rollback: return "snapshot_rollback";
  }
  return "unknown";
}

std::string_view to_string(lifecycle_phase p) noexcept {
  switch (p) {
    case lifecycle_phase::train: return "train";
    case lifecycle_phase::freeze: return "freeze";
    case lifecycle_phase::quantize: return "quantize";
    case lifecycle_phase::translate: return "translate";
    case lifecycle_phase::compile: return "compile";
    case lifecycle_phase::install: return "install";
    case lifecycle_phase::remove: return "remove";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void ring::enable(std::size_t capacity) {
  if (capacity == 0) {
    disable();
    return;
  }
  const std::size_t cap = round_up_pow2(capacity);
  buf_.assign(cap, event{});
  mask_ = cap - 1;
  head_ = 0;
}

void ring::disable() noexcept {
  buf_.clear();
  buf_.shrink_to_fit();
  mask_ = 0;
  head_ = 0;
}

std::size_t ring::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head_, buf_.size()));
}

std::uint64_t ring::overwritten() const noexcept {
  return head_ - size();
}

std::vector<event> ring::snapshot() const {
  std::vector<event> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::uint64_t i = head_ - n; i != head_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

collector_config config_from_env() {
  collector_config cfg;
  if (const char* v = std::getenv("LF_TRACE")) {
    cfg.enabled = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("LF_TRACE_RING")) {
    const long cap = std::atol(v);
    if (cap > 0) cfg.ring_capacity = static_cast<std::size_t>(cap);
  }
  return cfg;
}

std::uint32_t collector::attach(ring& r, std::string name) {
  r.set_name(std::move(name));
  if (config_.enabled) r.enable(config_.ring_capacity);
  rings_.push_back(&r);
  return static_cast<std::uint32_t>(rings_.size() - 1);
}

std::vector<merged_event> collector::merged() const {
  std::vector<merged_event> out;
  std::size_t total = 0;
  for (const ring* r : rings_) total += r->size();
  out.reserve(total);
  for (std::uint32_t c = 0; c < rings_.size(); ++c) {
    const ring& r = *rings_[c];
    std::uint64_t seq = r.first_seq();
    for (const event& e : r.snapshot()) {
      out.push_back(
          merged_event{e, to_export_us(r.domain(), e.t), c, seq++, r.domain()});
    }
  }
  // Per-ring runs are already in emission order, so sorting by (us,
  // component) with a stable sort preserves the per-ring seq order for
  // exact ties, giving the documented (us, component, seq) total order.
  // Sorting on the normalized microseconds (not raw e.t) is what lets a
  // wall-ns flight-recorder ring merge against sim-second rings.
  std::stable_sort(out.begin(), out.end(),
                   [](const merged_event& x, const merged_event& y) {
                     if (x.us != y.us) return x.us < y.us;
                     return x.component < y.component;
                   });
  return out;
}

std::uint64_t collector::total_emitted() const noexcept {
  std::uint64_t n = 0;
  for (const ring* r : rings_) n += r->emitted();
  return n;
}

std::uint64_t collector::total_overwritten() const noexcept {
  std::uint64_t n = 0;
  for (const ring* r : rings_) n += r->overwritten();
  return n;
}

std::vector<std::uint64_t> collector::counts_by_type() const {
  std::vector<std::uint64_t> counts(event_type_count, 0);
  for (const ring* r : rings_) {
    for (const event& e : r->snapshot()) {
      ++counts[static_cast<std::size_t>(e.type)];
    }
  }
  return counts;
}

void collector::clear_all() noexcept {
  for (ring* r : rings_) r->clear();
}

}  // namespace lf::trace
