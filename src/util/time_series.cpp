#include "util/time_series.hpp"

#include <algorithm>
#include <stdexcept>

namespace lf {

void time_series::record(double t, double value) {
  if (!points_.empty() && t < points_.back().first) {
    throw std::invalid_argument{"time_series::record: time went backwards"};
  }
  points_.emplace_back(t, value);
}

double time_series::average(double t0, double t1) const noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= t0 && t < t1) {
      sum += v;
      ++n;
    }
    if (t >= t1) break;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<std::pair<double, double>> time_series::resample(double t_start,
                                                             double t_end,
                                                             double dt) const {
  std::vector<std::pair<double, double>> out;
  if (dt <= 0.0 || t_end <= t_start) return out;
  double last = 0.0;
  for (double t0 = t_start; t0 < t_end; t0 += dt) {
    const double t1 = std::min(t0 + dt, t_end);
    double sum = 0.0;
    std::size_t n = 0;
    // points_ is sorted; a linear scan per bucket is fine for bench sizes,
    // but start from a lower bound to stay O(total + buckets log n).
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), t0,
        [](const auto& p, double v) { return p.first < v; });
    for (auto jt = it; jt != points_.end() && jt->first < t1; ++jt) {
      sum += jt->second;
      ++n;
    }
    if (n > 0) last = sum / static_cast<double>(n);
    out.emplace_back(0.5 * (t0 + t1), last);
  }
  return out;
}

std::vector<double> time_series::values() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& p : points_) v.push_back(p.second);
  return v;
}

}  // namespace lf
