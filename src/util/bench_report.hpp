// Shared machine-readable benchmark reporter.
//
// Every figure bench writes one BENCH_<figure>.json with a common schema:
//   {
//     "figure":  "fig11",
//     "title":   "goodput by deployment mechanism",
//     "fast_mode": false,
//     "config":  { "duration": 12.0, ... },
//     "series":  { "goodput_bps": [[t, v], ...], ... },
//     "summary": { "lf_aurora_mbps": 812.4, ... }
//   }
// Output directory: $LF_BENCH_OUT if set, else the compiled-in repository
// root (LF_BENCH_OUT_DEFAULT), else the current working directory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time_series.hpp"

namespace lf::bench {

/// Directory BENCH_*.json files land in (see header comment for the rules).
std::string output_dir();

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// added).  Shared with the trace exporter (util/trace_report.cpp).
std::string json_escape(std::string_view s);

/// Encode a double as a JSON number; NaN/Inf become null so the document
/// stays parseable.
std::string json_number(double v);

class report {
 public:
  report(std::string figure, std::string title);

  // Config scalars/strings (insertion order preserved).
  void config(std::string key, double value);
  void config(std::string key, std::string value);
  void config_bool(std::string key, bool value);

  // Named series of (x, y) points.
  void add_series(std::string name,
                  std::span<const std::pair<double, double>> points);
  void add_series(const time_series& ts);  ///< uses the series' own name
  void add_point(std::string_view series, double x, double y);

  // Summary scalars.
  void summary(std::string name, double value);
  void summaries(std::span<const std::pair<std::string, double>> values);

  /// Append one row to a named table (e.g. the snapshot lifecycle ledger:
  /// one row per installed version).  Tables serialize as a top-level
  /// "tables" object mapping each name to an array of {column: value}
  /// row objects; documents with no rows omit the key entirely, so
  /// existing BENCH JSON is byte-identical.
  void add_row(std::string table,
               std::span<const std::pair<std::string, double>> columns);

  const std::string& figure() const noexcept { return figure_; }

  /// Per-process emission index (0 for the first report constructed);
  /// serialized as a top-level "emitted_seq" field.  Monotonic but not
  /// wall-clock, so repeated runs produce diffable JSON.
  std::uint64_t emitted_seq() const noexcept { return emitted_seq_; }

  /// Serialize the full document (tests validate this directly).
  std::string json() const;

  /// Write BENCH_<figure>.json into output_dir().  Returns the path
  /// written, or an empty string on I/O failure.
  std::string write() const;

 private:
  using series_points = std::vector<std::pair<double, double>>;
  using table_row = std::vector<std::pair<std::string, double>>;

  std::string figure_;
  std::string title_;
  std::uint64_t emitted_seq_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-encoded
  std::vector<std::pair<std::string, series_points>> series_;
  std::vector<std::pair<std::string, double>> summary_;
  std::vector<std::pair<std::string, std::vector<table_row>>> tables_;
};

}  // namespace lf::bench
