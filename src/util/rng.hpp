// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this repository takes an explicit seed so
// experiments are reproducible run-to-run.  The generator is xoshiro256++
// (public domain, Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; std::mt19937_64 would also work but is slower and its
// distributions are not portable across standard libraries, which would make
// golden tests fragile.  All distribution transforms here are hand-rolled and
// therefore bit-stable across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace lf {

/// xoshiro256++ engine with splitmix64 seeding.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate (lambda). Mean is 1/rate.
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Pareto variate with shape alpha and scale x_m (heavy-tailed sizes).
  double pareto(double alpha, double x_m) noexcept;

  /// Index in [0, weights.size()) sampled proportionally to weights.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-flow / per-host streams).
  rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lf
