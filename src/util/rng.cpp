#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace lf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A zero state would be a fixed point of the engine; splitmix64 cannot
  // return four zeros from any seed, but keep the guard for clarity.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double rng::normal() noexcept {
  // Box-Muller; discard the second variate to keep the stream stateless.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool rng::bernoulli(double p) noexcept { return uniform() < p; }

double rng::pareto(double alpha, double x_m) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

rng rng::split() noexcept { return rng{next_u64()}; }

}  // namespace lf
