#include "util/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace lf::bench {
namespace {

bool fast_mode_env() {
  const char* v = std::getenv("LF_BENCH_FAST");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Reports are numbered in emission order within the process.  Unlike a
/// wall-clock timestamp this is identical across repeated runs, so
/// fast-mode JSON output stays byte-diffable.
std::uint64_t next_emitted_seq() {
  static std::uint64_t seq = 0;
  return seq++;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf; encode those as null so the file stays parseable.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string output_dir() {
  if (const char* dir = std::getenv("LF_BENCH_OUT"); dir && *dir) return dir;
#ifdef LF_BENCH_OUT_DEFAULT
  return LF_BENCH_OUT_DEFAULT;
#else
  return ".";
#endif
}

report::report(std::string figure, std::string title)
    : figure_{std::move(figure)},
      title_{std::move(title)},
      emitted_seq_{next_emitted_seq()} {}

void report::config(std::string key, double value) {
  config_.emplace_back(std::move(key), json_number(value));
}

void report::config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), "\"" + json_escape(value) + "\"");
}

void report::config_bool(std::string key, bool value) {
  config_.emplace_back(std::move(key), value ? "true" : "false");
}

void report::add_series(std::string name,
                        std::span<const std::pair<double, double>> points) {
  series_.emplace_back(std::move(name),
                       series_points{points.begin(), points.end()});
}

void report::add_series(const time_series& ts) {
  add_series(ts.name().empty() ? "series" : ts.name(), ts.points());
}

void report::add_point(std::string_view series, double x, double y) {
  for (auto& [name, pts] : series_) {
    if (name == series) {
      pts.emplace_back(x, y);
      return;
    }
  }
  series_.emplace_back(std::string{series}, series_points{{x, y}});
}

void report::summary(std::string name, double value) {
  summary_.emplace_back(std::move(name), value);
}

void report::summaries(std::span<const std::pair<std::string, double>> values) {
  for (const auto& [name, value] : values) summary(name, value);
}

void report::add_row(std::string table,
                     std::span<const std::pair<std::string, double>> columns) {
  for (auto& [name, rows] : tables_) {
    if (name == table) {
      rows.emplace_back(columns.begin(), columns.end());
      return;
    }
  }
  tables_.emplace_back(
      std::move(table),
      std::vector<table_row>{table_row{columns.begin(), columns.end()}});
}

std::string report::json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"figure\": \"" << json_escape(figure_) << "\",\n";
  os << "  \"title\": \"" << json_escape(title_) << "\",\n";
  os << "  \"fast_mode\": " << (fast_mode_env() ? "true" : "false") << ",\n";
  os << "  \"emitted_seq\": " << emitted_seq_ << ",\n";

  os << "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(config_[i].first)
       << "\": " << config_[i].second;
  }
  os << (config_.empty() ? "" : "\n  ") << "},\n";

  os << "  \"series\": {";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(series_[i].first)
       << "\": [";
    const auto& pts = series_[i].second;
    for (std::size_t p = 0; p < pts.size(); ++p) {
      os << (p ? "," : "") << "[" << json_number(pts[p].first) << ","
         << json_number(pts[p].second) << "]";
    }
    os << "]";
  }
  os << (series_.empty() ? "" : "\n  ") << "},\n";

  os << "  \"summary\": {";
  for (std::size_t i = 0; i < summary_.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(summary_[i].first)
       << "\": " << json_number(summary_[i].second);
  }
  os << (summary_.empty() ? "" : "\n  ") << "}";

  if (!tables_.empty()) {
    os << ",\n  \"tables\": {";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      os << (t ? "," : "") << "\n    \"" << json_escape(tables_[t].first)
         << "\": [";
      const auto& rows = tables_[t].second;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        os << (r ? "," : "") << "\n      {";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
          os << (c ? "," : "") << "\"" << json_escape(rows[r][c].first)
             << "\": " << json_number(rows[r][c].second);
        }
        os << "}";
      }
      os << (rows.empty() ? "" : "\n    ") << "]";
    }
    os << "\n  }";
  }
  os << "\n}\n";
  return os.str();
}

std::string report::write() const {
  const std::string dir = output_dir();
  const std::string path = dir + "/BENCH_" + figure_ + ".json";
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    std::fprintf(stderr,
                 "bench_report: cannot write %s: output directory '%s' does "
                 "not exist (check LF_BENCH_OUT)\n",
                 path.c_str(), dir.c_str());
    return {};
  }
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "bench_report: cannot open %s for writing\n",
                 path.c_str());
    return {};
  }
  os << json();
  if (!os) {
    std::fprintf(stderr, "bench_report: write to %s failed\n", path.c_str());
    return {};
  }
  return path;
}

}  // namespace lf::bench
