#include "nn/mlp.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace lf::nn {

mlp::mlp(std::size_t input_size, std::span<const layer_spec> layers, rng& gen)
    : input_size_{input_size} {
  if (layers.empty()) throw std::invalid_argument{"mlp needs >= 1 layer"};
  std::size_t in = input_size;
  layers_.reserve(layers.size());
  for (const auto& spec : layers) {
    layers_.emplace_back(in, spec.output_size, spec.act, gen);
    in = spec.output_size;
  }
}

mlp::mlp(std::size_t input_size, std::span<const layer_spec> layers)
    : input_size_{input_size} {
  if (layers.empty()) throw std::invalid_argument{"mlp needs >= 1 layer"};
  std::size_t in = input_size;
  layers_.reserve(layers.size());
  for (const auto& spec : layers) {
    layers_.emplace_back(in, spec.output_size, spec.act);
    in = spec.output_size;
  }
}

std::size_t mlp::output_size() const noexcept {
  return layers_.back().output_size();
}

std::vector<double> mlp::forward(std::span<const double> x) const {
  if (x.size() != input_size_) {
    throw std::invalid_argument{"mlp::forward input size mismatch"};
  }
  std::vector<double> cur(x.begin(), x.end());
  std::vector<double> next;
  for (const auto& layer : layers_) {
    next.assign(layer.output_size(), 0.0);
    layer.forward(cur, next, {});
    cur.swap(next);
  }
  return cur;
}

std::vector<double> mlp::accumulate_gradient(std::span<const double> x,
                                             std::span<const double> grad_out,
                                             std::span<double> grad) const {
  if (grad.size() != parameter_count()) {
    throw std::invalid_argument{"mlp::accumulate_gradient grad size mismatch"};
  }
  // Forward pass caching activations and pre-activations per layer.
  std::vector<std::vector<double>> acts;   // acts[0] = input, acts[i] = layer i-1 output
  std::vector<std::vector<double>> pres;   // pres[i] = layer i pre-activation
  acts.reserve(layers_.size() + 1);
  pres.reserve(layers_.size());
  acts.emplace_back(x.begin(), x.end());
  for (const auto& layer : layers_) {
    pres.emplace_back(layer.output_size(), 0.0);
    std::vector<double> out(layer.output_size(), 0.0);
    layer.forward(acts.back(), out, pres.back());
    acts.push_back(std::move(out));
  }
  if (grad_out.size() != layers_.back().output_size()) {
    throw std::invalid_argument{"mlp::accumulate_gradient grad_out mismatch"};
  }
  // Backward pass.
  std::vector<double> grad_cur(grad_out.begin(), grad_out.end());
  std::vector<double> grad_prev;
  // Locate each layer's slice inside the flat grad vector.
  std::vector<std::size_t> offsets(layers_.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    offsets[i] = off;
    off += layers_[i].param_count();
  }
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& layer = layers_[li];
    grad_prev.assign(layer.input_size(), 0.0);
    auto gw = grad.subspan(offsets[li], layer.weights().size());
    auto gb = grad.subspan(offsets[li] + layer.weights().size(),
                           layer.biases().size());
    layer.backward(acts[li], pres[li], grad_cur,
                   li == 0 ? std::span<double>{} : std::span<double>{grad_prev},
                   gw, gb);
    grad_cur.swap(grad_prev);
  }
  return acts.back();
}

std::vector<double> mlp::parameters() const {
  std::vector<double> out;
  out.reserve(parameter_count());
  for (const auto& layer : layers_) {
    out.insert(out.end(), layer.weights().begin(), layer.weights().end());
    out.insert(out.end(), layer.biases().begin(), layer.biases().end());
  }
  return out;
}

void mlp::set_parameters(std::span<const double> params) {
  if (params.size() != parameter_count()) {
    throw std::invalid_argument{"mlp::set_parameters size mismatch"};
  }
  std::size_t off = 0;
  for (auto& layer : layers_) {
    for (auto& w : layer.weights()) w = params[off++];
    for (auto& b : layer.biases()) b = params[off++];
  }
}

std::size_t mlp::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.param_count();
  return n;
}

double mlp::parameter_distance(const mlp& other) const {
  if (!same_structure(other)) {
    throw std::invalid_argument{"parameter_distance: structure mismatch"};
  }
  const auto a = parameters();
  const auto b = other.parameters();
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(a.size()));
}

std::string mlp::describe() const {
  std::ostringstream os;
  os << input_size_;
  for (const auto& layer : layers_) {
    os << " -> " << layer.output_size() << "(" << to_string(layer.act()) << ")";
  }
  return os.str();
}

bool mlp::same_structure(const mlp& other) const noexcept {
  if (input_size_ != other.input_size_ ||
      layers_.size() != other.layers_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].output_size() != other.layers_[i].output_size() ||
        layers_[i].act() != other.layers_[i].act()) {
      return false;
    }
  }
  return true;
}

mlp make_aurora_net(rng& gen, std::size_t history) {
  // Aurora (Jay et al., ICML'19): k-step history of {latency gradient,
  // latency ratio, sending ratio}; two hidden FC layers of 32 and 16;
  // scalar rate-change output in [-1, 1] via tanh.
  const layer_spec specs[] = {
      {32, activation::tanh_act},
      {16, activation::tanh_act},
      {1, activation::tanh_act},
  };
  return mlp{history * 3, specs, gen};
}

mlp make_mocc_net(rng& gen, std::size_t history) {
  // MOCC (Ma et al., EuroSys'22): Aurora-style observations, hidden layers
  // of 64 and 32.
  const layer_spec specs[] = {
      {64, activation::tanh_act},
      {32, activation::tanh_act},
      {1, activation::tanh_act},
  };
  return mlp{history * 3, specs, gen};
}

mlp make_ffnn_flow_size_net(rng& gen) {
  // FFNN (FLUX, NSDI'19): flow-size predictor with two 5-neuron relu hidden
  // layers.  Inputs: 8 flow-context features (see apps/flow_sched).
  const layer_spec specs[] = {
      {5, activation::relu},
      {5, activation::relu},
      {1, activation::linear},
  };
  return mlp{8, specs, gen};
}

mlp make_lb_mlp_net(rng& gen, std::size_t paths) {
  // Load-balancing MLP (paper §5.3): two 12-neuron relu hidden layers;
  // inputs: per-path {ECN fraction, sRTT, recent utilization} (3 per path);
  // outputs: one score per path.
  const layer_spec specs[] = {
      {12, activation::relu},
      {12, activation::relu},
      {paths, activation::linear},
  };
  return mlp{paths * 3, specs, gen};
}

}  // namespace lf::nn
