// Activation functions for the userspace (slow-path) network.  The
// kernel-space snapshot replaces tanh/sigmoid with lookup tables (see
// src/quant/lut.hpp); these are the exact reference implementations those
// tables approximate.
#pragma once

#include <cstddef>
#include <string_view>

namespace lf::nn {

enum class activation {
  linear,
  relu,
  tanh_act,
  sigmoid,
};

/// f(x)
double activate(activation a, double x) noexcept;

/// f'(x) expressed in terms of x (not of f(x)).
double activate_grad(activation a, double x) noexcept;

std::string_view to_string(activation a) noexcept;

/// Parse the names produced by to_string; throws std::invalid_argument.
activation activation_from_string(std::string_view name);

}  // namespace lf::nn
