#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace lf::nn {
namespace {

void check_sizes(std::span<double> params, std::span<const double> grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument{"optimizer: params/grads size mismatch"};
  }
}

}  // namespace

void sgd::step(std::span<double> params, std::span<const double> grads) {
  check_sizes(params, grads);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * grads[i];
  }
}

void momentum_sgd::step(std::span<double> params,
                        std::span<const double> grads) {
  check_sizes(params, grads);
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = beta_ * velocity_[i] + grads[i];
    params[i] -= lr_ * velocity_[i];
  }
}

void adam::step(std::span<double> params, std::span<const double> grads) {
  check_sizes(params, grads);
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

double clip_gradient_norm(std::span<double> grads, double max_norm) {
  double ss = 0.0;
  for (const double g : grads) ss += g * g;
  const double norm = std::sqrt(ss);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& g : grads) g *= scale;
  }
  return norm;
}

}  // namespace lf::nn
