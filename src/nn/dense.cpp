#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lf::nn {

dense_layer::dense_layer(std::size_t input_size, std::size_t output_size,
                         activation act, rng& gen)
    : dense_layer{input_size, output_size, act} {
  // Glorot-uniform; relu gets the He sqrt(2) correction.
  double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  if (act == activation::relu) limit *= std::sqrt(2.0);
  for (auto& w : w_) w = gen.uniform(-limit, limit);
  // Biases start at zero.
}

dense_layer::dense_layer(std::size_t input_size, std::size_t output_size,
                         activation act)
    : in_{input_size}, out_{output_size}, act_{act},
      w_(input_size * output_size, 0.0), b_(output_size, 0.0) {
  if (input_size == 0 || output_size == 0) {
    throw std::invalid_argument{"dense_layer sizes must be nonzero"};
  }
}

void dense_layer::forward(std::span<const double> x, std::span<double> y,
                          std::span<double> pre) const {
  if (x.size() != in_ || y.size() != out_) {
    throw std::invalid_argument{"dense_layer::forward size mismatch"};
  }
  if (!pre.empty() && pre.size() != out_) {
    throw std::invalid_argument{"dense_layer::forward pre size mismatch"};
  }
  for (std::size_t i = 0; i < out_; ++i) {
    double acc = b_[i];
    const double* row = &w_[i * in_];
    for (std::size_t j = 0; j < in_; ++j) acc += row[j] * x[j];
    if (!pre.empty()) pre[i] = acc;
    y[i] = activate(act_, acc);
  }
}

void dense_layer::backward(std::span<const double> x,
                           std::span<const double> pre,
                           std::span<const double> grad_y,
                           std::span<double> grad_x, std::span<double> grad_w,
                           std::span<double> grad_b) const {
  if (x.size() != in_ || pre.size() != out_ || grad_y.size() != out_ ||
      grad_w.size() != w_.size() || grad_b.size() != b_.size()) {
    throw std::invalid_argument{"dense_layer::backward size mismatch"};
  }
  if (!grad_x.empty() && grad_x.size() != in_) {
    throw std::invalid_argument{"dense_layer::backward grad_x size mismatch"};
  }
  for (auto& g : grad_x) g = 0.0;
  for (std::size_t i = 0; i < out_; ++i) {
    const double dpre = grad_y[i] * activate_grad(act_, pre[i]);
    grad_b[i] += dpre;
    const double* row = &w_[i * in_];
    double* grow = &grad_w[i * in_];
    for (std::size_t j = 0; j < in_; ++j) {
      grow[j] += dpre * x[j];
      if (!grad_x.empty()) grad_x[j] += dpre * row[j];
    }
  }
}

}  // namespace lf::nn
