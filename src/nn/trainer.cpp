#include "nn/trainer.hpp"

#include <stdexcept>

namespace lf::nn {

supervised_trainer::supervised_trainer(mlp& model, loss_kind loss,
                                       std::unique_ptr<optimizer> opt,
                                       double grad_clip)
    : model_{model}, loss_{loss}, opt_{std::move(opt)}, grad_clip_{grad_clip} {
  if (!opt_) throw std::invalid_argument{"supervised_trainer: null optimizer"};
}

train_report supervised_trainer::train_batch(
    std::span<const training_sample> batch) {
  if (batch.empty()) return {};
  std::vector<double> grad(model_.parameter_count(), 0.0);
  double total_loss = 0.0;
  for (const auto& sample : batch) {
    const auto pred = model_.forward(sample.input);
    total_loss += loss_value(loss_, pred, sample.target);
    const auto grad_out = loss_gradient(loss_, pred, sample.target);
    model_.accumulate_gradient(sample.input, grad_out, grad);
  }
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  for (auto& g : grad) g *= inv_n;
  train_report report;
  report.mean_loss = total_loss * inv_n;
  report.grad_norm = clip_gradient_norm(grad, grad_clip_);
  auto params = model_.parameters();
  opt_->step(params, grad);
  model_.set_parameters(params);
  return report;
}

double supervised_trainer::evaluate(
    std::span<const training_sample> batch) const {
  if (batch.empty()) return 0.0;
  double total = 0.0;
  for (const auto& sample : batch) {
    const auto pred = model_.forward(sample.input);
    total += loss_value(loss_, pred, sample.target);
  }
  return total / static_cast<double>(batch.size());
}

}  // namespace lf::nn
