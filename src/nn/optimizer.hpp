// First-order optimizers for the userspace slow path.  The paper notes that
// implementing SGD/ADAM in kernel space is what kills datapath performance
// (§2.3); here they live safely in userspace (simulated) where floating
// point is free.
#pragma once

#include <memory>
#include <span>
#include <vector>

namespace lf::nn {

class optimizer {
 public:
  virtual ~optimizer() = default;

  /// Apply one update: params -= f(grads). Both spans must have equal,
  /// stable sizes across calls (internal state is sized on first use).
  virtual void step(std::span<double> params,
                    std::span<const double> grads) = 0;

  virtual void reset() = 0;
  virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) noexcept = 0;
};

class sgd final : public optimizer {
 public:
  explicit sgd(double lr) : lr_{lr} {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override {}
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_;
};

class momentum_sgd final : public optimizer {
 public:
  momentum_sgd(double lr, double beta = 0.9) : lr_{lr}, beta_{beta} {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override { velocity_.clear(); }
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_;
  double beta_;
  std::vector<double> velocity_;
};

class adam final : public optimizer {
 public:
  explicit adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_{lr}, beta1_{beta1}, beta2_{beta2}, eps_{eps} {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::vector<double> m_;
  std::vector<double> v_;
  long t_ = 0;
};

/// Clip gradient L2 norm in place to max_norm; returns the pre-clip norm.
double clip_gradient_norm(std::span<double> grads, double max_norm);

}  // namespace lf::nn
