#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace lf::nn {

double loss_value(loss_kind k, std::span<const double> pred,
                  std::span<const double> target) {
  if (pred.size() != target.size() || pred.empty()) {
    throw std::invalid_argument{"loss_value size mismatch"};
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    switch (k) {
      case loss_kind::mse:
        acc += d * d;
        break;
      case loss_kind::smooth_l1:
        acc += std::abs(d) <= 1.0 ? 0.5 * d * d : std::abs(d) - 0.5;
        break;
    }
  }
  return acc / static_cast<double>(pred.size());
}

std::vector<double> loss_gradient(loss_kind k, std::span<const double> pred,
                                  std::span<const double> target) {
  if (pred.size() != target.size() || pred.empty()) {
    throw std::invalid_argument{"loss_gradient size mismatch"};
  }
  std::vector<double> g(pred.size());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    switch (k) {
      case loss_kind::mse:
        g[i] = 2.0 * d * inv_n;
        break;
      case loss_kind::smooth_l1:
        g[i] = (std::abs(d) <= 1.0 ? d : (d > 0.0 ? 1.0 : -1.0)) * inv_n;
        break;
    }
  }
  return g;
}

}  // namespace lf::nn
