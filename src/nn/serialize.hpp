// Text (de)serialization of MLP models.  This is the "NN Freezing Interface"
// artifact (§4.1): the userspace service saves the model, and the snapshot
// pipeline reads it back for quantization and code generation — exactly the
// file hand-off the paper describes between the trainer and LiteFlow.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.hpp"

namespace lf::nn {

/// Format:
///   liteflow-mlp v1
///   input <n>
///   layers <k>
///   layer <out> <activation>       (k times)
///   params <count>
///   <count whitespace-separated doubles, full precision>
void save_mlp(const mlp& model, std::ostream& os);
std::string save_mlp_to_string(const mlp& model);

/// Throws std::runtime_error on malformed input.
mlp load_mlp(std::istream& is);
mlp load_mlp_from_string(const std::string& text);

}  // namespace lf::nn
