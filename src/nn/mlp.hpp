// Multi-layer perceptron — the model family every NN in the paper belongs to
// (Aurora: 32/16 tanh, MOCC: 64/32 tanh, FFNN: 5/5 relu, LB-MLP: 12/12 relu).
//
// Parameters are exposed as one flat vector so optimizers and the
// quantizer/code-generator can treat the model generically.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace lf {
class rng;
}

namespace lf::nn {

struct layer_spec {
  std::size_t output_size = 0;
  activation act = activation::linear;
};

class mlp {
 public:
  /// Random (Xavier) initialization.
  mlp(std::size_t input_size, std::span<const layer_spec> layers, rng& gen);

  /// Zero-initialized (for deserialization).
  mlp(std::size_t input_size, std::span<const layer_spec> layers);

  std::size_t input_size() const noexcept { return input_size_; }
  std::size_t output_size() const noexcept;
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const dense_layer& layer(std::size_t i) const { return layers_.at(i); }
  dense_layer& layer(std::size_t i) { return layers_.at(i); }

  /// Inference: returns the output vector.
  std::vector<double> forward(std::span<const double> x) const;

  /// Backpropagation for a single sample.  Runs forward internally, then
  /// accumulates (+=) parameter gradients for the loss whose output gradient
  /// is grad_out (dL/dy).  Returns the forward output (useful when the
  /// caller computes grad_out from it in two passes).
  std::vector<double> accumulate_gradient(std::span<const double> x,
                                          std::span<const double> grad_out,
                                          std::span<double> grad) const;

  /// Flattened parameters (layer 0 weights, layer 0 biases, layer 1 ...).
  std::vector<double> parameters() const;
  void set_parameters(std::span<const double> params);
  std::size_t parameter_count() const noexcept;

  /// Mean L2 distance between this model's parameters and another's.
  double parameter_distance(const mlp& other) const;

  /// Structure description, e.g. "3 -> 32(tanh) -> 16(tanh) -> 1(linear)".
  std::string describe() const;

  /// Structure equality (same shapes + activations).
  bool same_structure(const mlp& other) const noexcept;

 private:
  std::size_t input_size_;
  std::vector<dense_layer> layers_;
};

/// Convenience builders matching the paper's four evaluated networks.
mlp make_aurora_net(rng& gen, std::size_t history = 10);
mlp make_mocc_net(rng& gen, std::size_t history = 10);
mlp make_ffnn_flow_size_net(rng& gen);
mlp make_lb_mlp_net(rng& gen, std::size_t paths = 2);

}  // namespace lf::nn
