#include "nn/serialize.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lf::nn {

void save_mlp(const mlp& model, std::ostream& os) {
  os << "liteflow-mlp v1\n";
  os << "input " << model.input_size() << "\n";
  os << "layers " << model.layer_count() << "\n";
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const auto& layer = model.layer(i);
    os << "layer " << layer.output_size() << " " << to_string(layer.act())
       << "\n";
  }
  const auto params = model.parameters();
  os << "params " << params.size() << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < params.size(); ++i) {
    os << params[i] << ((i + 1) % 8 == 0 ? "\n" : " ");
  }
  os << "\n";
}

std::string save_mlp_to_string(const mlp& model) {
  std::ostringstream os;
  save_mlp(model, os);
  return os.str();
}

namespace {

void expect_token(std::istream& is, const std::string& want) {
  std::string got;
  if (!(is >> got) || got != want) {
    throw std::runtime_error{"mlp load: expected '" + want + "', got '" + got +
                             "'"};
  }
}

}  // namespace

mlp load_mlp(std::istream& is) {
  expect_token(is, "liteflow-mlp");
  expect_token(is, "v1");
  expect_token(is, "input");
  std::size_t input_size = 0;
  if (!(is >> input_size) || input_size == 0) {
    throw std::runtime_error{"mlp load: bad input size"};
  }
  expect_token(is, "layers");
  std::size_t n_layers = 0;
  if (!(is >> n_layers) || n_layers == 0) {
    throw std::runtime_error{"mlp load: bad layer count"};
  }
  std::vector<layer_spec> specs;
  specs.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    expect_token(is, "layer");
    std::size_t out = 0;
    std::string act;
    if (!(is >> out >> act) || out == 0) {
      throw std::runtime_error{"mlp load: bad layer spec"};
    }
    specs.push_back({out, activation_from_string(act)});
  }
  mlp model{input_size, specs};
  expect_token(is, "params");
  std::size_t count = 0;
  if (!(is >> count) || count != model.parameter_count()) {
    throw std::runtime_error{"mlp load: parameter count mismatch"};
  }
  std::vector<double> params(count);
  for (auto& p : params) {
    if (!(is >> p)) throw std::runtime_error{"mlp load: truncated parameters"};
  }
  model.set_parameters(params);
  return model;
}

mlp load_mlp_from_string(const std::string& text) {
  std::istringstream is{text};
  return load_mlp(is);
}

}  // namespace lf::nn
