// Loss functions for supervised slow-path training.
#pragma once

#include <span>
#include <vector>

namespace lf::nn {

enum class loss_kind {
  mse,        ///< mean squared error
  smooth_l1,  ///< Huber loss with delta = 1 (robust to flow-size outliers)
};

/// Loss value for one sample (mean over output dims).
double loss_value(loss_kind k, std::span<const double> pred,
                  std::span<const double> target);

/// dL/dpred for one sample.
std::vector<double> loss_gradient(loss_kind k, std::span<const double> pred,
                                  std::span<const double> target);

}  // namespace lf::nn
