// Supervised mini-batch trainer.  Used by the FFNN flow-size predictor and
// the load-balancing MLP, whose online adaptation is supervised learning on
// labels the datapath observes after the fact (actual flow size, actual FCT).
#pragma once

#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace lf::nn {

struct training_sample {
  std::vector<double> input;
  std::vector<double> target;
};

struct train_report {
  double mean_loss = 0.0;
  double grad_norm = 0.0;  ///< pre-clip L2 norm
};

class supervised_trainer {
 public:
  supervised_trainer(mlp& model, loss_kind loss, std::unique_ptr<optimizer> opt,
                     double grad_clip = 10.0);

  /// One optimizer step over the whole batch (gradient averaged).
  train_report train_batch(std::span<const training_sample> batch);

  /// Mean loss over a set without updating parameters.
  double evaluate(std::span<const training_sample> batch) const;

  const mlp& model() const noexcept { return model_; }
  optimizer& opt() noexcept { return *opt_; }

 private:
  mlp& model_;
  loss_kind loss_;
  std::unique_ptr<optimizer> opt_;
  double grad_clip_;
};

}  // namespace lf::nn
