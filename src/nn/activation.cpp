#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace lf::nn {

double activate(activation a, double x) noexcept {
  switch (a) {
    case activation::linear:
      return x;
    case activation::relu:
      return x > 0.0 ? x : 0.0;
    case activation::tanh_act:
      return std::tanh(x);
    case activation::sigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activate_grad(activation a, double x) noexcept {
  switch (a) {
    case activation::linear:
      return 1.0;
    case activation::relu:
      return x > 0.0 ? 1.0 : 0.0;
    case activation::tanh_act: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case activation::sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}

std::string_view to_string(activation a) noexcept {
  switch (a) {
    case activation::linear:
      return "linear";
    case activation::relu:
      return "relu";
    case activation::tanh_act:
      return "tanh";
    case activation::sigmoid:
      return "sigmoid";
  }
  return "linear";
}

activation activation_from_string(std::string_view name) {
  if (name == "linear") return activation::linear;
  if (name == "relu") return activation::relu;
  if (name == "tanh") return activation::tanh_act;
  if (name == "sigmoid") return activation::sigmoid;
  throw std::invalid_argument{"unknown activation: " + std::string{name}};
}

}  // namespace lf::nn
