// A fully-connected layer: y = act(W x + b).
//
// Weights are stored row-major (output-major), matching both the paper's
// Listing 1 template ("weights[i][j]" with i over outputs) and the layout the
// code generator emits, so the quantizer can hand rows straight through.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/activation.hpp"

namespace lf {
class rng;
}

namespace lf::nn {

class dense_layer {
 public:
  /// Xavier/Glorot-uniform initialization (scaled for tanh/sigmoid; He-style
  /// doubling for relu).
  dense_layer(std::size_t input_size, std::size_t output_size, activation act,
              rng& gen);

  /// All-zero weights (used by deserialization).
  dense_layer(std::size_t input_size, std::size_t output_size, activation act);

  std::size_t input_size() const noexcept { return in_; }
  std::size_t output_size() const noexcept { return out_; }
  activation act() const noexcept { return act_; }

  /// y = act(Wx + b). pre (optional) receives the pre-activation Wx + b for
  /// use by backward(); pass {} to skip.
  void forward(std::span<const double> x, std::span<double> y,
               std::span<double> pre) const;

  /// Backpropagate grad_y (dL/dy) through this layer.
  ///   - x: the input used in forward
  ///   - pre: the cached pre-activation
  ///   - grad_x: receives dL/dx (may be empty for the first layer)
  ///   - grad_w/grad_b: accumulated (+=) parameter gradients
  void backward(std::span<const double> x, std::span<const double> pre,
                std::span<const double> grad_y, std::span<double> grad_x,
                std::span<double> grad_w, std::span<double> grad_b) const;

  /// weight(i, j): weight from input j to output i.
  double weight(std::size_t i, std::size_t j) const {
    return w_[i * in_ + j];
  }
  double bias(std::size_t i) const { return b_[i]; }

  std::span<double> weights() noexcept { return w_; }
  std::span<const double> weights() const noexcept { return w_; }
  std::span<double> biases() noexcept { return b_; }
  std::span<const double> biases() const noexcept { return b_; }

  std::size_t param_count() const noexcept { return w_.size() + b_.size(); }

 private:
  std::size_t in_;
  std::size_t out_;
  activation act_;
  std::vector<double> w_;  // out_ x in_, row-major
  std::vector<double> b_;  // out_
};

}  // namespace lf::nn
