// A miniature Jinja-style template engine (§3.1, Listing 1).
//
// The paper renders kernel C source from layer templates using Python Jinja;
// we reimplement the needed subset in C++ so the whole snapshot pipeline is
// self-contained:
//   {{ expr }}                       output substitution
//   {% for v in range(a, b) %}...{% endfor %}
//   {% for v in array %}...{% endfor %}
//   {% if [not] expr %}...{% endif %}
//   loop.last / loop.first / loop.index0 inside for bodies
//   {%- ... -%} / {{- ... -}}        whitespace trimming
// Expressions: integer literals, identifiers, 1-2 level indexing a[i][j]
// with integer or identifier indices, and the dotted loop variables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lf::codegen {

/// Template values: integers, strings, or (nested) arrays.
class tvalue {
 public:
  tvalue() : kind_{kind::integer}, int_{0} {}
  tvalue(std::int64_t v) : kind_{kind::integer}, int_{v} {}  // NOLINT implicit
  tvalue(std::string v) : kind_{kind::string}, str_{std::move(v)} {}  // NOLINT
  tvalue(const char* v) : tvalue{std::string{v}} {}                   // NOLINT
  // Note parentheses, not braces: brace-init would select vector's
  // initializer_list constructor and recurse through this converting ctor.
  tvalue(std::vector<tvalue> v)                                       // NOLINT
      : kind_{kind::array}, arr_(std::move(v)) {}

  bool is_int() const noexcept { return kind_ == kind::integer; }
  bool is_string() const noexcept { return kind_ == kind::string; }
  bool is_array() const noexcept { return kind_ == kind::array; }

  std::int64_t as_int() const;          ///< throws if not an integer
  const std::string& as_string() const; ///< throws if not a string
  const std::vector<tvalue>& as_array() const;  ///< throws if not an array

  /// Truthiness: nonzero int, nonempty string/array.
  bool truthy() const noexcept;

  /// Rendered form for {{ }} output.
  std::string to_output() const;

 private:
  enum class kind { integer, string, array };
  kind kind_;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<tvalue> arr_;
};

using tcontext = std::map<std::string, tvalue, std::less<>>;

/// Render a template against a context.  Throws template_error with a
/// character offset on malformed templates or unknown variables.
std::string render_template(std::string_view tmpl, const tcontext& ctx);

class template_error : public std::runtime_error {
 public:
  template_error(const std::string& message, std::size_t offset);
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

}  // namespace lf::codegen
