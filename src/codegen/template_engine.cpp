#include "codegen/template_engine.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace lf::codegen {

std::int64_t tvalue::as_int() const {
  if (!is_int()) throw std::runtime_error{"tvalue: not an integer"};
  return int_;
}

const std::string& tvalue::as_string() const {
  if (!is_string()) throw std::runtime_error{"tvalue: not a string"};
  return str_;
}

const std::vector<tvalue>& tvalue::as_array() const {
  if (!is_array()) throw std::runtime_error{"tvalue: not an array"};
  return arr_;
}

bool tvalue::truthy() const noexcept {
  switch (kind_) {
    case kind::integer:
      return int_ != 0;
    case kind::string:
      return !str_.empty();
    case kind::array:
      return !arr_.empty();
  }
  return false;
}

std::string tvalue::to_output() const {
  switch (kind_) {
    case kind::integer:
      return std::to_string(int_);
    case kind::string:
      return str_;
    case kind::array:
      throw std::runtime_error{"tvalue: cannot render an array"};
  }
  return {};
}

template_error::template_error(const std::string& message, std::size_t offset)
    : std::runtime_error{message + " (at offset " + std::to_string(offset) +
                         ")"},
      offset_{offset} {}

namespace {

// ---------------------------------------------------------------- tokens --

enum class token_kind { text, output, tag };

struct token {
  token_kind kind;
  std::string body;   // raw text, or trimmed inner content for output/tag
  std::size_t offset; // source offset (diagnostics)
};

std::string strip(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

std::vector<token> tokenize(std::string_view tmpl) {
  std::vector<token> tokens;
  std::size_t pos = 0;
  bool trim_leading = false;  // set by a preceding -%} / -}}
  while (pos < tmpl.size()) {
    std::size_t open = std::string_view::npos;
    bool is_output = false;
    const auto out_open = tmpl.find("{{", pos);
    const auto tag_open = tmpl.find("{%", pos);
    if (out_open != std::string_view::npos &&
        (tag_open == std::string_view::npos || out_open < tag_open)) {
      // "{{%" is a literal '{' followed by a tag, not an output marker.
      if (tag_open == out_open + 1) {
        open = tag_open;
      } else {
        open = out_open;
        is_output = true;
      }
    } else {
      open = tag_open;
    }
    if (open == std::string_view::npos) {
      auto text = std::string{tmpl.substr(pos)};
      if (trim_leading) {
        const auto first = text.find_first_not_of(" \t\r\n");
        text = first == std::string::npos ? std::string{} : text.substr(first);
      }
      if (!text.empty()) tokens.push_back({token_kind::text, text, pos});
      break;
    }
    // Leading text before the tag.
    if (open > pos) {
      auto text = std::string{tmpl.substr(pos, open - pos)};
      if (trim_leading) {
        const auto first = text.find_first_not_of(" \t\r\n");
        text = first == std::string::npos ? std::string{} : text.substr(first);
      }
      trim_leading = false;
      // {{- or {%- trims trailing whitespace of the preceding text.
      if (open + 2 < tmpl.size() && tmpl[open + 2] == '-') {
        const auto last = text.find_last_not_of(" \t\r\n");
        text = last == std::string::npos ? std::string{} : text.substr(0, last + 1);
      }
      if (!text.empty()) tokens.push_back({token_kind::text, text, pos});
    } else {
      trim_leading = false;
    }
    const std::string_view close_marker = is_output ? "}}" : "%}";
    const auto close = tmpl.find(close_marker, open + 2);
    if (close == std::string_view::npos) {
      throw template_error{"unterminated tag", open};
    }
    std::string_view inner = tmpl.substr(open + 2, close - open - 2);
    if (!inner.empty() && inner.front() == '-') inner.remove_prefix(1);
    bool trim_after = false;
    if (!inner.empty() && inner.back() == '-') {
      inner.remove_suffix(1);
      trim_after = true;
    }
    tokens.push_back({is_output ? token_kind::output : token_kind::tag,
                      strip(inner), open});
    pos = close + 2;
    trim_leading = trim_after;
  }
  return tokens;
}

// ----------------------------------------------------------- expressions --

struct scope {
  const tcontext* globals;
  const std::map<std::string, tvalue, std::less<>>* locals;  // may be null

  const tvalue* find(std::string_view name) const {
    if (locals) {
      const auto it = locals->find(name);
      if (it != locals->end()) return &it->second;
    }
    const auto it = globals->find(name);
    if (it != globals->end()) return &it->second;
    return nullptr;
  }
};

class expr_parser {
 public:
  expr_parser(std::string_view text, std::size_t base_offset)
      : text_{text}, base_{base_offset} {}

  tvalue parse(const scope& sc) {
    const tvalue v = parse_postfix(sc);
    skip_ws();
    if (pos_ != text_.size()) {
      throw template_error{"trailing characters in expression", base_ + pos_};
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  tvalue parse_postfix(const scope& sc) {
    tvalue v = parse_primary(sc);
    while (consume('[')) {
      const tvalue idx = parse_postfix(sc);
      if (!consume(']')) {
        throw template_error{"expected ']'", base_ + pos_};
      }
      const auto& arr = v.as_array();
      const auto i = idx.as_int();
      if (i < 0 || static_cast<std::size_t>(i) >= arr.size()) {
        throw template_error{"index out of range", base_ + pos_};
      }
      v = arr[static_cast<std::size_t>(i)];
    }
    return v;
  }

  tvalue parse_primary(const scope& sc) {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw template_error{"empty expression", base_ + pos_};
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return parse_int();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name = parse_identifier();
      if (name == "range") return parse_range(sc);
      // Dotted lookups (loop.last) resolve as flat keys.
      while (consume('.')) name += "." + parse_identifier();
      const tvalue* v = sc.find(name);
      if (!v) throw template_error{"unknown variable '" + name + "'",
                                   base_ + pos_};
      return *v;
    }
    throw template_error{"unexpected character in expression", base_ + pos_};
  }

  tvalue parse_int() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      throw template_error{"bad integer literal", base_ + start};
    }
    return tvalue{std::stoll(std::string{text_.substr(start, pos_ - start)})};
  }

  std::string parse_identifier() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw template_error{"expected identifier", base_ + start};
    }
    return std::string{text_.substr(start, pos_ - start)};
  }

  tvalue parse_range(const scope& sc) {
    if (!consume('(')) throw template_error{"expected '('", base_ + pos_};
    const auto lo = parse_postfix(sc).as_int();
    if (!consume(',')) throw template_error{"expected ','", base_ + pos_};
    const auto hi = parse_postfix(sc).as_int();
    if (!consume(')')) throw template_error{"expected ')'", base_ + pos_};
    std::vector<tvalue> out;
    for (std::int64_t i = lo; i < hi; ++i) out.emplace_back(i);
    return tvalue{std::move(out)};
  }

  std::string_view text_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

tvalue eval_expr(std::string_view text, std::size_t offset, const scope& sc) {
  return expr_parser{text, offset}.parse(sc);
}

// ------------------------------------------------------------------ AST --

struct node {
  virtual ~node() = default;
  virtual void render(std::ostream& os, const scope& sc) const = 0;
};

using node_list = std::vector<std::unique_ptr<node>>;

struct text_node final : node {
  explicit text_node(std::string t) : text{std::move(t)} {}
  void render(std::ostream& os, const scope&) const override { os << text; }
  std::string text;
};

struct output_node final : node {
  output_node(std::string e, std::size_t off) : expr{std::move(e)}, offset{off} {}
  void render(std::ostream& os, const scope& sc) const override {
    os << eval_expr(expr, offset, sc).to_output();
  }
  std::string expr;
  std::size_t offset;
};

struct for_node final : node {
  std::string var;
  std::string expr;
  std::size_t offset = 0;
  node_list body;

  void render(std::ostream& os, const scope& sc) const override {
    const tvalue seq = eval_expr(expr, offset, sc);
    const auto& items = seq.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::map<std::string, tvalue, std::less<>> locals;
      if (sc.locals) locals = *sc.locals;  // allow nested loops
      locals[var] = items[i];
      locals["loop.index0"] = static_cast<std::int64_t>(i);
      locals["loop.first"] = static_cast<std::int64_t>(i == 0 ? 1 : 0);
      locals["loop.last"] =
          static_cast<std::int64_t>(i + 1 == items.size() ? 1 : 0);
      const scope inner{sc.globals, &locals};
      for (const auto& n : body) n->render(os, inner);
    }
  }
};

struct if_node final : node {
  bool negate = false;
  std::string expr;
  std::size_t offset = 0;
  node_list body;

  void render(std::ostream& os, const scope& sc) const override {
    bool cond = eval_expr(expr, offset, sc).truthy();
    if (negate) cond = !cond;
    if (cond) {
      for (const auto& n : body) n->render(os, sc);
    }
  }
};

// --------------------------------------------------------------- parser --

class block_parser {
 public:
  explicit block_parser(const std::vector<token>& tokens) : tokens_{tokens} {}

  /// Parse until end-of-tokens or until the named closing tag is consumed.
  node_list parse(std::string_view until) {
    node_list out;
    while (pos_ < tokens_.size()) {
      const token& t = tokens_[pos_];
      switch (t.kind) {
        case token_kind::text:
          out.push_back(std::make_unique<text_node>(t.body));
          ++pos_;
          break;
        case token_kind::output:
          out.push_back(std::make_unique<output_node>(t.body, t.offset));
          ++pos_;
          break;
        case token_kind::tag: {
          std::istringstream is{t.body};
          std::string keyword;
          is >> keyword;
          if (keyword == until) {
            ++pos_;
            return out;
          }
          if (keyword == "for") {
            out.push_back(parse_for(t));
          } else if (keyword == "if") {
            out.push_back(parse_if(t));
          } else {
            throw template_error{"unexpected tag '" + keyword + "'", t.offset};
          }
          break;
        }
      }
    }
    if (!until.empty()) {
      throw template_error{"missing closing tag '" + std::string{until} + "'",
                           tokens_.empty() ? 0 : tokens_.back().offset};
    }
    return out;
  }

 private:
  std::unique_ptr<node> parse_for(const token& t) {
    std::istringstream is{t.body};
    std::string kw;
    std::string var;
    std::string in_kw;
    is >> kw >> var >> in_kw;
    std::string expr;
    std::getline(is, expr);
    if (in_kw != "in" || var.empty() || strip(expr).empty()) {
      throw template_error{"malformed for tag", t.offset};
    }
    auto n = std::make_unique<for_node>();
    n->var = var;
    n->expr = strip(expr);
    n->offset = t.offset;
    ++pos_;
    n->body = parse("endfor");
    return n;
  }

  std::unique_ptr<node> parse_if(const token& t) {
    std::string rest = strip(t.body.substr(2));  // drop "if"
    auto n = std::make_unique<if_node>();
    if (rest.rfind("not ", 0) == 0) {
      n->negate = true;
      rest = strip(rest.substr(4));
    }
    if (rest.empty()) throw template_error{"malformed if tag", t.offset};
    n->expr = rest;
    n->offset = t.offset;
    ++pos_;
    n->body = parse("endif");
    return n;
  }

  const std::vector<token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string render_template(std::string_view tmpl, const tcontext& ctx) {
  const auto tokens = tokenize(tmpl);
  block_parser parser{tokens};
  const node_list nodes = parser.parse("");
  std::ostringstream os;
  const scope sc{&ctx, nullptr};
  for (const auto& n : nodes) n->render(os, sc);
  return os.str();
}

}  // namespace lf::codegen
