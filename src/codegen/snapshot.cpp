#include "codegen/snapshot.hpp"

namespace lf::codegen {

snapshot generate_snapshot(const nn::mlp& model,
                           const quant::quantizer_config& qconfig,
                           std::string name, std::uint64_t version) {
  auto program = quant::quantize(model, qconfig);
  emit_options options;
  options.model_name = name;
  options.version = version;
  auto source = emit_c_source(program, options);
  return snapshot{std::move(name), version, std::move(program),
                  std::move(source)};
}

snapshot generate_snapshot(const nn::mlp& model, std::string name,
                           std::uint64_t version) {
  return generate_snapshot(model, quant::quantizer_config{}, std::move(name),
                           version);
}

}  // namespace lf::codegen
