// A snapshot bundles everything §3.1's generator produces for one frozen
// model: the integer program (executable form), the generated C source (the
// artifact the paper compiles into a .ko), and identifying metadata.  It is
// named "snapshot" because, once generated, it is never tuned again — only
// replaced wholesale by the NN snapshot update path (§3.4).
#pragma once

#include <memory>
#include <string>

#include "codegen/c_emitter.hpp"
#include "nn/mlp.hpp"
#include "quant/quantizer.hpp"

namespace lf::codegen {

struct snapshot {
  std::string name;
  std::uint64_t version = 0;
  quant::quantized_mlp program;
  std::string c_source;

  std::size_t input_size() const noexcept { return program.input_size(); }
  std::size_t output_size() const noexcept { return program.output_size(); }
};

/// Freeze + quantize + translate: the full §3.1 pipeline.
snapshot generate_snapshot(const nn::mlp& model,
                           const quant::quantizer_config& qconfig,
                           std::string name, std::uint64_t version);

/// Default quantizer config (io_scale 1000, 1024-entry LUTs).
snapshot generate_snapshot(const nn::mlp& model, std::string name,
                           std::uint64_t version);

}  // namespace lf::codegen
