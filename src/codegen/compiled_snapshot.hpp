// Compile a generated snapshot with the system GCC and load it.
//
// The paper's userspace service "invokes GCC to compile the code into a
// kernel module" and insmod's it.  The userspace equivalent here compiles
// the same source as a shared object and dlopens it; tests use this to prove
// the generated C is bit-identical to the in-memory interpreter, and the
// prediction-latency benchmark (Fig. 15) runs real compiled inference.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/fixed_point.hpp"

namespace lf::codegen {

class compiled_snapshot {
 public:
  /// Write `c_source` to a temp file, compile it with `gcc -O2 -shared`, and
  /// dlopen the result.  Throws std::runtime_error (with the compiler's
  /// stderr) on failure.  Requires a working gcc on PATH.
  static compiled_snapshot compile(const std::string& c_source);

  compiled_snapshot(compiled_snapshot&&) noexcept;
  compiled_snapshot& operator=(compiled_snapshot&&) noexcept;
  compiled_snapshot(const compiled_snapshot&) = delete;
  compiled_snapshot& operator=(const compiled_snapshot&) = delete;
  ~compiled_snapshot();

  /// Run the compiled lf_nn_infer.
  std::vector<fp::s64> infer(std::span<const fp::s64> input,
                             std::size_t output_size) const;

  /// Zero-allocation variant: run the compiled lf_nn_infer into a
  /// caller-owned buffer sized to the model's output.
  void infer_into(std::span<const fp::s64> input, std::span<fp::s64> out) const;

 private:
  compiled_snapshot() = default;

  void* handle_ = nullptr;
  int (*infer_fn_)(const long long*, long long*) = nullptr;
  std::string so_path_;
};

/// True if a usable gcc is available (tests skip gracefully otherwise).
bool compiler_available();

}  // namespace lf::codegen
