// Emits the kernel-module C source for a quantized snapshot (§3.1,
// Listings 1 and 2).
//
// The generated file is valid C99 and compiles in two environments:
//  - as a Linux kernel module (the #ifdef __KERNEL__ section carries the
//    module boilerplate that registers the model with the LiteFlow core
//    module via lf_register_model), and
//  - as a plain userspace translation unit exporting lf_nn_infer, which the
//    test suite compiles with GCC and dlopens to golden-test the generated
//    arithmetic against the in-memory interpreter (quant::quantized_mlp).
// Both paths execute bit-identical integer arithmetic.
#pragma once

#include <string>

#include "quant/quantized_mlp.hpp"

namespace lf::codegen {

struct emit_options {
  std::string model_name = "model";
  std::uint64_t version = 1;
};

/// Render the complete C source for the snapshot program.
std::string emit_c_source(const quant::quantized_mlp& program,
                          const emit_options& options);

}  // namespace lf::codegen
