#include "codegen/compiled_snapshot.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace lf::codegen {
namespace {

/// Unique temp path under TMPDIR (or /tmp).
std::string temp_path(const char* suffix) {
  const char* dir = std::getenv("TMPDIR");
  if (!dir || *dir == '\0') dir = "/tmp";
  static int counter = 0;
  return std::string{dir} + "/lf_snapshot_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter++) + suffix;
}

}  // namespace

bool compiler_available() {
  return std::system("gcc --version > /dev/null 2>&1") == 0;
}

compiled_snapshot compiled_snapshot::compile(const std::string& c_source) {
  const std::string src_path = temp_path(".c");
  const std::string so_path = temp_path(".so");
  const std::string log_path = temp_path(".log");
  {
    std::ofstream os{src_path};
    if (!os) throw std::runtime_error{"cannot write " + src_path};
    os << c_source;
  }
  const std::string cmd = "gcc -O2 -shared -fPIC -o " + so_path + " " +
                          src_path + " 2> " + log_path;
  const int rc = std::system(cmd.c_str());
  std::remove(src_path.c_str());
  if (rc != 0) {
    std::ifstream log{log_path};
    std::string err((std::istreambuf_iterator<char>(log)),
                    std::istreambuf_iterator<char>());
    std::remove(log_path.c_str());
    throw std::runtime_error{"gcc failed to compile snapshot:\n" + err};
  }
  std::remove(log_path.c_str());

  compiled_snapshot snap;
  snap.so_path_ = so_path;
  snap.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!snap.handle_) {
    std::remove(so_path.c_str());
    throw std::runtime_error{std::string{"dlopen failed: "} + ::dlerror()};
  }
  snap.infer_fn_ = reinterpret_cast<int (*)(const long long*, long long*)>(
      ::dlsym(snap.handle_, "lf_nn_infer"));
  if (!snap.infer_fn_) {
    throw std::runtime_error{"lf_nn_infer not found in compiled snapshot"};
  }
  return snap;
}

compiled_snapshot::compiled_snapshot(compiled_snapshot&& other) noexcept
    : handle_{other.handle_}, infer_fn_{other.infer_fn_},
      so_path_{std::move(other.so_path_)} {
  other.handle_ = nullptr;
  other.infer_fn_ = nullptr;
  other.so_path_.clear();
}

compiled_snapshot& compiled_snapshot::operator=(
    compiled_snapshot&& other) noexcept {
  if (this != &other) {
    this->~compiled_snapshot();
    new (this) compiled_snapshot{std::move(other)};
  }
  return *this;
}

compiled_snapshot::~compiled_snapshot() {
  if (handle_) ::dlclose(handle_);
  if (!so_path_.empty()) std::remove(so_path_.c_str());
}

std::vector<fp::s64> compiled_snapshot::infer(std::span<const fp::s64> input,
                                              std::size_t output_size) const {
  std::vector<fp::s64> out(output_size, 0);
  infer_into(input, out);
  return out;
}

void compiled_snapshot::infer_into(std::span<const fp::s64> input,
                                   std::span<fp::s64> out) const {
  if (!infer_fn_) throw std::runtime_error{"compiled snapshot not loaded"};
  // The generated C uses `long long`; fp::s64 is int64_t (`long` on LP64).
  // Same width and representation, so the reinterpret is safe.
  static_assert(sizeof(fp::s64) == sizeof(long long));
  const int rc = infer_fn_(reinterpret_cast<const long long*>(input.data()),
                           reinterpret_cast<long long*>(out.data()));
  if (rc != 0) throw std::runtime_error{"lf_nn_infer returned error"};
}

}  // namespace lf::codegen
