#include "transport/cong_ctrl.hpp"

#include <algorithm>

namespace lf::transport {

std::vector<double> observation_features(const mi_observation& obs) {
  // Aurora (ICML'19) statistics, normalized to be scale-free:
  //  - latency gradient: d(RTT)/dt, dimensionless;
  //  - latency ratio: avg RTT / min RTT, minus 1 so "no queueing" is 0;
  //  - sending ratio: sent rate / delivered rate, minus 1 so "no loss" is 0.
  double lat_ratio = 0.0;
  if (obs.min_rtt > 0.0 && obs.avg_rtt > 0.0) {
    lat_ratio = obs.avg_rtt / obs.min_rtt - 1.0;
  }
  double send_ratio = 0.0;
  if (obs.throughput > 0.0) {
    send_ratio = obs.send_rate / obs.throughput - 1.0;
  } else if (obs.send_rate > 0.0) {
    send_ratio = 10.0;  // sent plenty, delivered nothing: saturate the signal
  }
  const double clamp = [](double v, double lo, double hi) {
    return std::min(std::max(v, lo), hi);
  }(obs.rtt_gradient, -10.0, 10.0);
  return {clamp, std::min(lat_ratio, 10.0), std::min(send_ratio, 10.0)};
}

double apply_rate_action(double current_bps, double action, double delta,
                         double min_bps, double max_bps) {
  action = std::clamp(action, -1.0, 1.0);
  double next = current_bps;
  if (action >= 0.0) {
    next = current_bps * (1.0 + delta * action);
  } else {
    next = current_bps / (1.0 - delta * action);
  }
  return std::clamp(next, min_bps, max_bps);
}

}  // namespace lf::transport
