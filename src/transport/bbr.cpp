#include "transport/bbr.hpp"

#include <algorithm>

namespace lf::transport {

bbr::bbr(bbr_config config)
    : config_{config}, pacing_gain_{config.startup_gain},
      cwnd_{config.initial_cwnd_segments * config.mss} {}

void bbr::on_ack(const ack_event& ev) {
  // RTprop filter.
  if (ev.rtt > 0.0) {
    if (rtprop_ == 0.0 || ev.rtt < rtprop_ ||
        ev.now - rtprop_stamp_ > config_.rtprop_window) {
      rtprop_ = ev.rtt;
      rtprop_stamp_ = ev.now;
    }
  }
  // Delivery-rate sample: acked bytes over a ~1 RTT measurement epoch.
  bool new_sample = false;
  if (ev.newly_acked_bytes > 0) {
    if (epoch_start_ < 0.0) epoch_start_ = ev.now;
    delivered_bytes_ += static_cast<double>(ev.newly_acked_bytes);
    const double epoch_len = std::max(rtprop_, 1e-4);
    if (ev.now - epoch_start_ >= epoch_len) {
      const double rate = delivered_bytes_ * 8.0 / (ev.now - epoch_start_);
      delivered_bytes_ = 0.0;
      epoch_start_ = ev.now;
      new_sample = true;
      add_rate_sample(ev.now, rate);
    }
  }
  switch (mode_) {
    case mode::startup:
      // Plateau detection: bandwidth grew <25% across 3 consecutive rate
      // samples (per-epoch, NOT per ACK — per-ACK checks would declare a
      // plateau after three packets).
      if (!new_sample) break;
      if (btlbw_ > full_bw_ * 1.25) {
        full_bw_ = btlbw_;
        full_bw_count_ = 0;
      } else if (++full_bw_count_ >= 3) {
        mode_ = mode::drain;
        pacing_gain_ = config_.drain_gain;
        cycle_stamp_ = ev.now;
      }
      break;
    case mode::drain:
      if (ev.now - cycle_stamp_ > std::max(rtprop_, 1e-6)) {
        mode_ = mode::probe_bw;
        cycle_index_ = 2;  // start in a cruise phase
        pacing_gain_ = k_cycle_gains[cycle_index_];
        cycle_stamp_ = ev.now;
      }
      break;
    case mode::probe_bw:
      advance_cycle(ev.now);
      break;
  }
  // cwnd cap: cwnd_gain * BDP.
  if (btlbw_ > 0.0 && rtprop_ > 0.0) {
    cwnd_ = std::max(4.0 * config_.mss,
                     config_.cwnd_gain * btlbw_ / 8.0 * rtprop_);
  } else {
    cwnd_ += static_cast<double>(ev.newly_acked_bytes);
  }
}

void bbr::add_rate_sample(double now, double rate) {
  // Windowed max filter: BtlBw is the best delivery rate seen over the
  // last btlbw_window RTTs, so one recovery-depressed sample cannot
  // collapse the model.
  rate_samples_.emplace_back(now, rate);
  const double horizon =
      config_.btlbw_window * std::max(rtprop_, 1e-3);
  while (!rate_samples_.empty() &&
         now - rate_samples_.front().first > horizon) {
    rate_samples_.pop_front();
  }
  btlbw_ = 0.0;
  for (const auto& [t, r] : rate_samples_) btlbw_ = std::max(btlbw_, r);
}

void bbr::advance_cycle(double now) {
  if (now - cycle_stamp_ > std::max(rtprop_, 1e-6)) {
    cycle_index_ = (cycle_index_ + 1) % k_cycle_gains.size();
    pacing_gain_ = k_cycle_gains[cycle_index_];
    cycle_stamp_ = now;
  }
}

void bbr::on_loss(double) {
  // BBR does not react to isolated losses; the cwnd cap bounds inflight.
}

void bbr::on_timeout(double) {
  // Retain the path model (BtlBw/RTprop survive an RTO in BBR); just back
  // off the window briefly and pace conservatively until ACKs restart.
  cwnd_ = std::max(cwnd_ * 0.5, 4.0 * config_.mss);
  if (mode_ == mode::startup) {
    // Startup overshoot caused the timeout: move on to steady state.
    mode_ = mode::probe_bw;
    cycle_index_ = 2;
    pacing_gain_ = k_cycle_gains[cycle_index_];
  }
  delivered_bytes_ = 0.0;
  epoch_start_ = -1.0;
}

double bbr::cwnd_bytes() const { return cwnd_; }

double bbr::pacing_bps() const {
  if (btlbw_ <= 0.0) {
    // Startup before any bandwidth estimate: pace at cwnd / rtprop or a
    // permissive default.
    if (rtprop_ > 0.0) return pacing_gain_ * cwnd_ * 8.0 / rtprop_;
    return 0.0;  // unpaced until the first RTT sample
  }
  return pacing_gain_ * btlbw_;
}

}  // namespace lf::transport
