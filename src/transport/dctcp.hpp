// DCTCP (Alizadeh et al., SIGCOMM 2010) — the CC substrate of the paper's
// flow-scheduling and load-balancing experiments (§5.2/§5.3), which run a
// 2x2 spine-leaf with DCTCP and the web-search workload.
//
// Standard algorithm: per-RTT ECN fraction F, EWMA alpha <- (1-g)alpha + gF,
// window cut cwnd *= (1 - alpha/2) at most once per RTT, slow start, and
// Reno-style additive increase otherwise.
#pragma once

#include "transport/cong_ctrl.hpp"

namespace lf::transport {

struct dctcp_config {
  double g = 1.0 / 16.0;  ///< alpha EWMA gain
  std::uint32_t mss = 1460;
  double initial_cwnd_segments = 10.0;
};

class dctcp final : public cong_ctrl {
 public:
  explicit dctcp(dctcp_config config = {});

  void on_ack(const ack_event& ev) override;
  void on_loss(double now) override;
  void on_timeout(double now) override;

  double cwnd_bytes() const override;
  const char* name() const override { return "dctcp"; }

  double alpha() const noexcept { return alpha_; }
  double cwnd_segments() const noexcept { return cwnd_; }

 private:
  void end_observation_window(double now);

  dctcp_config config_;
  double cwnd_;
  double ssthresh_ = 1e9;
  double alpha_ = 0.0;
  double srtt_ = 0.0;
  // Per-window ECN accounting.
  std::uint64_t window_acked_ = 0;
  std::uint64_t window_marked_ = 0;
  double window_start_ = 0.0;
  double last_cut_time_ = -1.0;
};

}  // namespace lf::transport
