// CUBIC congestion control (Ha, Rhee, Xu 2008), the Linux default the paper
// uses as a kernel-space baseline in Figs. 11/13.
//
// Implements the cubic window growth W(t) = C*(t - K)^3 + Wmax with beta
// multiplicative decrease and slow start; the TCP-friendly region is
// included since low-BDP runs rely on it.
#pragma once

#include "transport/cong_ctrl.hpp"

namespace lf::transport {

struct cubic_config {
  double c = 0.4;           ///< cubic scaling constant (units: MSS/s^3)
  double beta = 0.7;        ///< multiplicative decrease factor
  std::uint32_t mss = 1460;
  double initial_cwnd_segments = 10.0;
  double ssthresh_segments = 1e9;  ///< effectively "slow start until loss"
};

class cubic final : public cong_ctrl {
 public:
  explicit cubic(cubic_config config = {});

  void on_ack(const ack_event& ev) override;
  void on_loss(double now) override;
  void on_timeout(double now) override;

  double cwnd_bytes() const override;
  const char* name() const override { return "cubic"; }

  double cwnd_segments() const noexcept { return cwnd_; }
  bool in_slow_start() const noexcept { return cwnd_ < ssthresh_; }

 private:
  double cubic_window(double t) const noexcept;

  cubic_config config_;
  double cwnd_;      ///< segments
  double ssthresh_;  ///< segments
  double w_max_ = 0.0;
  double k_ = 0.0;
  double epoch_start_ = -1.0;
  double srtt_ = 0.0;
  double min_rtt_ = 0.0;
  double tcp_cwnd_ = 0.0;  ///< TCP-friendly estimate
};

}  // namespace lf::transport
