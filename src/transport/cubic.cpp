#include "transport/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace lf::transport {

cubic::cubic(cubic_config config)
    : config_{config}, cwnd_{config.initial_cwnd_segments},
      ssthresh_{config.ssthresh_segments} {}

double cubic::cubic_window(double t) const noexcept {
  const double d = t - k_;
  return config_.c * d * d * d + w_max_;
}

void cubic::on_ack(const ack_event& ev) {
  if (ev.rtt > 0.0) {
    srtt_ = srtt_ == 0.0 ? ev.rtt : 0.875 * srtt_ + 0.125 * ev.rtt;
    if (min_rtt_ == 0.0 || ev.rtt < min_rtt_) min_rtt_ = ev.rtt;
  }
  const double acked_segments =
      static_cast<double>(ev.newly_acked_bytes) / config_.mss;
  if (in_slow_start()) {
    // HyStart-style delay-based exit (Linux CUBIC): leave slow start when
    // queueing delay builds noticeably instead of blasting until loss —
    // in deep-buffered paths the overshoot would otherwise drop tens of
    // thousands of segments at once.  Linux clamps the delay threshold to
    // [4ms, 16ms], which keeps small jitter from triggering early exits.
    const double delay_threshold =
        std::clamp(min_rtt_ / 8.0, 4e-3, 16e-3);
    if (min_rtt_ > 0.0 && ev.rtt > min_rtt_ + delay_threshold &&
        cwnd_ > 16.0) {
      ssthresh_ = cwnd_;
      epoch_start_ = -1.0;
      w_max_ = cwnd_;
    } else {
      cwnd_ += acked_segments;
      return;
    }
  }
  if (epoch_start_ < 0.0) {
    // New congestion-avoidance epoch.
    epoch_start_ = ev.now;
    w_max_ = std::max(w_max_, cwnd_);
    k_ = std::cbrt(std::max(0.0, (w_max_ - cwnd_) / config_.c));
    tcp_cwnd_ = cwnd_;
  }
  const double t = ev.now - epoch_start_;
  const double target = cubic_window(t + (srtt_ > 0.0 ? srtt_ : 0.0));
  // TCP-friendly region (standard Reno estimate).
  if (srtt_ > 0.0) {
    tcp_cwnd_ += 3.0 * (1.0 - config_.beta) / (1.0 + config_.beta) *
                 acked_segments / cwnd_;
  }
  const double goal = std::max(target, tcp_cwnd_);
  if (goal > cwnd_) {
    cwnd_ += (goal - cwnd_) / cwnd_ * acked_segments;
  } else {
    cwnd_ += 0.01 * acked_segments / cwnd_;  // slow max probing
  }
}

void cubic::on_loss(double) {
  w_max_ = cwnd_;
  cwnd_ = std::max(2.0, cwnd_ * config_.beta);
  ssthresh_ = cwnd_;
  epoch_start_ = -1.0;
}

void cubic::on_timeout(double) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(2.0, cwnd_ * config_.beta);
  cwnd_ = 2.0;
  epoch_start_ = -1.0;
}

double cubic::cwnd_bytes() const {
  return cwnd_ * static_cast<double>(config_.mss);
}

}  // namespace lf::transport
