// Reliable window-based sender with pluggable congestion control.
//
// Implements the minimal TCP machinery the evaluation needs: cumulative
// ACKs, triple-duplicate-ACK fast retransmit, RTO with go-back-N recovery,
// optional pacing (BBR), ECN-capable transport (DCTCP), per-packet priority
// tagging (flow scheduling module) and explicit path tags (path selection
// module).  A flow carries a fixed number of bytes and reports its FCT on
// completion.
#pragma once

#include <functional>
#include <memory>

#include "netsim/host.hpp"
#include "transport/cong_ctrl.hpp"

namespace lf::transport {

struct window_sender_config {
  std::uint32_t mss = 1460;
  /// RTO floor; the effective RTO is max(min_rto, srtt + 4*rttvar)
  /// (Jacobson/Karels), so queueing delay does not cause spurious timeouts.
  double min_rto = 5e-3;
  std::uint8_t priority = 4;   ///< strict-priority band (0 = highest)
  std::uint32_t path_tag = 0;  ///< explicit path (0 = ECMP)
};

class window_sender final : public netsim::flow_sender {
 public:
  window_sender(netsim::host& src, netsim::host_id_t dst,
                netsim::flow_id_t flow, std::uint64_t size_bytes,
                window_sender_config config, std::unique_ptr<cong_ctrl> cc);
  ~window_sender() override;

  window_sender(const window_sender&) = delete;
  window_sender& operator=(const window_sender&) = delete;

  void start();

  /// Fires once, when the final byte is cumulatively acknowledged.
  using done_callback = std::function<void(double fct_seconds)>;
  void set_done(done_callback cb) { done_ = std::move(cb); }

  void on_ack(const netsim::packet& ack) override;

  bool finished() const noexcept { return finished_; }
  double start_time() const noexcept { return start_time_; }
  std::uint64_t size_bytes() const noexcept { return size_; }
  netsim::flow_id_t flow() const noexcept { return flow_; }
  const cong_ctrl& controller() const noexcept { return *cc_; }

  /// Re-tag priority (e.g. after a flow-size prediction arrives).
  void set_priority(std::uint8_t priority) noexcept {
    config_.priority = priority;
  }
  void set_path_tag(std::uint32_t tag) noexcept { config_.path_tag = tag; }

  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  std::uint64_t timeouts() const noexcept { return timeouts_; }

  /// Observe every cumulative ACK's event (used by the load-balancing
  /// module to maintain per-path congestion statistics).
  using ack_observer = std::function<void(const ack_event&)>;
  void set_ack_observer(ack_observer fn) { ack_observer_ = std::move(fn); }

 private:
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto(std::uint64_t armed_epoch);
  void complete();

  netsim::host& src_;
  netsim::host_id_t dst_;
  netsim::flow_id_t flow_;
  std::uint64_t size_;
  window_sender_config config_;
  std::unique_ptr<cong_ctrl> cc_;

  bool started_ = false;
  bool finished_ = false;
  double start_time_ = 0.0;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_end_ = 0;
  double next_pace_time_ = 0.0;
  bool send_scheduled_ = false;
  std::uint64_t rto_epoch_ = 0;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  done_callback done_;
  ack_observer ack_observer_;
};

}  // namespace lf::transport
