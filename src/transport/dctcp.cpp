#include "transport/dctcp.hpp"

#include <algorithm>

namespace lf::transport {

dctcp::dctcp(dctcp_config config)
    : config_{config}, cwnd_{config.initial_cwnd_segments} {}

void dctcp::on_ack(const ack_event& ev) {
  if (ev.rtt > 0.0) {
    srtt_ = srtt_ == 0.0 ? ev.rtt : 0.875 * srtt_ + 0.125 * ev.rtt;
  }
  window_acked_ += ev.newly_acked_bytes;
  if (ev.ecn_echo) window_marked_ += ev.newly_acked_bytes;

  const double rtt = srtt_ > 0.0 ? srtt_ : 100e-6;
  if (ev.now - window_start_ >= rtt) end_observation_window(ev.now);

  const double acked_segments =
      static_cast<double>(ev.newly_acked_bytes) / config_.mss;
  if (cwnd_ < ssthresh_ && !ev.ecn_echo) {
    cwnd_ += acked_segments;  // slow start
  } else {
    cwnd_ += acked_segments / cwnd_;  // congestion avoidance
  }
}

void dctcp::end_observation_window(double now) {
  const double f =
      window_acked_ > 0
          ? static_cast<double>(window_marked_) / static_cast<double>(window_acked_)
          : 0.0;
  alpha_ = (1.0 - config_.g) * alpha_ + config_.g * f;
  if (window_marked_ > 0 && now - last_cut_time_ >= (srtt_ > 0.0 ? srtt_ : 0.0)) {
    cwnd_ = std::max(2.0, cwnd_ * (1.0 - alpha_ / 2.0));
    ssthresh_ = cwnd_;
    last_cut_time_ = now;
  }
  window_acked_ = window_marked_ = 0;
  window_start_ = now;
}

void dctcp::on_loss(double) {
  cwnd_ = std::max(2.0, cwnd_ * 0.5);
  ssthresh_ = cwnd_;
}

void dctcp::on_timeout(double) {
  ssthresh_ = std::max(2.0, cwnd_ * 0.5);
  cwnd_ = 2.0;
}

double dctcp::cwnd_bytes() const {
  return cwnd_ * static_cast<double>(config_.mss);
}

}  // namespace lf::transport
