// BBR-style congestion control (Cardwell et al., 2016) — the paper's main
// kernel-space baseline.  Simplified but faithful to the mechanism the
// evaluation exercises: a windowed-max delivery-rate (BtlBw) filter, a
// windowed-min RTT (RTprop) filter, pacing at gain * BtlBw with an 8-phase
// gain cycle, and a 2*BDP cwnd cap.  Startup doubles the rate each RTT
// until the bandwidth filter plateaus, then drains.
#pragma once

#include <array>
#include <deque>
#include <utility>

#include "transport/cong_ctrl.hpp"

namespace lf::transport {

struct bbr_config {
  std::uint32_t mss = 1460;
  double initial_cwnd_segments = 10.0;
  double btlbw_window = 10.0;   ///< RTT counts for the max filter
  double rtprop_window = 10.0;  ///< seconds for the min filter
  double startup_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
};

class bbr final : public cong_ctrl {
 public:
  explicit bbr(bbr_config config = {});

  void on_ack(const ack_event& ev) override;
  void on_loss(double now) override;
  void on_timeout(double now) override;

  double cwnd_bytes() const override;
  double pacing_bps() const override;
  const char* name() const override { return "bbr"; }

  double btlbw_bps() const noexcept { return btlbw_; }
  double rtprop() const noexcept { return rtprop_; }

 private:
  enum class mode { startup, drain, probe_bw };
  void advance_cycle(double now);

  void add_rate_sample(double now, double rate);

  bbr_config config_;
  mode mode_ = mode::startup;
  double btlbw_ = 0.0;
  std::deque<std::pair<double, double>> rate_samples_;  ///< (time, bps)
  double rtprop_ = 0.0;
  double rtprop_stamp_ = 0.0;
  double pacing_gain_;
  std::size_t cycle_index_ = 0;
  double cycle_stamp_ = 0.0;
  double delivered_bytes_ = 0.0;   ///< acked bytes in the current epoch
  double epoch_start_ = -1.0;      ///< current rate-sample epoch start
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  double cwnd_;
  static constexpr std::array<double, 8> k_cycle_gains{
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
};

}  // namespace lf::transport
