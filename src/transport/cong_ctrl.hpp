// Congestion-control interfaces.
//
// Two transport families cover the paper's experiments:
//  - rate-based senders (Aurora/MOCC and their deployments) steered by a
//    rate_controller that observes per-monitor-interval signals, and
//  - window-based reliable senders (CUBIC, BBR, DCTCP) steered by a
//    cong_ctrl that reacts to ACK/loss events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace lf::transport {

/// Signals collected over one monitor interval (Aurora's observation).
struct mi_observation {
  double duration = 0.0;          ///< seconds
  double send_rate = 0.0;         ///< bps offered by the sender
  double throughput = 0.0;        ///< bps acknowledged
  double avg_rtt = 0.0;           ///< seconds (0 if no samples)
  double min_rtt = 0.0;           ///< seconds, lifetime minimum
  double rtt_gradient = 0.0;      ///< d(avg_rtt)/dt over the interval
  double loss_rate = 0.0;         ///< lost / sent in the interval
  double ecn_fraction = 0.0;      ///< marked / acked in the interval
};

/// Aurora's normalized feature vector for one interval:
/// {latency gradient, latency ratio - 1, send ratio - 1}.
std::vector<double> observation_features(const mi_observation& obs);
inline constexpr std::size_t k_features_per_interval = 3;

/// Sender-side hook: the rate_sender reports each finished monitor interval;
/// the controller calls set_rate whenever it has a decision (possibly
/// asynchronously — cross-space deployments decide late).
class rate_controller {
 public:
  virtual ~rate_controller() = default;

  /// A monitor interval ended.  `set_rate` remains valid for the lifetime
  /// of the flow and may be invoked at any later sim time.
  virtual void on_monitor_interval(const mi_observation& obs,
                                   std::function<void(double bps)> set_rate) = 0;

  /// The flow is finishing; release resources.
  virtual void on_flow_close() {}
};

/// Aurora's rate update rule: action a in [-1, 1] maps to a multiplicative
/// rate change with step size delta (Aurora uses 0.025).
double apply_rate_action(double current_bps, double action, double delta,
                         double min_bps, double max_bps);

// ---------------------------------------------------------------- window --

struct ack_event {
  std::uint64_t newly_acked_bytes = 0;
  bool ecn_echo = false;
  double rtt = 0.0;   ///< sample from this ACK (0 if invalid)
  double now = 0.0;
};

/// Window-based congestion controller (cwnd in bytes).
class cong_ctrl {
 public:
  virtual ~cong_ctrl() = default;

  virtual void on_ack(const ack_event& ev) = 0;
  virtual void on_loss(double now) = 0;     ///< fast-retransmit signal
  virtual void on_timeout(double now) = 0;  ///< RTO fired

  virtual double cwnd_bytes() const = 0;
  /// Pacing rate in bps, or 0 to send as fast as cwnd allows.
  virtual double pacing_bps() const { return 0.0; }
  virtual const char* name() const = 0;
};

}  // namespace lf::transport
