#include "transport/window_sender.hpp"

#include <algorithm>

namespace lf::transport {

window_sender::window_sender(netsim::host& src, netsim::host_id_t dst,
                             netsim::flow_id_t flow, std::uint64_t size_bytes,
                             window_sender_config config,
                             std::unique_ptr<cong_ctrl> cc)
    : src_{src}, dst_{dst}, flow_{flow}, size_{size_bytes}, config_{config},
      cc_{std::move(cc)} {
  src_.register_sender(flow_, this);
}

window_sender::~window_sender() { src_.unregister_sender(flow_); }

void window_sender::start() {
  if (started_) return;
  started_ = true;
  start_time_ = src_.simulator().now();
  next_pace_time_ = start_time_;
  arm_rto();
  try_send();
}

void window_sender::try_send() {
  if (finished_) return;
  const double now = src_.simulator().now();
  const double pacing = cc_->pacing_bps();
  while (snd_nxt_ < size_ &&
         snd_nxt_ < snd_una_ + static_cast<std::uint64_t>(cc_->cwnd_bytes())) {
    if (pacing > 0.0 && now < next_pace_time_) {
      if (!send_scheduled_) {
        send_scheduled_ = true;
        src_.simulator().schedule_at(next_pace_time_, [this]() {
          send_scheduled_ = false;
          try_send();
        });
      }
      return;
    }
    const std::uint64_t seq = snd_nxt_;
    send_segment(seq, /*retransmit=*/false);
    if (pacing > 0.0) {
      const auto bytes = std::min<std::uint64_t>(config_.mss, size_ - seq);
      next_pace_time_ = std::max(next_pace_time_, now) +
                        static_cast<double>(bytes + netsim::k_header_bytes) *
                            8.0 / pacing;
    }
  }
}

void window_sender::send_segment(std::uint64_t seq, bool retransmit) {
  const auto bytes =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.mss,
                                                         size_ - seq));
  netsim::packet pkt;
  pkt.flow_id = flow_;
  pkt.dst = dst_;
  pkt.seq = seq;
  pkt.payload_bytes = bytes;
  pkt.ecn_capable = true;
  pkt.priority = config_.priority;
  pkt.path_tag = config_.path_tag;
  pkt.fin = (seq + bytes >= size_);
  src_.send_packet(pkt);
  if (retransmit) {
    ++retransmissions_;
  } else {
    snd_nxt_ = seq + bytes;
  }
}

void window_sender::on_ack(const netsim::packet& ack) {
  if (finished_) return;
  const double now = src_.simulator().now();

  if (ack.ack_seq > snd_una_) {
    const std::uint64_t newly = ack.ack_seq - snd_una_;
    snd_una_ = ack.ack_seq;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (snd_una_ >= recovery_end_) {
        in_recovery_ = false;
      } else {
        // NewReno-style partial ACK: the next hole starts at the new
        // snd_una.  Retransmit a small run of segments from the hole —
        // consecutive losses are the common case after a buffer-overflow
        // burst, and healing one hole per RTT would crawl.
        std::uint64_t seq = snd_una_;
        for (int i = 0; i < 4 && seq < recovery_end_; ++i) {
          send_segment(seq, /*retransmit=*/true);
          seq += std::min<std::uint64_t>(config_.mss, size_ - seq);
        }
      }
    }
    ack_event ev;
    ev.newly_acked_bytes = newly;
    ev.ecn_echo = ack.ack_ecn_echo;
    ev.rtt = ack.ack_echo_send_time > 0.0 ? now - ack.ack_echo_send_time : 0.0;
    ev.now = now;
    if (ev.rtt > 0.0) {
      if (srtt_ == 0.0) {
        srtt_ = ev.rtt;
        rttvar_ = ev.rtt / 2.0;
      } else {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - ev.rtt);
        srtt_ = 0.875 * srtt_ + 0.125 * ev.rtt;
      }
    }
    cc_->on_ack(ev);
    if (ack_observer_) ack_observer_(ev);
    arm_rto();
    if (snd_una_ >= size_) {
      complete();
      return;
    }
    try_send();
  } else if (ack.ack_seq == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recovery_end_ = snd_nxt_;
      cc_->on_loss(now);
      send_segment(snd_una_, /*retransmit=*/true);
    }
  }
}

void window_sender::arm_rto() {
  const std::uint64_t epoch = ++rto_epoch_;
  const double rto =
      srtt_ > 0.0 ? std::max(config_.min_rto, srtt_ + 4.0 * rttvar_)
                  : std::max(config_.min_rto, 50e-3);  // pre-sample default
  src_.simulator().schedule(rto, [this, epoch]() { on_rto(epoch); });
}

void window_sender::on_rto(std::uint64_t armed_epoch) {
  if (finished_ || armed_epoch != rto_epoch_) return;
  ++timeouts_;
  cc_->on_timeout(src_.simulator().now());
  in_recovery_ = false;
  dup_acks_ = 0;
  // Go-back-N: rewind and resend from the last cumulative ACK.
  snd_nxt_ = snd_una_;
  arm_rto();
  try_send();
}

void window_sender::complete() {
  finished_ = true;
  ++rto_epoch_;  // cancel pending RTO
  const double fct = src_.simulator().now() - start_time_;
  if (done_) done_(fct);
}

}  // namespace lf::transport
