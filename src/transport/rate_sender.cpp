#include "transport/rate_sender.hpp"

#include <algorithm>

namespace lf::transport {

rate_sender::rate_sender(netsim::host& src, netsim::host_id_t dst,
                         netsim::flow_id_t flow, rate_sender_config config,
                         std::unique_ptr<rate_controller> ctrl)
    : src_{src}, dst_{dst}, flow_{flow}, config_{config},
      ctrl_{std::move(ctrl)}, rate_bps_{config.initial_rate_bps} {
  src_.register_sender(flow_, this);
}

rate_sender::~rate_sender() {
  src_.unregister_sender(flow_);
}

void rate_sender::start() {
  if (running_) return;
  running_ = true;
  mi_start_ = src_.simulator().now();
  poll_time_ = mi_start_;
  emit();
  // Schedule the first MI boundary.
  src_.simulator().schedule(config_.mi_floor, [this, gen = generation_]() {
    if (running_ && gen == generation_) finish_monitor_interval();
  });
}

void rate_sender::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;
  if (ctrl_) ctrl_->on_flow_close();
}

void rate_sender::emit() {
  if (!running_) return;
  netsim::packet pkt;
  pkt.flow_id = flow_;
  pkt.dst = dst_;
  pkt.seq = next_seq_;
  pkt.payload_bytes = config_.packet_bytes;
  pkt.ecn_capable = true;
  next_seq_ += config_.packet_bytes;
  outstanding_[pkt.seq] = src_.simulator().now();
  ++sent_packets_;
  ++mi_sent_packets_;
  src_.send_packet(pkt);
  const double gap =
      static_cast<double>(config_.packet_bytes + netsim::k_header_bytes) * 8.0 /
      rate_bps_;
  src_.simulator().schedule(gap, [this, gen = generation_]() {
    if (gen == generation_) emit();
  });
}

void rate_sender::on_ack(const netsim::packet& ack) {
  const double now = src_.simulator().now();
  const auto it = outstanding_.find(ack.ack_echo_seq);
  if (it == outstanding_.end()) return;  // duplicate or already timed out
  outstanding_.erase(it);

  const double rtt = now - ack.ack_echo_send_time;
  if (rtt > 0.0) {
    srtt_ = srtt_ == 0.0 ? rtt : 0.875 * srtt_ + 0.125 * rtt;
    min_rtt_ = min_rtt_ == 0.0 ? rtt : std::min(min_rtt_, rtt);
    if (mi_first_rtt_ == 0.0) {
      mi_first_rtt_ = rtt;
      mi_first_rtt_time_ = now;
    }
    mi_last_rtt_ = rtt;
    mi_last_rtt_time_ = now;
    mi_rtt_sum_ += rtt;
  }
  ++mi_acked_packets_;
  mi_acked_bytes_ += config_.packet_bytes;
  poll_acked_bytes_ += config_.packet_bytes;
  if (ack.ack_ecn_echo) ++mi_marked_packets_;
}

double rate_sender::acked_rate_since_last_poll() {
  const double now = src_.simulator().now();
  const double window = now - poll_time_;
  const double rate =
      window > 0.0 ? static_cast<double>(poll_acked_bytes_) * 8.0 / window
                   : 0.0;
  poll_acked_bytes_ = 0;
  poll_time_ = now;
  return rate;
}

void rate_sender::finish_monitor_interval() {
  const double now = src_.simulator().now();
  const double duration = now - mi_start_;

  // Expire outstanding packets older than the loss timeout.  Before the
  // first RTT sample there is no basis for declaring loss — expiring
  // against a guess shorter than the real RTT would mark every packet lost
  // and discard the ACKs that would have established the estimate.
  if (srtt_ > 0.0) {
    const double timeout = config_.loss_timeout_rtt * srtt_;
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      if (now - it->second > timeout) {
        ++mi_lost_packets_;
        ++lost_packets_;
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
  }

  mi_observation obs;
  obs.duration = duration;
  obs.send_rate = rate_bps_;
  obs.throughput =
      duration > 0.0 ? static_cast<double>(mi_acked_bytes_) * 8.0 / duration
                     : 0.0;
  obs.avg_rtt = mi_acked_packets_ > 0
                    ? mi_rtt_sum_ / static_cast<double>(mi_acked_packets_)
                    : 0.0;
  obs.min_rtt = min_rtt_;
  if (mi_last_rtt_time_ > mi_first_rtt_time_) {
    obs.rtt_gradient = (mi_last_rtt_ - mi_first_rtt_) /
                       (mi_last_rtt_time_ - mi_first_rtt_time_);
  }
  const std::uint64_t accounted = mi_acked_packets_ + mi_lost_packets_;
  obs.loss_rate = accounted > 0 ? static_cast<double>(mi_lost_packets_) /
                                      static_cast<double>(accounted)
                                : 0.0;
  obs.ecn_fraction = mi_acked_packets_ > 0
                         ? static_cast<double>(mi_marked_packets_) /
                               static_cast<double>(mi_acked_packets_)
                         : 0.0;
  last_obs_ = obs;

  // Reset accumulators for the next interval.
  mi_start_ = now;
  mi_sent_packets_ = mi_acked_packets_ = 0;
  mi_acked_bytes_ = mi_marked_packets_ = 0;
  mi_rtt_sum_ = mi_first_rtt_ = mi_last_rtt_ = 0.0;
  mi_first_rtt_time_ = mi_last_rtt_time_ = 0.0;
  mi_lost_packets_ = 0;

  if (ctrl_) {
    ctrl_->on_monitor_interval(
        obs, [this, gen = generation_](double bps) {
          if (gen == generation_) set_rate(bps);
        });
  }

  const double next_mi = std::max(
      config_.mi_floor, config_.mi_rtt_multiplier * (srtt_ > 0.0 ? srtt_ : 0.0));
  src_.simulator().schedule(next_mi, [this, gen = generation_]() {
    if (running_ && gen == generation_) finish_monitor_interval();
  });
}

void rate_sender::set_rate(double bps) {
  rate_bps_ = std::clamp(bps, config_.min_rate_bps, config_.max_rate_bps);
}

}  // namespace lf::transport
