// Rate-based paced sender: the transport under Aurora/MOCC-style NN
// congestion control (the paper deploys Aurora over UDT, a paced
// rate-controlled transport; the LiteFlow CC module enforces rates through
// sk_pacing_rate — both are pacing, which this class models directly).
//
// The sender emits fixed-size packets at its current rate, tracks per-packet
// ACK feedback, and at every monitor interval (MI) summarizes the signals
// into an mi_observation handed to the attached rate_controller.  The
// controller is where deployment mechanisms differ: in-kernel snapshot
// inference, cross-space CCP, frozen snapshot, or in-kernel training.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "netsim/host.hpp"
#include "transport/cong_ctrl.hpp"

namespace lf::transport {

struct rate_sender_config {
  double initial_rate_bps = 100e6;
  double min_rate_bps = 1e6;
  double max_rate_bps = 20e9;
  std::uint32_t packet_bytes = 1460;
  /// Monitor interval as a multiple of sRTT (Aurora uses ~1 RTT MIs).
  double mi_rtt_multiplier = 1.0;
  /// Lower bound for the MI so early intervals (no RTT estimate) work.
  double mi_floor = 2e-3;
  /// ACKs older than this multiple of sRTT count as losses.
  double loss_timeout_rtt = 2.0;
};

class rate_sender final : public netsim::flow_sender {
 public:
  rate_sender(netsim::host& src, netsim::host_id_t dst, netsim::flow_id_t flow,
              rate_sender_config config, std::unique_ptr<rate_controller> ctrl);
  ~rate_sender() override;

  rate_sender(const rate_sender&) = delete;
  rate_sender& operator=(const rate_sender&) = delete;

  void start();
  void stop();

  void on_ack(const netsim::packet& ack) override;

  double current_rate_bps() const noexcept { return rate_bps_; }
  double smoothed_rtt() const noexcept { return srtt_; }
  double min_rtt() const noexcept { return min_rtt_; }
  netsim::flow_id_t flow() const noexcept { return flow_; }

  /// Throughput acknowledged since the last call to this function (bps).
  double acked_rate_since_last_poll();

  const mi_observation& last_observation() const noexcept { return last_obs_; }
  std::uint64_t packets_sent() const noexcept { return sent_packets_; }
  std::uint64_t packets_lost() const noexcept { return lost_packets_; }

 private:
  void emit();
  void finish_monitor_interval();
  void set_rate(double bps);

  netsim::host& src_;
  netsim::host_id_t dst_;
  netsim::flow_id_t flow_;
  rate_sender_config config_;
  std::unique_ptr<rate_controller> ctrl_;

  bool running_ = false;
  double rate_bps_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t generation_ = 0;  ///< invalidates stale emit timers

  // RTT estimation.
  double srtt_ = 0.0;
  double min_rtt_ = 0.0;

  // Outstanding packets: seq -> send time (for loss-by-timeout).
  std::map<std::uint64_t, double> outstanding_;

  // Current-MI accumulators.
  double mi_start_ = 0.0;
  std::uint64_t mi_sent_packets_ = 0;
  std::uint64_t mi_acked_packets_ = 0;
  std::uint64_t mi_acked_bytes_ = 0;
  std::uint64_t mi_marked_packets_ = 0;
  double mi_rtt_sum_ = 0.0;
  double mi_first_rtt_ = 0.0;
  double mi_first_rtt_time_ = 0.0;
  double mi_last_rtt_ = 0.0;
  double mi_last_rtt_time_ = 0.0;
  std::uint64_t mi_lost_packets_ = 0;

  mi_observation last_obs_{};
  std::uint64_t sent_packets_ = 0;
  std::uint64_t lost_packets_ = 0;
  std::uint64_t poll_acked_bytes_ = 0;
  double poll_time_ = 0.0;
};

}  // namespace lf::transport
