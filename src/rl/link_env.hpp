// Fluid-model single-link congestion-control environment, mirroring the
// Python Gym simulator Aurora trains in (PCC-RL's src/gym).
//
// One step is one monitor interval: the sender offers rate r into a link of
// bandwidth B with a drop-tail queue of Q bytes and base RTT.  Queue, loss
// and latency evolve with fluid dynamics; observations are the same
// scale-free Aurora features the kernel datapath collects (latency
// gradient, latency ratio, send ratio) over a k-interval history, so a
// policy trained here drops directly into the snapshot pipeline.
//
// The environment doubles as LiteFlow's online-adaptation vehicle: the
// slow path re-estimates {bandwidth, rtt, random loss} from each kernel
// batch (see core/userspace_service) and continues training against the
// re-parameterized env — the paper's "feed the batched data into the
// simulator" mode (§3.2).
#pragma once

#include <deque>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace lf::rl {

struct link_env_config {
  double bandwidth_bps = 1e9;
  double base_rtt = 10e-3;
  double queue_bytes = 150 * 1000;
  /// Stochastic (non-congestion) loss probability, per interval.
  double random_loss = 0.0;
  /// Constant-rate background traffic sharing the link.
  double background_bps = 0.1e9;
  std::size_t history = 10;  ///< observation history length (Aurora: k=10)
  std::size_t steps_per_episode = 80;
  double mi_seconds = 10e-3;  ///< one monitor interval
  /// Initial sender rate as a fraction of bandwidth, randomized per episode
  /// in [min, max].
  double init_rate_frac_min = 0.3;
  double init_rate_frac_max = 1.5;
  /// Aurora's rate-change step size.
  double action_delta = 0.05;
  /// Std-dev of Gaussian observation noise added to the latency-ratio and
  /// send-ratio features each step.  Real monitor intervals carry heavy
  /// packet-quantization noise; training with matching noise forces the
  /// policy to average over its history window instead of overreacting to
  /// one interval (domain randomization).
  double feature_noise = 0.0;
  // Reward weights (Aurora-flavoured: reward throughput, penalize latency
  // inflation and loss).
  double throughput_weight = 10.0;
  double latency_weight = 5.0;
  double loss_weight = 20.0;
};

class link_env final : public env {
 public:
  link_env(link_env_config config, rng gen);

  std::vector<double> reset() override;
  step_result step(std::span<const double> action) override;

  std::size_t observation_size() const noexcept override {
    return config_.history * 3;
  }
  std::size_t action_size() const noexcept override { return 1; }

  double current_rate_bps() const noexcept { return rate_bps_; }
  double available_bandwidth() const noexcept {
    return config_.bandwidth_bps - config_.background_bps;
  }
  const link_env_config& config() const noexcept { return config_; }

  /// Re-parameterize the environment (online adaptation to fresh kernel
  /// measurements) without resetting the episode counter.
  void set_link(double bandwidth_bps, double base_rtt, double random_loss);

  /// Adjust the constant background traffic sharing the link.
  void set_background(double background_bps);

  /// Adjust the observation-noise level (domain randomization knob).
  void set_feature_noise(double noise) noexcept {
    config_.feature_noise = noise;
  }

 private:
  std::vector<double> observation() const;
  void push_features(double grad, double lat_ratio, double send_ratio);

  link_env_config config_;
  rng gen_;
  double rate_bps_ = 0.0;
  double queue_bytes_ = 0.0;
  double prev_latency_ = 0.0;
  std::size_t steps_ = 0;
  std::deque<double> features_;  // history * 3, oldest first
};

}  // namespace lf::rl
