// REINFORCE-with-baseline policy-gradient trainer.
//
// Aurora uses PPO; for the small environments involved, vanilla policy
// gradient with reward-to-go, a running baseline and Adam converges on the
// same policies, and it is the component LiteFlow's "NN Online Adaptation
// Interface" plugs in (users can supply any trainer; this is ours).
#pragma once

#include <deque>

#include "nn/optimizer.hpp"
#include "rl/env.hpp"
#include "rl/policy.hpp"

namespace lf::rl {

struct pg_config {
  double learning_rate = 3e-3;
  double sigma = 0.3;
  std::size_t episodes_per_iteration = 4;
  double gamma = 0.95;        ///< reward-to-go discount
  double grad_clip = 5.0;
  std::size_t reward_window = 20;  ///< iterations kept for stability stats
};

struct iteration_report {
  double mean_step_reward = 0.0;  ///< averaged over all steps this iteration
  double grad_norm = 0.0;
  std::size_t steps = 0;
};

class pg_trainer {
 public:
  pg_trainer(nn::mlp& net, env& environment, pg_config config, rng gen);

  /// One training iteration: run episodes, compute advantages, step Adam.
  iteration_report iterate();

  std::size_t iterations() const noexcept { return iterations_; }
  double baseline() const noexcept { return baseline_; }

  /// Mean reward of the most recent iteration (the "training loss" style
  /// stability value the sync evaluator watches).
  double last_mean_reward() const noexcept { return last_reward_; }

  /// Stability: relative spread (max-min)/|mean| of the recent reward
  /// window; small values mean the exploration has converged (§3.3).
  double reward_stability() const;

  gaussian_policy& policy() noexcept { return policy_; }

  /// Greedy (mean-action) average step reward over n evaluation episodes.
  double evaluate_greedy(std::size_t n_episodes = 2);

 private:
  env& env_;
  pg_config config_;
  rng gen_;
  gaussian_policy policy_;
  nn::adam opt_;
  double baseline_ = 0.0;
  bool baseline_init_ = false;
  double last_reward_ = 0.0;
  std::size_t iterations_ = 0;
  std::deque<double> reward_history_;
};

}  // namespace lf::rl
