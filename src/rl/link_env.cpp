#include "rl/link_env.hpp"

#include <algorithm>
#include <stdexcept>

#include "transport/cong_ctrl.hpp"

namespace lf::rl {

link_env::link_env(link_env_config config, rng gen)
    : config_{config}, gen_{gen} {
  if (config_.history == 0 || config_.bandwidth_bps <= 0.0) {
    throw std::invalid_argument{"link_env: bad config"};
  }
}

std::vector<double> link_env::reset() {
  rate_bps_ = available_bandwidth() *
              gen_.uniform(config_.init_rate_frac_min,
                           config_.init_rate_frac_max);
  queue_bytes_ = 0.0;
  prev_latency_ = config_.base_rtt;
  steps_ = 0;
  features_.assign(config_.history * 3, 0.0);
  return observation();
}

void link_env::push_features(double grad, double lat_ratio,
                             double send_ratio) {
  features_.push_back(std::clamp(grad, -10.0, 10.0));
  features_.push_back(std::clamp(lat_ratio, 0.0, 10.0));
  features_.push_back(std::clamp(send_ratio, 0.0, 10.0));
  while (features_.size() > config_.history * 3) features_.pop_front();
}

std::vector<double> link_env::observation() const {
  return {features_.begin(), features_.end()};
}

step_result link_env::step(std::span<const double> action) {
  if (action.size() != 1) throw std::invalid_argument{"link_env: bad action"};
  rate_bps_ = transport::apply_rate_action(
      rate_bps_, action[0], config_.action_delta, 0.01 * available_bandwidth(),
      4.0 * config_.bandwidth_bps);

  const double dt = config_.mi_seconds;
  const double capacity = config_.bandwidth_bps;
  const double offered = rate_bps_ + config_.background_bps;

  // Fluid queue dynamics over the interval.
  const double sent_bytes = rate_bps_ * dt / 8.0;
  double queue_in = (offered - capacity) * dt / 8.0;
  double dropped_bytes = 0.0;
  if (queue_in > 0.0) {
    const double free = config_.queue_bytes - queue_bytes_;
    if (queue_in > free) {
      dropped_bytes = (queue_in - free) * (rate_bps_ / offered);
      queue_in = free;
    }
    queue_bytes_ += std::max(0.0, queue_in);
  } else {
    queue_bytes_ = std::max(0.0, queue_bytes_ + queue_in);
  }

  // Random (non-congestion) loss.
  const double random_lost = sent_bytes * config_.random_loss;
  const double delivered =
      std::max(0.0, sent_bytes - dropped_bytes - random_lost);
  const double throughput_bps =
      std::min(delivered * 8.0 / dt,
               capacity * rate_bps_ / std::max(offered, 1.0));

  const double latency = config_.base_rtt + queue_bytes_ * 8.0 / capacity;
  const double grad = (latency - prev_latency_) / dt;
  prev_latency_ = latency;

  double lat_ratio = latency / config_.base_rtt - 1.0;
  double send_ratio =
      throughput_bps > 0.0 ? rate_bps_ / throughput_bps - 1.0 : 10.0;
  const double loss_rate =
      sent_bytes > 0.0 ? (dropped_bytes + random_lost) / sent_bytes : 0.0;
  if (config_.feature_noise > 0.0) {
    lat_ratio = std::max(0.0, lat_ratio + gen_.normal(0.0, config_.feature_noise));
    send_ratio += gen_.normal(0.0, config_.feature_noise);
  }
  push_features(grad, lat_ratio, send_ratio);

  // Aurora-style reward, normalized by the available bandwidth so the same
  // weights work across environments.
  const double avail = available_bandwidth();
  const double reward = config_.throughput_weight * (throughput_bps / avail) -
                        config_.latency_weight * lat_ratio -
                        config_.loss_weight * loss_rate;

  step_result result;
  result.observation = observation();
  result.reward = reward;
  result.done = ++steps_ >= config_.steps_per_episode;
  return result;
}

void link_env::set_link(double bandwidth_bps, double base_rtt,
                        double random_loss) {
  if (bandwidth_bps <= 0.0 || base_rtt <= 0.0) {
    throw std::invalid_argument{"link_env::set_link: bad parameters"};
  }
  config_.bandwidth_bps = bandwidth_bps;
  config_.base_rtt = base_rtt;
  config_.random_loss = std::clamp(random_loss, 0.0, 0.9);
}

void link_env::set_background(double background_bps) {
  if (background_bps < 0.0 || background_bps >= config_.bandwidth_bps) {
    throw std::invalid_argument{"link_env::set_background: bad rate"};
  }
  config_.background_bps = background_bps;
}

}  // namespace lf::rl
