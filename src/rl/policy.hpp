// Gaussian policy over an MLP mean.
//
// Aurora's policy network outputs a rate-change action; exploration adds
// Gaussian noise with fixed sigma.  The log-probability gradient
// d log N(a; mu(s), sigma^2) / d theta = (a - mu)/sigma^2 * d mu/d theta
// is what REINFORCE ascends.
#pragma once

#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace lf::rl {

class gaussian_policy {
 public:
  gaussian_policy(nn::mlp& net, double sigma);

  /// Deterministic action (the mean) — what the frozen snapshot executes.
  std::vector<double> act_mean(std::span<const double> obs) const;

  /// Stochastic action for exploration during training.
  std::vector<double> act_sample(std::span<const double> obs, rng& gen) const;

  /// Accumulate scale * d log pi(a|s) / d theta into `grad`.
  /// Pass scale = -advantage to turn optimizer descent into reward ascent.
  void accumulate_logprob_gradient(std::span<const double> obs,
                                   std::span<const double> action, double scale,
                                   std::span<double> grad) const;

  double sigma() const noexcept { return sigma_; }
  void set_sigma(double sigma);
  nn::mlp& net() noexcept { return net_; }
  const nn::mlp& net() const noexcept { return net_; }

 private:
  nn::mlp& net_;
  double sigma_;
};

}  // namespace lf::rl
