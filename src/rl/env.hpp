// Gym-style environment interface (the paper trains Aurora with OpenAI GYM
// and a Python network simulator; ns3-gym for flow scheduling).  LiteFlow's
// userspace slow path is framework-agnostic — this is the interface our
// bundled trainer programs against.
#pragma once

#include <span>
#include <vector>

namespace lf::rl {

struct step_result {
  std::vector<double> observation;
  double reward = 0.0;
  bool done = false;
};

class env {
 public:
  virtual ~env() = default;

  virtual std::vector<double> reset() = 0;
  virtual step_result step(std::span<const double> action) = 0;
  virtual std::size_t observation_size() const noexcept = 0;
  virtual std::size_t action_size() const noexcept = 0;
};

}  // namespace lf::rl
