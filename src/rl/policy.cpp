#include "rl/policy.hpp"

#include <stdexcept>

namespace lf::rl {

gaussian_policy::gaussian_policy(nn::mlp& net, double sigma)
    : net_{net}, sigma_{sigma} {
  if (sigma <= 0.0) throw std::invalid_argument{"policy sigma must be > 0"};
}

void gaussian_policy::set_sigma(double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument{"policy sigma must be > 0"};
  sigma_ = sigma;
}

std::vector<double> gaussian_policy::act_mean(
    std::span<const double> obs) const {
  return net_.forward(obs);
}

std::vector<double> gaussian_policy::act_sample(std::span<const double> obs,
                                                rng& gen) const {
  auto a = net_.forward(obs);
  for (auto& v : a) v += gen.normal(0.0, sigma_);
  return a;
}

void gaussian_policy::accumulate_logprob_gradient(
    std::span<const double> obs, std::span<const double> action, double scale,
    std::span<double> grad) const {
  const auto mu = net_.forward(obs);
  if (action.size() != mu.size()) {
    throw std::invalid_argument{"policy gradient: action size mismatch"};
  }
  std::vector<double> grad_out(mu.size());
  const double inv_var = 1.0 / (sigma_ * sigma_);
  for (std::size_t i = 0; i < mu.size(); ++i) {
    grad_out[i] = scale * (action[i] - mu[i]) * inv_var;
  }
  net_.accumulate_gradient(obs, grad_out, grad);
}

}  // namespace lf::rl
