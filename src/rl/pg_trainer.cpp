#include "rl/pg_trainer.hpp"

#include <algorithm>
#include <cmath>

namespace lf::rl {

pg_trainer::pg_trainer(nn::mlp& net, env& environment, pg_config config,
                       rng gen)
    : env_{environment}, config_{config}, gen_{gen},
      policy_{net, config.sigma}, opt_{config.learning_rate} {}

iteration_report pg_trainer::iterate() {
  auto& net = policy_.net();
  std::vector<double> grad(net.parameter_count(), 0.0);
  double reward_sum = 0.0;
  std::size_t step_count = 0;

  struct step_record {
    std::vector<double> obs;
    std::vector<double> action;
    double reward;
  };

  for (std::size_t ep = 0; ep < config_.episodes_per_iteration; ++ep) {
    std::vector<step_record> episode;
    auto obs = env_.reset();
    bool done = false;
    while (!done) {
      auto action = policy_.act_sample(obs, gen_);
      auto result = env_.step(action);
      episode.push_back({obs, std::move(action), result.reward});
      reward_sum += result.reward;
      ++step_count;
      obs = std::move(result.observation);
      done = result.done;
    }
    // Reward-to-go returns.
    std::vector<double> returns(episode.size());
    double running = 0.0;
    for (std::size_t t = episode.size(); t-- > 0;) {
      running = episode[t].reward + config_.gamma * running;
      returns[t] = running;
      // Update the running baseline (EWMA over returns).
      if (!baseline_init_) {
        baseline_ = running;
        baseline_init_ = true;
      } else {
        baseline_ = 0.99 * baseline_ + 0.01 * running;
      }
    }
    for (std::size_t t = 0; t < episode.size(); ++t) {
      const double advantage = returns[t] - baseline_;
      // Descent on -advantage * log pi == ascent on expected return.
      policy_.accumulate_logprob_gradient(episode[t].obs, episode[t].action,
                                          -advantage, grad);
    }
  }

  if (step_count > 0) {
    const double inv = 1.0 / static_cast<double>(step_count);
    for (auto& g : grad) g *= inv;
  }
  iteration_report report;
  report.steps = step_count;
  report.mean_step_reward =
      step_count ? reward_sum / static_cast<double>(step_count) : 0.0;
  report.grad_norm = nn::clip_gradient_norm(grad, config_.grad_clip);

  auto params = net.parameters();
  opt_.step(params, grad);
  net.set_parameters(params);

  ++iterations_;
  last_reward_ = report.mean_step_reward;
  reward_history_.push_back(last_reward_);
  while (reward_history_.size() > config_.reward_window) {
    reward_history_.pop_front();
  }
  return report;
}

double pg_trainer::reward_stability() const {
  if (reward_history_.size() < config_.reward_window) return 1e9;
  const auto [lo, hi] =
      std::minmax_element(reward_history_.begin(), reward_history_.end());
  double mean = 0.0;
  for (const double r : reward_history_) mean += r;
  mean /= static_cast<double>(reward_history_.size());
  const double denom = std::max(std::abs(mean), 1e-6);
  return (*hi - *lo) / denom;
}

double pg_trainer::evaluate_greedy(std::size_t n_episodes) {
  double total = 0.0;
  std::size_t steps = 0;
  for (std::size_t ep = 0; ep < n_episodes; ++ep) {
    auto obs = env_.reset();
    bool done = false;
    while (!done) {
      const auto action = policy_.act_mean(obs);
      auto result = env_.step(action);
      total += result.reward;
      ++steps;
      obs = std::move(result.observation);
      done = result.done;
    }
  }
  return steps ? total / static_cast<double>(steps) : 0.0;
}

}  // namespace lf::rl
