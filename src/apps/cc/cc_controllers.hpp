// Deployment-specific rate controllers for NN congestion control.
//
// The same trained network is deployed four ways, matching the paper's
// comparison set:
//  - liteflow_cc_controller: fast-path inference through the kernel
//    snapshot (lf_query_model), signals batched to the slow path (§4.2,
//    "LiteFlow Congestion Control Module");
//  - ccp_cc_controller: CCP-style userspace deployment — every interval T
//    the kernel ships signals up and a rate comes back, paying a softirq
//    round trip (CCP-Aurora / CCP-MOCC, intervals per-ACK .. 100ms);
//  - kernel_train_controller: the §2.3 anti-pattern — both inference and
//    SGD in kernel space, crushing the datapath;
//  - a frozen deployment is liteflow with adaptation disabled (N-O-A).
#pragma once

#include <deque>

#include "core/batch_collector.hpp"
#include "core/liteflow_core.hpp"
#include "transport/cong_ctrl.hpp"

namespace lf::apps {

struct cc_controller_config {
  std::size_t history = 10;   ///< observation intervals (Aurora k)
  double action_delta = 0.05; ///< multiplicative rate step
  double min_rate_bps = 1e6;
  double max_rate_bps = 20e9;
};

/// Sliding window of the last k intervals' features, zero-padded at start.
class feature_history {
 public:
  explicit feature_history(std::size_t k);
  void push(const transport::mi_observation& obs);
  const std::vector<double>& features() const noexcept { return flat_; }

 private:
  std::size_t k_;
  std::deque<double> window_;
  std::vector<double> flat_;
};

// ------------------------------------------------------------- liteflow --

class liteflow_cc_controller final : public transport::rate_controller {
 public:
  /// `collector` may be null (no slow path, pure frozen inference).
  liteflow_cc_controller(core::liteflow_core& core,
                         core::batch_collector* collector,
                         netsim::flow_id_t flow, cc_controller_config config);

  void on_monitor_interval(const transport::mi_observation& obs,
                           std::function<void(double)> set_rate) override;
  void on_flow_close() override;

 private:
  core::liteflow_core& core_;
  core::batch_collector* collector_;
  netsim::flow_id_t flow_;
  cc_controller_config config_;
  feature_history history_;
};

// ------------------------------------------------------------------ ccp --

class ccp_cc_controller final : public transport::rate_controller {
 public:
  /// interval == 0 means "per ACK": a round trip on every monitor interval.
  ccp_cc_controller(sim::simulation& sim, kernelsim::crossspace_channel& ipc,
                    const kernelsim::cost_model& costs, const nn::mlp& model,
                    double interval, cc_controller_config config);

  void on_monitor_interval(const transport::mi_observation& obs,
                           std::function<void(double)> set_rate) override;
  void on_flow_close() override;

  std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  void tick();
  void request_decision();

  sim::simulation& sim_;
  kernelsim::crossspace_channel& ipc_;
  const kernelsim::cost_model& costs_;
  const nn::mlp& model_;
  double interval_;
  cc_controller_config config_;
  feature_history history_;
  std::function<void(double)> set_rate_;
  double last_send_rate_ = 0.0;
  bool timer_started_ = false;
  bool closed_ = false;
  int in_flight_ = 0;
  std::uint64_t decisions_ = 0;
};

// --------------------------------------------------------- kernel train --

class kernel_train_controller final : public transport::rate_controller {
 public:
  /// `train_interval`: how often the in-kernel optimizer runs (the paper
  /// observed up to 90% throughput loss even with mini-batching).
  kernel_train_controller(sim::simulation& sim, kernelsim::cpu_model& cpu,
                          const kernelsim::cost_model& costs, nn::mlp& model,
                          double train_interval, std::size_t batch_size,
                          cc_controller_config config);

  void on_monitor_interval(const transport::mi_observation& obs,
                           std::function<void(double)> set_rate) override;
  void on_flow_close() override;

  std::uint64_t train_rounds() const noexcept { return train_rounds_; }

 private:
  void train_tick();

  sim::simulation& sim_;
  kernelsim::cpu_model& cpu_;
  const kernelsim::cost_model& costs_;
  nn::mlp& model_;
  double train_interval_;
  std::size_t batch_size_;
  cc_controller_config config_;
  feature_history history_;
  bool timer_started_ = false;
  bool closed_ = false;
  std::size_t pending_samples_ = 0;
  std::uint64_t train_rounds_ = 0;
};

}  // namespace lf::apps
