#include "apps/cc/cc_experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "apps/common/deployment_registry.hpp"
#include "apps/common/probes.hpp"
#include "netsim/workload.hpp"
#include "transport/bbr.hpp"
#include "transport/cubic.hpp"
#include "transport/rate_sender.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {

std::string_view to_string(cc_scheme s) noexcept {
  return deployment_label(app_kind::cc, s);
}

bool is_rate_based(cc_scheme s) noexcept {
  return s != cc_scheme::bbr && s != cc_scheme::cubic;
}

bool bench_fast_mode() {
  const char* v = std::getenv("LF_BENCH_FAST");
  return v != nullptr && *v != '\0' && *v != '0';
}

namespace {

/// Owns whichever deployment stack the scheme needs and hands out
/// controllers / senders uniformly.
struct scheme_runtime {
  std::unique_ptr<liteflow_cc_stack> lf;
  std::unique_ptr<ccp_cc_stack> ccp;
  std::unique_ptr<kernel_train_cc_stack> ktrain;

  std::vector<std::unique_ptr<transport::rate_sender>> rate_flows;
  std::vector<std::unique_ptr<transport::window_sender>> window_flows;
};

/// Everything a cc stack builder needs to wire a deployment onto the
/// sender host — the registry stores one builder per cc_scheme.
struct cc_build_context {
  scheme_runtime& rt;
  netsim::host& sender;
  double bottleneck_bps;
  double bg_bps;
  double rtt;
  std::uint64_t buffer_bytes;
  double ccp_interval;
  double batch_interval;
  std::size_t pretrain;
  std::uint64_t seed;
  double sync_alpha;
};

using cc_stack_builder = std::function<void(cc_build_context&)>;

aurora_adapter_config env_matched_adapter(double bottleneck_bps, double bg_bps,
                                          double rtt,
                                          std::uint64_t buffer_bytes) {
  aurora_adapter_config a;
  a.env.bandwidth_bps = bottleneck_bps;
  a.env.background_bps = std::min(bg_bps, 0.9 * bottleneck_bps);
  a.env.base_rtt = rtt;
  a.env.queue_bytes = static_cast<double>(buffer_bytes);
  return a;
}

cc_stack_builder liteflow_builder(cc_model model, bool adaptation,
                                  bool dummy) {
  return [model, adaptation, dummy](cc_build_context& c) {
    liteflow_cc_options o;
    o.model = model;
    o.adaptation = adaptation;
    o.batch_interval = c.batch_interval;
    o.pretrain_iterations = dummy ? 0 : c.pretrain;
    o.seed = c.seed;
    o.adapter =
        env_matched_adapter(c.bottleneck_bps, c.bg_bps, c.rtt, c.buffer_bytes);
    o.controller.min_rate_bps = 0.05 * c.bottleneck_bps;
    o.controller.max_rate_bps = 2.0 * c.bottleneck_bps;
    o.sync.alpha = c.sync_alpha;
    c.rt.lf = std::make_unique<liteflow_cc_stack>(c.sender, o);
    if (dummy) {
      // LF-Dummy-NN (§5.1): same structure as Aurora, but the generated
      // code always emits the max action -> the flow pins line rate.
      auto& m = c.rt.lf->adapter().model();
      std::vector<double> params(m.parameter_count(), 0.0);
      // Final layer bias saturates tanh at ~+1.
      params.back() = 6.0;
      m.set_parameters(params);
    }
    c.rt.lf->start();
  };
}

cc_stack_builder ccp_builder(cc_model model) {
  return [model](cc_build_context& c) {
    ccp_cc_options o;
    o.model = model;
    o.interval = c.ccp_interval;
    o.pretrain_iterations = c.pretrain;
    o.seed = c.seed;
    o.adapter =
        env_matched_adapter(c.bottleneck_bps, c.bg_bps, c.rtt, c.buffer_bytes);
    o.controller.min_rate_bps = 0.05 * c.bottleneck_bps;
    o.controller.max_rate_bps = 2.0 * c.bottleneck_bps;
    c.rt.ccp = std::make_unique<ccp_cc_stack>(c.sender, o);
    c.rt.ccp->start();
  };
}

cc_stack_builder kernel_train_builder() {
  return [](cc_build_context& c) {
    kernel_train_cc_options o;
    o.pretrain_iterations = c.pretrain;
    o.seed = c.seed;
    o.adapter =
        env_matched_adapter(c.bottleneck_bps, c.bg_bps, c.rtt, c.buffer_bytes);
    o.controller.min_rate_bps = 0.05 * c.bottleneck_bps;
    o.controller.max_rate_bps = 2.0 * c.bottleneck_bps;
    c.rt.ktrain = std::make_unique<kernel_train_cc_stack>(c.sender, o);
    c.rt.ktrain->start();
  };
}

[[maybe_unused]] const bool k_cc_registered = [] {
  register_deployment(app_kind::cc, cc_scheme::lf_aurora, "LF-Aurora",
                      liteflow_builder(cc_model::aurora, true, false));
  register_deployment(app_kind::cc, cc_scheme::lf_mocc, "LF-MOCC",
                      liteflow_builder(cc_model::mocc, true, false));
  register_deployment(app_kind::cc, cc_scheme::lf_aurora_noa,
                      "LF-Aurora-N-O-A",
                      liteflow_builder(cc_model::aurora, false, false));
  register_deployment(app_kind::cc, cc_scheme::lf_dummy, "LF-Dummy-NN",
                      liteflow_builder(cc_model::aurora, false, true));
  register_deployment(app_kind::cc, cc_scheme::ccp_aurora, "CCP-Aurora",
                      ccp_builder(cc_model::aurora));
  register_deployment(app_kind::cc, cc_scheme::ccp_mocc, "CCP-MOCC",
                      ccp_builder(cc_model::mocc));
  register_deployment(app_kind::cc, cc_scheme::kernel_train_aurora,
                      "Kernel-Train-Aurora", kernel_train_builder());
  // Window transports need no stack; registered for the label alone.
  register_deployment(app_kind::cc, cc_scheme::bbr, "BBR");
  register_deployment(app_kind::cc, cc_scheme::cubic, "CUBIC");
  return true;
}();

void setup_scheme(scheme_runtime& rt, cc_scheme scheme, netsim::host& sender,
                  double bottleneck_bps, double bg_bps, double rtt,
                  std::uint64_t buffer_bytes, double ccp_interval,
                  double batch_interval, std::size_t pretrain,
                  std::uint64_t seed, double sync_alpha = 0.05) {
  cc_build_context ctx{rt,           sender,         bottleneck_bps,
                       bg_bps,       rtt,            buffer_bytes,
                       ccp_interval, batch_interval, pretrain,
                       seed,         sync_alpha};
  const auto* build =
      deployment_registry::instance().builder_as<cc_stack_builder>(
          app_kind::cc, static_cast<int>(scheme));
  if (build) (*build)(ctx);
}

void launch_flow(scheme_runtime& rt, cc_scheme scheme, netsim::host& sender,
                 netsim::host_id_t dst, netsim::flow_id_t id,
                 double bottleneck_bps, double initial_rate_bps) {
  if (is_rate_based(scheme)) {
    transport::rate_sender_config rc;
    rc.initial_rate_bps =
        scheme == cc_scheme::lf_dummy ? bottleneck_bps : initial_rate_bps;
    rc.max_rate_bps = 2.0 * bottleneck_bps;
    // Keep >= ~5% of line rate so monitor intervals still carry enough
    // packets for meaningful signal statistics.
    rc.min_rate_bps = 0.05 * bottleneck_bps;
    std::unique_ptr<transport::rate_controller> ctrl;
    if (rt.lf) {
      ctrl = rt.lf->make_controller(id);
    } else if (rt.ccp) {
      ctrl = rt.ccp->make_controller();
    } else {
      ctrl = rt.ktrain->make_controller();
    }
    auto flow = std::make_unique<transport::rate_sender>(
        sender, dst, id, rc, std::move(ctrl));
    flow->start();
    rt.rate_flows.push_back(std::move(flow));
  } else {
    std::unique_ptr<transport::cong_ctrl> cc;
    if (scheme == cc_scheme::bbr) {
      cc = std::make_unique<transport::bbr>();
    } else {
      cc = std::make_unique<transport::cubic>();
    }
    auto flow = std::make_unique<transport::window_sender>(
        sender, dst, id, std::uint64_t{1} << 50, transport::window_sender_config{},
        std::move(cc));
    flow->start();
    rt.window_flows.push_back(std::move(flow));
  }
}

/// Register the sender-side telemetry every cc experiment shares: host CPU
/// accounting plus the bottleneck counters, and the LiteFlow stack when one
/// is deployed.  The trace rings wire alongside the metrics so LF_TRACE=1
/// observes exactly the components the registry already covers.
void wire_cc_metrics(driver_context& ctx, netsim::dumbbell& net,
                     scheme_runtime& rt) {
  net.sender().register_metrics(ctx.metrics, "cc");
  net.bottleneck().register_metrics(ctx.metrics, "cc");
  net.sender().register_trace(ctx.trace, "cc");
  net.bottleneck().register_trace(ctx.trace, "cc");
  if (rt.lf) {
    rt.lf->core().register_metrics(ctx.metrics, "cc");
    rt.lf->service().register_metrics(ctx.metrics, "cc");
    rt.lf->collector().register_metrics(ctx.metrics, "cc.collector");
    rt.lf->core().register_trace(ctx.trace, "cc");
    rt.lf->service().register_trace(ctx.trace, "cc");
    rt.lf->collector().register_trace(ctx.trace, "cc.collector");
    rt.lf->core().register_monitor(ctx.monitor);
    rt.lf->service().register_monitor(ctx.monitor);
  }
}

/// Single-flow goodput run under emulated congestion (Figs. 1/2/5/11/12/14).
class cc_single_flow_experiment final : public experiment {
 public:
  explicit cc_single_flow_experiment(const cc_single_flow_config& config)
      : config_{config} {
    driver_.name = std::string{to_string(config.scheme)};
    driver_.seed = config.seed;
    driver_.duration = config.duration;
    driver_.warmup = config.warmup;
    if (config.trace) driver_.trace = *config.trace;
    if (config.monitor) driver_.monitor = *config.monitor;
    if (config.report) driver_.report = *config.report;
  }

  const driver_config& config() const override { return driver_; }

  void setup(driver_context& ctx) override {
    sim::simulation& simu = ctx.sim;
    net_.emplace(simu, config_.net);
    if (config_.trace_queue) net_->bottleneck().enable_queue_trace();

    bg_.emplace(simu, net_->bg_sender(), netsim::dumbbell::receiver_id,
                999'999, config_.bg_bps);
    if (config_.bg_bps > 0.0) bg_->start();
    for (const auto& phase : config_.bg_schedule) {
      simu.schedule_at(phase.at, [this, rate = phase.bg_bps,
                                  loss = phase.random_loss]() {
        bg_->set_rate(rate);
        if (rate > 0.0) bg_->start();
        net_->bottleneck().set_random_loss(loss);
      });
    }

    setup_scheme(rt_, config_.scheme, net_->sender(),
                 config_.net.bottleneck_bps, config_.bg_bps, config_.net.rtt,
                 config_.net.buffer_bytes, config_.ccp_interval,
                 config_.batch_interval, config_.pretrain_iterations,
                 config_.seed, config_.lf_sync_alpha);
    launch_flow(rt_, config_.scheme, net_->sender(),
                netsim::dumbbell::receiver_id, 1, config_.net.bottleneck_bps,
                0.1 * config_.net.bottleneck_bps);

    // Goodput sampling counts only the test flow (exclude background):
    // sample the receiver's per-flow state.
    sampler_ = std::make_shared<std::function<void()>>();
    *sampler_ = [this, &simu]() {
      const auto* st = net_->receiver().flow_state(1);
      const std::uint64_t bytes = st ? st->delivered_payload : 0;
      goodput_.record(simu.now(),
                      static_cast<double>(bytes - last_bytes_) * 8.0 /
                          config_.sample_interval);
      last_bytes_ = bytes;
      simu.schedule(config_.sample_interval, *sampler_);
    };
    simu.schedule(config_.sample_interval, *sampler_);

    wire_cc_metrics(ctx, *net_, rt_);
    ctx.metrics.register_series("cc.goodput_bps", goodput_);
  }

  void report(driver_context&, run_result& out) override {
    running_stats stats;
    for (const auto& [t, v] : goodput_.points()) {
      if (t >= config_.warmup) stats.add(v);
    }
    out.mean_goodput = stats.mean();
    out.stddev_goodput = stats.stddev();
    out.goodput = std::move(goodput_);
    if (config_.trace_queue) out.queue = net_->bottleneck().queue_trace();
    if (rt_.lf) out.snapshot_updates = rt_.lf->service().snapshot_updates();
    const auto& cpu = net_->sender().cpu();
    const double total = cpu.total_busy_seconds();
    out.cpu.busy_seconds = total;
    out.cpu.softirq_seconds =
        cpu.busy_seconds(kernelsim::task_category::softirq);
    out.cpu.datapath_seconds =
        cpu.busy_seconds(kernelsim::task_category::datapath);
    out.cpu.slowpath_seconds =
        cpu.busy_seconds(kernelsim::task_category::user_train) +
        cpu.busy_seconds(kernelsim::task_category::user_nn);
    out.softirq_share = total > 0.0 ? out.cpu.softirq_seconds / total : 0.0;
    for (auto& f : rt_.rate_flows) f->stop();
  }

 private:
  cc_single_flow_config config_;
  driver_config driver_;
  std::optional<netsim::dumbbell> net_;
  std::optional<netsim::cbr_source> bg_;
  scheme_runtime rt_;
  time_series goodput_{"goodput_bps"};
  std::uint64_t last_bytes_ = 0;
  std::shared_ptr<std::function<void()>> sampler_;
};

/// N-flow overhead run in a non-congested setting (Figs. 3/4/13).
class cc_overhead_experiment final : public experiment {
 public:
  explicit cc_overhead_experiment(const cc_overhead_config& config)
      : config_{config} {
    driver_.name = std::string{to_string(config.scheme)};
    driver_.seed = config.seed;
    driver_.duration = config.duration;
    driver_.warmup = config.warmup;
    driver_.warmup_hook = true;
  }

  const driver_config& config() const override { return driver_; }

  void setup(driver_context& ctx) override {
    netsim::dumbbell_config dc;
    dc.bottleneck_bps = config_.bottleneck_bps;
    dc.rtt = 10e-3;
    // Generous BDP-scale buffer: this mode studies CPU overhead, not loss.
    dc.buffer_bytes = static_cast<std::uint64_t>(
        3.0 * config_.bottleneck_bps / 8.0 * dc.rtt);
    net_.emplace(ctx.sim, dc);

    setup_scheme(rt_, config_.scheme, net_->sender(), config_.bottleneck_bps,
                 /*bg=*/0.0, dc.rtt, dc.buffer_bytes, config_.ccp_interval,
                 config_.batch_interval, config_.pretrain_iterations,
                 config_.seed);
    for (std::size_t i = 0; i < config_.n_flows; ++i) {
      // Overhead runs study steady state, not ramp-up: start near fair share.
      launch_flow(rt_, config_.scheme, net_->sender(),
                  netsim::dumbbell::receiver_id,
                  static_cast<netsim::flow_id_t>(i + 1),
                  config_.bottleneck_bps,
                  0.8 * config_.bottleneck_bps /
                      static_cast<double>(config_.n_flows));
    }

    wire_cc_metrics(ctx, *net_, rt_);
  }

  void at_warmup(driver_context&) override {
    // Snapshot CPU accounting and delivered bytes at the end of warmup.
    bytes_at_warmup_ = net_->receiver().total_delivered_payload();
    const auto& cpu = net_->sender().cpu();
    softirq_at_warmup_ = cpu.busy_seconds(kernelsim::task_category::softirq);
    datapath_at_warmup_ = cpu.busy_seconds(kernelsim::task_category::datapath);
    slowpath_at_warmup_ =
        cpu.busy_seconds(kernelsim::task_category::user_train) +
        cpu.busy_seconds(kernelsim::task_category::user_nn);
    busy_at_warmup_ = cpu.total_busy_seconds();
  }

  void report(driver_context&, run_result& out) override {
    const double window = config_.duration - config_.warmup;
    out.mean_goodput =
        static_cast<double>(net_->receiver().total_delivered_payload() -
                            bytes_at_warmup_) *
        8.0 / window;
    const auto& cpu = net_->sender().cpu();
    out.cpu.softirq_seconds =
        cpu.busy_seconds(kernelsim::task_category::softirq) -
        softirq_at_warmup_;
    out.cpu.datapath_seconds =
        cpu.busy_seconds(kernelsim::task_category::datapath) -
        datapath_at_warmup_;
    out.cpu.slowpath_seconds =
        cpu.busy_seconds(kernelsim::task_category::user_train) +
        cpu.busy_seconds(kernelsim::task_category::user_nn) -
        slowpath_at_warmup_;
    out.cpu.busy_seconds = cpu.total_busy_seconds() - busy_at_warmup_;
    out.softirq_share = out.cpu.busy_seconds > 0.0
                            ? out.cpu.softirq_seconds / out.cpu.busy_seconds
                            : 0.0;
    out.cpu.utilization = out.cpu.busy_seconds / (cpu.capacity() * window);
    if (rt_.lf) out.snapshot_updates = rt_.lf->service().snapshot_updates();
    for (auto& f : rt_.rate_flows) f->stop();
  }

 private:
  cc_overhead_config config_;
  driver_config driver_;
  std::optional<netsim::dumbbell> net_;
  scheme_runtime rt_;
  std::uint64_t bytes_at_warmup_ = 0;
  double softirq_at_warmup_ = 0.0;
  double datapath_at_warmup_ = 0.0;
  double slowpath_at_warmup_ = 0.0;
  double busy_at_warmup_ = 0.0;
};

}  // namespace

cc_single_flow_result run_cc_single_flow(const cc_single_flow_config& config) {
  cc_single_flow_experiment exp{config};
  return run_experiment(exp);
}

cc_overhead_result run_cc_overhead(const cc_overhead_config& config) {
  cc_overhead_experiment exp{config};
  cc_overhead_result result;
  static_cast<run_result&>(result) = run_experiment(exp);
  result.aggregate_bps = result.mean_goodput;
  result.softirq_seconds = result.cpu.softirq_seconds;
  result.datapath_seconds = result.cpu.datapath_seconds;
  result.slowpath_seconds = result.cpu.slowpath_seconds;
  result.cpu_utilization = result.cpu.utilization;
  return result;
}

}  // namespace lf::apps
