#include "apps/cc/cc_experiment.hpp"

#include <cmath>
#include <cstdlib>

#include "apps/common/probes.hpp"
#include "netsim/workload.hpp"
#include "transport/bbr.hpp"
#include "transport/cubic.hpp"
#include "transport/rate_sender.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {

std::string_view to_string(cc_scheme s) noexcept {
  switch (s) {
    case cc_scheme::lf_aurora:
      return "LF-Aurora";
    case cc_scheme::lf_mocc:
      return "LF-MOCC";
    case cc_scheme::lf_aurora_noa:
      return "LF-Aurora-N-O-A";
    case cc_scheme::lf_dummy:
      return "LF-Dummy-NN";
    case cc_scheme::ccp_aurora:
      return "CCP-Aurora";
    case cc_scheme::ccp_mocc:
      return "CCP-MOCC";
    case cc_scheme::kernel_train_aurora:
      return "Kernel-Train-Aurora";
    case cc_scheme::bbr:
      return "BBR";
    case cc_scheme::cubic:
      return "CUBIC";
  }
  return "?";
}

bool is_rate_based(cc_scheme s) noexcept {
  return s != cc_scheme::bbr && s != cc_scheme::cubic;
}

bool bench_fast_mode() {
  const char* v = std::getenv("LF_BENCH_FAST");
  return v != nullptr && *v != '\0' && *v != '0';
}

namespace {

/// Owns whichever deployment stack the scheme needs and hands out
/// controllers / senders uniformly.
struct scheme_runtime {
  std::unique_ptr<liteflow_cc_stack> lf;
  std::unique_ptr<ccp_cc_stack> ccp;
  std::unique_ptr<kernel_train_cc_stack> ktrain;

  std::vector<std::unique_ptr<transport::rate_sender>> rate_flows;
  std::vector<std::unique_ptr<transport::window_sender>> window_flows;
};

aurora_adapter_config env_matched_adapter(double bottleneck_bps, double bg_bps,
                                          double rtt,
                                          std::uint64_t buffer_bytes) {
  aurora_adapter_config a;
  a.env.bandwidth_bps = bottleneck_bps;
  a.env.background_bps = std::min(bg_bps, 0.9 * bottleneck_bps);
  a.env.base_rtt = rtt;
  a.env.queue_bytes = static_cast<double>(buffer_bytes);
  return a;
}

void setup_scheme(scheme_runtime& rt, cc_scheme scheme, netsim::host& sender,
                  double bottleneck_bps, double bg_bps, double rtt,
                  std::uint64_t buffer_bytes, double ccp_interval,
                  double batch_interval, std::size_t pretrain,
                  std::uint64_t seed, double sync_alpha = 0.05) {
  switch (scheme) {
    case cc_scheme::lf_aurora:
    case cc_scheme::lf_mocc:
    case cc_scheme::lf_aurora_noa:
    case cc_scheme::lf_dummy: {
      liteflow_cc_options o;
      o.model = scheme == cc_scheme::lf_mocc ? cc_model::mocc
                                             : cc_model::aurora;
      o.adaptation = scheme == cc_scheme::lf_aurora ||
                     scheme == cc_scheme::lf_mocc;
      o.batch_interval = batch_interval;
      o.pretrain_iterations =
          scheme == cc_scheme::lf_dummy ? 0 : pretrain;
      o.seed = seed;
      o.adapter = env_matched_adapter(bottleneck_bps, bg_bps, rtt,
                                      buffer_bytes);
      o.controller.min_rate_bps = 0.05 * bottleneck_bps;
      o.controller.max_rate_bps = 2.0 * bottleneck_bps;
      o.sync.alpha = sync_alpha;
      rt.lf = std::make_unique<liteflow_cc_stack>(sender, o);
      if (scheme == cc_scheme::lf_dummy) {
        // LF-Dummy-NN (§5.1): same structure as Aurora, but the generated
        // code always emits the max action -> the flow pins line rate.
        auto& model = rt.lf->adapter().model();
        std::vector<double> params(model.parameter_count(), 0.0);
        // Final layer bias saturates tanh at ~+1.
        params.back() = 6.0;
        model.set_parameters(params);
      }
      rt.lf->start();
      break;
    }
    case cc_scheme::ccp_aurora:
    case cc_scheme::ccp_mocc: {
      ccp_cc_options o;
      o.model = scheme == cc_scheme::ccp_mocc ? cc_model::mocc
                                              : cc_model::aurora;
      o.interval = ccp_interval;
      o.pretrain_iterations = pretrain;
      o.seed = seed;
      o.adapter = env_matched_adapter(bottleneck_bps, bg_bps, rtt,
                                      buffer_bytes);
      o.controller.min_rate_bps = 0.05 * bottleneck_bps;
      o.controller.max_rate_bps = 2.0 * bottleneck_bps;
      rt.ccp = std::make_unique<ccp_cc_stack>(sender, o);
      rt.ccp->start();
      break;
    }
    case cc_scheme::kernel_train_aurora: {
      kernel_train_cc_options o;
      o.pretrain_iterations = pretrain;
      o.seed = seed;
      o.adapter = env_matched_adapter(bottleneck_bps, bg_bps, rtt,
                                      buffer_bytes);
      o.controller.min_rate_bps = 0.05 * bottleneck_bps;
      o.controller.max_rate_bps = 2.0 * bottleneck_bps;
      rt.ktrain = std::make_unique<kernel_train_cc_stack>(sender, o);
      rt.ktrain->start();
      break;
    }
    case cc_scheme::bbr:
    case cc_scheme::cubic:
      break;  // window transports need no stack
  }
}

void launch_flow(scheme_runtime& rt, cc_scheme scheme, netsim::host& sender,
                 netsim::host_id_t dst, netsim::flow_id_t id,
                 double bottleneck_bps, double initial_rate_bps) {
  if (is_rate_based(scheme)) {
    transport::rate_sender_config rc;
    rc.initial_rate_bps =
        scheme == cc_scheme::lf_dummy ? bottleneck_bps : initial_rate_bps;
    rc.max_rate_bps = 2.0 * bottleneck_bps;
    // Keep >= ~5% of line rate so monitor intervals still carry enough
    // packets for meaningful signal statistics.
    rc.min_rate_bps = 0.05 * bottleneck_bps;
    std::unique_ptr<transport::rate_controller> ctrl;
    if (rt.lf) {
      ctrl = rt.lf->make_controller(id);
    } else if (rt.ccp) {
      ctrl = rt.ccp->make_controller();
    } else {
      ctrl = rt.ktrain->make_controller();
    }
    auto flow = std::make_unique<transport::rate_sender>(
        sender, dst, id, rc, std::move(ctrl));
    flow->start();
    rt.rate_flows.push_back(std::move(flow));
  } else {
    std::unique_ptr<transport::cong_ctrl> cc;
    if (scheme == cc_scheme::bbr) {
      cc = std::make_unique<transport::bbr>();
    } else {
      cc = std::make_unique<transport::cubic>();
    }
    auto flow = std::make_unique<transport::window_sender>(
        sender, dst, id, std::uint64_t{1} << 50, transport::window_sender_config{},
        std::move(cc));
    flow->start();
    rt.window_flows.push_back(std::move(flow));
  }
}

}  // namespace

cc_single_flow_result run_cc_single_flow(const cc_single_flow_config& config) {
  sim::simulation simu;
  netsim::dumbbell net{simu, config.net};
  if (config.trace_queue) net.bottleneck().enable_queue_trace();

  netsim::cbr_source bg{simu, net.bg_sender(), netsim::dumbbell::receiver_id,
                        999'999, config.bg_bps};
  if (config.bg_bps > 0.0) bg.start();
  for (const auto& phase : config.bg_schedule) {
    simu.schedule_at(phase.at, [&bg, &net, rate = phase.bg_bps,
                                loss = phase.random_loss]() {
      bg.set_rate(rate);
      if (rate > 0.0) bg.start();
      net.bottleneck().set_random_loss(loss);
    });
  }

  scheme_runtime rt;
  setup_scheme(rt, config.scheme, net.sender(), config.net.bottleneck_bps,
               config.bg_bps, config.net.rtt, config.net.buffer_bytes,
               config.ccp_interval, config.batch_interval,
               config.pretrain_iterations, config.seed, config.lf_sync_alpha);
  launch_flow(rt, config.scheme, net.sender(), netsim::dumbbell::receiver_id,
              1, config.net.bottleneck_bps, 0.1 * config.net.bottleneck_bps);

  // Goodput sampling counts only the test flow (exclude background):
  // sample the receiver's per-flow state.
  time_series goodput{"goodput_bps"};
  std::uint64_t last_bytes = 0;
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&, sampler]() {
    const auto* st = net.receiver().flow_state(1);
    const std::uint64_t bytes = st ? st->delivered_payload : 0;
    goodput.record(simu.now(), static_cast<double>(bytes - last_bytes) * 8.0 /
                                   config.sample_interval);
    last_bytes = bytes;
    simu.schedule(config.sample_interval, *sampler);
  };
  simu.schedule(config.sample_interval, *sampler);

  simu.run_until(config.duration);

  cc_single_flow_result result;
  running_stats stats;
  for (const auto& [t, v] : goodput.points()) {
    if (t >= config.warmup) stats.add(v);
  }
  result.mean_goodput = stats.mean();
  result.stddev_goodput = stats.stddev();
  result.goodput = std::move(goodput);
  if (config.trace_queue) result.queue = net.bottleneck().queue_trace();
  if (rt.lf) result.snapshot_updates = rt.lf->service().snapshot_updates();
  const auto& cpu = net.sender().cpu();
  const double total = cpu.total_busy_seconds();
  result.softirq_share =
      total > 0.0
          ? cpu.busy_seconds(kernelsim::task_category::softirq) / total
          : 0.0;
  for (auto& f : rt.rate_flows) f->stop();
  return result;
}

cc_overhead_result run_cc_overhead(const cc_overhead_config& config) {
  sim::simulation simu;
  netsim::dumbbell_config dc;
  dc.bottleneck_bps = config.bottleneck_bps;
  dc.rtt = 10e-3;
  // Generous BDP-scale buffer: this mode studies CPU overhead, not loss.
  dc.buffer_bytes = static_cast<std::uint64_t>(
      3.0 * config.bottleneck_bps / 8.0 * dc.rtt);
  netsim::dumbbell net{simu, dc};

  scheme_runtime rt;
  setup_scheme(rt, config.scheme, net.sender(), config.bottleneck_bps,
               /*bg=*/0.0, dc.rtt, dc.buffer_bytes, config.ccp_interval,
               config.batch_interval, config.pretrain_iterations, config.seed);
  for (std::size_t i = 0; i < config.n_flows; ++i) {
    // Overhead runs study steady state, not ramp-up: start near fair share.
    launch_flow(rt, config.scheme, net.sender(), netsim::dumbbell::receiver_id,
                static_cast<netsim::flow_id_t>(i + 1), config.bottleneck_bps,
                0.8 * config.bottleneck_bps /
                    static_cast<double>(config.n_flows));
  }

  // Snapshot CPU accounting and delivered bytes at the end of warmup.
  std::uint64_t bytes_at_warmup = 0;
  double softirq_at_warmup = 0.0;
  double datapath_at_warmup = 0.0;
  double slowpath_at_warmup = 0.0;
  double busy_at_warmup = 0.0;
  simu.schedule_at(config.warmup, [&]() {
    bytes_at_warmup = net.receiver().total_delivered_payload();
    const auto& cpu = net.sender().cpu();
    softirq_at_warmup = cpu.busy_seconds(kernelsim::task_category::softirq);
    datapath_at_warmup = cpu.busy_seconds(kernelsim::task_category::datapath);
    slowpath_at_warmup =
        cpu.busy_seconds(kernelsim::task_category::user_train) +
        cpu.busy_seconds(kernelsim::task_category::user_nn);
    busy_at_warmup = cpu.total_busy_seconds();
  });

  simu.run_until(config.duration);

  cc_overhead_result result;
  const double window = config.duration - config.warmup;
  result.aggregate_bps =
      static_cast<double>(net.receiver().total_delivered_payload() -
                          bytes_at_warmup) *
      8.0 / window;
  const auto& cpu = net.sender().cpu();
  result.softirq_seconds =
      cpu.busy_seconds(kernelsim::task_category::softirq) - softirq_at_warmup;
  result.datapath_seconds =
      cpu.busy_seconds(kernelsim::task_category::datapath) -
      datapath_at_warmup;
  result.slowpath_seconds =
      cpu.busy_seconds(kernelsim::task_category::user_train) +
      cpu.busy_seconds(kernelsim::task_category::user_nn) -
      slowpath_at_warmup;
  const double busy = cpu.total_busy_seconds() - busy_at_warmup;
  result.softirq_share = busy > 0.0 ? result.softirq_seconds / busy : 0.0;
  result.cpu_utilization = busy / (cpu.capacity() * window);
  for (auto& f : rt.rate_flows) f->stop();
  return result;
}

}  // namespace lf::apps
