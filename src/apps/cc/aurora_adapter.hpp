// Userspace slow-path implementation for Aurora/MOCC congestion control.
//
// Implements core::adaptation_interface the way the paper's users would in
// Python: the model trains in a Gym-style fluid link simulator (rl::link_env
// — Aurora's own training rig), and online adaptation re-estimates the
// environment parameters {bandwidth, base RTT, stochastic loss} from each
// kernel batch, re-parameterizes the simulator, and continues policy
// iterations against it.  This is exactly the paper's observation that
// batched and online RL tuning coincide when training runs in a simulator
// (§3.2).
#pragma once

#include <memory>

#include "core/userspace_service.hpp"
#include "rl/link_env.hpp"
#include "rl/pg_trainer.hpp"

namespace lf::apps {

enum class cc_model { aurora, mocc };

struct aurora_adapter_config {
  cc_model model = cc_model::aurora;
  std::size_t history = 10;
  rl::link_env_config env{};
  rl::pg_config trainer{};
  /// Policy-gradient iterations run per delivered batch.
  std::size_t iterations_per_batch = 20;
  std::uint64_t seed = 1;
};

class aurora_adapter final : public core::adaptation_interface {
 public:
  explicit aurora_adapter(aurora_adapter_config config);

  /// Offline pre-training before deployment (the paper trains Aurora to
  /// convergence in the simulator first).
  void pretrain(std::size_t iterations);

  // core::adaptation_interface
  std::string freeze_model() override;
  double stability_value() const override;
  std::vector<double> evaluate(std::span<const double> input) const override;
  void adapt(std::span<const core::train_sample> batch) override;
  std::size_t parameter_count() const override;

  nn::mlp& model() noexcept { return net_; }
  rl::pg_trainer& trainer() noexcept { return *trainer_; }
  rl::link_env& environment() noexcept { return *env_; }

  /// Environment parameters last estimated from a kernel batch.
  double estimated_bandwidth() const noexcept { return est_bandwidth_; }
  double estimated_rtt() const noexcept { return est_rtt_; }
  double estimated_loss() const noexcept { return est_loss_; }

  /// Layout of the aux vector the CC input collector ships per sample.
  /// aux = {throughput_bps, send_rate_bps, min_rtt, loss_rate}.
  static constexpr std::size_t k_aux_size = 4;

 private:
  aurora_adapter_config config_;
  rng gen_;
  nn::mlp net_;
  std::unique_ptr<rl::link_env> env_;
  std::unique_ptr<rl::pg_trainer> trainer_;
  double est_bandwidth_ = 0.0;
  double est_rtt_ = 0.0;
  double est_loss_ = 0.0;
  double ewma_reward_ = 0.0;
  bool ewma_initialized_ = false;
};

}  // namespace lf::apps
