// Per-host deployment stacks for NN congestion control.
//
// A "stack" owns everything one sender host needs for a deployment style
// and hands out rate controllers for individual flows:
//  - liteflow_cc_stack: LiteFlow core module + netlink server + batch
//    collector + userspace service + Aurora/MOCC slow path (LF-Aurora /
//    LF-MOCC; set adaptation=false for the N-O-A ablation);
//  - ccp_cc_stack: a userspace agent holding the FP32 model, reached over
//    a CCP IPC channel at a configurable interval (CCP-Aurora-1ms etc.);
//  - kernel_train_cc_stack: the all-in-kernel §2.3 anti-pattern.
#pragma once

#include <memory>

#include "apps/cc/aurora_adapter.hpp"
#include "apps/cc/cc_controllers.hpp"
#include "core/userspace_service.hpp"
#include "netsim/host.hpp"

namespace lf::apps {

struct liteflow_cc_options {
  cc_model model = cc_model::aurora;
  double batch_interval = 0.100;  ///< T (Fig. 14 recommends 100ms-1000ms)
  bool adaptation = true;         ///< false = LF-*-N-O-A
  std::size_t pretrain_iterations = 400;
  std::uint64_t seed = 7;
  aurora_adapter_config adapter{};
  cc_controller_config controller{};
  quant::quantizer_config quantizer{};
  core::sync_config sync{};
};

class liteflow_cc_stack {
 public:
  liteflow_cc_stack(netsim::host& h, liteflow_cc_options options);

  /// Pretrain the slow-path model and install snapshot v1.
  void start();

  std::unique_ptr<transport::rate_controller> make_controller(
      netsim::flow_id_t flow);

  core::liteflow_core& core() noexcept { return *core_; }
  core::userspace_service& service() noexcept { return *service_; }
  aurora_adapter& adapter() noexcept { return *adapter_; }
  core::batch_collector& collector() noexcept { return *collector_; }
  kernelsim::crossspace_channel& netlink() noexcept { return *netlink_; }
  const liteflow_cc_options& options() const noexcept { return options_; }

 private:
  netsim::host& host_;
  liteflow_cc_options options_;
  std::unique_ptr<kernelsim::crossspace_channel> netlink_;
  std::unique_ptr<core::liteflow_core> core_;
  std::unique_ptr<core::batch_collector> collector_;
  std::unique_ptr<aurora_adapter> adapter_;
  std::unique_ptr<core::userspace_service> service_;
};

struct ccp_cc_options {
  cc_model model = cc_model::aurora;
  /// Cross-space decision interval in seconds; 0 = per ACK.
  double interval = 10e-3;
  std::size_t pretrain_iterations = 400;
  std::uint64_t seed = 7;
  aurora_adapter_config adapter{};
  cc_controller_config controller{};
};

class ccp_cc_stack {
 public:
  ccp_cc_stack(netsim::host& h, ccp_cc_options options);

  void start();  ///< pretrain the userspace model

  std::unique_ptr<transport::rate_controller> make_controller();

  kernelsim::crossspace_channel& channel() noexcept { return *ipc_; }
  aurora_adapter& adapter() noexcept { return *adapter_; }

 private:
  netsim::host& host_;
  ccp_cc_options options_;
  std::unique_ptr<kernelsim::crossspace_channel> ipc_;
  std::unique_ptr<aurora_adapter> adapter_;
};

struct kernel_train_cc_options {
  cc_model model = cc_model::aurora;
  double train_interval = 0.100;  ///< mini-batch cadence
  std::size_t batch_size = 32;
  std::size_t pretrain_iterations = 400;
  std::uint64_t seed = 7;
  aurora_adapter_config adapter{};
  cc_controller_config controller{};
};

class kernel_train_cc_stack {
 public:
  kernel_train_cc_stack(netsim::host& h, kernel_train_cc_options options);

  void start();

  std::unique_ptr<transport::rate_controller> make_controller();

 private:
  netsim::host& host_;
  kernel_train_cc_options options_;
  std::unique_ptr<aurora_adapter> adapter_;
};

}  // namespace lf::apps
