#include "apps/cc/aurora_adapter.hpp"

#include <algorithm>

#include "nn/serialize.hpp"

namespace lf::apps {
namespace {

nn::mlp make_net(cc_model model, std::size_t history, rng& gen) {
  return model == cc_model::aurora ? nn::make_aurora_net(gen, history)
                                   : nn::make_mocc_net(gen, history);
}

}  // namespace

aurora_adapter::aurora_adapter(aurora_adapter_config config)
    : config_{config}, gen_{config.seed},
      net_{make_net(config.model, config.history, gen_)} {
  // Pretraining runs on the clean fluid model — the resulting policy is as
  // narrowly fitted as the paper's Aurora (it reads any sustained
  // send-ratio offset as congestion).  Online adaptation later retrains
  // with observation noise matched to real monitor intervals (see adapt()),
  // which is what teaches the tuned policy to survive the new environment.
  auto env_config = config_.env;
  env_config.history = config_.history;
  if (config_.model == cc_model::mocc) {
    // MOCC's multi-objective reward adds an explicit latency objective and
    // trains with more episodes per update, which is what makes it adapt
    // faster than Aurora in the paper's Fig. 12.
    env_config.latency_weight *= 2.0;
    config_.trainer.episodes_per_iteration =
        std::max<std::size_t>(config_.trainer.episodes_per_iteration, 6);
  }
  env_ = std::make_unique<rl::link_env>(env_config, gen_.split());
  trainer_ = std::make_unique<rl::pg_trainer>(net_, *env_, config_.trainer,
                                              gen_.split());
}

void aurora_adapter::pretrain(std::size_t iterations) {
  for (std::size_t i = 0; i < iterations; ++i) trainer_->iterate();
}

std::string aurora_adapter::freeze_model() {
  return nn::save_mlp_to_string(net_);
}

double aurora_adapter::stability_value() const {
  // Policy-gradient per-iteration rewards are noisy even at convergence; an
  // EWMA gives the sync evaluator a metric whose spread actually narrows
  // once exploration settles (§3.3 lets users pick their metric).
  return ewma_reward_;
}

std::vector<double> aurora_adapter::evaluate(
    std::span<const double> input) const {
  return net_.forward(input);
}

std::size_t aurora_adapter::parameter_count() const {
  return net_.parameter_count();
}

void aurora_adapter::adapt(std::span<const core::train_sample> batch) {
  // Re-estimate the environment from the batch aux data:
  //   bandwidth ~ the highest delivery rate any interval achieved,
  //   rtt       ~ the smallest min-RTT seen,
  //   loss      ~ the loss floor (loss present even without queue growth
  //               indicates stochastic loss, not congestion).
  double bw = 0.0;
  double rtt = 0.0;
  double loss_num = 0.0;
  double loss_den = 0.0;
  std::size_t valid = 0;
  for (const auto& sample : batch) {
    if (sample.aux.size() < k_aux_size) continue;
    ++valid;
    bw = std::max(bw, sample.aux[0]);
    if (sample.aux[2] > 0.0) {
      rtt = rtt == 0.0 ? sample.aux[2] : std::min(rtt, sample.aux[2]);
    }
    // Send-rate-weighted loss: intervals that carried traffic dominate, so
    // a trickle of near-empty intervals (loss 0 or 1 by quantization) does
    // not swamp the estimate.
    loss_num += sample.aux[3] * sample.aux[1];
    loss_den += sample.aux[1];
  }
  const double loss_floor =
      loss_den > 0.0 ? std::min(loss_num / loss_den, 0.5) : 0.0;
  if (valid > 0 && bw > 0.0 && rtt > 0.0) {
    // A congestion-collapsed flow observes tiny throughput; taking that at
    // face value would re-parameterize the training link to ~0 and the
    // policy would learn to stay collapsed.  The bandwidth estimate may
    // therefore rise instantly but only decays slowly (10% per batch), so
    // the simulator keeps giving the policy headroom to re-probe.
    if (est_bandwidth_ == 0.0) {
      est_bandwidth_ = std::max(bw, env_->available_bandwidth());
    } else {
      // ~0.2% decay per batch (a few percent per second at T=100ms): fast
      // enough to track a genuinely shrinking link within tens of seconds,
      // slow enough that a collapsed flow cannot drag the model down
      // before retraining rescues it.
      est_bandwidth_ = std::max(bw, 0.998 * est_bandwidth_);
    }
    est_rtt_ = rtt;
    est_loss_ = loss_floor;
    // The fluid env models background traffic separately; fold the whole
    // observed capacity into `bandwidth` and zero the background so the
    // policy's target rate matches what the datapath actually measured.
    env_->set_background(0.0);
    env_->set_link(est_bandwidth_, est_rtt_, est_loss_);
    // Online adaptation trains against realistically noisy observations
    // (packet-quantized monitor intervals), unlike the clean pretraining.
    env_->set_feature_noise(0.15);
  }
  for (std::size_t i = 0; i < config_.iterations_per_batch; ++i) {
    trainer_->iterate();
    ewma_reward_ = ewma_initialized_
                       ? 0.9 * ewma_reward_ + 0.1 * trainer_->last_mean_reward()
                       : trainer_->last_mean_reward();
    ewma_initialized_ = true;
  }
}

}  // namespace lf::apps
