#include "apps/cc/cc_deployment.hpp"

namespace lf::apps {

liteflow_cc_stack::liteflow_cc_stack(netsim::host& h,
                                     liteflow_cc_options options)
    : host_{h}, options_{std::move(options)} {
  auto& sim = host_.simulator();
  netlink_ = std::make_unique<kernelsim::crossspace_channel>(
      sim, host_.cpu(), host_.costs(), kernelsim::channel_kind::netlink);
  // CC flows are long-lived and tolerate a mid-flow model switch (the rate
  // just keeps being steered); pinning them to their first snapshot would
  // lock out every future update.  The paper notes users can disable the
  // flow cache per datapath function (§3.4 fn. 2) — the CC module does.
  core::router_config rc;
  rc.flow_cache_enabled = false;
  core_ = std::make_unique<core::liteflow_core>(sim, host_.cpu(),
                                                host_.costs(), rc);
  core::batch_collector_config bc;
  bc.interval = options_.batch_interval;
  collector_ =
      std::make_unique<core::batch_collector>(sim, *netlink_, bc);

  auto adapter_config = options_.adapter;
  adapter_config.model = options_.model;
  adapter_config.seed = options_.seed;
  adapter_ = std::make_unique<aurora_adapter>(adapter_config);

  core::service_config sc;
  sc.model_name =
      options_.model == cc_model::aurora ? "aurora" : "mocc";
  sc.quantizer = options_.quantizer;
  sc.sync = options_.sync;
  sc.adaptation_enabled = options_.adaptation;
  service_ = std::make_unique<core::userspace_service>(
      sim, host_.cpu(), host_.costs(), *netlink_, *core_, *collector_,
      *adapter_, sc);

  // Attach the CC input collector / output enforcer module (§4.2).
  core_->register_io(core::io_module_spec{
      "liteflow-cc", adapter_->model().input_size(),
      adapter_->model().output_size()});
}

void liteflow_cc_stack::start() {
  adapter_->pretrain(options_.pretrain_iterations);
  service_->start();
}

std::unique_ptr<transport::rate_controller> liteflow_cc_stack::make_controller(
    netsim::flow_id_t flow) {
  return std::make_unique<liteflow_cc_controller>(
      *core_, options_.adaptation ? collector_.get() : nullptr, flow,
      options_.controller);
}

ccp_cc_stack::ccp_cc_stack(netsim::host& h, ccp_cc_options options)
    : host_{h}, options_{std::move(options)} {
  ipc_ = std::make_unique<kernelsim::crossspace_channel>(
      host_.simulator(), host_.cpu(), host_.costs(),
      kernelsim::channel_kind::ccp_ipc);
  auto adapter_config = options_.adapter;
  adapter_config.model = options_.model;
  adapter_config.seed = options_.seed;
  adapter_ = std::make_unique<aurora_adapter>(adapter_config);
}

void ccp_cc_stack::start() {
  adapter_->pretrain(options_.pretrain_iterations);
}

std::unique_ptr<transport::rate_controller> ccp_cc_stack::make_controller() {
  return std::make_unique<ccp_cc_controller>(
      host_.simulator(), *ipc_, host_.costs(), adapter_->model(),
      options_.interval, options_.controller);
}

kernel_train_cc_stack::kernel_train_cc_stack(netsim::host& h,
                                             kernel_train_cc_options options)
    : host_{h}, options_{std::move(options)} {
  auto adapter_config = options_.adapter;
  adapter_config.model = options_.model;
  adapter_config.seed = options_.seed;
  adapter_ = std::make_unique<aurora_adapter>(adapter_config);
}

void kernel_train_cc_stack::start() {
  adapter_->pretrain(options_.pretrain_iterations);
}

std::unique_ptr<transport::rate_controller>
kernel_train_cc_stack::make_controller() {
  return std::make_unique<kernel_train_controller>(
      host_.simulator(), host_.cpu(), host_.costs(), adapter_->model(),
      options_.train_interval, options_.batch_size, options_.controller);
}

}  // namespace lf::apps
