#include "apps/cc/cc_controllers.hpp"

#include <cmath>

#include "apps/cc/aurora_adapter.hpp"

namespace lf::apps {

feature_history::feature_history(std::size_t k) : k_{k} {
  window_.assign(k_ * transport::k_features_per_interval, 0.0);
  flat_.assign(window_.begin(), window_.end());
}

void feature_history::push(const transport::mi_observation& obs) {
  for (const double f : transport::observation_features(obs)) {
    window_.push_back(f);
  }
  while (window_.size() > k_ * transport::k_features_per_interval) {
    window_.pop_front();
  }
  flat_.assign(window_.begin(), window_.end());
}

// ------------------------------------------------------------- liteflow --

liteflow_cc_controller::liteflow_cc_controller(core::liteflow_core& core,
                                               core::batch_collector* collector,
                                               netsim::flow_id_t flow,
                                               cc_controller_config config)
    : core_{core}, collector_{collector}, flow_{flow}, config_{config},
      history_{config.history} {}

void liteflow_cc_controller::on_monitor_interval(
    const transport::mi_observation& obs,
    std::function<void(double)> set_rate) {
  history_.push(obs);
  const auto& features = history_.features();

  // Slow-path sample: features the snapshot saw + the measurements the
  // tuner needs to re-estimate the environment.
  if (collector_) {
    core::train_sample sample;
    sample.features = features;
    sample.aux = {obs.throughput, obs.send_rate, obs.min_rtt, obs.loss_rate};
    collector_->collect(std::move(sample));
  }

  const fp::s64 scale = core_.active_io_scale();
  if (scale == 0) return;  // nothing installed yet
  std::vector<fp::s64> input(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    input[i] =
        static_cast<fp::s64>(std::llround(features[i] * static_cast<double>(scale)));
  }
  const double send_rate = obs.send_rate;
  core_.query_model(
      flow_, std::move(input),
      [this, send_rate, scale, set_rate = std::move(set_rate)](
          std::vector<fp::s64> out) {
        if (out.empty()) return;
        const double action =
            static_cast<double>(out[0]) / static_cast<double>(scale);
        set_rate(transport::apply_rate_action(send_rate, action,
                                              config_.action_delta,
                                              config_.min_rate_bps,
                                              config_.max_rate_bps));
      });
}

void liteflow_cc_controller::on_flow_close() {
  core_.router().flow_finished(flow_);
}

// ------------------------------------------------------------------ ccp --

ccp_cc_controller::ccp_cc_controller(sim::simulation& sim,
                                     kernelsim::crossspace_channel& ipc,
                                     const kernelsim::cost_model& costs,
                                     const nn::mlp& model, double interval,
                                     cc_controller_config config)
    : sim_{sim}, ipc_{ipc}, costs_{costs}, model_{model}, interval_{interval},
      config_{config}, history_{config.history} {}

void ccp_cc_controller::on_monitor_interval(
    const transport::mi_observation& obs,
    std::function<void(double)> set_rate) {
  history_.push(obs);
  set_rate_ = std::move(set_rate);
  last_send_rate_ = obs.send_rate;
  if (interval_ <= 0.0) {
    // Per-ACK mode: a decision round trip for every reported interval.
    request_decision();
    return;
  }
  if (!timer_started_) {
    timer_started_ = true;
    sim_.schedule(interval_, [this]() { tick(); });
  }
}

void ccp_cc_controller::tick() {
  if (closed_) return;
  request_decision();
  sim_.schedule(interval_, [this]() { tick(); });
}

void ccp_cc_controller::request_decision() {
  // The kernel side emits a report every interval regardless of whether the
  // agent has answered the previous one — that is precisely what floods
  // softirq in the paper's Fig. 4.  A high safety valve only guards the
  // simulator against unbounded event growth.
  if (closed_ || in_flight_ >= 32) return;
  ++in_flight_;
  // Ship the feature history up; the userspace agent runs the FP32 model.
  const std::size_t bytes = history_.features().size() * sizeof(double);
  const double infer_cost =
      costs_.user_inference_overhead +
      static_cast<double>(model_.parameter_count()) *
          costs_.user_inference_mac_cost;
  ipc_.round_trip(
      bytes, sizeof(double), infer_cost, kernelsim::task_category::user_nn,
      [this](double) {
        if (in_flight_ > 0) --in_flight_;
        if (closed_ || !set_rate_) return;
        ++decisions_;
        const auto out = model_.forward(history_.features());
        set_rate_(transport::apply_rate_action(
            last_send_rate_, out[0], config_.action_delta,
            config_.min_rate_bps, config_.max_rate_bps));
      });
}

void ccp_cc_controller::on_flow_close() {
  closed_ = true;
  set_rate_ = {};
}

// --------------------------------------------------------- kernel train --

kernel_train_controller::kernel_train_controller(
    sim::simulation& sim, kernelsim::cpu_model& cpu,
    const kernelsim::cost_model& costs, nn::mlp& model, double train_interval,
    std::size_t batch_size, cc_controller_config config)
    : sim_{sim}, cpu_{cpu}, costs_{costs}, model_{model},
      train_interval_{train_interval}, batch_size_{batch_size},
      config_{config}, history_{config.history} {}

void kernel_train_controller::on_monitor_interval(
    const transport::mi_observation& obs,
    std::function<void(double)> set_rate) {
  history_.push(obs);
  ++pending_samples_;
  // In-kernel FP inference: the paper notes SIMD/FP use in the kernel
  // carries extra save/restore overhead — modeled as 4x the integer MAC
  // cost — charged to the datapath budget.
  const double infer_cost =
      costs_.snapshot_query_overhead +
      4.0 * static_cast<double>(model_.parameter_count()) *
          costs_.snapshot_mac_cost;
  const auto& features = history_.features();
  cpu_.submit(kernelsim::task_category::datapath, infer_cost,
              [this, features, send_rate = obs.send_rate,
               set_rate = std::move(set_rate)]() {
                if (closed_) return;
                const auto out = model_.forward(features);
                set_rate(transport::apply_rate_action(
                    send_rate, out[0], config_.action_delta,
                    config_.min_rate_bps, config_.max_rate_bps));
              });
  if (!timer_started_) {
    timer_started_ = true;
    sim_.schedule(train_interval_, [this]() { train_tick(); });
  }
}

void kernel_train_controller::train_tick() {
  if (closed_) return;
  // In-kernel mini-batch SGD: gradient math in integer/soft-float is
  // brutally expensive and runs at kernel priority (§2.3).
  const double cost =
      costs_.kernel_train_fixed_cost +
      static_cast<double>(std::min(pending_samples_, batch_size_)) *
          static_cast<double>(model_.parameter_count()) *
          costs_.kernel_train_cost_per_sample_param;
  pending_samples_ = 0;
  ++train_rounds_;
  cpu_.submit(kernelsim::task_category::kernel_train, cost);
  sim_.schedule(train_interval_, [this]() { train_tick(); });
}

void kernel_train_controller::on_flow_close() { closed_ = true; }

}  // namespace lf::apps
