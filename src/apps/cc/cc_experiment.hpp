// Reusable congestion-control experiment harnesses on the dumbbell testbed,
// shared by the benchmark binaries (Figs. 1-5, 11-14) and the examples.
//
// Two shapes cover the paper's CC evaluation:
//  - single-flow goodput runs under emulated congestion (optionally with a
//    schedule of background-traffic changes for the adaptation figures), and
//  - N-flow overhead runs in a non-congested setting where the sender CPU
//    is the bottleneck and cross-space communication eats into it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/cc/cc_deployment.hpp"
#include "apps/common/experiment_driver.hpp"
#include "kernelsim/cpu.hpp"
#include "netsim/topology.hpp"
#include "util/time_series.hpp"

namespace lf::apps {

enum class cc_scheme {
  lf_aurora,
  lf_mocc,
  lf_aurora_noa,       ///< LiteFlow, adaptation disabled
  lf_dummy,            ///< LF-Dummy-NN: snapshot always emits line rate
  ccp_aurora,          ///< userspace deployment, interval configurable
  ccp_mocc,
  kernel_train_aurora, ///< §2.3 all-in-kernel anti-pattern
  bbr,
  cubic,
};

std::string_view to_string(cc_scheme s) noexcept;
bool is_rate_based(cc_scheme s) noexcept;

struct bg_phase {
  double at = 0.0;          ///< absolute time the phase starts
  double bg_bps = 0.0;      ///< background UDP rate from then on
  double random_loss = 0.0; ///< stochastic loss on the bottleneck from then on
};

struct cc_single_flow_config {
  cc_scheme scheme = cc_scheme::lf_aurora;
  netsim::dumbbell_config net{};
  double duration = 10.0;
  double warmup = 1.0;              ///< excluded from summary stats
  double bg_bps = 0.1e9;            ///< paper: 0.1 Gbps constant UDP
  std::vector<bg_phase> bg_schedule;  ///< optional dynamics (Figs. 5/12)
  double ccp_interval = 10e-3;      ///< for ccp_* schemes (0 = per ACK)
  double batch_interval = 0.100;    ///< LiteFlow slow-path T
  double lf_sync_alpha = 0.05;      ///< necessity threshold (§3.3)
  std::size_t pretrain_iterations = 400;
  std::uint64_t seed = 7;
  double sample_interval = 0.1;     ///< goodput sampling (paper: 0.1 s)
  bool trace_queue = false;
  /// Programmatic event-tracing override; unset keeps the driver default
  /// (the LF_TRACE / LF_TRACE_RING environment).
  std::optional<trace_options> trace;
  /// Adaptation-monitor override; unset keeps the LF_MONITOR default.
  std::optional<core::monitor_config> monitor;
  /// Flight-report override; unset keeps the LF_REPORT default.
  std::optional<report_options> report;
};

/// Single-flow goodput runs report straight through the unified run_result:
/// goodput/queue series, mean/stddev over [warmup, duration], snapshot
/// updates and the sender's softirq share.
using cc_single_flow_result = run_result;

cc_single_flow_result run_cc_single_flow(const cc_single_flow_config& config);

struct cc_overhead_config {
  cc_scheme scheme = cc_scheme::bbr;
  std::size_t n_flows = 10;
  double duration = 1.5;
  double warmup = 0.3;
  double ccp_interval = 10e-3;
  double batch_interval = 0.100;
  /// Non-congested setting: generous link, CPU becomes the bottleneck.
  double bottleneck_bps = 5e9;
  std::size_t pretrain_iterations = 300;
  std::uint64_t seed = 7;
};

/// Overhead runs extend run_result with the legacy flat field names (the
/// same numbers also live in run_result::cpu for the unified consumers).
struct cc_overhead_result : run_result {
  double aggregate_bps = 0.0;     ///< goodput over [warmup, duration]
  double softirq_seconds = 0.0;   ///< sender softirq CPU in the window
  double cpu_utilization = 0.0;   ///< total busy / capacity
  double datapath_seconds = 0.0;
  /// Userspace slow-path CPU (inference + training) in the window.
  double slowpath_seconds = 0.0;
};

cc_overhead_result run_cc_overhead(const cc_overhead_config& config);

/// True if the LF_BENCH_FAST environment variable is set: benchmarks then
/// shrink durations/flow counts for quick iteration.
bool bench_fast_mode();

}  // namespace lf::apps
