#include "apps/lb/load_balance.hpp"

#include <algorithm>
#include <cmath>

namespace lf::apps {

path_stats_tracker::path_stats_tracker(std::size_t paths)
    : per_path_(paths) {
  if (paths == 0) throw std::invalid_argument{"path_stats_tracker: 0 paths"};
}

void path_stats_tracker::on_ack(std::uint32_t path_tag,
                                const transport::ack_event& ev) {
  if (path_tag == 0 || path_tag > per_path_.size()) return;
  auto& p = per_path_[path_tag - 1];
  const double g = 0.1;
  p.ecn_ewma = (1.0 - g) * p.ecn_ewma + g * (ev.ecn_echo ? 1.0 : 0.0);
  if (ev.rtt > 0.0) {
    p.rtt_ewma = p.seen ? (1.0 - g) * p.rtt_ewma + g * ev.rtt : ev.rtt;
    min_rtt_ = min_rtt_ == 0.0 ? ev.rtt : std::min(min_rtt_, ev.rtt);
  }
  p.bytes_ewma = (1.0 - g) * p.bytes_ewma +
                 g * static_cast<double>(ev.newly_acked_bytes);
  p.seen = true;
}

std::vector<double> path_stats_tracker::features() const {
  std::vector<double> f;
  f.reserve(per_path_.size() * 3);
  for (const auto& p : per_path_) {
    f.push_back(p.ecn_ewma);
    // Normalized queueing delay: rtt / min_rtt - 1, clamped to [0, 1].
    double rtt_norm = 0.0;
    if (p.seen && min_rtt_ > 0.0) {
      rtt_norm = std::clamp(p.rtt_ewma / min_rtt_ - 1.0, 0.0, 1.0);
    }
    f.push_back(rtt_norm);
    f.push_back(std::min(1.0, p.bytes_ewma / (64.0 * 1460.0)));
  }
  return f;
}

std::uint32_t weighted_path_choice(std::span<const double> scores, rng& gen) {
  // Shift so the worst path still has a small positive weight, then sharpen
  // the preference by squaring: clearly-better paths dominate, ties split.
  double lo = scores[0];
  for (const double v : scores) lo = std::min(lo, v);
  std::vector<double> w(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double shifted = scores[i] - lo + 0.05;
    w[i] = shifted * shifted;
  }
  return static_cast<std::uint32_t>(gen.weighted_index(w)) + 1;
}

liteflow_path_selector::liteflow_path_selector(core::liteflow_core& core,
                                               std::size_t paths,
                                               std::uint64_t seed)
    : core_{core}, paths_{paths}, gen_{seed} {}

void liteflow_path_selector::select(netsim::flow_id_t flow,
                                    std::vector<double> features,
                                    std::function<void(std::uint32_t)> done) {
  const fp::s64 scale = core_.active_io_scale();
  if (scale == 0) {
    done(0);
    return;
  }
  std::vector<fp::s64> input(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    input[i] = static_cast<fp::s64>(
        std::llround(features[i] * static_cast<double>(scale)));
  }
  core_.query_model(flow, std::move(input),
                    [this, scale, done = std::move(done)](std::vector<fp::s64> out) {
                      if (out.empty()) {
                        done(0);
                        return;
                      }
                      std::vector<double> scores(out.size());
                      for (std::size_t i = 0; i < out.size(); ++i) {
                        scores[i] = static_cast<double>(out[i]) /
                                    static_cast<double>(scale);
                      }
                      done(weighted_path_choice(scores, gen_));
                    });
}

userspace_path_selector::userspace_path_selector(
    kernelsim::crossspace_channel& channel, const kernelsim::cost_model& costs,
    const nn::mlp& model, std::uint64_t seed)
    : channel_{channel}, costs_{costs}, model_{model}, gen_{seed} {}

void userspace_path_selector::select(netsim::flow_id_t,
                                     std::vector<double> features,
                                     std::function<void(std::uint32_t)> done) {
  const double infer_cost = costs_.user_inference_overhead +
                            static_cast<double>(model_.parameter_count()) *
                                costs_.user_inference_mac_cost;
  const std::size_t bytes = features.size() * sizeof(double);
  channel_.round_trip(
      bytes, sizeof(std::uint32_t), infer_cost,
      kernelsim::task_category::user_nn,
      [this, features = std::move(features), done = std::move(done)](double) {
        const auto out = model_.forward(features);
        done(weighted_path_choice(out, gen_));
      });
}

std::vector<nn::training_sample> make_lb_pretrain_dataset(std::size_t paths,
                                                          std::size_t samples,
                                                          std::uint64_t seed) {
  rng gen{seed};
  std::vector<nn::training_sample> data;
  data.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    nn::training_sample ts;
    ts.input.reserve(paths * 3);
    ts.target.reserve(paths);
    for (std::size_t p = 0; p < paths; ++p) {
      const double ecn = gen.uniform(0.0, 1.0);
      const double rtt_norm = gen.uniform(0.0, 1.0);
      const double util = gen.uniform(0.0, 1.0);
      ts.input.push_back(ecn);
      ts.input.push_back(rtt_norm);
      ts.input.push_back(util);
      ts.target.push_back(1.0 - 0.7 * ecn - 0.3 * rtt_norm);
    }
    data.push_back(std::move(ts));
  }
  return data;
}

}  // namespace lf::apps
