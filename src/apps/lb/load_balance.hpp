// NN-driven load balancing (§5.3): an MLP at each end host picks the uplink
// path (spine) for its flows from locally observed per-path congestion
// signals (ECN fraction, smoothed RTT, recent throughput), enforced through
// XPath-style explicit path tags (the LiteFlow Path Selection Module).
// Baselines: ECMP hashing, a userspace char-device deployment of the same
// MLP, and the frozen no-adaptation variant.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/common/liteflow_stack.hpp"
#include "apps/sched/flow_sched.hpp"  // supervised_adapter
#include "kernelsim/channel.hpp"
#include "transport/cong_ctrl.hpp"

namespace lf::apps {

/// Per-host, per-path congestion signal tracker fed by ACK events of flows
/// routed over each path.  Produces the MLP's input features:
/// {ecn_ewma, rtt_norm, util} per path.
class path_stats_tracker {
 public:
  explicit path_stats_tracker(std::size_t paths);

  /// path_tag in [1, paths]; events with tag 0 (ECMP) are ignored.
  void on_ack(std::uint32_t path_tag, const transport::ack_event& ev);

  std::vector<double> features() const;
  std::size_t paths() const noexcept { return per_path_.size(); }

 private:
  struct path_state {
    double ecn_ewma = 0.0;
    double rtt_ewma = 0.0;
    double bytes_ewma = 0.0;
    bool seen = false;
  };
  std::vector<path_state> per_path_;
  double min_rtt_ = 0.0;
};

/// Asynchronous path selection: done(path_tag), tag in [1, paths], or 0 to
/// fall back to ECMP hashing.
class path_selector {
 public:
  virtual ~path_selector() = default;
  virtual void select(netsim::flow_id_t flow, std::vector<double> features,
                      std::function<void(std::uint32_t)> done) = 0;
};

class ecmp_selector final : public path_selector {
 public:
  void select(netsim::flow_id_t, std::vector<double>,
              std::function<void(std::uint32_t)> done) override {
    done(0);
  }
};

/// Weighted-random path choice from per-path scores.  Deterministic argmax
/// would herd every host onto the momentarily-best path and overload it;
/// sampling proportionally to (shifted) scores keeps the preference while
/// spreading load — the standard fix for stampedes in adaptive LB.
std::uint32_t weighted_path_choice(std::span<const double> scores, rng& gen);

class liteflow_path_selector final : public path_selector {
 public:
  liteflow_path_selector(core::liteflow_core& core, std::size_t paths,
                         std::uint64_t seed = 1);
  void select(netsim::flow_id_t flow, std::vector<double> features,
              std::function<void(std::uint32_t)> done) override;

 private:
  core::liteflow_core& core_;
  std::size_t paths_;
  rng gen_;
};

class userspace_path_selector final : public path_selector {
 public:
  userspace_path_selector(kernelsim::crossspace_channel& channel,
                          const kernelsim::cost_model& costs,
                          const nn::mlp& model, std::uint64_t seed = 1);
  void select(netsim::flow_id_t flow, std::vector<double> features,
              std::function<void(std::uint32_t)> done) override;

 private:
  kernelsim::crossspace_channel& channel_;
  const kernelsim::cost_model& costs_;
  const nn::mlp& model_;
  rng gen_;
};

/// Synthetic pretraining set: per-path score = 1 - 0.7*ecn - 0.3*rtt_norm,
/// teaching the prior "prefer uncongested, low-RTT paths".
std::vector<nn::training_sample> make_lb_pretrain_dataset(std::size_t paths,
                                                          std::size_t samples,
                                                          std::uint64_t seed);

}  // namespace lf::apps
