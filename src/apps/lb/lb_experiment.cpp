#include "apps/lb/lb_experiment.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "apps/lb/load_balance.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "nn/serialize.hpp"
#include "transport/dctcp.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {
namespace {

using netsim::flow_id_t;

struct lb_host_deployment {
  std::unique_ptr<supervised_adapter> adapter;
  std::unique_ptr<liteflow_stack> lf;
  std::unique_ptr<kernelsim::crossspace_channel> channel;
  std::unique_ptr<path_selector> selector;
  std::unique_ptr<path_stats_tracker> tracker;
  std::vector<core::train_sample> pending_labels;
};

struct lb_flow {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t size = 0;
  double arrival = 0.0;
  std::uint32_t path_tag = 0;
  std::vector<double> features;  ///< at last selection
  std::unique_ptr<transport::window_sender> sender;
  bool done = false;
};

}  // namespace

std::string_view to_string(lb_deployment d) noexcept {
  switch (d) {
    case lb_deployment::liteflow:
      return "LF-MLP";
    case lb_deployment::liteflow_noa:
      return "LF-MLP-N-O-A";
    case lb_deployment::chardev:
      return "char-MLP";
    case lb_deployment::ecmp:
      return "ECMP";
  }
  return "?";
}

lb_result run_lb_experiment(const lb_experiment_config& config) {
  sim::simulation simu;
  netsim::spine_leaf_config topo_config;
  topo_config.hosts_per_leaf = config.hosts_per_leaf;
  topo_config.host_bps = config.host_bps;
  topo_config.fabric_bps = config.fabric_bps;
  topo_config.cpu_gating = config.cpu_gating;
  netsim::spine_leaf topo{simu, topo_config};
  const std::size_t hosts = topo.host_count();
  const std::size_t paths = topo.config().spines;

  const bool needs_model = config.deployment == lb_deployment::liteflow ||
                           config.deployment == lb_deployment::liteflow_noa ||
                           config.deployment == lb_deployment::chardev;

  // Pretrain one MLP on the synthetic path-quality prior, share weights.
  std::string frozen;
  if (needs_model) {
    rng init{config.seed + 1};
    auto net = nn::make_lb_mlp_net(init, paths);
    supervised_adapter warmup{std::move(net), 3e-3, 1, config.seed};
    const auto dataset = make_lb_pretrain_dataset(
        paths, config.pretrain_samples, config.seed + 2);
    warmup.pretrain(dataset, config.pretrain_epochs);
    frozen = nn::save_mlp_to_string(warmup.model());
  }

  std::vector<lb_host_deployment> deploy(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    auto& d = deploy[h];
    d.tracker = std::make_unique<path_stats_tracker>(paths);
    auto& host = topo.host_at(h);
    switch (config.deployment) {
      case lb_deployment::ecmp:
        d.selector = std::make_unique<ecmp_selector>();
        break;
      case lb_deployment::liteflow:
      case lb_deployment::liteflow_noa: {
        d.adapter = std::make_unique<supervised_adapter>(
            nn::load_mlp_from_string(frozen), 3e-3, 4, config.seed + h);
        liteflow_stack_options opts;
        opts.model_name = "lb-mlp";
        opts.batch_interval = config.batch_interval;
        opts.adaptation = config.deployment == lb_deployment::liteflow;
        opts.sync.output_min = 0.0;
        opts.sync.output_max = 1.0;
        d.lf = std::make_unique<liteflow_stack>(host, *d.adapter, opts);
        d.lf->start();
        d.selector =
            std::make_unique<liteflow_path_selector>(d.lf->core(), paths,
                                                     config.seed + 100 + h);
        break;
      }
      case lb_deployment::chardev: {
        d.adapter = std::make_unique<supervised_adapter>(
            nn::load_mlp_from_string(frozen), 3e-3, 4, config.seed + h);
        d.channel = std::make_unique<kernelsim::crossspace_channel>(
            simu, host.cpu(), host.costs(),
            kernelsim::channel_kind::char_device);
        d.selector = std::make_unique<userspace_path_selector>(
            *d.channel, host.costs(), d.adapter->model(),
            config.seed + 100 + h);
        break;
      }
    }
  }

  // char-device deployment still adapts (in userspace), labels batched up.
  if (config.deployment == lb_deployment::chardev) {
    for (std::size_t h = 0; h < hosts; ++h) {
      auto& d = deploy[h];
      auto& host = topo.host_at(h);
      auto tick = std::make_shared<std::function<void()>>();
      *tick = [&simu, &d, &host, &config, tick]() {
        if (!d.pending_labels.empty()) {
          auto batch = std::move(d.pending_labels);
          d.pending_labels.clear();
          d.channel->send_to_user(
              batch.size() * 64, [&d, &host, batch = std::move(batch)]() {
                const double cost =
                    host.costs().user_train_fixed_cost +
                    static_cast<double>(batch.size() *
                                        d.adapter->parameter_count()) *
                        host.costs().user_train_cost_per_sample_param;
                host.cpu().submit(kernelsim::task_category::user_train, cost,
                                  [&d, batch = std::move(batch)]() {
                                    d.adapter->adapt(batch);
                                  });
              });
        }
        simu.schedule(config.batch_interval, *tick);
      };
      simu.schedule(config.batch_interval, *tick);
    }
  }

  // Moving hotspot: constant-rate background pinned to one spine, hopping
  // periodically — the dynamic imbalance the learned selector must dodge.
  // Emitted manually (rather than via cbr_source) so packets carry an
  // explicit path tag.
  {
    auto state = std::make_shared<std::uint32_t>(2);
    auto hop = std::make_shared<std::function<void()>>();
    *hop = [&simu, state, &config, hop]() {
      *state = (*state == 1) ? 2 : 1;
      simu.schedule(config.hotspot_switch_period, *hop);
    };
    simu.schedule(config.hotspot_switch_period, *hop);
    auto emit = std::make_shared<std::function<void()>>();
    auto* src_host = &topo.host_at(0);
    const auto dst_id =
        static_cast<netsim::host_id_t>(config.hosts_per_leaf);
    *emit = [&simu, src_host, dst_id, state, &config, emit]() {
      netsim::packet pkt;
      pkt.flow_id = 1'000'000;
      pkt.dst = dst_id;
      pkt.payload_bytes = 1460;
      pkt.path_tag = *state;
      pkt.ecn_capable = false;  // blasting UDP; does not back off
      src_host->send_packet_free(pkt);
      const double gap = 1500.0 * 8.0 / config.hotspot_bps;
      simu.schedule(gap, *emit);
    };
    simu.schedule(0.0, *emit);
  }

  lb_result result;
  std::vector<double> fct_short, fct_mid, fct_long;
  std::vector<std::unique_ptr<lb_flow>> flows;
  flows.reserve(config.total_flows);
  auto sizes = netsim::web_search_flow_sizes();
  rng gen{config.seed + 10};
  flow_id_t next_flow = 1;

  // Arrival plan.
  struct arrival_plan {
    double t;
    std::size_t src;
    std::size_t dst;
    std::uint64_t size;
  };
  std::vector<arrival_plan> plan;
  plan.reserve(config.total_flows);
  double t = 0.0;
  for (std::size_t i = 0; i < config.total_flows; ++i) {
    t += gen.exponential(config.arrival_rate);
    // Cross-leaf traffic only: LB is about the fabric paths.  Host 0 and
    // its peer carry the background hotspot; keep test flows off their
    // access links so the only contention the selector can dodge is the
    // fabric itself.
    const auto src = static_cast<std::size_t>(
        gen.uniform_int(1, static_cast<std::int64_t>(config.hosts_per_leaf) - 1));
    const auto dst =
        config.hosts_per_leaf +
        static_cast<std::size_t>(gen.uniform_int(
            1, static_cast<std::int64_t>(config.hosts_per_leaf) - 1));
    const auto size = static_cast<std::uint64_t>(
        std::max(200.0, sizes.quantile(gen.uniform())));
    plan.push_back({t, src, dst, size});
  }

  auto record_label = [&](lb_flow& f, double fct) {
    auto& d = deploy[f.src];
    if (!needs_model || !d.adapter || f.path_tag == 0 ||
        f.features.empty()) {
      return;
    }
    // Target: model's own scores with the chosen path's entry replaced by
    // the achieved normalized goodput.
    auto target = d.adapter->evaluate(f.features);
    const double score = std::min(
        1.0, (static_cast<double>(f.size) * 8.0 / fct) / config.host_bps);
    target[f.path_tag - 1] = score;
    core::train_sample sample;
    sample.features = f.features;
    sample.aux = target;
    if (d.lf) {
      d.lf->collector().collect(std::move(sample));
    } else {
      d.pending_labels.push_back(std::move(sample));
    }
  };

  auto start_flow = [&](const arrival_plan& ap) {
    auto flow = std::make_unique<lb_flow>();
    flow->src = ap.src;
    flow->dst = ap.dst;
    flow->size = ap.size;
    flow->arrival = simu.now();
    auto& d = deploy[ap.src];
    auto& src_host = topo.host_at(ap.src);
    const flow_id_t id = next_flow++;
    lb_flow* f = flow.get();
    flows.push_back(std::move(flow));

    f->features = d.tracker->features();
    ++result.selector_calls;
    d.selector->select(id, f->features, [&, f, id](std::uint32_t tag) {
      f->path_tag = tag;
      transport::window_sender_config wc;
      wc.path_tag = tag;
      f->sender = std::make_unique<transport::window_sender>(
          topo.host_at(f->src), static_cast<netsim::host_id_t>(f->dst), id,
          f->size, wc, std::make_unique<transport::dctcp>());
      f->sender->set_ack_observer([&, f](const transport::ack_event& ev) {
        deploy[f->src].tracker->on_ack(f->path_tag, ev);
      });
      f->sender->set_done([&, f](double) {
        // FCT from arrival: path selection latency counts.
        const double fct = simu.now() - f->arrival;
        f->done = true;
        ++result.completed;
        switch (netsim::classify_flow(f->size)) {
          case netsim::flow_class::short_flow:
            fct_short.push_back(fct);
            break;
          case netsim::flow_class::mid_flow:
            fct_mid.push_back(fct);
            break;
          case netsim::flow_class::long_flow:
            fct_long.push_back(fct);
            break;
        }
        record_label(*f, fct);
      });
      f->sender->start();
      (void)src_host;
    });
  };

  for (const auto& ap : plan) {
    simu.schedule_at(ap.t, [&, ap]() { start_flow(ap); });
  }

  // Flowlet re-selection for active flows.
  if (config.reselect_interval > 0.0 &&
      config.deployment != lb_deployment::ecmp) {
    auto resel = std::make_shared<std::function<void()>>();
    *resel = [&, resel]() {
      for (auto& fp : flows) {
        lb_flow* f = fp.get();
        if (!f->sender || f->done) continue;
        auto& d = deploy[f->src];
        f->features = d.tracker->features();
        // Hysteresis (CONGA-style): rerouting an active flow reorders its
        // packets (dup-ACK storms for long flows), so only consult the
        // selector when the flow's current path actually looks congested.
        if (f->path_tag != 0) {
          const std::size_t ecn_index = (f->path_tag - 1) * 3;
          if (ecn_index < f->features.size() &&
              f->features[ecn_index] < 0.3) {
            continue;
          }
        }
        ++result.selector_calls;
        d.selector->select(f->sender->flow(), f->features,
                           [f](std::uint32_t tag) {
                             if (!f->done && f->sender && tag != 0) {
                               f->path_tag = tag;
                               f->sender->set_path_tag(tag);
                             }
                           });
      }
      simu.schedule(config.reselect_interval, *resel);
    };
    simu.schedule(config.reselect_interval, *resel);
  }

  // Run in slices so the experiment can stop as soon as all flows finish
  // (the hotspot otherwise keeps the event queue busy until max_sim_time).
  for (double t = 0.25; t <= config.max_sim_time; t += 0.25) {
    simu.run_until(t);
    if (result.completed >= plan.size()) break;
  }

  auto fill = [](std::vector<double>& v) {
    class_fct_stats s;
    s.count = v.size();
    s.mean_seconds = mean_of(v);
    s.p99_seconds = percentile(v, 99.0);
    return s;
  };
  result.short_flows = fill(fct_short);
  result.mid_flows = fill(fct_mid);
  result.long_flows = fill(fct_long);
  for (auto& d : deploy) {
    if (d.lf) result.snapshot_updates += d.lf->service().snapshot_updates();
  }
  return result;
}

}  // namespace lf::apps
