#include "apps/lb/lb_experiment.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "apps/common/deployment_registry.hpp"
#include "apps/lb/load_balance.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "nn/serialize.hpp"
#include "transport/dctcp.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {
namespace {

using netsim::flow_id_t;

struct lb_host_deployment {
  std::unique_ptr<supervised_adapter> adapter;
  std::unique_ptr<liteflow_stack> lf;
  std::unique_ptr<kernelsim::crossspace_channel> channel;
  std::unique_ptr<path_selector> selector;
  std::unique_ptr<path_stats_tracker> tracker;
  std::vector<core::train_sample> pending_labels;
};

/// What an lb stack builder gets; one builder per lb_deployment lives in
/// the deployment registry.
struct lb_build_context {
  lb_host_deployment& d;
  netsim::host& host;
  sim::simulation& sim;
  const lb_experiment_config& config;
  const std::string& frozen;  ///< shared pretrained weights (may be empty)
  std::size_t paths;
  std::size_t host_index;
};

using lb_stack_builder = std::function<void(lb_build_context&)>;

lb_stack_builder liteflow_lb_builder(bool adaptation) {
  return [adaptation](lb_build_context& c) {
    c.d.adapter = std::make_unique<supervised_adapter>(
        nn::load_mlp_from_string(c.frozen), 3e-3, 4,
        c.config.seed + c.host_index);
    liteflow_stack_options opts;
    opts.model_name = "lb-mlp";
    opts.batch_interval = c.config.batch_interval;
    opts.adaptation = adaptation;
    opts.sync.output_min = 0.0;
    opts.sync.output_max = 1.0;
    c.d.lf = std::make_unique<liteflow_stack>(c.host, *c.d.adapter, opts);
    c.d.lf->start();
    c.d.selector = std::make_unique<liteflow_path_selector>(
        c.d.lf->core(), c.paths, c.config.seed + 100 + c.host_index);
  };
}

lb_stack_builder chardev_lb_builder() {
  return [](lb_build_context& c) {
    c.d.adapter = std::make_unique<supervised_adapter>(
        nn::load_mlp_from_string(c.frozen), 3e-3, 4,
        c.config.seed + c.host_index);
    c.d.channel = std::make_unique<kernelsim::crossspace_channel>(
        c.sim, c.host.cpu(), c.host.costs(),
        kernelsim::channel_kind::char_device);
    c.d.selector = std::make_unique<userspace_path_selector>(
        *c.d.channel, c.host.costs(), c.d.adapter->model(),
        c.config.seed + 100 + c.host_index);
  };
}

lb_stack_builder ecmp_lb_builder() {
  return [](lb_build_context& c) {
    c.d.selector = std::make_unique<ecmp_selector>();
  };
}

[[maybe_unused]] const bool k_lb_registered = [] {
  register_deployment(app_kind::lb, lb_deployment::liteflow, "LF-MLP",
                      liteflow_lb_builder(true));
  register_deployment(app_kind::lb, lb_deployment::liteflow_noa,
                      "LF-MLP-N-O-A", liteflow_lb_builder(false));
  register_deployment(app_kind::lb, lb_deployment::chardev, "char-MLP",
                      chardev_lb_builder());
  register_deployment(app_kind::lb, lb_deployment::ecmp, "ECMP",
                      ecmp_lb_builder());
  return true;
}();

struct lb_flow {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t size = 0;
  double arrival = 0.0;
  std::uint32_t path_tag = 0;
  std::vector<double> features;  ///< at last selection
  std::unique_ptr<transport::window_sender> sender;
  bool done = false;
};

/// Moving-hotspot load-balancing run (Fig. 17) through the shared driver.
class lb_fct_experiment final : public experiment {
 public:
  explicit lb_fct_experiment(const lb_experiment_config& config)
      : config_{config} {
    driver_.name = std::string{to_string(config.deployment)};
    driver_.seed = config.seed;
    driver_.slice = 0.25;
    driver_.max_sim_time = config.max_sim_time;
  }

  const driver_config& config() const override { return driver_; }

  void setup(driver_context& ctx) override {
    sim_ = &ctx.sim;
    sim::simulation& simu = ctx.sim;
    netsim::spine_leaf_config topo_config;
    topo_config.hosts_per_leaf = config_.hosts_per_leaf;
    topo_config.host_bps = config_.host_bps;
    topo_config.fabric_bps = config_.fabric_bps;
    topo_config.cpu_gating = config_.cpu_gating;
    topo_.emplace(simu, topo_config);
    const std::size_t hosts = topo_->host_count();
    const std::size_t paths = topo_->config().spines;

    needs_model_ = config_.deployment == lb_deployment::liteflow ||
                   config_.deployment == lb_deployment::liteflow_noa ||
                   config_.deployment == lb_deployment::chardev;

    // Pretrain one MLP on the synthetic path-quality prior, share weights.
    std::string frozen;
    if (needs_model_) {
      rng init{config_.seed + 1};
      auto net = nn::make_lb_mlp_net(init, paths);
      supervised_adapter warmup{std::move(net), 3e-3, 1, config_.seed};
      const auto dataset = make_lb_pretrain_dataset(
          paths, config_.pretrain_samples, config_.seed + 2);
      warmup.pretrain(dataset, config_.pretrain_epochs);
      frozen = nn::save_mlp_to_string(warmup.model());
    }

    deploy_.resize(hosts);
    const auto* build =
        deployment_registry::instance().builder_as<lb_stack_builder>(
            app_kind::lb, static_cast<int>(config_.deployment));
    for (std::size_t h = 0; h < hosts; ++h) {
      auto& d = deploy_[h];
      d.tracker = std::make_unique<path_stats_tracker>(paths);
      if (build) {
        lb_build_context bc{d,      topo_->host_at(h), simu, config_,
                            frozen, paths,             h};
        (*build)(bc);
      }
    }

    // char-device deployment still adapts (in userspace), labels batched up.
    if (config_.deployment == lb_deployment::chardev) {
      for (std::size_t h = 0; h < hosts; ++h) {
        auto& d = deploy_[h];
        auto& host = topo_->host_at(h);
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&simu, &d, &host, this, tick]() {
          if (!d.pending_labels.empty()) {
            auto batch = std::move(d.pending_labels);
            d.pending_labels.clear();
            d.channel->send_to_user(
                batch.size() * 64, [&d, &host, batch = std::move(batch)]() {
                  const double cost =
                      host.costs().user_train_fixed_cost +
                      static_cast<double>(batch.size() *
                                          d.adapter->parameter_count()) *
                          host.costs().user_train_cost_per_sample_param;
                  host.cpu().submit(kernelsim::task_category::user_train, cost,
                                    [&d, batch = std::move(batch)]() {
                                      d.adapter->adapt(batch);
                                    });
                });
          }
          simu.schedule(config_.batch_interval, *tick);
        };
        simu.schedule(config_.batch_interval, *tick);
      }
    }

    // Moving hotspot: constant-rate background pinned to one spine, hopping
    // periodically — the dynamic imbalance the learned selector must dodge.
    // Emitted manually (rather than via cbr_source) so packets carry an
    // explicit path tag.
    {
      auto state = std::make_shared<std::uint32_t>(2);
      auto hop = std::make_shared<std::function<void()>>();
      *hop = [&simu, state, this, hop]() {
        *state = (*state == 1) ? 2 : 1;
        simu.schedule(config_.hotspot_switch_period, *hop);
      };
      simu.schedule(config_.hotspot_switch_period, *hop);
      auto emit = std::make_shared<std::function<void()>>();
      auto* src_host = &topo_->host_at(0);
      const auto dst_id =
          static_cast<netsim::host_id_t>(config_.hosts_per_leaf);
      *emit = [&simu, src_host, dst_id, state, this, emit]() {
        netsim::packet pkt;
        pkt.flow_id = 1'000'000;
        pkt.dst = dst_id;
        pkt.payload_bytes = 1460;
        pkt.path_tag = *state;
        pkt.ecn_capable = false;  // blasting UDP; does not back off
        src_host->send_packet_free(pkt);
        const double gap = 1500.0 * 8.0 / config_.hotspot_bps;
        simu.schedule(gap, *emit);
      };
      simu.schedule(0.0, *emit);
    }

    flows_.reserve(config_.total_flows);
    auto sizes = netsim::web_search_flow_sizes();
    rng gen{config_.seed + 10};

    // Arrival plan.
    plan_.reserve(config_.total_flows);
    double t = 0.0;
    for (std::size_t i = 0; i < config_.total_flows; ++i) {
      t += gen.exponential(config_.arrival_rate);
      // Cross-leaf traffic only: LB is about the fabric paths.  Host 0 and
      // its peer carry the background hotspot; keep test flows off their
      // access links so the only contention the selector can dodge is the
      // fabric itself.
      const auto src = static_cast<std::size_t>(
          gen.uniform_int(1, static_cast<std::int64_t>(config_.hosts_per_leaf) - 1));
      const auto dst =
          config_.hosts_per_leaf +
          static_cast<std::size_t>(gen.uniform_int(
              1, static_cast<std::int64_t>(config_.hosts_per_leaf) - 1));
      const auto size = static_cast<std::uint64_t>(
          std::max(200.0, sizes.quantile(gen.uniform())));
      plan_.push_back({t, src, dst, size});
    }

    for (const auto& ap : plan_) {
      simu.schedule_at(ap.t, [this, ap]() { start_flow(ap); });
    }

    // Flowlet re-selection for active flows.
    if (config_.reselect_interval > 0.0 &&
        config_.deployment != lb_deployment::ecmp) {
      auto resel = std::make_shared<std::function<void()>>();
      *resel = [this, &simu, resel]() {
        for (auto& fp : flows_) {
          lb_flow* f = fp.get();
          if (!f->sender || f->done) continue;
          auto& d = deploy_[f->src];
          f->features = d.tracker->features();
          // Hysteresis (CONGA-style): rerouting an active flow reorders its
          // packets (dup-ACK storms for long flows), so only consult the
          // selector when the flow's current path actually looks congested.
          if (f->path_tag != 0) {
            const std::size_t ecn_index = (f->path_tag - 1) * 3;
            if (ecn_index < f->features.size() &&
                f->features[ecn_index] < 0.3) {
              continue;
            }
          }
          ++selector_calls_;
          d.selector->select(f->sender->flow(), f->features,
                             [f](std::uint32_t tag) {
                               if (!f->done && f->sender && tag != 0) {
                                 f->path_tag = tag;
                                 f->sender->set_path_tag(tag);
                               }
                             });
        }
        simu.schedule(config_.reselect_interval, *resel);
      };
      simu.schedule(config_.reselect_interval, *resel);
    }

    // Telemetry: per-host FCT/CPU accounting, LiteFlow stacks, fabric links;
    // the trace rings wire alongside under the same prefixes.
    for (std::size_t h = 0; h < hosts; ++h) {
      auto& host = topo_->host_at(h);
      host.register_metrics(ctx.metrics, "lb");
      host.register_trace(ctx.trace, "lb");
      if (deploy_[h].lf) {
        const std::string base = "lb." + host.name();
        deploy_[h].lf->core().register_metrics(ctx.metrics, base);
        deploy_[h].lf->service().register_metrics(ctx.metrics, base);
        deploy_[h].lf->collector().register_metrics(ctx.metrics,
                                                    base + ".collector");
        deploy_[h].lf->register_trace(ctx.trace, base);
        deploy_[h].lf->register_monitor(ctx.monitor);
      }
    }
    for (std::size_t l = 0; l < 2; ++l) {
      for (std::size_t s = 0; s < paths; ++s) {
        topo_->uplink(l, s).register_metrics(ctx.metrics, "lb.fabric");
        topo_->uplink(l, s).register_trace(ctx.trace, "lb.fabric");
      }
    }
  }

  bool finished() const override { return completed_ >= plan_.size(); }

  void report(driver_context&, run_result& out) override {
    out.short_flows = fill_fct(fct_short_);
    out.mid_flows = fill_fct(fct_mid_);
    out.long_flows = fill_fct(fct_long_);
    out.completed = completed_;
    for (auto& d : deploy_) {
      if (d.lf) out.snapshot_updates += d.lf->service().snapshot_updates();
    }
  }

  std::uint64_t selector_calls() const noexcept { return selector_calls_; }

 private:
  struct arrival_plan {
    double t;
    std::size_t src;
    std::size_t dst;
    std::uint64_t size;
  };

  void record_label(lb_flow& f, double fct) {
    auto& d = deploy_[f.src];
    if (!needs_model_ || !d.adapter || f.path_tag == 0 ||
        f.features.empty()) {
      return;
    }
    // Target: model's own scores with the chosen path's entry replaced by
    // the achieved normalized goodput.
    auto target = d.adapter->evaluate(f.features);
    const double score = std::min(
        1.0, (static_cast<double>(f.size) * 8.0 / fct) / config_.host_bps);
    target[f.path_tag - 1] = score;
    core::train_sample sample;
    sample.features = f.features;
    sample.aux = target;
    if (d.lf) {
      d.lf->collector().collect(std::move(sample));
    } else {
      d.pending_labels.push_back(std::move(sample));
    }
  }

  void start_flow(const arrival_plan& ap) {
    sim::simulation& simu = *sim_;
    auto flow = std::make_unique<lb_flow>();
    flow->src = ap.src;
    flow->dst = ap.dst;
    flow->size = ap.size;
    flow->arrival = simu.now();
    auto& d = deploy_[ap.src];
    const flow_id_t id = next_flow_++;
    lb_flow* f = flow.get();
    flows_.push_back(std::move(flow));

    f->features = d.tracker->features();
    ++selector_calls_;
    d.selector->select(id, f->features, [this, &simu, f, id](std::uint32_t tag) {
      f->path_tag = tag;
      transport::window_sender_config wc;
      wc.path_tag = tag;
      f->sender = std::make_unique<transport::window_sender>(
          topo_->host_at(f->src), static_cast<netsim::host_id_t>(f->dst), id,
          f->size, wc, std::make_unique<transport::dctcp>());
      f->sender->set_ack_observer([this, f](const transport::ack_event& ev) {
        deploy_[f->src].tracker->on_ack(f->path_tag, ev);
      });
      f->sender->set_done([this, &simu, f](double) {
        // FCT from arrival: path selection latency counts.
        const double fct = simu.now() - f->arrival;
        f->done = true;
        ++completed_;
        switch (netsim::classify_flow(f->size)) {
          case netsim::flow_class::short_flow:
            fct_short_.push_back(fct);
            break;
          case netsim::flow_class::mid_flow:
            fct_mid_.push_back(fct);
            break;
          case netsim::flow_class::long_flow:
            fct_long_.push_back(fct);
            break;
        }
        record_label(*f, fct);
      });
      f->sender->start();
    });
  }

  lb_experiment_config config_;
  driver_config driver_;
  sim::simulation* sim_ = nullptr;
  std::optional<netsim::spine_leaf> topo_;
  bool needs_model_ = false;
  std::vector<lb_host_deployment> deploy_;
  std::vector<arrival_plan> plan_;
  std::vector<std::unique_ptr<lb_flow>> flows_;
  flow_id_t next_flow_ = 1;
  std::size_t completed_ = 0;
  std::uint64_t selector_calls_ = 0;
  std::vector<double> fct_short_, fct_mid_, fct_long_;
};

}  // namespace

std::string_view to_string(lb_deployment d) noexcept {
  return deployment_label(app_kind::lb, d);
}

lb_result run_lb_experiment(const lb_experiment_config& config) {
  lb_fct_experiment exp{config};
  lb_result result;
  static_cast<run_result&>(result) = run_experiment(exp);
  result.selector_calls = exp.selector_calls();
  return result;
}

}  // namespace lf::apps
