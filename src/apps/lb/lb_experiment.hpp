// End-to-end load-balancing experiment (paper §5.3, Fig. 17).
//
// 2x2 spine-leaf with 8 servers, DCTCP, web-search flow sizes.  A moving
// background hotspot congests one spine at a time; the path selector decides
// each flow's uplink, and active flows re-select per flowlet interval.
// Reports FCT statistics split into short/mid/long classes.
#pragma once

#include <cstdint>
#include <string>

#include "apps/common/experiment_driver.hpp"  // run_result, class_fct_stats

namespace lf::apps {

enum class lb_deployment {
  liteflow,      ///< LF-MLP
  liteflow_noa,  ///< LF-MLP-N-O-A
  chardev,       ///< char-MLP (userspace over a char device)
  ecmp,          ///< hash-based baseline
};

std::string_view to_string(lb_deployment d) noexcept;

struct lb_experiment_config {
  lb_deployment deployment = lb_deployment::liteflow;
  std::size_t hosts_per_leaf = 4;  ///< 8 servers (paper)
  double arrival_rate = 2000.0;
  std::size_t total_flows = 2000;
  std::uint64_t seed = 1;
  double batch_interval = 0.100;
  double host_bps = 10e9;
  double fabric_bps = 10e9;
  bool cpu_gating = true;
  /// Background hotspot pinned to one spine, hopping every period.
  double hotspot_bps = 7e9;
  double hotspot_switch_period = 0.5;
  /// Flowlet re-selection cadence for active flows (0 disables).
  double reselect_interval = 2e-3;
  std::size_t pretrain_samples = 2000;
  std::size_t pretrain_epochs = 400;
  double max_sim_time = 30.0;
};

/// FCT classes / completion / snapshot updates report through the unified
/// run_result; the selector-call count rides alongside.
struct lb_result : run_result {
  std::uint64_t selector_calls = 0;
};

lb_result run_lb_experiment(const lb_experiment_config& config);

}  // namespace lf::apps
