#include "apps/common/experiment_driver.hpp"

#include "util/stats.hpp"
#include "util/trace_report.hpp"

namespace lf::apps {

class_fct_stats fill_fct(const std::vector<double>& fct_seconds) {
  class_fct_stats s;
  s.count = fct_seconds.size();
  s.mean_seconds = mean_of(fct_seconds);
  s.p99_seconds = percentile(fct_seconds, 99.0);
  return s;
}

run_result run_experiment(experiment& exp) {
  const driver_config& cfg = exp.config();
  sim::simulation simu;
  metrics::registry reg;
  trace::collector tracer{cfg.trace.collector};
  driver_context ctx{simu, reg, tracer};

  exp.setup(ctx);

  if (cfg.warmup_hook) {
    simu.schedule_at(cfg.warmup, [&]() { exp.at_warmup(ctx); });
  }

  if (cfg.slice > 0.0) {
    // Sliced run: stop as soon as the experiment drains (e.g. every planned
    // flow completed) instead of burning events until max_sim_time.
    for (double t = cfg.slice; t <= cfg.max_sim_time; t += cfg.slice) {
      simu.run_until(t);
      if (exp.finished()) break;
    }
  } else {
    simu.run_until(cfg.duration);
  }

  run_result out;
  out.name = cfg.name;
  out.seed = cfg.seed;
  exp.report(ctx, out);

  // Trace post-processing: fold per-phase span latencies back into the
  // registry *before* the scalar snapshot so they land in telemetry like
  // any other metric, record retained per-type event counts, and export
  // the Perfetto file.
  trace::span_stats span_stats;
  if (tracer.enabled()) {
    trace::derive_span_stats(tracer, span_stats);
    trace::register_span_stats(span_stats, reg, "trace");
    const auto counts = tracer.counts_by_type();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out.telemetry.emplace(
          "trace.events." +
              std::string{to_string(static_cast<trace::event_type>(i))},
          static_cast<double>(counts[i]));
    }
    if (cfg.trace.write_file) {
      out.trace_path = trace::write_trace(
          tracer, cfg.trace.label.empty() ? cfg.name : cfg.trace.label);
    }
  }

  for (const auto& [name, value] : reg.scalars()) {
    out.telemetry.emplace(name, value);
  }
  return out;
}

}  // namespace lf::apps
