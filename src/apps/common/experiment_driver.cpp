#include "apps/common/experiment_driver.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/run_report.hpp"
#include "util/stats.hpp"
#include "util/trace_report.hpp"

namespace lf::apps {

report_options report_options::from_env() {
  report_options opts;
  if (const char* v = std::getenv("LF_REPORT")) {
    opts.enabled = std::atoi(v) != 0;
  }
  return opts;
}

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// Digest the run into the generic flight_report the renderer consumes.
/// Alert markers go on the goodput chart only (the fidelity chart carries
/// the install markers + threshold line), so the count of marker-alert
/// elements in the document equals the alert total exactly.
report::flight_report build_flight_report(const driver_config& cfg,
                                          const run_result& res,
                                          const core::adaptation_monitor& mon,
                                          const trace::span_stats& spans,
                                          bool tracing) {
  report::flight_report fr;
  fr.title = "LiteFlow flight report: " + cfg.name;

  fr.summary.emplace_back("experiment", cfg.name);
  fr.summary.emplace_back("seed", std::to_string(cfg.seed));
  fr.summary.emplace_back(
      "sim time (s)",
      num(cfg.slice > 0.0 ? cfg.max_sim_time : cfg.duration));
  if (res.mean_goodput > 0.0) {
    fr.summary.emplace_back("mean goodput (Mbps)",
                            num(res.mean_goodput / 1e6));
  }
  if (res.completed > 0) {
    fr.summary.emplace_back("completed flows",
                            std::to_string(res.completed));
  }
  fr.summary.emplace_back("snapshot updates",
                          std::to_string(res.snapshot_updates));
  fr.summary.emplace_back("sync checks", std::to_string(mon.checks()));
  fr.summary.emplace_back("health alerts",
                          std::to_string(mon.total_alerts()));

  // Goodput over time, installs + alerts as vertical markers.
  report::chart_data goodput;
  goodput.id = "goodput";
  goodput.title = "Goodput";
  goodput.y_label = "bps";
  goodput.series.push_back(report::series_data{
      "goodput_bps",
      {res.goodput.points().begin(), res.goodput.points().end()}});
  for (const core::snapshot_record& rec : mon.ledger()) {
    goodput.markers.push_back(report::marker{
        rec.install_time, "install v" + std::to_string(rec.version), false});
  }
  for (const core::alert_record& a : mon.alerts()) {
    goodput.markers.push_back(
        report::marker{a.t, std::string{to_string(a.kind)}, true});
  }
  fr.charts.push_back(std::move(goodput));

  // Fidelity drift vs the §3.3 necessity threshold.
  report::chart_data fidelity;
  fidelity.id = "fidelity";
  fidelity.title = "Fidelity drift (sync checks)";
  fidelity.y_label = "loss";
  for (const time_series* s :
       {&mon.fidelity_min(), &mon.fidelity_mean(), &mon.fidelity_max()}) {
    fidelity.series.push_back(report::series_data{
        s->name(), {s->points().begin(), s->points().end()}});
  }
  if (mon.last_threshold() > 0.0) {
    fidelity.thresholds.push_back(report::threshold_line{
        mon.last_threshold(), "necessity threshold alpha*(Omax-Omin)"});
  }
  for (const core::snapshot_record& rec : mon.ledger()) {
    fidelity.markers.push_back(report::marker{
        rec.install_time, "install v" + std::to_string(rec.version), false});
  }
  fr.charts.push_back(std::move(fidelity));

  // Snapshot lifecycle ledger.  Every installed version gets a row; the
  // §3.3 re-syncs (everything after the v1 bootstrap) carry the
  // lifecycle-update class, so counting those rows reproduces the
  // snapshot_updates telemetry exactly.
  report::table_data lifecycle;
  lifecycle.id = "lifecycle";
  lifecycle.title = "Snapshot lifecycle ledger";
  lifecycle.caption =
      "One row per installed version; the v1 bootstrap deployment is not a "
      "snapshot update, so rows marked as updates match the "
      "snapshot_updates counter.";
  lifecycle.columns = {"version",      "model",        "installed (s)",
                       "freeze (ms)",  "quantize (ms)", "translate (ms)",
                       "compile (ms)", "install (us)",  "switch wait (ns)",
                       "fidelity min", "fidelity mean", "fidelity max",
                       "retired (s)",  "pinned flows",  "drain (s)"};
  for (const core::snapshot_record& rec : mon.ledger()) {
    lifecycle.rows.push_back(
        {std::to_string(rec.version), std::to_string(rec.model),
         num(rec.install_time), num(rec.freeze_seconds * 1e3),
         num(rec.quantize_seconds * 1e3), num(rec.translate_seconds * 1e3),
         num(rec.compile_seconds * 1e3), num(rec.install_seconds * 1e6),
         num(rec.switch_wait_seconds * 1e9), num(rec.fidelity_min),
         num(rec.fidelity_mean), num(rec.fidelity_max),
         rec.retire_time >= 0.0 ? num(rec.retire_time) : "active",
         std::to_string(rec.pinned_at_retire),
         rec.drain_seconds() >= 0.0 ? num(rec.drain_seconds()) : "-"});
    lifecycle.row_classes.push_back(rec.initial ? "" : "lifecycle-update");
  }
  fr.tables.push_back(std::move(lifecycle));

  // Shadow-gate decisions (multi-model runs only; single-model reports stay
  // exactly as before because the table is omitted when no gate ever ran).
  if (!mon.gates().empty()) {
    report::table_data gates;
    gates.id = "gates";
    gates.title = "Shadow gate decisions";
    gates.caption =
        "Each row is one switch_active that went through the shadow "
        "divergence gate: admitted rows flipped active/standby, blocked "
        "rows kept the incumbent serving, rolled-back rows re-promoted the "
        "probation-held previous active after live evidence condemned an "
        "admitted switch.";
    gates.columns = {"t (s)",   "domain model", "candidate", "version",
                     "outcome", "samples",      "mean div",  "max div"};
    for (const core::gate_record& g : mon.gates()) {
      gates.rows.push_back(
          {num(g.t), std::to_string(g.logical_model),
           std::to_string(g.candidate), std::to_string(g.version),
           g.rollback    ? "rolled-back"
           : g.admitted  ? "admitted"
                         : "blocked",
           std::to_string(g.samples), num(g.mean_divergence),
           num(g.max_divergence)});
      gates.row_classes.push_back(g.rollback    ? "gate-rollback"
                                  : g.admitted  ? "gate-admitted"
                                                : "gate-blocked");
    }
    fr.tables.push_back(std::move(gates));
  }

  // Fired alerts.
  report::table_data alerts;
  alerts.id = "alerts";
  alerts.title = "Health alerts";
  alerts.columns = {"t (s)", "kind", "value", "version"};
  for (const core::alert_record& a : mon.alerts()) {
    alerts.rows.push_back({num(a.t), std::string{to_string(a.kind)},
                           num(a.value), std::to_string(a.version)});
    alerts.row_classes.push_back("alert-row");
  }
  fr.tables.push_back(std::move(alerts));

  if (tracing) {
    fr.histograms.push_back(
        report::make_histogram_data("inference latency (us)",
                                    spans.inference_us));
    fr.histograms.push_back(
        report::make_histogram_data("task latency (us)", spans.task_us));
    fr.histograms.push_back(
        report::make_histogram_data("lock hold (ns)", spans.lock_hold_ns));
    fr.histograms.push_back(
        report::make_histogram_data("lock wait (ns)", spans.lock_wait_ns));
  }
  return fr;
}

}  // namespace

class_fct_stats fill_fct(const std::vector<double>& fct_seconds) {
  class_fct_stats s;
  s.count = fct_seconds.size();
  s.mean_seconds = mean_of(fct_seconds);
  s.p99_seconds = percentile(fct_seconds, 99.0);
  return s;
}

run_result run_experiment(experiment& exp) {
  const driver_config& cfg = exp.config();
  sim::simulation simu;
  metrics::registry reg;
  trace::collector tracer{cfg.trace.collector};
  // The flight report renders the monitor's ledger/alerts, so asking for a
  // report implies running the monitor.
  core::monitor_config mon_cfg = cfg.monitor;
  if (cfg.report.enabled) mon_cfg.enabled = true;
  core::adaptation_monitor monitor{mon_cfg};
  if (monitor.enabled()) {
    // Register before setup() so the health ring merges with component
    // rings; metrics registration here keeps monitor-off telemetry
    // byte-identical to a run without the monitor compiled in.
    monitor.register_trace(tracer, "health");
    monitor.register_metrics(reg, "health");
  }
  driver_context ctx{simu, reg, tracer, monitor};

  exp.setup(ctx);

  if (cfg.warmup_hook) {
    simu.schedule_at(cfg.warmup, [&]() { exp.at_warmup(ctx); });
  }

  if (cfg.slice > 0.0) {
    // Sliced run: stop as soon as the experiment drains (e.g. every planned
    // flow completed) instead of burning events until max_sim_time.
    for (double t = cfg.slice; t <= cfg.max_sim_time; t += cfg.slice) {
      simu.run_until(t);
      if (exp.finished()) break;
    }
  } else {
    simu.run_until(cfg.duration);
  }

  run_result out;
  out.name = cfg.name;
  out.seed = cfg.seed;
  exp.report(ctx, out);

  // Trace post-processing: fold per-phase span latencies back into the
  // registry *before* the scalar snapshot so they land in telemetry like
  // any other metric, record retained per-type event counts, and export
  // the Perfetto file.
  trace::span_stats span_stats;
  if (tracer.enabled()) {
    trace::derive_span_stats(tracer, span_stats);
    trace::register_span_stats(span_stats, reg, "trace");
    const auto counts = tracer.counts_by_type();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out.telemetry.emplace(
          "trace.events." +
              std::string{to_string(static_cast<trace::event_type>(i))},
          static_cast<double>(counts[i]));
    }
    if (cfg.trace.write_file) {
      out.trace_path = trace::write_trace(
          tracer, cfg.trace.label.empty() ? cfg.name : cfg.trace.label);
    }
  }

  if (monitor.enabled()) {
    out.lifecycle = monitor.ledger();
    out.alerts = monitor.alerts();
    out.gates = monitor.gates();
  }

  for (const auto& [name, value] : reg.scalars()) {
    out.telemetry.emplace(name, value);
  }

  if (cfg.report.enabled && cfg.report.write_file) {
    const report::flight_report fr =
        build_flight_report(cfg, out, monitor, span_stats, tracer.enabled());
    out.report_path = report::write_flight_report(
        fr, cfg.report.label.empty() ? cfg.name : cfg.report.label);
  }
  return out;
}

}  // namespace lf::apps
