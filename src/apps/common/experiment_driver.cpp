#include "apps/common/experiment_driver.hpp"

#include "util/stats.hpp"

namespace lf::apps {

class_fct_stats fill_fct(const std::vector<double>& fct_seconds) {
  class_fct_stats s;
  s.count = fct_seconds.size();
  s.mean_seconds = mean_of(fct_seconds);
  s.p99_seconds = percentile(fct_seconds, 99.0);
  return s;
}

run_result run_experiment(experiment& exp) {
  sim::simulation simu;
  metrics::registry reg;
  driver_context ctx{simu, reg};

  exp.setup(ctx);

  const driver_config& cfg = exp.config();
  if (cfg.warmup_hook) {
    simu.schedule_at(cfg.warmup, [&]() { exp.at_warmup(ctx); });
  }

  if (cfg.slice > 0.0) {
    // Sliced run: stop as soon as the experiment drains (e.g. every planned
    // flow completed) instead of burning events until max_sim_time.
    for (double t = cfg.slice; t <= cfg.max_sim_time; t += cfg.slice) {
      simu.run_until(t);
      if (exp.finished()) break;
    }
  } else {
    simu.run_until(cfg.duration);
  }

  run_result out;
  out.name = cfg.name;
  out.seed = cfg.seed;
  exp.report(ctx, out);
  for (const auto& [name, value] : reg.scalars()) {
    out.telemetry.emplace(name, value);
  }
  return out;
}

}  // namespace lf::apps
