// Generic experiment runtime shared by the cc / sched / lb harnesses.
//
// Every end-to-end run in the paper's evaluation has the same skeleton:
// build a topology and a deployment stack, optionally snapshot state at the
// end of a warmup window, advance the simulation (either one shot to a fixed
// duration, or in slices with an early exit once the flow plan drains), then
// report summary statistics from a fixed seed.  The driver owns that
// skeleton; an experiment implements the four hooks and the per-app harness
// shrinks to topology wiring + reporting.
//
// The driver also owns a metrics::registry for the run: setup() wires
// component telemetry into it, and the driver snapshots every registered
// scalar into run_result::telemetry after the run — this is the flat
// key/value block the bench_report JSON emitter writes out.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"

namespace lf::apps {

/// FCT summary for one of the paper's flow-size classes.
struct class_fct_stats {
  std::size_t count = 0;
  double mean_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Build class_fct_stats (count / mean / p99) from raw FCT samples.
class_fct_stats fill_fct(const std::vector<double>& fct_seconds);

/// CPU accounting over the measurement window at the host under test.
struct cpu_breakdown {
  double softirq_seconds = 0.0;
  double datapath_seconds = 0.0;
  double slowpath_seconds = 0.0;  ///< userspace inference + training
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy / (capacity * window)
};

/// The unified result every experiment reports through.  An experiment fills
/// the fields that apply (a goodput run leaves the FCT classes empty and
/// vice versa); the driver fills name/seed/telemetry.
struct run_result {
  std::string name;        ///< experiment name (driver_config::name)
  std::uint64_t seed = 0;  ///< the seed this run is deterministic under

  // Goodput-shaped results (cc).
  time_series goodput{"goodput_bps"};
  double mean_goodput = 0.0;
  double stddev_goodput = 0.0;
  time_series queue{"queue_bytes"};

  // FCT-shaped results (sched / lb).
  class_fct_stats short_flows;
  class_fct_stats mid_flows;
  class_fct_stats long_flows;
  std::size_t completed = 0;

  cpu_breakdown cpu{};
  double softirq_share = 0.0;  ///< softirq / total busy at the host under test
  std::uint64_t snapshot_updates = 0;  ///< LiteFlow deployments only

  /// Flat scalar snapshot of every metric registered during setup().
  std::map<std::string, double> telemetry;
};

struct driver_config {
  std::string name;
  std::uint64_t seed = 0;
  double warmup = 0.0;    ///< at_warmup() fires here when warmup_hook is set
  double duration = 0.0;  ///< one-shot runs: run_until(duration)
  /// Sliced runs: advance `slice` at a time up to max_sim_time, stopping as
  /// soon as finished() reports true.  0 selects the one-shot shape.
  double slice = 0.0;
  double max_sim_time = 0.0;
  /// Schedule the at_warmup() callback (off by default so experiments that
  /// ignore it do not add an event to the run).
  bool warmup_hook = false;
};

/// What the driver hands each hook: the simulation and the run's registry.
struct driver_context {
  sim::simulation& sim;
  metrics::registry& metrics;
};

/// One end-to-end experiment.  Hooks run in order: setup (build topology,
/// stacks, probes, schedule arrivals), at_warmup (snapshot accounting),
/// finished (polled between slices), report (summarize into run_result).
class experiment {
 public:
  virtual ~experiment() = default;

  virtual const driver_config& config() const = 0;
  virtual void setup(driver_context& ctx) = 0;
  virtual void at_warmup(driver_context& ctx) { (void)ctx; }
  virtual bool finished() const { return false; }
  virtual void report(driver_context& ctx, run_result& out) = 0;
};

/// Run one experiment through the shared phases and return its result.
run_result run_experiment(experiment& exp);

}  // namespace lf::apps
