// Generic experiment runtime shared by the cc / sched / lb harnesses.
//
// Every end-to-end run in the paper's evaluation has the same skeleton:
// build a topology and a deployment stack, optionally snapshot state at the
// end of a warmup window, advance the simulation (either one shot to a fixed
// duration, or in slices with an early exit once the flow plan drains), then
// report summary statistics from a fixed seed.  The driver owns that
// skeleton; an experiment implements the four hooks and the per-app harness
// shrinks to topology wiring + reporting.
//
// The driver also owns a metrics::registry for the run: setup() wires
// component telemetry into it, and the driver snapshots every registered
// scalar into run_result::telemetry after the run — this is the flat
// key/value block the bench_report JSON emitter writes out.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/adaptation_monitor.hpp"
#include "sim/sim.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"
#include "util/trace.hpp"

namespace lf::apps {

/// FCT summary for one of the paper's flow-size classes.
struct class_fct_stats {
  std::size_t count = 0;
  double mean_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Build class_fct_stats (count / mean / p99) from raw FCT samples.
class_fct_stats fill_fct(const std::vector<double>& fct_seconds);

/// CPU accounting over the measurement window at the host under test.
struct cpu_breakdown {
  double softirq_seconds = 0.0;
  double datapath_seconds = 0.0;
  double slowpath_seconds = 0.0;  ///< userspace inference + training
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy / (capacity * window)
};

/// The unified result every experiment reports through.  An experiment fills
/// the fields that apply (a goodput run leaves the FCT classes empty and
/// vice versa); the driver fills name/seed/telemetry.
struct run_result {
  std::string name;        ///< experiment name (driver_config::name)
  std::uint64_t seed = 0;  ///< the seed this run is deterministic under

  // Goodput-shaped results (cc).
  time_series goodput{"goodput_bps"};
  double mean_goodput = 0.0;
  double stddev_goodput = 0.0;
  time_series queue{"queue_bytes"};

  // FCT-shaped results (sched / lb).
  class_fct_stats short_flows;
  class_fct_stats mid_flows;
  class_fct_stats long_flows;
  std::size_t completed = 0;

  cpu_breakdown cpu{};
  double softirq_share = 0.0;  ///< softirq / total busy at the host under test
  std::uint64_t snapshot_updates = 0;  ///< LiteFlow deployments only

  /// Flat scalar snapshot of every metric registered during setup().  When
  /// tracing is on this additionally carries "trace.events.<type>" retained
  /// event counts and the "trace.span.*" histogram scalars.
  std::map<std::string, double> telemetry;

  /// Path of the exported TRACE_<label>.json; empty when tracing was off
  /// (or the write failed — a diagnostic lands on stderr in that case).
  std::string trace_path;

  /// Snapshot lifecycle ledger and fired health alerts, copied from the
  /// run's adaptation monitor (empty when it was disabled).
  std::vector<core::snapshot_record> lifecycle;
  std::vector<core::alert_record> alerts;
  /// Shadow-gate decision ledger (multi-model deployments; empty when no
  /// switch went through the divergence gate).
  std::vector<core::gate_record> gates;

  /// Path of the written REPORT_<label>.html; empty when reporting was off.
  std::string report_path;
};

/// Datapath tracing knobs for one run.  Off by default; the environment
/// (LF_TRACE=1, LF_TRACE_RING=<events>) enables it for any driver-routed
/// binary without code changes, and experiment configs can override
/// programmatically.
struct trace_options {
  trace::collector_config collector{};  ///< enabled flag + ring capacity
  /// TRACE_<label>.json file label; empty uses driver_config::name.
  std::string label;
  /// Write the Perfetto file at the end of the run (the derived span stats
  /// always feed the metrics registry when tracing is enabled).
  bool write_file = true;

  static trace_options from_env() {
    return trace_options{trace::config_from_env(), {}, true};
  }
};

/// Per-run HTML flight report knobs.  Off by default; LF_REPORT=1 turns it
/// on for any driver-routed binary.  Enabling the report force-enables the
/// adaptation monitor for the run (the report renders its ledger/alerts).
struct report_options {
  bool enabled = false;
  /// REPORT_<label>.html file label; empty uses driver_config::name.
  std::string label;
  bool write_file = true;

  /// Environment default: LF_REPORT (nonzero enables).
  static report_options from_env();
};

struct driver_config {
  std::string name;
  std::uint64_t seed = 0;
  double warmup = 0.0;    ///< at_warmup() fires here when warmup_hook is set
  double duration = 0.0;  ///< one-shot runs: run_until(duration)
  /// Sliced runs: advance `slice` at a time up to max_sim_time, stopping as
  /// soon as finished() reports true.  0 selects the one-shot shape.
  double slice = 0.0;
  double max_sim_time = 0.0;
  /// Schedule the at_warmup() callback (off by default so experiments that
  /// ignore it do not add an event to the run).
  bool warmup_hook = false;
  /// Event tracing; defaults to the LF_TRACE / LF_TRACE_RING environment.
  trace_options trace = trace_options::from_env();
  /// Adaptation health monitor; defaults to the LF_MONITOR environment.
  core::monitor_config monitor = core::monitor_config::from_env();
  /// Per-run HTML flight report; defaults to the LF_REPORT environment.
  report_options report = report_options::from_env();
};

/// What the driver hands each hook: the simulation, the run's registry, the
/// run's trace collector, and the run's adaptation monitor (setup() wires
/// component rings/hooks into them exactly like it wires metrics; attaching
/// a disabled monitor is a no-op cost).
struct driver_context {
  sim::simulation& sim;
  metrics::registry& metrics;
  trace::collector& trace;
  core::adaptation_monitor& monitor;
};

/// One end-to-end experiment.  Hooks run in order: setup (build topology,
/// stacks, probes, schedule arrivals), at_warmup (snapshot accounting),
/// finished (polled between slices), report (summarize into run_result).
class experiment {
 public:
  virtual ~experiment() = default;

  virtual const driver_config& config() const = 0;
  virtual void setup(driver_context& ctx) = 0;
  virtual void at_warmup(driver_context& ctx) { (void)ctx; }
  virtual bool finished() const { return false; }
  virtual void report(driver_context& ctx, run_result& out) = 0;
};

/// Run one experiment through the shared phases and return its result.
run_result run_experiment(experiment& exp);

}  // namespace lf::apps
