// Measurement probes shared by examples, tests and benchmarks.
#pragma once

#include <functional>
#include <string>

#include "netsim/host.hpp"
#include "util/metrics.hpp"
#include "util/time_series.hpp"

namespace lf::apps {

/// Samples a receiver host's delivered payload every dt seconds and records
/// the resulting goodput (bps) as a time series — how the paper measures
/// "average goodput of the flow every 0.1 seconds" (Fig. 1a).
class goodput_probe {
 public:
  goodput_probe(netsim::host& receiver, double sample_interval);

  void start();
  void stop() noexcept { running_ = false; }

  const time_series& series() const noexcept { return series_; }

  /// Average goodput over [t0, t1] from total byte deltas.  A zero-length
  /// (or inverted) window, or a probe stopped before its first sample,
  /// yields 0 rather than NaN.
  double average_bps(double t0, double t1) const;

  /// Publish the goodput series as "<prefix>.goodput_bps".
  void register_metrics(metrics::registry& reg, const std::string& prefix);

 private:
  void sample();

  netsim::host& receiver_;
  double dt_;
  bool running_ = false;
  std::uint64_t last_bytes_ = 0;
  time_series series_{"goodput_bps"};
};

/// Tracks aggregate throughput over a whole run: delivered bytes / elapsed.
double aggregate_goodput_bps(const netsim::host& receiver, double t0,
                             double t1, std::uint64_t bytes_at_t0);

}  // namespace lf::apps
