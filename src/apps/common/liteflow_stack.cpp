#include "apps/common/liteflow_stack.hpp"

namespace lf::apps {

liteflow_stack::liteflow_stack(netsim::host& h,
                               core::adaptation_interface& user,
                               liteflow_stack_options options)
    : host_{h} {
  auto& sim = host_.simulator();
  netlink_ = std::make_unique<kernelsim::crossspace_channel>(
      sim, host_.cpu(), host_.costs(), kernelsim::channel_kind::netlink);
  core_ = std::make_unique<core::liteflow_core>(sim, host_.cpu(),
                                                host_.costs());
  core::batch_collector_config bc;
  bc.interval = options.batch_interval;
  collector_ = std::make_unique<core::batch_collector>(sim, *netlink_, bc);

  core::service_config sc;
  sc.model_name = options.model_name;
  sc.quantizer = options.quantizer;
  sc.sync = options.sync;
  sc.adaptation_enabled = options.adaptation;
  service_ = std::make_unique<core::userspace_service>(
      sim, host_.cpu(), host_.costs(), *netlink_, *core_, *collector_, user,
      sc);
}

void liteflow_stack::start() { service_->start(); }

void liteflow_stack::register_trace(trace::collector& col,
                                    const std::string& prefix) {
  core_->register_trace(col, prefix);
  service_->register_trace(col, prefix);
  collector_->register_trace(col, prefix + ".collector");
}

void liteflow_stack::register_monitor(core::adaptation_monitor& monitor) {
  core_->register_monitor(monitor);
  service_->register_monitor(monitor);
}

}  // namespace lf::apps
