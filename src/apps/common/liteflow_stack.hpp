// Generic per-host LiteFlow deployment bundle: netlink server module +
// core module + batch collector + userspace service, wired around any
// user-provided adaptation_interface.  The flow-scheduling and
// load-balancing modules deploy through this; congestion control uses the
// specialized liteflow_cc_stack (same layout plus the RL slow path).
#pragma once

#include <memory>

#include "core/userspace_service.hpp"
#include "netsim/host.hpp"

namespace lf::apps {

struct liteflow_stack_options {
  std::string model_name = "model";
  double batch_interval = 0.100;
  bool adaptation = true;
  quant::quantizer_config quantizer{};
  core::sync_config sync{};
};

class liteflow_stack {
 public:
  liteflow_stack(netsim::host& h, core::adaptation_interface& user,
                 liteflow_stack_options options);

  /// Installs snapshot v1 and starts batch delivery.
  void start();

  /// Wire the bundle's trace rings into a collector with the same prefixes
  /// the metrics wiring uses: core/router/cache/lock + service under
  /// "<prefix>", the batch collector under "<prefix>.collector".
  void register_trace(trace::collector& col, const std::string& prefix);

  /// Attach the run's adaptation health monitor to the core (module-unload
  /// ledger hook) and the service (sync-check / install observations).
  /// One branch per hook site when the monitor is disabled.
  void register_monitor(core::adaptation_monitor& monitor);

  core::liteflow_core& core() noexcept { return *core_; }
  core::batch_collector& collector() noexcept { return *collector_; }
  core::userspace_service& service() noexcept { return *service_; }
  kernelsim::crossspace_channel& netlink() noexcept { return *netlink_; }
  netsim::host& host() noexcept { return host_; }

 private:
  netsim::host& host_;
  std::unique_ptr<kernelsim::crossspace_channel> netlink_;
  std::unique_ptr<core::liteflow_core> core_;
  std::unique_ptr<core::batch_collector> collector_;
  std::unique_ptr<core::userspace_service> service_;
};

}  // namespace lf::apps
