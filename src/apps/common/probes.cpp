#include "apps/common/probes.hpp"

namespace lf::apps {

goodput_probe::goodput_probe(netsim::host& receiver, double sample_interval)
    : receiver_{receiver}, dt_{sample_interval} {
  // A non-positive interval would schedule a zero-delay self-perpetuating
  // event; pin it to a sane floor instead.
  if (!(dt_ > 0.0)) dt_ = 0.1;
}

void goodput_probe::start() {
  if (running_) return;
  running_ = true;
  last_bytes_ = receiver_.total_delivered_payload();
  receiver_.simulator().schedule(dt_, [this]() { sample(); });
}

void goodput_probe::sample() {
  if (!running_) return;
  const std::uint64_t bytes = receiver_.total_delivered_payload();
  const double bps = static_cast<double>(bytes - last_bytes_) * 8.0 / dt_;
  last_bytes_ = bytes;
  series_.record(receiver_.simulator().now(), bps);
  receiver_.simulator().schedule(dt_, [this]() { sample(); });
}

double goodput_probe::average_bps(double t0, double t1) const {
  if (!(t1 > t0)) return 0.0;
  return series_.average(t0, t1);
}

void goodput_probe::register_metrics(metrics::registry& reg,
                                     const std::string& prefix) {
  reg.register_series(prefix + ".goodput_bps", series_);
}

double aggregate_goodput_bps(const netsim::host& receiver, double t0, double t1,
                             std::uint64_t bytes_at_t0) {
  const double window = t1 - t0;
  if (window <= 0.0) return 0.0;
  return static_cast<double>(receiver.total_delivered_payload() - bytes_at_t0) *
         8.0 / window;
}

}  // namespace lf::apps
