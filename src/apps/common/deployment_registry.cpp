#include "apps/common/deployment_registry.hpp"

namespace lf::apps {

std::string_view to_string(app_kind app) noexcept {
  switch (app) {
    case app_kind::cc:
      return "cc";
    case app_kind::sched:
      return "sched";
    case app_kind::lb:
      return "lb";
    case app_kind::rt:
      return "rt";
  }
  return "?";
}

deployment_registry& deployment_registry::instance() {
  static deployment_registry reg;
  return reg;
}

deployment_registry::entry* deployment_registry::find(app_kind app,
                                                      int value) noexcept {
  for (auto& e : apps_[static_cast<std::size_t>(app)]) {
    if (e.value == value) return &e;
  }
  return nullptr;
}

const deployment_registry::entry* deployment_registry::find(
    app_kind app, int value) const noexcept {
  for (const auto& e : apps_[static_cast<std::size_t>(app)]) {
    if (e.value == value) return &e;
  }
  return nullptr;
}

void deployment_registry::add(app_kind app, int value, std::string label,
                              std::any builder) {
  if (entry* e = find(app, value)) {
    e->label = std::move(label);
    e->builder = std::move(builder);
    return;
  }
  apps_[static_cast<std::size_t>(app)].push_back(
      entry{value, std::move(label), std::move(builder)});
}

std::string_view deployment_registry::label(app_kind app,
                                            int value) const noexcept {
  const entry* e = find(app, value);
  return e ? std::string_view{e->label} : std::string_view{"?"};
}

const std::any* deployment_registry::builder(app_kind app,
                                             int value) const noexcept {
  const entry* e = find(app, value);
  return e && e->builder.has_value() ? &e->builder : nullptr;
}

std::vector<deployment_info> deployment_registry::deployments(
    app_kind app) const {
  std::vector<deployment_info> out;
  for (const auto& e : apps_[static_cast<std::size_t>(app)]) {
    out.push_back(deployment_info{app, e.value, e.label});
  }
  return out;
}

std::size_t deployment_registry::size() const noexcept {
  std::size_t n = 0;
  for (const auto& v : apps_) n += v.size();
  return n;
}

}  // namespace lf::apps
