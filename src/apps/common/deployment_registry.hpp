// Deployment registry: one catalogue of every datapath deployment flavour
// the experiments can run (liteflow / ccp-interval / char-dev / netlink /
// pure-kernel-adaptive / frozen baselines).
//
// Each app (cc / sched / lb) keeps its enum as the typed config key, but the
// display label and the stack-builder function are registered here exactly
// once per deployment instead of living in parallel switch statements.  The
// to_string() overloads and the experiment setup paths all resolve through
// this registry, so adding a deployment is one register_deployment() call.
//
// Builders are stored type-erased (std::any) because each app's build
// context differs; the typed accessor builder_as<Fn>() recovers the exact
// std::function an app registered.  Registration happens from namespace-
// scope registrar objects in each app's translation unit — lookups all run
// after main() starts, so static-init order is not a concern.
#pragma once

#include <any>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lf::apps {

enum class app_kind { cc, sched, lb, rt };

std::string_view to_string(app_kind app) noexcept;

struct deployment_info {
  app_kind app = app_kind::cc;
  int value = 0;       ///< the app enum value, cast to int
  std::string label;   ///< display name ("LF-Aurora", "char-FFNN", ...)
};

class deployment_registry {
 public:
  static deployment_registry& instance();

  /// Register (or re-register) one deployment.  `builder` is optional and
  /// app-typed; pass a std::function matching what the app's setup expects.
  void add(app_kind app, int value, std::string label, std::any builder = {});

  /// Display label; "?" if the deployment was never registered.
  std::string_view label(app_kind app, int value) const noexcept;

  /// Type-erased builder; nullptr if absent.
  const std::any* builder(app_kind app, int value) const noexcept;

  /// Typed builder access: returns nullptr if the deployment is unknown or
  /// was registered with a different builder type.
  template <typename Fn>
  const Fn* builder_as(app_kind app, int value) const noexcept {
    const std::any* b = builder(app, value);
    return b ? std::any_cast<Fn>(b) : nullptr;
  }

  /// All deployments of one app, in registration order.
  std::vector<deployment_info> deployments(app_kind app) const;

  std::size_t size() const noexcept;

 private:
  struct entry {
    int value;
    std::string label;
    std::any builder;
  };

  entry* find(app_kind app, int value) noexcept;
  const entry* find(app_kind app, int value) const noexcept;

  std::array<std::vector<entry>, 4> apps_;
};

/// Convenience for the app registrars.
template <typename Enum, typename Builder>
void register_deployment(app_kind app, Enum value, std::string label,
                         Builder builder) {
  deployment_registry::instance().add(app, static_cast<int>(value),
                                      std::move(label),
                                      std::any{std::move(builder)});
}

template <typename Enum>
void register_deployment(app_kind app, Enum value, std::string label) {
  deployment_registry::instance().add(app, static_cast<int>(value),
                                      std::move(label));
}

/// Label lookup used by the per-app to_string() overloads.
template <typename Enum>
std::string_view deployment_label(app_kind app, Enum value) noexcept {
  return deployment_registry::instance().label(app, static_cast<int>(value));
}

}  // namespace lf::apps
