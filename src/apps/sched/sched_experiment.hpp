// End-to-end flow-scheduling experiment (paper §5.2, Figs. 15/16).
//
// Spine-leaf fabric, DCTCP flows with Poisson arrivals and AR(1)-correlated
// sizes; every new flow's priority band comes from a flow-size prediction
// made by the configured deployment.  Reports FCT statistics split into the
// paper's short/mid/long classes plus the measured prediction latency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/experiment_driver.hpp"
#include "util/stats.hpp"

namespace lf::apps {

enum class sched_deployment {
  liteflow,       ///< LF-FFNN: kernel snapshot + slow path adaptation
  liteflow_noa,   ///< LF-FFNN-N-O-A: kernel snapshot, no adaptation
  chardev,        ///< char-FFNN: userspace inference over a char device
  netlink_dev,    ///< netlink-FFNN: userspace inference over netlink
  no_prediction,  ///< all flows share one band (no scheduling)
  oracle,         ///< true size known in advance (upper bound)
};

std::string_view to_string(sched_deployment d) noexcept;

struct sched_experiment_config {
  sched_deployment deployment = sched_deployment::liteflow;
  std::size_t hosts_per_leaf = 16;  ///< 2 leaves -> 32 hosts (paper)
  double arrival_rate = 4000.0;     ///< flows per second, whole fabric
  std::size_t total_flows = 4000;
  std::uint64_t seed = 1;
  double size_correlation = 0.85;  ///< AR(1) rho of the size process
  double batch_interval = 0.100;
  /// If > 0, every pair's size distribution re-draws at this period
  /// (environment dynamics; exercises online adaptation).
  double pattern_shift_period = 0.0;
  double host_bps = 10e9;
  double fabric_bps = 10e9;  ///< per leaf-spine uplink (2:1 oversubscribed)
  bool cpu_gating = true;
  std::size_t pretrain_flows = 3000;
  std::size_t pretrain_epochs = 300;
  double max_sim_time = 30.0;
};

/// FCT classes, completion count and snapshot updates report through the
/// unified run_result; the prediction-quality extras ride alongside.
/// (class_fct_stats itself now lives in apps/common/experiment_driver.hpp.)
struct sched_result : run_result {
  double mean_prediction_latency = 0.0;
  std::vector<double> prediction_latencies;  ///< per-prediction seconds
  double mean_abs_log_error = 0.0;  ///< prediction quality, |log10 ratio|
  /// (predicted bytes, actual bytes) per prediction, arrival order.
  std::vector<std::pair<double, double>> predictions;
};

sched_result run_sched_experiment(const sched_experiment_config& config);

}  // namespace lf::apps
