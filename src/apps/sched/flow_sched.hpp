// Flow scheduling with learned flow-size prediction (§5.2, FLUX's FFNN).
//
// The LiteFlow Flow Scheduling Module sits at the sender's egress
// (netfilter in the paper): at flow start it extracts context features,
// asks the FFNN for a size prediction, and tags the flow's packets with a
// strict-priority class (information-agnostic scheduling a la PIAS/pFabric:
// predicted-short flows ride high-priority bands).  Deployments differ in
// where the FFNN runs: kernel snapshot (LF-FFNN), userspace behind a char
// device (char-FFNN) or netlink socket (netlink-FFNN).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "apps/common/liteflow_stack.hpp"
#include "kernelsim/channel.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace lf::apps {

inline constexpr std::size_t k_sched_features = 8;

/// Size <-> network-output encoding.  The FFNN predicts
/// y = log10(bytes) / 10, which keeps outputs inside (0, 1) for sizes up to
/// 10 GB — friendly to integer quantization with output scaling (§3.1).
double encode_flow_size(double bytes) noexcept;
double decode_flow_size(double y) noexcept;

/// Priority band from a predicted size: predicted-short flows get the
/// higher band.  Band 7 is the "unknown size" default.
std::uint8_t priority_for_predicted_size(double bytes) noexcept;
inline constexpr std::uint8_t k_unknown_priority = 7;

/// Per-host flow-context bookkeeping: the feature source for predictions.
class flow_context_tracker {
 public:
  /// Features for a new flow from src to dst starting now.
  std::vector<double> features(std::size_t src, std::size_t dst,
                               double now) const;

  /// Account a newly started flow (for gap/active-count features).
  void on_flow_start(std::size_t src, std::size_t dst, double now);

  /// Account a completed flow with its actual size (the label source).
  void on_flow_complete(std::size_t src, std::size_t dst, double now,
                        std::uint64_t bytes);

 private:
  struct pair_state {
    double prev_log_size = 0.0;
    double ewma_log_size = 0.0;
    bool has_history = false;
    double last_start = -1.0;
    std::uint64_t flows_seen = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, pair_state> pairs_;
  std::map<std::size_t, std::uint64_t> active_per_src_;
};

// ----------------------------------------------------------- predictors --

/// Asynchronous size prediction: done(bytes) fires when the prediction is
/// available (immediately in-kernel; after a round trip for userspace).
class size_predictor {
 public:
  virtual ~size_predictor() = default;
  virtual void predict(netsim::flow_id_t flow, std::vector<double> features,
                       std::function<void(double bytes)> done) = 0;
};

class liteflow_size_predictor final : public size_predictor {
 public:
  explicit liteflow_size_predictor(core::liteflow_core& core);
  void predict(netsim::flow_id_t flow, std::vector<double> features,
               std::function<void(double)> done) override;

 private:
  core::liteflow_core& core_;
};

class userspace_size_predictor final : public size_predictor {
 public:
  userspace_size_predictor(kernelsim::crossspace_channel& channel,
                           const kernelsim::cost_model& costs,
                           const nn::mlp& model);
  void predict(netsim::flow_id_t flow, std::vector<double> features,
               std::function<void(double)> done) override;

 private:
  kernelsim::crossspace_channel& channel_;
  const kernelsim::cost_model& costs_;
  const nn::mlp& model_;
};

// -------------------------------------------------- supervised slow path --

/// adaptation_interface for supervised models (FFNN size prediction and the
/// LB MLP): batches carry (features, aux[0] = target encoding ...) samples.
class supervised_adapter final : public core::adaptation_interface {
 public:
  supervised_adapter(nn::mlp model, double learning_rate,
                     std::size_t epochs_per_batch, std::uint64_t seed);

  std::string freeze_model() override;
  double stability_value() const override;
  std::vector<double> evaluate(std::span<const double> input) const override;
  void adapt(std::span<const core::train_sample> batch) override;
  std::size_t parameter_count() const override;

  /// Offline pre-training on synthetic (features, target) pairs.
  void pretrain(std::span<const nn::training_sample> dataset,
                std::size_t epochs);

  nn::mlp& model() noexcept { return model_; }
  double last_loss() const noexcept { return last_loss_; }

 private:
  nn::mlp model_;
  nn::supervised_trainer trainer_;
  std::size_t epochs_;
  rng gen_;
  double last_loss_ = 1.0;
};

// ---------------------------------------------- correlated flow workload --

/// AR(1)-in-log-space flow size process per host pair: consecutive flows of
/// one application correlate strongly, which is the signal FLUX's FFNN
/// exploits.  shift_pattern() re-draws every pair's mean (the paper's
/// "randomly change the traffic pattern" environment dynamics).
class correlated_size_process {
 public:
  correlated_size_process(std::size_t hosts, double rho, std::uint64_t seed);

  std::uint64_t next_size(std::size_t src, std::size_t dst);
  void shift_pattern();

 private:
  struct pair_proc {
    double mu = 10.0;  ///< mean of log(size)
    double prev = 0.0;
    bool started = false;
  };
  pair_proc& at(std::size_t src, std::size_t dst);
  double draw_mu();

  std::size_t hosts_;
  double rho_;
  double sigma_ = 0.8;
  rng gen_;
  std::map<std::pair<std::size_t, std::size_t>, pair_proc> pairs_;
};

}  // namespace lf::apps
