#include "apps/sched/sched_experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "apps/common/deployment_registry.hpp"
#include "apps/sched/flow_sched.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "nn/serialize.hpp"
#include "transport/dctcp.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {
namespace {

using netsim::flow_id_t;

/// Everything one sender host carries for its deployment flavour.
struct host_deployment {
  std::unique_ptr<supervised_adapter> adapter;
  std::unique_ptr<liteflow_stack> lf;      // liteflow modes
  std::unique_ptr<kernelsim::crossspace_channel> channel;  // userspace modes
  std::unique_ptr<size_predictor> predictor;
  flow_context_tracker tracker;
  // Userspace modes still ship labels up in batches for adaptation.
  std::vector<core::train_sample> pending_labels;
};

/// What a sched stack builder gets: the per-host deployment slot (adapter
/// already populated), the host, and the run config.  One builder per
/// sched_deployment lives in the deployment registry.
struct sched_build_context {
  host_deployment& d;
  netsim::host& host;
  sim::simulation& sim;
  const sched_experiment_config& config;
};

using sched_stack_builder = std::function<void(sched_build_context&)>;

sched_stack_builder liteflow_sched_builder(bool adaptation) {
  return [adaptation](sched_build_context& c) {
    liteflow_stack_options opts;
    opts.model_name = "ffnn";
    opts.batch_interval = c.config.batch_interval;
    opts.adaptation = adaptation;
    // FFNN outputs live in (0, 1); necessity threshold scales with it.
    opts.sync.output_min = 0.0;
    opts.sync.output_max = 1.0;
    c.d.lf = std::make_unique<liteflow_stack>(c.host, *c.d.adapter, opts);
    c.d.lf->start();
    c.d.predictor = std::make_unique<liteflow_size_predictor>(c.d.lf->core());
  };
}

sched_stack_builder userspace_sched_builder(kernelsim::channel_kind kind) {
  return [kind](sched_build_context& c) {
    c.d.channel = std::make_unique<kernelsim::crossspace_channel>(
        c.sim, c.host.cpu(), c.host.costs(), kind);
    c.d.predictor = std::make_unique<userspace_size_predictor>(
        *c.d.channel, c.host.costs(), c.d.adapter->model());
  };
}

[[maybe_unused]] const bool k_sched_registered = [] {
  register_deployment(app_kind::sched, sched_deployment::liteflow, "LF-FFNN",
                      liteflow_sched_builder(true));
  register_deployment(app_kind::sched, sched_deployment::liteflow_noa,
                      "LF-FFNN-N-O-A", liteflow_sched_builder(false));
  register_deployment(app_kind::sched, sched_deployment::chardev, "char-FFNN",
                      userspace_sched_builder(
                          kernelsim::channel_kind::char_device));
  register_deployment(app_kind::sched, sched_deployment::netlink_dev,
                      "netlink-FFNN",
                      userspace_sched_builder(kernelsim::channel_kind::netlink));
  register_deployment(app_kind::sched, sched_deployment::no_prediction,
                      "no-prediction");
  register_deployment(app_kind::sched, sched_deployment::oracle, "oracle");
  return true;
}();

struct live_flow {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t size = 0;
  double arrival = 0.0;
  std::vector<double> features;
  std::unique_ptr<transport::window_sender> sender;
};

nn::mlp pretrained_ffnn(const sched_experiment_config& config) {
  // Build a synthetic (features, encoded size) dataset by replaying the
  // same AR(1) size process through a context tracker, then train.
  rng gen{config.seed + 1000};
  correlated_size_process sizes{config.hosts_per_leaf * 2,
                                config.size_correlation, config.seed + 2000};
  flow_context_tracker tracker;
  std::vector<nn::training_sample> dataset;
  const std::size_t hosts = config.hosts_per_leaf * 2;
  double now = 0.0;
  for (std::size_t i = 0; i < config.pretrain_flows; ++i) {
    const auto src = static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 1));
    auto dst = static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 2));
    if (dst >= src) ++dst;
    now += gen.exponential(config.arrival_rate);
    const auto size = sizes.next_size(src, dst);
    nn::training_sample ts;
    ts.input = tracker.features(src, dst, now);
    // Live hosts carry a varying number of in-flight flows; the replay
    // completes each flow immediately, so emulate that feature's live
    // distribution instead of letting the net overfit to "always zero".
    ts.input[6] = gen.uniform(0.0, 0.2);
    ts.target = {encode_flow_size(static_cast<double>(size))};
    dataset.push_back(std::move(ts));
    tracker.on_flow_start(src, dst, now);
    tracker.on_flow_complete(src, dst, now, size);
  }
  // The FFNN is tiny (5/5 ReLU) and its inputs are non-negative, so an
  // unlucky init can leave the first layer dead and the model collapses to
  // the target mean.  Train with a few random restarts and keep the best.
  std::unique_ptr<nn::mlp> best;
  double best_loss = std::numeric_limits<double>::infinity();
  for (std::uint64_t attempt = 0; attempt < 5; ++attempt) {
    rng init{config.seed + 3000 + attempt * 7919};
    supervised_adapter warmup{nn::make_ffnn_flow_size_net(init), 3e-3, 1,
                              config.seed + attempt};
    warmup.pretrain(dataset, config.pretrain_epochs);
    if (warmup.last_loss() < best_loss) {
      best_loss = warmup.last_loss();
      best = std::make_unique<nn::mlp>(warmup.model());
    }
    if (best_loss < 0.004) break;  // clearly better than mean-only (~0.01)
  }
  return *best;
}

/// Spine-leaf flow-scheduling run (Figs. 15/16) through the shared driver.
class sched_fct_experiment final : public experiment {
 public:
  explicit sched_fct_experiment(const sched_experiment_config& config)
      : config_{config} {
    driver_.name = std::string{to_string(config.deployment)};
    driver_.seed = config.seed;
    driver_.slice = 0.25;
    driver_.max_sim_time = config.max_sim_time;
  }

  const driver_config& config() const override { return driver_; }

  void setup(driver_context& ctx) override {
    sim_ = &ctx.sim;
    sim::simulation& simu = ctx.sim;
    netsim::spine_leaf_config topo_config;
    topo_config.hosts_per_leaf = config_.hosts_per_leaf;
    topo_config.host_bps = config_.host_bps;
    topo_config.fabric_bps = config_.fabric_bps;
    topo_config.cpu_gating = config_.cpu_gating;
    topo_.emplace(simu, topo_config);
    const std::size_t hosts = topo_->host_count();

    // Shared pretrained weights, copied into each host's deployment.
    needs_model_ = config_.deployment != sched_deployment::no_prediction &&
                   config_.deployment != sched_deployment::oracle;
    std::string frozen;
    if (needs_model_) {
      frozen = nn::save_mlp_to_string(pretrained_ffnn(config_));
    }

    deploy_.resize(hosts);
    const auto* build =
        deployment_registry::instance().builder_as<sched_stack_builder>(
            app_kind::sched, static_cast<int>(config_.deployment));
    for (std::size_t h = 0; h < hosts && needs_model_; ++h) {
      auto& d = deploy_[h];
      auto model = nn::load_mlp_from_string(frozen);
      d.adapter = std::make_unique<supervised_adapter>(std::move(model), 3e-3,
                                                       4, config_.seed + h);
      if (build) {
        sched_build_context bc{d, topo_->host_at(h), simu, config_};
        (*build)(bc);
      }
    }

    // Userspace deployments adapt too: labels batch up and cross to
    // userspace on the same cadence as LiteFlow's collector.
    const bool userspace_adapts =
        config_.deployment == sched_deployment::chardev ||
        config_.deployment == sched_deployment::netlink_dev;
    if (userspace_adapts) {
      for (std::size_t h = 0; h < hosts; ++h) {
        auto& d = deploy_[h];
        auto& host = topo_->host_at(h);
        // Heap-allocate the periodic tick so the self-referencing closure
        // outlives this loop iteration.
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&simu, &d, &host, this, tick]() {
          if (!d.pending_labels.empty()) {
            auto batch = std::move(d.pending_labels);
            d.pending_labels.clear();
            d.channel->send_to_user(batch.size() * 64, [&d, &host,
                                                        batch = std::move(
                                                            batch)]() {
              const double cost =
                  host.costs().user_train_fixed_cost +
                  static_cast<double>(batch.size() * d.adapter->parameter_count()) *
                      host.costs().user_train_cost_per_sample_param;
              host.cpu().submit(kernelsim::task_category::user_train, cost,
                                [&d, batch = std::move(batch)]() {
                                  d.adapter->adapt(batch);
                                });
            });
          }
          simu.schedule(config_.batch_interval, *tick);
        };
        simu.schedule(config_.batch_interval, *tick);
      }
    }

    sizes_.emplace(hosts, config_.size_correlation, config_.seed + 4000);
    if (config_.pattern_shift_period > 0.0) {
      // Heap-allocate the self-referencing closure: the scheduled copies must
      // outlive this scope.
      auto shift = std::make_shared<std::function<void()>>();
      *shift = [&simu, this, shift]() {
        sizes_->shift_pattern();
        simu.schedule(config_.pattern_shift_period, *shift);
      };
      simu.schedule(config_.pattern_shift_period, *shift);
    }

    flows_.reserve(config_.total_flows);

    rng arrival_gen{config_.seed + 5000};
    double next_arrival = 0.0;

    // Open-loop Poisson arrivals, precomputed so we can cap total flows.
    plan_.reserve(config_.total_flows);
    for (std::size_t i = 0; i < config_.total_flows; ++i) {
      next_arrival += arrival_gen.exponential(config_.arrival_rate);
      const auto src = static_cast<std::size_t>(
          arrival_gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 1));
      auto dst = static_cast<std::size_t>(
          arrival_gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 2));
      if (dst >= src) ++dst;
      plan_.push_back({next_arrival, src, dst});
    }

    for (const auto& ap : plan_) {
      simu.schedule_at(ap.t, [this, ap]() { start_flow(ap); });
    }

    // Telemetry: per-host FCT/CPU accounting plus each LiteFlow stack; the
    // trace rings wire alongside under the same prefixes.
    for (std::size_t h = 0; h < hosts; ++h) {
      auto& host = topo_->host_at(h);
      host.register_metrics(ctx.metrics, "sched");
      host.register_trace(ctx.trace, "sched");
      if (deploy_[h].lf) {
        const std::string base = "sched." + host.name();
        deploy_[h].lf->core().register_metrics(ctx.metrics, base);
        deploy_[h].lf->service().register_metrics(ctx.metrics, base);
        deploy_[h].lf->collector().register_metrics(ctx.metrics,
                                                    base + ".collector");
        deploy_[h].lf->register_trace(ctx.trace, base);
        deploy_[h].lf->register_monitor(ctx.monitor);
      }
    }
    for (std::size_t l = 0; l < 2; ++l) {
      for (std::size_t s = 0; s < topo_->config().spines; ++s) {
        topo_->uplink(l, s).register_metrics(ctx.metrics, "sched.fabric");
        topo_->uplink(l, s).register_trace(ctx.trace, "sched.fabric");
      }
    }
  }

  bool finished() const override { return completed_ >= plan_.size(); }

  void report(driver_context&, run_result& out) override {
    out.short_flows = fill_fct(fct_short_);
    out.mid_flows = fill_fct(fct_mid_);
    out.long_flows = fill_fct(fct_long_);
    out.completed = completed_;
    for (auto& d : deploy_) {
      if (d.lf) out.snapshot_updates += d.lf->service().snapshot_updates();
    }
  }

  /// Move the prediction-quality extras into the legacy result shape.
  void take_extras(sched_result& out) {
    out.mean_prediction_latency = pred_latency_.mean();
    out.mean_abs_log_error = pred_error_.mean();
    out.prediction_latencies = std::move(prediction_latencies_);
    out.predictions = std::move(predictions_);
  }

 private:
  struct arrival_plan {
    double t;
    std::size_t src;
    std::size_t dst;
  };

  void start_flow(const arrival_plan& ap) {
    sim::simulation& simu = *sim_;
    auto flow = std::make_unique<live_flow>();
    flow->src = ap.src;
    flow->dst = ap.dst;
    flow->size = sizes_->next_size(ap.src, ap.dst);
    flow->arrival = simu.now();
    auto& d = deploy_[ap.src];
    auto& src_host = topo_->host_at(ap.src);
    const flow_id_t id = next_flow_++;
    flow->features = needs_model_
                         ? d.tracker.features(ap.src, ap.dst, simu.now())
                         : std::vector<double>{};
    d.tracker.on_flow_start(ap.src, ap.dst, simu.now());
    if (std::getenv("LF_DEBUG_FEATURES") && flow->features.size() == 8) { fprintf(stderr, "feat %zu->%zu: %.3f %.3f %.3f %.3f %.3f %.3f %.3f %.3f\n", ap.src, ap.dst, flow->features[0], flow->features[1], flow->features[2], flow->features[3], flow->features[4], flow->features[5], flow->features[6], flow->features[7]); }

    live_flow* f = flow.get();
    flows_.push_back(std::move(flow));

    auto launch = [this, &simu, &src_host, f, id](std::uint8_t priority) {
      transport::window_sender_config wc;
      wc.priority = priority;
      f->sender = std::make_unique<transport::window_sender>(
          src_host, static_cast<netsim::host_id_t>(f->dst), id, f->size, wc,
          std::make_unique<transport::dctcp>());
      f->sender->set_done([this, &simu, f, id](double) {
        // FCT counts from arrival, so prediction latency (the tagging
        // happens before the first packet) is part of the completion time.
        const double fct = simu.now() - f->arrival;
        ++completed_;
        switch (netsim::classify_flow(f->size)) {
          case netsim::flow_class::short_flow:
            fct_short_.push_back(fct);
            break;
          case netsim::flow_class::mid_flow:
            fct_mid_.push_back(fct);
            break;
          case netsim::flow_class::long_flow:
            fct_long_.push_back(fct);
            break;
        }
        auto& dd = deploy_[f->src];
        dd.tracker.on_flow_complete(f->src, f->dst, simu.now(), f->size);
        if (needs_model_) {
          core::train_sample label;
          label.features = f->features;
          label.aux = {encode_flow_size(static_cast<double>(f->size))};
          if (dd.lf) {
            dd.lf->collector().collect(std::move(label));
          } else if (dd.channel) {
            dd.pending_labels.push_back(std::move(label));
          }
        }
        (void)id;
      });
      f->sender->start();
    };

    if (config_.deployment == sched_deployment::no_prediction) {
      launch(k_unknown_priority);
    } else if (config_.deployment == sched_deployment::oracle) {
      launch(priority_for_predicted_size(static_cast<double>(f->size)));
    } else {
      const double t0 = simu.now();
      d.predictor->predict(
          id, f->features, [this, &simu, f, t0, launch](double predicted) {
            pred_latency_.add(simu.now() - t0);
            prediction_latencies_.push_back(simu.now() - t0);
            if (predicted > 0.0) {
              pred_error_.add(std::abs(std::log10(
                  predicted / static_cast<double>(f->size))));
              predictions_.emplace_back(predicted,
                                        static_cast<double>(f->size));
              launch(priority_for_predicted_size(predicted));
            } else {
              launch(k_unknown_priority);
            }
          });
    }
  }

  sched_experiment_config config_;
  driver_config driver_;
  sim::simulation* sim_ = nullptr;
  std::optional<netsim::spine_leaf> topo_;
  bool needs_model_ = false;
  std::vector<host_deployment> deploy_;
  std::optional<correlated_size_process> sizes_;
  std::vector<arrival_plan> plan_;
  std::vector<std::unique_ptr<live_flow>> flows_;
  flow_id_t next_flow_ = 1;
  std::size_t completed_ = 0;
  std::vector<double> fct_short_, fct_mid_, fct_long_;
  running_stats pred_latency_;
  running_stats pred_error_;
  std::vector<double> prediction_latencies_;
  std::vector<std::pair<double, double>> predictions_;
};

}  // namespace

std::string_view to_string(sched_deployment d) noexcept {
  return deployment_label(app_kind::sched, d);
}

sched_result run_sched_experiment(const sched_experiment_config& config) {
  sched_fct_experiment exp{config};
  sched_result result;
  static_cast<run_result&>(result) = run_experiment(exp);
  exp.take_extras(result);
  return result;
}

}  // namespace lf::apps
