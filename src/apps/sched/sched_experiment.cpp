#include "apps/sched/sched_experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "apps/sched/flow_sched.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "nn/serialize.hpp"
#include "transport/dctcp.hpp"
#include "transport/window_sender.hpp"

namespace lf::apps {
namespace {

using netsim::flow_id_t;

/// Everything one sender host carries for its deployment flavour.
struct host_deployment {
  std::unique_ptr<supervised_adapter> adapter;
  std::unique_ptr<liteflow_stack> lf;      // liteflow modes
  std::unique_ptr<kernelsim::crossspace_channel> channel;  // userspace modes
  std::unique_ptr<size_predictor> predictor;
  flow_context_tracker tracker;
  // Userspace modes still ship labels up in batches for adaptation.
  std::vector<core::train_sample> pending_labels;
};

struct live_flow {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t size = 0;
  double arrival = 0.0;
  std::vector<double> features;
  std::unique_ptr<transport::window_sender> sender;
};

nn::mlp pretrained_ffnn(const sched_experiment_config& config) {
  // Build a synthetic (features, encoded size) dataset by replaying the
  // same AR(1) size process through a context tracker, then train.
  rng gen{config.seed + 1000};
  correlated_size_process sizes{config.hosts_per_leaf * 2,
                                config.size_correlation, config.seed + 2000};
  flow_context_tracker tracker;
  std::vector<nn::training_sample> dataset;
  const std::size_t hosts = config.hosts_per_leaf * 2;
  double now = 0.0;
  for (std::size_t i = 0; i < config.pretrain_flows; ++i) {
    const auto src = static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 1));
    auto dst = static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 2));
    if (dst >= src) ++dst;
    now += gen.exponential(config.arrival_rate);
    const auto size = sizes.next_size(src, dst);
    nn::training_sample ts;
    ts.input = tracker.features(src, dst, now);
    // Live hosts carry a varying number of in-flight flows; the replay
    // completes each flow immediately, so emulate that feature's live
    // distribution instead of letting the net overfit to "always zero".
    ts.input[6] = gen.uniform(0.0, 0.2);
    ts.target = {encode_flow_size(static_cast<double>(size))};
    dataset.push_back(std::move(ts));
    tracker.on_flow_start(src, dst, now);
    tracker.on_flow_complete(src, dst, now, size);
  }
  // The FFNN is tiny (5/5 ReLU) and its inputs are non-negative, so an
  // unlucky init can leave the first layer dead and the model collapses to
  // the target mean.  Train with a few random restarts and keep the best.
  std::unique_ptr<nn::mlp> best;
  double best_loss = std::numeric_limits<double>::infinity();
  for (std::uint64_t attempt = 0; attempt < 5; ++attempt) {
    rng init{config.seed + 3000 + attempt * 7919};
    supervised_adapter warmup{nn::make_ffnn_flow_size_net(init), 3e-3, 1,
                              config.seed + attempt};
    warmup.pretrain(dataset, config.pretrain_epochs);
    if (warmup.last_loss() < best_loss) {
      best_loss = warmup.last_loss();
      best = std::make_unique<nn::mlp>(warmup.model());
    }
    if (best_loss < 0.004) break;  // clearly better than mean-only (~0.01)
  }
  return *best;
}

}  // namespace

std::string_view to_string(sched_deployment d) noexcept {
  switch (d) {
    case sched_deployment::liteflow:
      return "LF-FFNN";
    case sched_deployment::liteflow_noa:
      return "LF-FFNN-N-O-A";
    case sched_deployment::chardev:
      return "char-FFNN";
    case sched_deployment::netlink_dev:
      return "netlink-FFNN";
    case sched_deployment::no_prediction:
      return "no-prediction";
    case sched_deployment::oracle:
      return "oracle";
  }
  return "?";
}

sched_result run_sched_experiment(const sched_experiment_config& config) {
  sim::simulation simu;
  netsim::spine_leaf_config topo_config;
  topo_config.hosts_per_leaf = config.hosts_per_leaf;
  topo_config.host_bps = config.host_bps;
  topo_config.fabric_bps = config.fabric_bps;
  topo_config.cpu_gating = config.cpu_gating;
  netsim::spine_leaf topo{simu, topo_config};
  const std::size_t hosts = topo.host_count();

  // Shared pretrained weights, copied into each host's deployment.
  const bool needs_model = config.deployment != sched_deployment::no_prediction &&
                           config.deployment != sched_deployment::oracle;
  std::string frozen;
  if (needs_model) {
    frozen = nn::save_mlp_to_string(pretrained_ffnn(config));
  }

  std::vector<host_deployment> deploy(hosts);
  for (std::size_t h = 0; h < hosts && needs_model; ++h) {
    auto& d = deploy[h];
    auto model = nn::load_mlp_from_string(frozen);
    d.adapter = std::make_unique<supervised_adapter>(std::move(model), 3e-3,
                                                     4, config.seed + h);
    auto& host = topo.host_at(h);
    switch (config.deployment) {
      case sched_deployment::liteflow:
      case sched_deployment::liteflow_noa: {
        liteflow_stack_options opts;
        opts.model_name = "ffnn";
        opts.batch_interval = config.batch_interval;
        opts.adaptation =
            config.deployment == sched_deployment::liteflow;
        // FFNN outputs live in (0, 1); necessity threshold scales with it.
        opts.sync.output_min = 0.0;
        opts.sync.output_max = 1.0;
        d.lf = std::make_unique<liteflow_stack>(host, *d.adapter, opts);
        d.lf->start();
        d.predictor =
            std::make_unique<liteflow_size_predictor>(d.lf->core());
        break;
      }
      case sched_deployment::chardev:
      case sched_deployment::netlink_dev: {
        const auto kind = config.deployment == sched_deployment::chardev
                              ? kernelsim::channel_kind::char_device
                              : kernelsim::channel_kind::netlink;
        d.channel = std::make_unique<kernelsim::crossspace_channel>(
            simu, host.cpu(), host.costs(), kind);
        d.predictor = std::make_unique<userspace_size_predictor>(
            *d.channel, host.costs(), d.adapter->model());
        break;
      }
      default:
        break;
    }
  }

  // Userspace deployments adapt too: labels batch up and cross to
  // userspace on the same cadence as LiteFlow's collector.
  const bool userspace_adapts =
      config.deployment == sched_deployment::chardev ||
      config.deployment == sched_deployment::netlink_dev;
  if (userspace_adapts) {
    for (std::size_t h = 0; h < hosts; ++h) {
      auto& d = deploy[h];
      auto& host = topo.host_at(h);
      // Heap-allocate the periodic tick so the self-referencing closure
      // outlives this loop iteration.
      auto tick = std::make_shared<std::function<void()>>();
      *tick = [&simu, &d, &host, &config, tick]() {
        if (!d.pending_labels.empty()) {
          auto batch = std::move(d.pending_labels);
          d.pending_labels.clear();
          d.channel->send_to_user(batch.size() * 64, [&d, &host,
                                                      batch = std::move(
                                                          batch)]() {
            const double cost =
                host.costs().user_train_fixed_cost +
                static_cast<double>(batch.size() * d.adapter->parameter_count()) *
                    host.costs().user_train_cost_per_sample_param;
            host.cpu().submit(kernelsim::task_category::user_train, cost,
                              [&d, batch = std::move(batch)]() {
                                d.adapter->adapt(batch);
                              });
          });
        }
        simu.schedule(config.batch_interval, *tick);
      };
      simu.schedule(config.batch_interval, *tick);
    }
  }

  correlated_size_process sizes{hosts, config.size_correlation,
                                config.seed + 4000};
  if (config.pattern_shift_period > 0.0) {
    // Heap-allocate the self-referencing closure: the scheduled copies must
    // outlive this if-block.
    auto shift = std::make_shared<std::function<void()>>();
    *shift = [&simu, &sizes, &config, shift]() {
      sizes.shift_pattern();
      simu.schedule(config.pattern_shift_period, *shift);
    };
    simu.schedule(config.pattern_shift_period, *shift);
  }

  sched_result result;
  std::vector<double> fct_short, fct_mid, fct_long;
  running_stats pred_latency;
  running_stats pred_error;
  std::vector<std::unique_ptr<live_flow>> flows;
  flows.reserve(config.total_flows);

  rng arrival_gen{config.seed + 5000};
  flow_id_t next_flow = 1;
  double next_arrival = 0.0;

  // Open-loop Poisson arrivals, precomputed so we can cap total flows.
  struct arrival_plan {
    double t;
    std::size_t src;
    std::size_t dst;
  };
  std::vector<arrival_plan> plan;
  plan.reserve(config.total_flows);
  for (std::size_t i = 0; i < config.total_flows; ++i) {
    next_arrival += arrival_gen.exponential(config.arrival_rate);
    const auto src = static_cast<std::size_t>(
        arrival_gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 1));
    auto dst = static_cast<std::size_t>(
        arrival_gen.uniform_int(0, static_cast<std::int64_t>(hosts) - 2));
    if (dst >= src) ++dst;
    plan.push_back({next_arrival, src, dst});
  }

  auto start_flow = [&](const arrival_plan& ap) {
    auto flow = std::make_unique<live_flow>();
    flow->src = ap.src;
    flow->dst = ap.dst;
    flow->size = sizes.next_size(ap.src, ap.dst);
    flow->arrival = simu.now();
    auto& d = deploy[ap.src];
    auto& src_host = topo.host_at(ap.src);
    const flow_id_t id = next_flow++;
    flow->features = needs_model
                         ? d.tracker.features(ap.src, ap.dst, simu.now())
                         : std::vector<double>{};
    d.tracker.on_flow_start(ap.src, ap.dst, simu.now());
    if (std::getenv("LF_DEBUG_FEATURES") && flow->features.size() == 8) { fprintf(stderr, "feat %zu->%zu: %.3f %.3f %.3f %.3f %.3f %.3f %.3f %.3f\n", ap.src, ap.dst, flow->features[0], flow->features[1], flow->features[2], flow->features[3], flow->features[4], flow->features[5], flow->features[6], flow->features[7]); }

    live_flow* f = flow.get();
    flows.push_back(std::move(flow));

    auto launch = [&, f, id](std::uint8_t priority) {
      transport::window_sender_config wc;
      wc.priority = priority;
      f->sender = std::make_unique<transport::window_sender>(
          src_host, static_cast<netsim::host_id_t>(f->dst), id, f->size, wc,
          std::make_unique<transport::dctcp>());
      f->sender->set_done([&, f, id](double) {
        // FCT counts from arrival, so prediction latency (the tagging
        // happens before the first packet) is part of the completion time.
        const double fct = simu.now() - f->arrival;
        ++result.completed;
        switch (netsim::classify_flow(f->size)) {
          case netsim::flow_class::short_flow:
            fct_short.push_back(fct);
            break;
          case netsim::flow_class::mid_flow:
            fct_mid.push_back(fct);
            break;
          case netsim::flow_class::long_flow:
            fct_long.push_back(fct);
            break;
        }
        auto& dd = deploy[f->src];
        dd.tracker.on_flow_complete(f->src, f->dst, simu.now(), f->size);
        if (needs_model) {
          core::train_sample label;
          label.features = f->features;
          label.aux = {encode_flow_size(static_cast<double>(f->size))};
          if (dd.lf) {
            dd.lf->collector().collect(std::move(label));
          } else if (dd.channel) {
            dd.pending_labels.push_back(std::move(label));
          }
        }
        (void)id;
      });
      f->sender->start();
    };

    if (config.deployment == sched_deployment::no_prediction) {
      launch(k_unknown_priority);
    } else if (config.deployment == sched_deployment::oracle) {
      launch(priority_for_predicted_size(static_cast<double>(f->size)));
    } else {
      const double t0 = simu.now();
      d.predictor->predict(
          id, f->features, [&, f, t0, launch](double predicted) {
            pred_latency.add(simu.now() - t0);
            result.prediction_latencies.push_back(simu.now() - t0);
            if (predicted > 0.0) {
              pred_error.add(std::abs(std::log10(
                  predicted / static_cast<double>(f->size))));
              result.predictions.emplace_back(predicted,
                                              static_cast<double>(f->size));
              launch(priority_for_predicted_size(predicted));
            } else {
              launch(k_unknown_priority);
            }
          });
    }
  };

  for (const auto& ap : plan) {
    simu.schedule_at(ap.t, [&, ap]() { start_flow(ap); });
  }

  // Run in slices and stop early once every planned flow has completed.
  for (double t = 0.25; t <= config.max_sim_time; t += 0.25) {
    simu.run_until(t);
    if (result.completed >= plan.size()) break;
  }

  auto fill = [](std::vector<double>& v) {
    class_fct_stats s;
    s.count = v.size();
    s.mean_seconds = mean_of(v);
    s.p99_seconds = percentile(v, 99.0);
    return s;
  };
  result.short_flows = fill(fct_short);
  result.mid_flows = fill(fct_mid);
  result.long_flows = fill(fct_long);
  result.mean_prediction_latency = pred_latency.mean();
  result.mean_abs_log_error = pred_error.mean();
  for (std::size_t h = 0; h < hosts; ++h) {
    if (deploy[h].lf) {
      result.snapshot_updates += deploy[h].lf->service().snapshot_updates();
    }
  }
  return result;
}

}  // namespace lf::apps
