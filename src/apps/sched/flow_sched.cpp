#include "apps/sched/flow_sched.hpp"

#include <algorithm>
#include <cmath>

#include "nn/serialize.hpp"

namespace lf::apps {

double encode_flow_size(double bytes) noexcept {
  return std::log10(std::max(bytes, 1.0)) / 10.0;
}

double decode_flow_size(double y) noexcept {
  return std::pow(10.0, std::clamp(y, 0.0, 1.0) * 10.0);
}

std::uint8_t priority_for_predicted_size(double bytes) noexcept {
  if (bytes < 10'000.0) return 1;
  if (bytes <= 100'000.0) return 3;
  return 5;
}

// -------------------------------------------------- flow_context_tracker --

std::vector<double> flow_context_tracker::features(std::size_t src,
                                                   std::size_t dst,
                                                   double now) const {
  std::vector<double> f(k_sched_features, 0.0);
  const auto it = pairs_.find({src, dst});
  if (it != pairs_.end() && it->second.has_history) {
    const auto& ps = it->second;
    f[0] = ps.prev_log_size / 20.0;   // previous size (log, normalized)
    f[1] = ps.ewma_log_size / 20.0;   // pair running mean
    const double gap = ps.last_start >= 0.0 ? now - ps.last_start : 1.0;
    f[2] = std::min(1.0, std::log10(1.0 + gap * 1e3) / 6.0);  // log gap
    f[3] = std::min(1.0, static_cast<double>(ps.flows_seen) / 64.0);
    f[4] = ps.prev_log_size < std::log(10'000.0) ? 1.0 : 0.0;   // prev short
    f[5] = ps.prev_log_size > std::log(100'000.0) ? 1.0 : 0.0;  // prev long
  }
  const auto active_it = active_per_src_.find(src);
  const double active =
      active_it == active_per_src_.end()
          ? 0.0
          : static_cast<double>(active_it->second);
  f[6] = std::min(1.0, active / 32.0);
  f[7] = 1.0;  // bias feature
  return f;
}

void flow_context_tracker::on_flow_start(std::size_t src, std::size_t dst,
                                         double now) {
  pairs_[{src, dst}].last_start = now;
  ++active_per_src_[src];
}

void flow_context_tracker::on_flow_complete(std::size_t src, std::size_t dst,
                                            double, std::uint64_t bytes) {
  auto& ps = pairs_[{src, dst}];
  const double log_size = std::log(static_cast<double>(std::max<std::uint64_t>(bytes, 1)));
  ps.prev_log_size = log_size;
  ps.ewma_log_size =
      ps.has_history ? 0.8 * ps.ewma_log_size + 0.2 * log_size : log_size;
  ps.has_history = true;
  ++ps.flows_seen;
  auto it = active_per_src_.find(src);
  if (it != active_per_src_.end() && it->second > 0) --it->second;
}

// ------------------------------------------------------------ predictors --

liteflow_size_predictor::liteflow_size_predictor(core::liteflow_core& core)
    : core_{core} {}

void liteflow_size_predictor::predict(netsim::flow_id_t flow,
                                      std::vector<double> features,
                                      std::function<void(double)> done) {
  const fp::s64 scale = core_.active_io_scale();
  if (scale == 0) {
    done(0.0);
    return;
  }
  std::vector<fp::s64> input(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    input[i] = static_cast<fp::s64>(
        std::llround(features[i] * static_cast<double>(scale)));
  }
  core_.query_model(flow, std::move(input),
                    [scale, done = std::move(done)](std::vector<fp::s64> out) {
                      if (out.empty()) {
                        done(0.0);
                        return;
                      }
                      const double y = static_cast<double>(out[0]) /
                                       static_cast<double>(scale);
                      done(decode_flow_size(y));
                    });
}

userspace_size_predictor::userspace_size_predictor(
    kernelsim::crossspace_channel& channel, const kernelsim::cost_model& costs,
    const nn::mlp& model)
    : channel_{channel}, costs_{costs}, model_{model} {}

void userspace_size_predictor::predict(netsim::flow_id_t,
                                       std::vector<double> features,
                                       std::function<void(double)> done) {
  const double infer_cost = costs_.user_inference_overhead +
                            static_cast<double>(model_.parameter_count()) *
                                costs_.user_inference_mac_cost;
  const std::size_t bytes = features.size() * sizeof(double);
  channel_.round_trip(bytes, sizeof(double), infer_cost,
                      kernelsim::task_category::user_nn,
                      [this, features = std::move(features),
                       done = std::move(done)](double) {
                        const auto out = model_.forward(features);
                        done(decode_flow_size(out[0]));
                      });
}

// ----------------------------------------------------- supervised_adapter --

supervised_adapter::supervised_adapter(nn::mlp model, double learning_rate,
                                       std::size_t epochs_per_batch,
                                       std::uint64_t seed)
    : model_{std::move(model)},
      trainer_{model_, nn::loss_kind::mse,
               std::make_unique<nn::adam>(learning_rate)},
      epochs_{epochs_per_batch}, gen_{seed} {}

std::string supervised_adapter::freeze_model() {
  return nn::save_mlp_to_string(model_);
}

double supervised_adapter::stability_value() const { return last_loss_; }

std::vector<double> supervised_adapter::evaluate(
    std::span<const double> input) const {
  return model_.forward(input);
}

std::size_t supervised_adapter::parameter_count() const {
  return model_.parameter_count();
}

void supervised_adapter::adapt(std::span<const core::train_sample> batch) {
  std::vector<nn::training_sample> data;
  data.reserve(batch.size());
  const std::size_t out_size = model_.output_size();
  for (const auto& sample : batch) {
    if (sample.features.size() != model_.input_size() ||
        sample.aux.size() < out_size) {
      continue;
    }
    nn::training_sample ts;
    ts.input = sample.features;
    ts.target.assign(sample.aux.begin(), sample.aux.begin() + out_size);
    data.push_back(std::move(ts));
  }
  if (data.empty()) return;
  nn::train_report report{};
  for (std::size_t e = 0; e < epochs_; ++e) {
    report = trainer_.train_batch(data);
  }
  last_loss_ = report.mean_loss;
}

void supervised_adapter::pretrain(std::span<const nn::training_sample> dataset,
                                  std::size_t epochs) {
  if (dataset.empty()) return;
  // Shuffled mini-batch SGD: one optimizer step per 32-sample slice, many
  // steps per epoch (one full-batch step per epoch converges far too
  // slowly for the parameter travel these models need).
  constexpr std::size_t k_minibatch = 32;
  std::vector<nn::training_sample> shuffled(dataset.begin(), dataset.end());
  for (std::size_t e = 0; e < epochs; ++e) {
    gen_.shuffle(shuffled);
    double epoch_loss = 0.0;
    std::size_t steps = 0;
    for (std::size_t off = 0; off < shuffled.size(); off += k_minibatch) {
      const auto n = std::min(k_minibatch, shuffled.size() - off);
      const auto report = trainer_.train_batch(
          std::span<const nn::training_sample>{shuffled}.subspan(off, n));
      epoch_loss += report.mean_loss;
      ++steps;
    }
    last_loss_ = epoch_loss / static_cast<double>(steps);
  }
}

// ----------------------------------------------- correlated_size_process --

correlated_size_process::correlated_size_process(std::size_t hosts, double rho,
                                                 std::uint64_t seed)
    : hosts_{hosts}, rho_{rho}, gen_{seed} {}

double correlated_size_process::draw_mu() {
  // Bimodal application mix: "RPC-ish" pairs around ~5KB, "data-ish" pairs
  // around ~500KB (log-space means).
  return gen_.bernoulli(0.6) ? std::log(5'000.0) : std::log(500'000.0);
}

correlated_size_process::pair_proc& correlated_size_process::at(
    std::size_t src, std::size_t dst) {
  auto [it, inserted] = pairs_.try_emplace({src, dst});
  if (inserted) {
    it->second.mu = draw_mu();
  }
  return it->second;
}

std::uint64_t correlated_size_process::next_size(std::size_t src,
                                                 std::size_t dst) {
  auto& proc = at(src, dst);
  double log_size;
  if (!proc.started) {
    log_size = proc.mu + sigma_ * gen_.normal();
    proc.started = true;
  } else {
    log_size = proc.mu + rho_ * (proc.prev - proc.mu) +
               sigma_ * std::sqrt(1.0 - rho_ * rho_) * gen_.normal();
  }
  proc.prev = log_size;
  const double bytes = std::exp(std::clamp(log_size, std::log(200.0),
                                           std::log(50e6)));
  return static_cast<std::uint64_t>(bytes);
}

void correlated_size_process::shift_pattern() {
  for (auto& [key, proc] : pairs_) {
    proc.mu = draw_mu();
    proc.started = false;
  }
}

}  // namespace lf::apps
