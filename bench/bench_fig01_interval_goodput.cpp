// Figure 1: fine-grained cross-space communication is necessary.
//
// (a) goodput distribution of one CCP-Aurora flow at communication
//     intervals 1ms / 10ms / 100ms (paper: mean drops 672 -> 585 Mbps as
//     the interval grows), and
// (b) bottleneck queue occupancy: small intervals keep the queue short and
//     stable; large intervals let it grow and oscillate.
#include "bench_common.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 1", "cross-space interval vs goodput and queue");

  const double duration = dur(12.0, 4.0);
  const double warmup = dur(3.0, 1.0);
  const std::size_t pretrain = count(800, 200);

  report rep{"fig01", "cross-space interval vs goodput and queue"};
  rep.config("duration", duration);
  rep.config("warmup", warmup);
  rep.config("bottleneck_bps", 1e9);

  text_table goodput_table{{"interval", "mean(Mbps)", "p10", "p50", "p90",
                            "stddev"}};
  text_table queue_table{{"interval", "queue-mean(KB)", "queue-p95(KB)",
                          "queue-stddev(KB)"}};

  for (const double interval : {1e-3, 10e-3, 100e-3}) {
    cc_single_flow_config cfg;
    cfg.scheme = cc_scheme::ccp_aurora;
    cfg.ccp_interval = interval;
    cfg.duration = duration;
    cfg.warmup = warmup;
    cfg.pretrain_iterations = pretrain;
    cfg.trace_queue = true;
    cfg.net.bottleneck_bps = 1e9;
    cfg.net.rtt = 10e-3;
    cfg.net.buffer_bytes = 150 * 1000;
    const auto r = run_cc_single_flow(cfg);

    std::vector<double> samples;
    for (const auto& [t, v] : r.goodput.points()) {
      if (t >= warmup) samples.push_back(v);
    }
    const double ps[] = {10, 50, 90};
    const auto pv = percentiles(samples, ps);
    goodput_table.add_row({text_table::num(interval * 1e3, 0) + "ms",
                           mbps(r.mean_goodput), mbps(pv[0]), mbps(pv[1]),
                           mbps(pv[2]), mbps(r.stddev_goodput)});

    running_stats queue;
    for (const auto& [t, v] : r.queue.points()) {
      if (t >= warmup) queue.add(v);
    }
    std::vector<double> qs;
    for (const auto& [t, v] : r.queue.points()) {
      if (t >= warmup) qs.push_back(v);
    }
    queue_table.add_row({text_table::num(interval * 1e3, 0) + "ms",
                         text_table::num(queue.mean() / 1e3),
                         text_table::num(percentile(qs, 95) / 1e3),
                         text_table::num(queue.stddev() / 1e3)});

    const std::string tag = text_table::num(interval * 1e3, 0) + "ms";
    rep.summary(tag + ".goodput_mbps", r.mean_goodput / 1e6);
    rep.summary(tag + ".goodput_stddev_mbps", r.stddev_goodput / 1e6);
    rep.summary(tag + ".queue_mean_kb", queue.mean() / 1e3);
    rep.summary(tag + ".queue_p95_kb", percentile(qs, 95) / 1e3);
    rep.add_series("goodput_bps_" + tag, r.goodput.points());
    rep.add_series("queue_bytes_" + tag, r.queue.points());
  }

  std::cout << "\n(1a) goodput of one CCP-Aurora flow (1 Gbps bottleneck, "
               "0.1 Gbps UDP bg, 10 ms RTT):\n"
            << goodput_table.to_string();
  std::cout << "\n(1b) bottleneck queue occupancy:\n"
            << queue_table.to_string();
  std::cout << "\nPaper shape: goodput falls and queue grows/oscillates as "
               "the interval increases.\n";
  write_report(rep);
  return 0;
}
