// Figure 5: lack of online adaptation degrades performance under dynamics.
//
// A frozen (integer-quantized, kernel-deployed) Aurora snapshot controls
// one flow while the background traffic pattern changes periodically
// (paper: every 20 minutes; we scale time down).  When the environment
// matches training, goodput is ideal; after each change it degrades
// because the snapshot cannot adapt.
#include "bench_common.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 5", "frozen kernel NN under changing traffic");

  const double phase_len = dur(20.0, 6.0);
  const double duration = 3 * phase_len;

  cc_single_flow_config cfg;
  cfg.scheme = cc_scheme::lf_aurora_noa;  // frozen snapshot, no slow path
  cfg.duration = duration;
  cfg.warmup = 2.0;
  cfg.pretrain_iterations = count(800, 200);
  cfg.net.bottleneck_bps = 1e9;
  cfg.net.rtt = 10e-3;
  cfg.net.buffer_bytes = 150 * 1000;
  // Trained against 0.1 Gbps background, loss-free; the pattern then
  // changes: a lossy phase (Aurora's classic blind spot — it backs off as
  // if congested), then a heavy-background phase.
  cfg.bg_bps = 0.1e9;
  cfg.bg_schedule = {
      {phase_len, 0.1e9, 0.08},     // phase 2: 8% stochastic loss
      {2 * phase_len, 0.55e9, 0.0}  // phase 3: heavy background
  };
  const auto r = run_cc_single_flow(cfg);

  report rep{"fig05", "frozen kernel NN under changing traffic"};
  rep.config("phase_len", phase_len);
  rep.config("duration", duration);
  rep.config("bottleneck_bps", cfg.net.bottleneck_bps);

  text_table table{{"phase", "background(Gbps)", "available(Gbps)",
                    "goodput(Mbps)", "utilization"}};
  const double bg[] = {0.1e9, 0.1e9, 0.55e9};
  for (int phase = 0; phase < 3; ++phase) {
    const double t0 = phase * phase_len + (phase == 0 ? cfg.warmup : 1.0);
    const double t1 = (phase + 1) * phase_len;
    const double mean = r.goodput.average(t0, t1);
    const double avail = cfg.net.bottleneck_bps - bg[phase];
    table.add_row({std::to_string(phase + 1),
                   text_table::num(bg[phase] / 1e9, 2),
                   text_table::num(avail / 1e9, 2), mbps(mean),
                   pct(mean / avail)});
    const std::string tag = "phase" + std::to_string(phase + 1);
    rep.summary(tag + ".goodput_mbps", mean / 1e6);
    rep.summary(tag + ".utilization", mean / avail);
  }
  rep.add_series("goodput_bps", r.goodput.points());
  std::cout << "\n" << table.to_string();
  std::cout << "\ngoodput series (Mbps, 1s buckets):\n";
  for (const auto& [t, v] : r.goodput.resample(0, duration, 1.0)) {
    std::printf("%.1f\t%.1f\n", t, v / 1e6);
  }
  std::cout << "\nPaper shape: near-ideal in the training-matched phase, "
               "degraded utilization after each pattern change.\n";
  write_report(rep);
  return 0;
}
