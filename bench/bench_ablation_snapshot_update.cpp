// Ablation (Fig. 9 / §3.4): active-standby-switch vs direct locked install.
//
// A datapath issues inference queries at a steady rate while snapshot
// updates happen periodically.  The direct approach holds the lock for the
// whole parameter transfer + install; LiteFlow's inference router holds it
// only for a pointer flip.  We measure the stall distribution the datapath
// sees under each policy.
#include "bench_common.hpp"

#include "codegen/snapshot.hpp"
#include "kernelsim/spinlock.hpp"
#include "nn/mlp.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lf;
  using namespace lf::bench;

  print_header("Ablation (Fig. 9)",
               "snapshot update locking: direct vs active-standby switch");

  rng g{123};
  const auto aurora = nn::make_aurora_net(g);
  const auto mocc = nn::make_mocc_net(g);
  kernelsim::cost_model costs;

  struct policy_case {
    std::string name;
    double lock_hold;  ///< seconds the update holds the lock
  };

  report rep{"ablation_snapshot_update",
             "snapshot update locking: direct vs active-standby switch"};

  text_table table{{"model", "policy", "lock-hold",
                    "stalled-queries", "mean-stall", "max-stall"}};

  for (const auto* net : {&aurora, &mocc}) {
    const auto snap = codegen::generate_snapshot(
        *net, net == &aurora ? "aurora" : "mocc", 1);
    const double install_hold =
        static_cast<double>(snap.program.parameter_bytes()) *
        costs.snapshot_install_per_byte;
    const policy_case policies[] = {
        {"direct-lock", install_hold},
        {"active-standby", costs.router_switch_lock_hold},
    };
    for (const auto& pol : policies) {
      sim::simulation s;
      kernelsim::spinlock lock{s};
      const double query_gap = 50e-6;   // datapath query every 50us
      const double update_gap = 0.1;    // snapshot update every 100ms
      const double duration = dur(5.0, 1.0);
      running_stats stalls;
      std::uint64_t stalled = 0;

      for (double t = update_gap; t < duration; t += update_gap) {
        s.schedule_at(t, [&lock, hold = pol.lock_hold]() {
          lock.acquire(hold);
        });
      }
      for (double t = 0.0; t < duration; t += query_gap) {
        s.schedule_at(t, [&]() {
          // The datapath grabs the same lock briefly around the pointer
          // read (a few ns).
          const double wait = lock.acquire(5e-9);
          if (wait > 0.0) ++stalled;
          stalls.add(wait);
        });
      }
      s.run();
      table.add_row(
          {net == &aurora ? "Aurora" : "MOCC", pol.name,
           text_table::num(pol.lock_hold * 1e6, 3) + "us",
           std::to_string(stalled),
           text_table::num(stalls.mean() * 1e9, 2) + "ns",
           text_table::num(stalls.max() * 1e6, 3) + "us"});
      const std::string tag =
          std::string{net == &aurora ? "aurora" : "mocc"} + "." + pol.name;
      rep.summary(tag + ".lock_hold_us", pol.lock_hold * 1e6);
      rep.summary(tag + ".stalled_queries", static_cast<double>(stalled));
      rep.summary(tag + ".max_stall_us", stalls.max() * 1e6);
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nDesign point: the pointer flip holds the lock for tens of "
               "nanoseconds, so datapath stalls vanish; a direct install "
               "stalls queries for the whole parameter copy.\n";
  write_report(rep);
  return 0;
}
