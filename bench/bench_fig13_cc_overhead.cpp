// Figure 13: LiteFlow's overhead matches pure kernel implementations.
//
// N concurrent flows in a non-congested (CPU-bound) setting; aggregated
// throughput normalized to BBR.  Paper: LF-Aurora/LF-MOCC lose <5% vs BBR,
// beat CUBIC by ~17.5%, and beat the CCP deployments by up to 63.5%.
#include "bench_common.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 13", "deployment overhead: normalized throughput");

  const double duration = dur(1.5, 0.8);
  const std::size_t pretrain = count(400, 100);
  const std::size_t n_values[] = {2, 4, 6, 8, 10};

  std::vector<double> bbr_tput;
  for (const std::size_t n : n_values) {
    cc_overhead_config cfg;
    cfg.scheme = cc_scheme::bbr;
    cfg.n_flows = n;
    cfg.duration = duration;
    bbr_tput.push_back(run_cc_overhead(cfg).aggregate_bps);
  }

  struct scheme_case {
    cc_scheme scheme;
    double interval;
    std::string name;
  };
  const scheme_case cases[] = {
      {cc_scheme::cubic, 0, "CUBIC"},
      {cc_scheme::lf_aurora, 0, "LF-Aurora"},
      {cc_scheme::lf_mocc, 0, "LF-MOCC"},
      {cc_scheme::ccp_aurora, 1e-3, "CCP-Aurora-1ms"},
      {cc_scheme::ccp_aurora, 10e-3, "CCP-Aurora-10ms"},
      {cc_scheme::kernel_train_aurora, 0, "Kernel-Train"},
  };

  std::vector<std::string> headers{"N", "BBR(Gbps)"};
  for (const auto& c : cases) headers.push_back(c.name);
  text_table table{headers};

  report rep{"fig13", "deployment overhead: normalized throughput"};
  rep.config("duration", duration);

  for (std::size_t i = 0; i < std::size(n_values); ++i) {
    std::vector<std::string> row{std::to_string(n_values[i]),
                                 text_table::num(bbr_tput[i] / 1e9, 2)};
    rep.add_point("bbr_gbps", static_cast<double>(n_values[i]),
                  bbr_tput[i] / 1e9);
    for (const auto& c : cases) {
      cc_overhead_config cfg;
      cfg.scheme = c.scheme;
      cfg.ccp_interval = c.interval;
      cfg.n_flows = n_values[i];
      cfg.duration = duration;
      cfg.pretrain_iterations = pretrain;
      const auto r = run_cc_overhead(cfg);
      row.push_back(text_table::num(r.aggregate_bps / bbr_tput[i], 2));
      rep.add_point("norm_" + c.name, static_cast<double>(n_values[i]),
                    r.aggregate_bps / bbr_tput[i]);
    }
    table.add_row(std::move(row));
  }
  std::cout << "\naggregate throughput normalized to BBR:\n"
            << table.to_string();
  std::cout << "\nPaper shape: LF-* within ~5% of BBR and above CUBIC; CCP "
               "deployments degrade with N; in-kernel training is worst "
               "(~90% loss per §2.3).\n";
  write_report(rep);
  return 0;
}
