// Figure 16: flow-scheduling FCT with learned size prediction.
//
// 2x2 spine-leaf, 32 hosts, DCTCP, ~4000 flows with correlated sizes;
// predicted-short flows ride high strict-priority bands.  Paper: LF-FFNN
// beats char-FFNN by 10.9% on short flows and 33.7% on long flows, and
// beats its own N-O-A variant by 6.0% / 23.0%.
#include "bench_common.hpp"

#include "apps/sched/sched_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 16", "flow scheduling FCT by deployment");

  report rep{"fig16", "flow scheduling FCT by deployment"};
  rep.config("hosts", static_cast<double>(count(16, 2) * 2));
  rep.config("total_flows", static_cast<double>(count(4000, 300)));
  rep.config("arrival_rate", static_cast<double>(count(6000, 1500)));

  text_table table{{"deployment", "short-mean(us)", "short-p99(us)",
                    "mid-mean(us)", "long-mean(us)", "completed",
                    "pred-err(log10)"}};

  for (const auto d :
       {sched_deployment::oracle, sched_deployment::liteflow,
        sched_deployment::liteflow_noa, sched_deployment::chardev,
        sched_deployment::netlink_dev, sched_deployment::no_prediction}) {
    sched_experiment_config cfg;
    cfg.deployment = d;
    cfg.hosts_per_leaf = count(16, 2);           // 32 hosts (paper)
    cfg.arrival_rate = count(6000, 1500);
    cfg.total_flows = count(4000, 300);          // ~4000 flows (paper)
    cfg.pretrain_flows = count(3000, 400);
    cfg.pretrain_epochs = count(200, 60);
    cfg.pattern_shift_period = count(4000, 300) >= 4000 ? 0.25 : 0.0;
    cfg.max_sim_time = 60.0;
    const auto r = run_sched_experiment(cfg);
    table.add_row({std::string{to_string(d)},
                   text_table::num(r.short_flows.mean_seconds * 1e6, 0),
                   text_table::num(r.short_flows.p99_seconds * 1e6, 0),
                   text_table::num(r.mid_flows.mean_seconds * 1e6, 0),
                   text_table::num(r.long_flows.mean_seconds * 1e6, 0),
                   std::to_string(r.completed),
                   text_table::num(r.mean_abs_log_error, 2)});
    const std::string name{to_string(d)};
    rep.summary(name + ".short_mean_us", r.short_flows.mean_seconds * 1e6);
    rep.summary(name + ".short_p99_us", r.short_flows.p99_seconds * 1e6);
    rep.summary(name + ".mid_mean_us", r.mid_flows.mean_seconds * 1e6);
    rep.summary(name + ".long_mean_us", r.long_flows.mean_seconds * 1e6);
    rep.summary(name + ".completed", static_cast<double>(r.completed));
    rep.summary(name + ".pred_err_log10", r.mean_abs_log_error);
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nPaper shape: oracle best; LF-FFNN beats the userspace "
               "deployments in every class (largest margin on long flows), "
               "and beats N-O-A when the workload shifts.\n";
  write_report(rep);
  return 0;
}
