// Figure 15: flow-size prediction latency by deployment.
//
// Paper (testbed measurement): LF-FFNN 2.19us mean, char-FFNN 4.34us,
// netlink-FFNN 8.09us, with LF also the most stable.  We measure the same
// three mechanisms inside the scheduling experiment (so predictions queue
// behind real datapath work) and print the latency distribution.
#include "bench_common.hpp"

#include "apps/sched/sched_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 15", "prediction latency CDF by deployment");

  report rep{"fig15", "prediction latency CDF by deployment"};

  text_table table{{"deployment", "mean(us)", "p10", "p50", "p90", "p99"}};

  for (const auto d : {sched_deployment::liteflow, sched_deployment::chardev,
                       sched_deployment::netlink_dev}) {
    sched_experiment_config cfg;
    cfg.deployment = d;
    cfg.hosts_per_leaf = count(8, 2);
    cfg.arrival_rate = 2000.0;
    cfg.total_flows = count(1500, 200);
    cfg.pretrain_flows = count(2000, 400);
    cfg.pretrain_epochs = count(150, 60);
    const auto r = run_sched_experiment(cfg);

    const double ps[] = {10, 50, 90, 99};
    const auto pv = percentiles(r.prediction_latencies, ps);
    table.add_row({std::string{to_string(d)},
                   text_table::num(r.mean_prediction_latency * 1e6, 2),
                   text_table::num(pv[0] * 1e6, 2),
                   text_table::num(pv[1] * 1e6, 2),
                   text_table::num(pv[2] * 1e6, 2),
                   text_table::num(pv[3] * 1e6, 2)});
    const std::string name{to_string(d)};
    rep.summary(name + ".mean_us", r.mean_prediction_latency * 1e6);
    rep.summary(name + ".p50_us", pv[1] * 1e6);
    rep.summary(name + ".p99_us", pv[3] * 1e6);
  }
  std::cout << "\nprediction latency (microseconds):\n" << table.to_string();
  std::cout << "\nPaper shape: LF-FFNN fastest and most stable (2.19us), "
               "char device ~2x slower, netlink ~3.7x slower.\n";
  write_report(rep);
  return 0;
}
