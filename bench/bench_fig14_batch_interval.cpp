// Figure 14: micro-benchmark of the batch data delivery interval T.
//
// Two effects trade off (§3.2):
//  - overhead: softirq share with 10 concurrent LF-Aurora flows as T
//    shrinks (paper: within ~14.1% for T in [100ms, 1000ms], close to the
//    ~12.6% of pure kernel CC);
//  - adaptation quality: goodput of one flow under an environment change
//    (a too-large T reacts too slowly).
// N-O-A rows give the no-slow-path reference.
#include "bench_common.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 14", "batch data delivery interval sweep");

  const double overhead_duration = dur(1.5, 0.8);
  const std::size_t pretrain = count(800, 200);

  text_table table{{"T", "softirq-share(10 flows)", "slow-path-cpu(ms/s)",
                    "goodput-after-change(Mbps)", "snapshot-updates"}};

  const double phase_len = dur(16.0, 6.0);
  auto goodput_under_change = [&](double batch_interval, bool adaptation,
                                  std::uint64_t* updates) {
    cc_single_flow_config cfg;
    cfg.scheme = adaptation ? cc_scheme::lf_aurora : cc_scheme::lf_aurora_noa;
    cfg.batch_interval = batch_interval;
    cfg.duration = 2 * phase_len;
    cfg.warmup = 2.0;
    cfg.pretrain_iterations = pretrain;
    cfg.net.bottleneck_bps = 1e9;
    cfg.net.rtt = 10e-3;
    cfg.bg_bps = 0.1e9;
    cfg.bg_schedule = {{phase_len, 0.1e9, 0.08}};  // lossy phase
    const auto r = run_cc_single_flow(cfg);
    if (updates) *updates = r.snapshot_updates;
    return r.goodput.average(phase_len + phase_len / 3, cfg.duration);
  };

  auto overhead = [&](double batch_interval, bool adaptation) {
    cc_overhead_config cfg;
    cfg.scheme = adaptation ? cc_scheme::lf_aurora : cc_scheme::lf_aurora_noa;
    cfg.batch_interval = batch_interval;
    cfg.n_flows = 10;
    cfg.duration = overhead_duration;
    cfg.pretrain_iterations = count(400, 100);
    return run_cc_overhead(cfg);
  };

  report rep{"fig14", "batch data delivery interval sweep"};
  rep.config("overhead_duration", overhead_duration);
  rep.config("phase_len", phase_len);

  const double ow = overhead_duration - 0.3;  // measurement window
  for (const double T : {1e-3, 10e-3, 100e-3, 1000e-3}) {
    std::uint64_t updates = 0;
    const auto oh = overhead(T, true);
    const double goodput = goodput_under_change(T, true, &updates);
    table.add_row({text_table::num(T * 1e3, 0) + "ms", pct(oh.softirq_share),
                   text_table::num(oh.slowpath_seconds / ow * 1e3, 1),
                   mbps(goodput), std::to_string(updates)});
    rep.add_point("softirq_share", T * 1e3, oh.softirq_share);
    rep.add_point("slowpath_ms_per_s", T * 1e3,
                  oh.slowpath_seconds / ow * 1e3);
    rep.add_point("goodput_after_change_mbps", T * 1e3, goodput / 1e6);
    rep.add_point("snapshot_updates", T * 1e3, static_cast<double>(updates));
  }
  const auto noa = overhead(100e-3, false);
  const double noa_goodput = goodput_under_change(100e-3, false, nullptr);
  table.add_row({"N-O-A", pct(noa.softirq_share),
                 text_table::num(noa.slowpath_seconds / ow * 1e3, 1),
                 mbps(noa_goodput), "0"});
  rep.summary("noa.softirq_share", noa.softirq_share);
  rep.summary("noa.goodput_after_change_mbps", noa_goodput / 1e6);

  std::cout << "\n" << table.to_string();
  std::cout << "\nPaper shape: T in [100ms, 1000ms] keeps softirq near the "
               "pure-kernel baseline without hurting adaptation; tiny T "
               "raises overhead, N-O-A loses goodput after the change.\n";
  write_report(rep);
  return 0;
}
