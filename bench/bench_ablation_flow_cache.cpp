// Ablation (§3.4): flow consistency via the flow cache.
//
// Run many concurrent flows against an inference router while snapshot
// updates keep switching the active model.  With the flow cache, a flow is
// pinned to the snapshot generation that served its first packet — zero
// mid-flow model changes; without it, every switch hits every live flow.
// Also shows the refcount side: pinned generations stay loaded until their
// flows finish.
#include "bench_common.hpp"

#include "codegen/snapshot.hpp"
#include "core/inference_router.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lf;
  using namespace lf::bench;

  print_header("Ablation (§3.4)", "flow cache and flow consistency");

  report rep{"ablation_flow_cache", "flow cache and flow consistency"};
  rep.config("flows", 64.0);
  rep.config("queries_per_flow", 40.0);

  text_table table{{"flow-cache", "mid-flow model changes", "cache hits",
                    "generations pinned at end"}};

  for (const bool cache_enabled : {true, false}) {
    sim::simulation s;
    core::nn_manager manager;
    core::router_config rc;
    rc.flow_cache_enabled = cache_enabled;
    core::inference_router router{s, manager, rc};

    rng g{41};
    const auto net = nn::make_ffnn_flow_size_net(g);
    std::uint64_t version = 1;
    auto install = [&]() {
      const auto prev = router.active();
      const auto id = manager.register_model(
          codegen::generate_snapshot(net, "m", version++));
      router.install_standby(id);
      router.switch_active();
      // rmmod the demoted generation; with the flow cache on, pinned flows
      // defer the unload until they finish.
      if (prev) manager.try_remove(*prev);
    };
    install();

    constexpr int k_flows = 64;
    constexpr int k_queries_per_flow = 40;
    constexpr double k_query_gap = 1e-3;
    std::vector<core::model_id> last_model(k_flows, 0);
    std::uint64_t mid_flow_changes = 0;

    // Queries: every flow queries every ms; updates: every 10ms.
    for (int q = 0; q < k_queries_per_flow; ++q) {
      s.schedule_at(q * k_query_gap + 1e-6, [&, q]() {
        for (int f = 0; f < k_flows; ++f) {
          const auto id = router.route(static_cast<netsim::flow_id_t>(f + 1));
          if (!id) continue;
          if (last_model[static_cast<std::size_t>(f)] != 0 &&
              last_model[static_cast<std::size_t>(f)] != *id) {
            ++mid_flow_changes;
          }
          last_model[static_cast<std::size_t>(f)] = *id;
        }
        (void)q;
      });
    }
    for (double t = 10e-3; t < k_queries_per_flow * k_query_gap; t += 10e-3) {
      s.schedule_at(t, [&]() { install(); });
    }
    s.run();

    table.add_row({cache_enabled ? "on" : "off",
                   std::to_string(mid_flow_changes),
                   std::to_string(router.cache_hits()),
                   std::to_string(manager.installed_count())});
    const std::string tag = cache_enabled ? "cache_on" : "cache_off";
    rep.summary(tag + ".mid_flow_changes",
                static_cast<double>(mid_flow_changes));
    rep.summary(tag + ".cache_hits",
                static_cast<double>(router.cache_hits()));
    rep.summary(tag + ".generations_pinned",
                static_cast<double>(manager.installed_count()));
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nDesign point: the cache guarantees one model generation "
               "per flow (no mid-flow decision discontinuities) at the cost "
               "of keeping superseded generations loaded until their flows "
               "drain; functions that tolerate switches (CC) disable it.\n";
  write_report(rep);
  return 0;
}
