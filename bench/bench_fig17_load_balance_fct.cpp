// Figure 17: NN-driven load balancing FCT.
//
// 2x2 spine-leaf with 8 servers, DCTCP, web-search workload, a moving
// background hotspot on one spine.  Paper: LF-MLP beats char-MLP by 34.3%
// (short) / 56.7% (long); char-MLP is even worse than plain ECMP because
// per-selection cross-space communication erodes the datapath; N-O-A sits
// between.
#include "bench_common.hpp"

#include "apps/lb/lb_experiment.hpp"

int main() {
  using namespace lf;
  using namespace lf::apps;
  using namespace lf::bench;

  print_header("Figure 17", "load balancing FCT by deployment");

  report rep{"fig17", "load balancing FCT by deployment"};
  rep.config("hosts", 8.0);
  rep.config("total_flows", static_cast<double>(count(1200, 300)));
  rep.config("hotspot_bps", 8.5e9);
  rep.config("reselect_interval", 5e-3);

  text_table table{{"deployment", "short-mean(us)", "mid-mean(us)",
                    "long-mean(us)", "long-p99(us)", "completed",
                    "selector-calls"}};

  for (const auto d : {lb_deployment::liteflow, lb_deployment::liteflow_noa,
                       lb_deployment::ecmp, lb_deployment::chardev}) {
    lb_experiment_config cfg;
    cfg.deployment = d;
    cfg.hosts_per_leaf = 4;  // 8 servers (paper)
    cfg.arrival_rate = count(500, 500);
    cfg.total_flows = count(1200, 300);
    cfg.pretrain_samples = count(2000, 800);
    cfg.pretrain_epochs = count(300, 120);
    cfg.hotspot_bps = 8.5e9;
    cfg.hotspot_switch_period = 0.3;
    cfg.reselect_interval = 5e-3;
    cfg.max_sim_time = 30.0;
    const auto r = run_lb_experiment(cfg);
    table.add_row({std::string{to_string(d)},
                   text_table::num(r.short_flows.mean_seconds * 1e6, 0),
                   text_table::num(r.mid_flows.mean_seconds * 1e6, 0),
                   text_table::num(r.long_flows.mean_seconds * 1e6, 0),
                   text_table::num(r.long_flows.p99_seconds * 1e6, 0),
                   std::to_string(r.completed),
                   std::to_string(r.selector_calls)});
    const std::string name{to_string(d)};
    rep.summary(name + ".short_mean_us", r.short_flows.mean_seconds * 1e6);
    rep.summary(name + ".mid_mean_us", r.mid_flows.mean_seconds * 1e6);
    rep.summary(name + ".long_mean_us", r.long_flows.mean_seconds * 1e6);
    rep.summary(name + ".long_p99_us", r.long_flows.p99_seconds * 1e6);
    rep.summary(name + ".completed", static_cast<double>(r.completed));
    rep.summary(name + ".selector_calls",
                static_cast<double>(r.selector_calls));
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nPaper shape: LF-MLP best across classes; ECMP in between; "
               "char-MLP worse than ECMP (per-selection cross-space cost); "
               "N-O-A loses to LF-MLP as the hotspot moves.\n";
  write_report(rep);
  return 0;
}
