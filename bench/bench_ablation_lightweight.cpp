// Ablation (§2.3): lightweight kernel-deployable inference artifacts.
//
// Compares the two "NN optimization abandoned" options the paper surveys —
// integer-quantized NN snapshots and distilled decision trees — on accuracy
// vs the FP teacher, artifact size, and per-inference work.  Either runs
// fine in kernel space; neither can adapt, which is the gap LiteFlow's slow
// path closes.  Also sweeps the activation-LUT size (a DESIGN.md knob).
#include "bench_common.hpp"

#include "quant/decision_tree.hpp"
#include "quant/lut.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

#include <cmath>

int main() {
  using namespace lf;
  using namespace lf::bench;
  using namespace lf::quant;

  print_header("Ablation (§2.3)", "lightweight inference artifacts");

  report rep{"ablation_lightweight", "lightweight inference artifacts"};

  // ------------------------------------------ quantized NN vs decision tree
  text_table table{{"teacher", "artifact", "mean|err|", "size(bytes)",
                    "work/inference"}};
  rng g{31};
  struct teacher_case {
    std::string name;
    nn::mlp net;
  };
  std::vector<teacher_case> teachers;
  teachers.push_back({"Aurora(30 in)", nn::make_aurora_net(g)});
  teachers.push_back({"FFNN(8 in)", nn::make_ffnn_flow_size_net(g)});

  for (auto& tc : teachers) {
    const auto q = quantize(tc.net);
    rng xs{32};
    double q_err = 0.0;
    std::size_t n = 0;
    for (int i = 0; i < 300; ++i) {
      std::vector<double> x(tc.net.input_size());
      for (auto& v : x) v = xs.uniform(-1, 1);
      const auto y = tc.net.forward(x);
      const auto yq = q.infer_float(x);
      for (std::size_t o = 0; o < y.size(); ++o) {
        q_err += std::abs(y[o] - yq[o]);
        ++n;
      }
    }
    table.add_row({tc.name, "quantized-NN",
                   text_table::num(q_err / static_cast<double>(n), 4),
                   std::to_string(q.parameter_bytes()),
                   std::to_string(q.mac_count()) + " MACs"});
    rep.summary(tc.name + ".quantized_nn_mean_abs_err",
                q_err / static_cast<double>(n));
    rep.summary(tc.name + ".quantized_nn_bytes",
                static_cast<double>(q.parameter_bytes()));

    dt_config dc;
    dc.max_depth = 10;
    dc.training_samples = 4096;
    const auto tree = decision_tree_snapshot::distill(tc.net, dc);
    table.add_row({tc.name, "decision-tree",
                   text_table::num(tree.mean_abs_error(tc.net, 300, 33), 4),
                   std::to_string(tree.node_count() * 24),
                   std::to_string(tree.depth()) + " compares"});
    rep.summary(tc.name + ".decision_tree_mean_abs_err",
                tree.mean_abs_error(tc.net, 300, 33));
    rep.summary(tc.name + ".decision_tree_bytes",
                static_cast<double>(tree.node_count() * 24));
  }
  std::cout << "\n" << table.to_string();

  // ------------------------------------------------------- LUT size sweep
  text_table lut_table{{"tanh-LUT entries", "max|err|", "bytes"}};
  for (const std::size_t entries : {64u, 256u, 1024u, 4096u}) {
    const auto lut =
        lookup_table::for_activation(nn::activation::tanh_act, entries, 1000);
    const double max_err =
        lut.max_abs_error([](double x) { return std::tanh(x); });
    lut_table.add_row({std::to_string(entries), text_table::num(max_err, 5),
                       std::to_string(entries * sizeof(fp::s64))});
    rep.add_point("tanh_lut_max_abs_err", static_cast<double>(entries),
                  max_err);
  }
  std::cout << "\nactivation lookup-table resolution (scale 1000):\n"
            << lut_table.to_string();
  std::cout << "\nTakeaway: the tree is cheaper per inference but far less "
               "faithful on high-dimensional inputs; the quantized NN "
               "tracks the teacher to ~1e-3 — and only it has a slow path "
               "to stay current.\n";
  write_report(rep);
  return 0;
}
