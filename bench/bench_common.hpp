// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure from the paper's evaluation and
// prints the same rows/series the paper reports.  Absolute numbers come
// from the simulated substrate and will not match the authors' testbed;
// EXPERIMENTS.md records the shape comparison.  Set LF_BENCH_FAST=1 to
// shrink durations for quick iteration.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "apps/cc/cc_experiment.hpp"
#include "util/bench_report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lf::bench {

inline void print_header(const std::string& figure, const std::string& title) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n";
  if (apps::bench_fast_mode()) {
    std::cout << "(LF_BENCH_FAST: reduced durations)\n";
  }
}

/// Emit the bench's BENCH_<figure>.json next to the text table and say where
/// it went (every figure binary funnels through this).
inline void write_report(const report& rep) {
  const std::string path = rep.write();
  if (path.empty()) {
    std::cerr << "warning: failed to write BENCH_" << rep.figure()
              << ".json\n";
  } else {
    std::cout << "[json] " << path << "\n";
  }
}

/// Scale a duration down in fast mode.
inline double dur(double full, double fast) {
  return apps::bench_fast_mode() ? fast : full;
}

inline std::size_t count(std::size_t full, std::size_t fast) {
  return apps::bench_fast_mode() ? fast : full;
}

inline std::string mbps(double bps, int precision = 1) {
  return text_table::num(bps / 1e6, precision);
}

inline std::string pct(double fraction, int precision = 1) {
  return text_table::num(fraction * 100.0, precision) + "%";
}

}  // namespace lf::bench
